//! Cross-pipeline tracing invariants (tier-1).
//!
//! 1. Exactness: after a forward pass through any of the four distributed
//!    pipelines, every rank's spans — work buckets plus `sync_wait:*`
//!    buckets — sum to exactly `clock.now()` (within 1e-9). The span
//!    recorder makes this true by construction; these tests pin it.
//! 2. Golden exporter check: the Chrome trace-event JSON is syntactically
//!    valid and carries all six Fig-11 stage labels on every rank's track.

use xmoe::collectives::{trace, RankTrace, SimCluster};
use xmoe::core::expert::ExpertShard;
use xmoe::core::gating::Router;
use xmoe::core::pipeline::{self, DenseDropOrder, MoeLayerSpec};
use xmoe::core::rbd::{self, RbdComms};
use xmoe::tensor::{DetRng, Tensor};

const WORLD: usize = 8;
const S: usize = 192;
const H: usize = 48;
const F: usize = 24;
const E: usize = 16;
const K: usize = 4;

fn run_pipeline(which: &'static str) -> Vec<RankTrace> {
    let router = Router::new(H, E, K, 0xBEE);
    let spec = MoeLayerSpec::new(E, 10_000);
    let router = &router;
    let spec = &spec;
    SimCluster::frontier(WORLD).run(move |ctx| {
        let shard = ExpertShard::for_rank(ctx.rank, WORLD, E, H, F, 0xBEF);
        let tokens = Tensor::rand_uniform(S, H, 1.0, 0xBF0 + ctx.rank as u64);
        match which {
            "dense" => {
                let _ = pipeline::dense::forward_ep_dense(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    DenseDropOrder::TokenOrder,
                    &ctx.world,
                    &mut ctx.clock,
                );
            }
            "padding_free" => {
                let _ = pipeline::padding_free::forward_ep(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &ctx.world,
                    &mut ctx.clock,
                );
            }
            "block_sparse" => {
                let _ = pipeline::block_sparse::forward_ep_block_sparse(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    64,
                    &ctx.world,
                    &mut ctx.clock,
                );
            }
            "rbd" => {
                let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                let mut rng = DetRng::new(0xBF1 + ctx.rank as u64);
                let _ = rbd::forward_ep_rbd(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                );
            }
            other => panic!("unknown pipeline {other}"),
        }
        RankTrace::capture(ctx.rank, &mut ctx.clock, ctx.world.traffic())
    })
}

fn assert_spans_account_for_all_time(traces: &[RankTrace], pipeline_name: &str) {
    assert_eq!(traces.len(), WORLD);
    for tr in traces {
        let span_sum: f64 = tr.spans.iter().map(|s| s.dur).sum();
        assert!(
            (span_sum - tr.end).abs() < 1e-9,
            "{pipeline_name} rank {}: spans sum to {span_sum} but clock says {}",
            tr.rank,
            tr.end
        );
        let bucket_sum: f64 = tr.bucket_totals().iter().map(|(_, v)| v).sum();
        assert!(
            (bucket_sum - tr.end).abs() < 1e-9,
            "{pipeline_name} rank {}: buckets sum to {bucket_sum} but clock says {}",
            tr.rank,
            tr.end
        );
        assert!(
            tr.end > 0.0,
            "{pipeline_name} rank {} advanced no time",
            tr.rank
        );
        // Spans must be non-overlapping and cover [0, end] back to back.
        let mut cursor = 0.0f64;
        for s in &tr.spans {
            assert!(
                (s.start - cursor).abs() < 1e-9,
                "{pipeline_name} rank {}: gap before span {:?} at {cursor}",
                tr.rank,
                s.label
            );
            cursor = s.start + s.dur;
        }
    }
}

#[test]
fn dense_pipeline_spans_sum_to_clock() {
    assert_spans_account_for_all_time(&run_pipeline("dense"), "dense");
}

#[test]
fn padding_free_pipeline_spans_sum_to_clock() {
    assert_spans_account_for_all_time(&run_pipeline("padding_free"), "padding_free");
}

#[test]
fn block_sparse_pipeline_spans_sum_to_clock() {
    assert_spans_account_for_all_time(&run_pipeline("block_sparse"), "block_sparse");
}

#[test]
fn rbd_pipeline_spans_sum_to_clock() {
    assert_spans_account_for_all_time(&run_pipeline("rbd"), "rbd");
}

/// Minimal JSON syntax walker: validates balanced structure, strings and
/// literals without pulling in a parser dependency. Rejects trailing junk.
fn check_json(s: &str) {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut stack: Vec<u8> = Vec::new();
    let mut seen_value = false;
    while i < b.len() {
        match b[i] {
            b'{' | b'[' => {
                stack.push(b[i]);
                i += 1;
            }
            b'}' => {
                assert_eq!(stack.pop(), Some(b'{'), "unbalanced }} at byte {i}");
                seen_value = true;
                i += 1;
            }
            b']' => {
                assert_eq!(stack.pop(), Some(b'['), "unbalanced ] at byte {i}");
                seen_value = true;
                i += 1;
            }
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                        assert!(i < b.len(), "dangling escape");
                        assert!(
                            matches!(
                                b[i],
                                b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' | b'u'
                            ),
                            "bad escape \\{} at byte {i}",
                            b[i] as char
                        );
                    }
                    assert!(b[i] >= 0x20, "unescaped control char in string at byte {i}");
                    i += 1;
                }
                assert!(i < b.len(), "unterminated string");
                seen_value = true;
                i += 1;
            }
            b',' | b':' => {
                assert!(!stack.is_empty(), "separator outside container at byte {i}");
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            _ => {
                // number / true / false / null token
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || matches!(b[i], b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    i += 1;
                }
                let tok = &s[start..i];
                assert!(
                    tok == "true" || tok == "false" || tok == "null" || tok.parse::<f64>().is_ok(),
                    "bad JSON token {tok:?} at byte {start}"
                );
                seen_value = true;
            }
        }
    }
    assert!(stack.is_empty(), "unbalanced containers at end of input");
    assert!(seen_value, "empty JSON document");
}

/// Overlap extension of the exactness invariant: inside a region, spans of
/// each track are back-to-back from the region's opening time and sum
/// exactly to the track's cursor; the region's wall contribution is the max
/// over tracks; the serial spans plus that wall reproduce `clock.now()`.
#[test]
fn overlap_region_per_track_spans_sum_exactly_and_wall_is_max() {
    let router = Router::new(H, E, K, 0xBEE);
    let spec = MoeLayerSpec::new(E, 10_000);
    let router = &router;
    let spec = &spec;
    let traces = SimCluster::frontier(WORLD).run(move |ctx| {
        let shard = ExpertShard::for_rank(ctx.rank, WORLD, E, H, F, 0xBEF);
        let tokens = Tensor::rand_uniform(S, H, 1.0, 0xBF0 + ctx.rank as u64);
        let _ = pipeline::padding_free::forward_ep_overlap(
            &tokens,
            router,
            &shard,
            spec,
            2,
            &ctx.world,
            &mut ctx.clock,
        );
        RankTrace::capture(ctx.rank, &mut ctx.clock, ctx.world.traffic())
    });

    let mut hidden_somewhere = false;
    for tr in &traces {
        let tracked: Vec<_> = tr.spans.iter().filter(|s| s.track.is_some()).collect();
        assert!(!tracked.is_empty(), "rank {}: no overlap spans", tr.rank);
        let t0 = tracked
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        let mut names: Vec<&str> = Vec::new();
        for s in &tracked {
            let name = s.track.as_deref().unwrap();
            if !names.contains(&name) {
                names.push(name);
            }
        }
        assert!(names.len() >= 2, "rank {}: only tracks {names:?}", tr.rank);

        let mut wall_end = t0;
        let mut work_total = 0.0f64;
        for name in &names {
            let mut cursor = t0;
            let mut sum = 0.0f64;
            for s in tracked.iter().filter(|s| s.track.as_deref() == Some(name)) {
                assert!(
                    (s.start - cursor).abs() < 1e-9,
                    "rank {} track {name}: gap before {:?} at {cursor}",
                    tr.rank,
                    s.label
                );
                cursor = s.start + s.dur;
                sum += s.dur;
            }
            // Per-track spans sum exactly to the track's cursor.
            assert!(
                (sum - (cursor - t0)).abs() < 1e-9,
                "rank {} track {name}: spans sum {sum} vs cursor {}",
                tr.rank,
                cursor - t0
            );
            wall_end = wall_end.max(cursor);
            work_total += sum;
        }
        // Region wall = max over tracks: serial spans + the region wall
        // reproduce the rank's final clock exactly.
        let serial_sum: f64 = tr
            .spans
            .iter()
            .filter(|s| s.track.is_none())
            .map(|s| s.dur)
            .sum();
        assert!(
            (serial_sum + (wall_end - t0) - tr.end).abs() < 1e-9,
            "rank {}: serial {serial_sum} + wall {} != clock {}",
            tr.rank,
            wall_end - t0,
            tr.end
        );
        // Work conservation: buckets keep the full per-track durations, so
        // the total meets or exceeds the wall; any excess is hidden time.
        assert!(work_total >= wall_end - t0 - 1e-9);
        if work_total > wall_end - t0 + 1e-9 {
            hidden_somewhere = true;
        }
    }
    assert!(
        hidden_somewhere,
        "overlap hid no time on any rank — the region degenerated to serial"
    );

    // Overlap-aware Chrome export: each rank's region tracks render as their
    // own named Perfetto rows next to the rank's serial track.
    let json = trace::chrome_trace(&traces);
    check_json(&json);
    for needle in ["[comm]", "[compute]", "[comm_out]"] {
        assert!(json.contains(needle), "chrome trace missing track {needle}");
    }
}

#[test]
fn chrome_trace_is_valid_json_with_all_stage_labels_per_rank() {
    let traces = run_pipeline("padding_free");
    let json = trace::chrome_trace(&traces);
    check_json(&json);
    assert!(json.contains("\"traceEvents\""));
    let stage_labels = [
        "gating",
        "buffer_dispatch",
        "dispatch_a2a",
        "expert",
        "combine_a2a",
        "buffer_combine",
    ];
    // Every rank has a named thread track and every stage label appears on it.
    for tr in &traces {
        let track = format!("\"tid\":{}", tr.rank);
        assert!(json.contains(&track), "no events for rank {}", tr.rank);
        for label in stage_labels {
            assert!(
                tr.spans.iter().any(|sp| !sp.wait && sp.label == label),
                "rank {} trace missing stage {label}",
                tr.rank
            );
            let event = format!("\"name\":\"{label}\"");
            assert!(json.contains(&event), "exporter dropped stage {label}");
        }
    }
}
