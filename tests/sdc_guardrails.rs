//! Silent-data-corruption guardrails (tier-1).
//!
//! End-to-end pins for the SDC defense layer (`xmoe::train::guard` +
//! the guarded chaos step):
//!
//! 1. The dynamic loss-scale state machine grows and backs off exactly as
//!    configured, and scales stay powers of two (bitwise-invertible).
//! 2. Simulated-bf16 rounding has the contract the master-weight path
//!    relies on: idempotent, low-16-bits-zero, round-to-nearest-even,
//!    bounded relative error, specials preserved.
//! 3. Gradient clipping never increases the norm and lands exactly on
//!    `max_norm` when active — and, wired into the guarded step via
//!    `max_grad_norm`, actually rescales the optimizer's gradients.
//! 4. An injected `bitflip:site=grad` run detects the corruption, rolls
//!    back to the last checkpoint, finishes with finite loss — and its
//!    post-rollback trajectory is bitwise identical to a clean run's,
//!    because injections are one-shot and checkpoints are exact.
//! 5. The same seed with no injection trips zero guard events (no false
//!    positives) and is bitwise reproducible run-over-run.
//! 6. Guard overhead on a clean run stays under 5% of simulated step time,
//!    measured from the `guard:*` spans of a clock that still satisfies
//!    span-exactness (buckets sum to `now()`).
//! 7. A grown loss scale is unscaled bitwise-exactly before the optimizer
//!    consumes the gradients, so the loss trajectory is independent of
//!    the scale schedule; `max_grad_norm` clipping actually rescales the
//!    optimizer's inputs and is inert by default.
//! 8. A corrupt checkpoint image makes restore fall back to the previous
//!    intact one, recording a schema-clean `site=ckpt` event that carries
//!    the decode error in `detail`.

use xmoe::collectives::SimCluster;
use xmoe::core::gating::DropPolicy;
use xmoe::topology::FaultPlan;
use xmoe::train::guard::{bf16_round, clip_factor, sq_norm};
use xmoe::train::{
    run_chaos_rank, ChaosConfig, ChaosReport, GuardConfig, LossScale, LossScaleCfg, PolicyCfg,
    TrainConfig,
};

fn cfg() -> TrainConfig {
    let mut c = TrainConfig::fig15(DropPolicy::CapacityOnly);
    c.vocab = 32;
    c.hidden = 16;
    c.ffn = 8;
    c.num_experts = 8;
    c.top_k = 2;
    c.layers = 2;
    c.seq_len = 10;
    c.batch = 2;
    c.capacity_factor = 1e6;
    c.seed = 77;
    c
}

/// Rollback-on-first-trip policy: every detection escalates straight to
/// `rollback_to_checkpoint`, which is what the trajectory-match test needs.
fn rollback_guard() -> GuardConfig {
    GuardConfig {
        policy: PolicyCfg {
            skip_trips: 0,
            backoff_trips: 0,
            clean_reset: 3,
        },
        ..GuardConfig::default()
    }
}

/// Run `world` ranks under `plan`, returning every rank's report plus its
/// final clock buckets and end time.
#[allow(clippy::type_complexity)]
fn guarded_run(
    world: usize,
    plan: Option<FaultPlan>,
    chaos: ChaosConfig,
) -> Vec<(ChaosReport, Vec<(String, f64)>, f64)> {
    let c = cfg();
    let c = &c;
    let chaos = &chaos;
    let mut cluster = SimCluster::frontier(world);
    if let Some(p) = plan {
        cluster = cluster.with_faults(p);
    }
    cluster.run(move |ctx| {
        let report = run_chaos_rank(c, chaos, ctx).expect("unrecoverable comm fault");
        (report, ctx.clock.buckets().to_vec(), ctx.clock.now())
    })
}

fn loss_bits(r: &ChaosReport) -> Vec<(u64, u64)> {
    r.losses.iter().map(|&(s, l)| (s, l.to_bits())).collect()
}

// ---------------------------------------------------------------------------
// 1. loss-scale state machine
// ---------------------------------------------------------------------------

#[test]
fn loss_scale_grows_after_interval_and_backs_off_on_overflow() {
    let mut ls = LossScale::new(LossScaleCfg {
        init: 1024.0,
        growth_interval: 3,
        min: 1.0,
        max: 4096.0,
    });
    assert_eq!(ls.scale(), 1024.0);
    ls.on_clean();
    ls.on_clean();
    assert_eq!(ls.scale(), 1024.0, "no growth before the interval elapses");
    ls.on_clean();
    assert_eq!(ls.scale(), 2048.0, "doubles after `growth_interval` cleans");
    ls.on_overflow();
    assert_eq!(ls.scale(), 1024.0, "halves on overflow");
    ls.on_clean();
    ls.on_clean();
    ls.on_overflow();
    assert_eq!(ls.scale(), 512.0, "overflow resets the clean streak");
    for _ in 0..64 {
        ls.on_overflow();
    }
    assert_eq!(ls.scale(), 1.0, "backoff floors at `min`");
    for _ in 0..64 {
        ls.on_clean();
    }
    assert_eq!(ls.scale(), 4096.0, "growth ceilings at `max`");
    assert!(ls.backoffs >= 3 && ls.growths >= 1);
}

#[test]
fn loss_scale_stays_a_power_of_two_and_inverts_exactly() {
    let mut ls = LossScale::new(LossScaleCfg::default());
    for i in 0..200 {
        if i % 7 == 0 {
            ls.on_overflow();
        } else {
            ls.on_clean();
        }
        let s = ls.scale();
        assert_eq!(s.to_bits() & 0x007F_FFFF, 0, "scale {s} not a power of two");
        // Power-of-two scaling is exponent arithmetic: scale then unscale
        // is bitwise lossless for any non-overflowing value.
        for v in [1.0f32, -0.375, std::f32::consts::PI, 1e-8, -123.456] {
            assert_eq!(((v * s) * ls.inv_scale()).to_bits(), v.to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// 2. simulated-bf16 round-trip properties
// ---------------------------------------------------------------------------

#[test]
fn bf16_round_contract() {
    let vals = [
        0.0f32,
        -0.0,
        1.0,
        -1.0,
        0.1,
        std::f32::consts::PI,
        1e-30,
        -1e30,
        65504.0,
        f32::MIN_POSITIVE,
    ];
    for &v in &vals {
        let r = bf16_round(v);
        assert_eq!(r.to_bits() & 0xFFFF, 0, "{v}: low mantissa bits survive");
        assert_eq!(bf16_round(r).to_bits(), r.to_bits(), "{v}: not idempotent");
        if v != 0.0 {
            let rel = ((r - v) / v).abs();
            assert!(rel <= 1.0 / 256.0, "{v}: relative error {rel} too large");
        }
    }
    // Round-to-nearest-even on the exact tie: 1.0 + 2^-8 has the tie bit
    // set and an even truncated mantissa, so it rounds *down* to 1.0.
    assert_eq!(bf16_round(f32::from_bits(0x3F80_8000)), 1.0);
    // The odd-side tie rounds up.
    assert_eq!(
        bf16_round(f32::from_bits(0x3F81_8000)),
        f32::from_bits(0x3F82_0000)
    );
    // Specials pass through.
    assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
    assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    assert!(bf16_round(f32::NAN).is_nan());
    // Overflow saturates to infinity rather than wrapping.
    assert_eq!(bf16_round(f32::MAX), f32::INFINITY);
}

// ---------------------------------------------------------------------------
// 3. gradient-clip invariants
// ---------------------------------------------------------------------------

#[test]
fn clip_factor_never_grows_the_norm_and_hits_max_exactly() {
    let xs = [3.0f32, -4.0, 12.0]; // norm 13
    let norm = sq_norm(&xs).sqrt();
    assert!((norm - 13.0).abs() < 1e-9);

    assert_eq!(clip_factor(norm, 20.0), 1.0, "under the cap: untouched");
    assert_eq!(clip_factor(norm, 0.0), 1.0, "cap 0 disables clipping");

    let f = clip_factor(norm, 5.0);
    assert!(f < 1.0);
    let clipped: Vec<f32> = xs.iter().map(|&x| x * f).collect();
    let new_norm = sq_norm(&clipped).sqrt();
    assert!(
        (new_norm - 5.0).abs() < 1e-6,
        "active clip lands on max_norm, got {new_norm}"
    );

    assert_eq!(clip_factor(f64::NAN, 5.0), 0.0, "non-finite norm zeroes");
    assert_eq!(clip_factor(f64::INFINITY, 5.0), 0.0);
}

// ---------------------------------------------------------------------------
// 4. injected bitflip: detect, roll back, match the clean trajectory
// ---------------------------------------------------------------------------

#[test]
fn grad_bitflip_run_detects_rolls_back_and_matches_clean_trajectory() {
    let world = 2;
    let steps = 8u64;
    let chaos = ChaosConfig::new(steps, 2).with_guard(rollback_guard());
    // Bit 30 is the top exponent bit: for any |g| < 2 the flip lands in
    // the 1e35+ range (or on a non-finite), far past the spike threshold.
    let plan = FaultPlan::parse(2, "bitflip:rank=1,at=5,site=grad,bit=30").unwrap();

    let dirty = guarded_run(world, Some(plan), chaos);
    let clean = guarded_run(world, None, chaos);

    for ((d, _, _), (c, _, _)) in dirty.iter().zip(&clean) {
        // Detection fired on the injected step and escalated to rollback.
        let ev = d
            .guard_events
            .iter()
            .find(|e| e.action == "rollback_to_checkpoint")
            .expect("injected bitflip must trip the guard");
        assert_eq!(ev.step, 5, "detected on the injection step");
        assert_eq!(ev.detector.as_str(), "spike");
        assert_eq!(d.guard_false_positives, 0);

        // Recovery stats: rolled back to the step-4 checkpoint, replaying 1.
        let rec = d.recoveries.last().expect("rollback recorded");
        assert!(
            rec.failed_ranks.is_empty(),
            "SDC rollback, not a rank death"
        );
        assert_eq!(rec.resumed_from_step, 4);
        assert_eq!(rec.steps_lost_to_rollback, 1);
        assert_eq!(rec.detect_latency_steps, 0);

        // The run finished, every surviving loss is finite.
        assert_eq!(d.losses.len() as u64, steps);
        assert!(d.losses.iter().all(|&(_, l)| l.is_finite()));

        // One-shot injection + exact checkpoints: after the rollback the
        // replay is clean, so the whole trajectory is bitwise identical to
        // the never-injected run.
        assert_eq!(loss_bits(d), loss_bits(c));
        assert!(c.guard_events.is_empty(), "clean run must not trip");
    }
}

#[test]
fn corrupt_checkpoint_capture_is_discarded_and_rollback_uses_previous() {
    let world = 2;
    // ckpt_every=2 captures after steps 1, 3, 5 (checkpoint steps 2, 4, 6).
    // The ckpt flip corrupts the capture at step 3; the grad flip at step 5
    // then forces a rollback, which must land on the *step-2* checkpoint.
    let chaos = ChaosConfig::new(8, 2).with_guard(rollback_guard());
    let plan = FaultPlan::parse(
        2,
        "bitflip:rank=1,at=3,site=ckpt;bitflip:rank=1,at=5,site=grad,bit=30",
    )
    .unwrap();

    for (r, _, _) in guarded_run(world, Some(plan), chaos) {
        assert!(
            r.guard_events
                .iter()
                .any(|e| e.action == "discard_corrupt_ckpt"),
            "capture-time CRC vote must reject the corrupted checkpoint"
        );
        let rec = r.recoveries.last().expect("rollback happened");
        assert_eq!(
            rec.resumed_from_step, 2,
            "rollback fell back past the discarded step-4 checkpoint"
        );
        assert_eq!(rec.steps_lost_to_rollback, 3);
        assert!(r.losses.iter().all(|&(_, l)| l.is_finite()));
        assert_eq!(r.guard_false_positives, 0);
    }
}

// ---------------------------------------------------------------------------
// 5. clean runs: zero trips, bitwise reproducible
// ---------------------------------------------------------------------------

#[test]
fn clean_guarded_run_has_zero_trips_and_is_bitwise_reproducible() {
    let chaos = ChaosConfig::new(8, 2).with_guard(GuardConfig::default());
    let a = guarded_run(2, None, chaos);
    let b = guarded_run(2, None, chaos);
    for ((ra, _, ta), (rb, _, tb)) in a.iter().zip(&b) {
        assert!(ra.guard_events.is_empty(), "no injection → no trips");
        assert_eq!(ra.guard_false_positives, 0);
        assert_eq!(loss_bits(ra), loss_bits(rb), "run-over-run bitwise equal");
        assert_eq!(ta.to_bits(), tb.to_bits(), "simulated time reproducible");
    }
}

#[test]
fn injected_run_is_bitwise_reproducible_too() {
    let chaos = ChaosConfig::new(8, 2).with_guard(rollback_guard());
    let plan = || FaultPlan::parse(2, "bitflip:rank=1,at=5,site=grad,bit=30").unwrap();
    let a = guarded_run(2, Some(plan()), chaos);
    let b = guarded_run(2, Some(plan()), chaos);
    for ((ra, _, ta), (rb, _, tb)) in a.iter().zip(&b) {
        assert_eq!(loss_bits(ra), loss_bits(rb));
        assert_eq!(ra.guard_events.len(), rb.guard_events.len());
        for (ea, eb) in ra.guard_events.iter().zip(&rb.guard_events) {
            assert_eq!(ea.step, eb.step);
            assert_eq!(ea.detector, eb.detector);
            assert_eq!(ea.action, eb.action);
            assert_eq!(ea.value.to_bits(), eb.value.to_bits());
        }
        assert_eq!(ta.to_bits(), tb.to_bits());
    }
}

// ---------------------------------------------------------------------------
// 6. guard overhead < 5%, with span-exactness intact
// ---------------------------------------------------------------------------

#[test]
fn guard_overhead_is_under_five_percent_and_spans_stay_exact() {
    let chaos = ChaosConfig::new(6, 2).with_guard(GuardConfig::default());
    for (_, buckets, now) in guarded_run(4, None, chaos) {
        let total: f64 = buckets.iter().map(|(_, t)| t).sum();
        assert!(
            (total - now).abs() <= 1e-9 * now.max(1.0),
            "span-exactness violated: buckets sum {total} vs now {now}"
        );
        let guard: f64 = buckets
            .iter()
            .filter(|(l, _)| l.starts_with("guard:"))
            .map(|(_, t)| t)
            .sum();
        assert!(
            guard > 0.0,
            "guard work must be charged under guard:* spans"
        );
        assert!(
            guard / now < 0.05,
            "guard overhead {:.2}% exceeds 5%",
            100.0 * guard / now
        );
    }
}

// ---------------------------------------------------------------------------
// 7. loss-scale exactness and clipping in the guarded step
// ---------------------------------------------------------------------------

#[test]
fn grown_loss_scale_is_unscaled_exactly_leaving_the_trajectory_unchanged() {
    let steps = 8u64;
    // Default config pins the scale at 1.0 for a run this short
    // (growth_interval = 64); the second config starts at 8 and doubles
    // every 2 clean steps, so the two runs see very different scales.
    let pinned = ChaosConfig::new(steps, 2).with_guard(GuardConfig::default());
    let grown = ChaosConfig::new(steps, 2).with_guard(GuardConfig {
        loss_scale: LossScaleCfg {
            init: 8.0,
            growth_interval: 2,
            min: 0.5,
            max: 65536.0,
        },
        ..GuardConfig::default()
    });

    let a = guarded_run(2, None, pinned);
    let b = guarded_run(2, None, grown);
    for ((rp, _, _), (rg, _, _)) in a.iter().zip(&b) {
        assert!(rg.guard_events.is_empty(), "clean run must not trip");
        assert_eq!(rg.guard_false_positives, 0);
        assert!(
            rg.final_loss_scale > 8.0,
            "scale must actually grow, got {}",
            rg.final_loss_scale
        );
        // Power-of-two scaling is exponent arithmetic: the backward pass
        // is scale-equivariant and the unscale pass inverts it bitwise,
        // so Adam consumes identical gradients under either schedule and
        // the loss trajectory cannot move.
        assert_eq!(loss_bits(rp), loss_bits(rg));
    }
}

#[test]
fn max_grad_norm_clips_clean_steps_and_is_inert_by_default() {
    let steps = 8u64;
    let stock = guarded_run(
        2,
        None,
        ChaosConfig::new(steps, 2).with_guard(GuardConfig::default()),
    );
    let capped = guarded_run(
        2,
        None,
        ChaosConfig::new(steps, 2).with_guard(GuardConfig {
            max_grad_norm: 1e-3,
            ..GuardConfig::default()
        }),
    );
    for ((rs, _, _), (rc, _, _)) in stock.iter().zip(&capped) {
        assert_eq!(rs.grad_clips, 0, "clipping is off by default");
        assert!(rc.grad_clips > 0, "a tiny cap must rescale clean steps");
        assert!(rc.guard_events.is_empty(), "a clip is not an anomaly");
        assert_eq!(rc.guard_false_positives, 0);
        assert!(rc.losses.iter().all(|&(_, l)| l.is_finite()));
        assert_ne!(
            loss_bits(rs),
            loss_bits(rc),
            "an active clip must change the optimizer trajectory"
        );
    }
    // The factor derives from the all-reduced norm, so every rank makes
    // the same clip decision on the same step.
    assert!(
        capped
            .windows(2)
            .all(|w| w[0].0.grad_clips == w[1].0.grad_clips),
        "clip decisions must be rank-consistent"
    );
}

// ---------------------------------------------------------------------------
// 8. corrupt checkpoint image: restore falls back, event schema intact
// ---------------------------------------------------------------------------

#[test]
fn dead_peer_restore_falls_back_past_a_corrupt_checkpoint_image() {
    // Guard OFF: no capture-time CRC vote, so the ckpt flip at step 3
    // leaves a corrupted step-4 image stored as `last` (step-2 stays
    // intact in `prev`). When rank 1 dies at step 5 the survivor's
    // restore must reject `last` on decode and fall back.
    let chaos = ChaosConfig::new(8, 2);
    let plan = FaultPlan::parse(2, "bitflip:rank=0,at=3,site=ckpt;kill:rank=1,at=5").unwrap();

    let reports = guarded_run(2, Some(plan), chaos);
    let (r, _, _) = &reports[0]; // rank 0 is the survivor
    let ev = r
        .guard_events
        .iter()
        .find(|e| e.action == "fallback_prev_ckpt")
        .expect("corrupt last image must force the fallback");
    assert_eq!(ev.site, "ckpt", "fallback keeps the site schema");
    assert_eq!(ev.detector, "crc");
    assert!(
        !ev.detail.is_empty(),
        "the decode error rides in `detail`, not `site`"
    );
    let rec = r.recoveries.last().expect("dead-peer recovery recorded");
    assert_eq!(rec.failed_ranks, vec![1]);
    assert_eq!(
        rec.resumed_from_step, 2,
        "resumed from the intact step-2 image"
    );
    assert_eq!(r.losses.len(), 8, "survivor finishes every step");
    assert!(r.losses.iter().all(|&(_, l)| l.is_finite()));
}
