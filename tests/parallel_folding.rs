//! Cross-crate integration tests for the 4D parallel-folding stack: the
//! interleaved 1F1B schedule (`xmoe-core` over `xmoe-collectives` p2p)
//! must be bitwise-identical to the unpipelined reference across
//! foldings, its measured bubble must track the analytic ramp, the
//! auto-mapping planner must produce a rich, Pareto-consistent frontier,
//! and expert placement must stay never-worse-than-naive on ragged
//! (non-divisible) shapes.

use xmoe::collectives::SimCluster;
use xmoe::core::config::MoeModelConfig;
use xmoe::core::gating::DropPolicy;
use xmoe::core::perf::PerfModel;
use xmoe::core::pipeline::{bubble_fraction, rank_work, reference_forward, run_1f1b, StageChunk};
use xmoe::core::plan::plan_mappings;
use xmoe::tensor::DetRng;
use xmoe::topology::{
    optimize_placement, placement_cost, ClusterTopology, CongestionModel, CostModel,
    ExpertPlacement, MachineSpec, RoutingHistogram,
};
use xmoe::train::{StagePartition, TrainConfig};

/// Reduced-dimension training config with one MoE layer per virtual stage.
fn staged_cfg(pp: usize, v: usize) -> TrainConfig {
    let mut c = TrainConfig::fig15(DropPolicy::CapacityOnly);
    c.vocab = 64;
    c.hidden = 16;
    c.ffn = 8;
    c.num_experts = 4;
    c.top_k = 2;
    c.layers = pp * v;
    c.seq_len = 8;
    c.batch = 2;
    c.capacity_factor = 1e6;
    c
}

/// Run the 1F1B schedule on `pp` simulated ranks; returns the last rank's
/// outputs and the per-rank `(clock.now(), work)` totals.
fn run_pipelined(
    cluster: SimCluster,
    part: &StagePartition,
    cfg: &TrainConfig,
) -> (Vec<xmoe::tensor::Tensor>, Vec<(f64, f64)>) {
    let inputs = part.microbatch_inputs(cfg);
    let per_rank = {
        let inputs = &inputs;
        cluster.run(move |ctx| {
            let chunks = part.rank_chunks(ctx.rank);
            let refs: Vec<&dyn StageChunk> = chunks.iter().map(|c| c as &dyn StageChunk).collect();
            let outs = run_1f1b(&part.spec, &refs, inputs, &ctx.world, &mut ctx.clock).unwrap();
            (outs, ctx.clock.now(), rank_work(&ctx.clock))
        })
    };
    let totals: Vec<(f64, f64)> = per_rank
        .iter()
        .map(|(_, now, work)| (*now, *work))
        .collect();
    let outputs = per_rank.into_iter().next_back().unwrap().0;
    (outputs, totals)
}

/// Uniform slow compute (and congestion-free links): op time dwarfs the
/// boundary hops, so the measured bubble converges to the analytic ramp.
fn slow_compute_cluster(n: usize) -> SimCluster {
    let mut spec = MachineSpec::frontier();
    spec.peak_flops = 1e8;
    spec.gemm_efficiency = 1.0;
    let topo = ClusterTopology::new(spec, n);
    SimCluster::new(CostModel::new(topo).with_congestion(CongestionModel::none()))
}

#[test]
fn interleaved_1f1b_matches_unpipelined_reference_across_foldings() {
    for &(pp, v, m) in &[(2usize, 1usize, 4usize), (2, 2, 4), (4, 2, 8)] {
        let cfg = staged_cfg(pp, v);
        let part = StagePartition::new(&cfg, pp, v, m).unwrap();
        let stages = part.reference_stages();
        let refs: Vec<&dyn StageChunk> = stages.iter().map(|s| s as &dyn StageChunk).collect();
        let want = reference_forward(&refs, &part.microbatch_inputs(&cfg));
        let (got, _) = run_pipelined(SimCluster::frontier(pp), &part, &cfg);
        assert_eq!(got.len(), m, "pp={pp} v={v} m={m}: wrong microbatch count");
        for (mb, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.as_slice(),
                w.as_slice(),
                "pp={pp} v={v} m={m}: microbatch {mb} diverges from the unpipelined reference"
            );
        }
    }
}

#[test]
fn measured_bubble_tracks_analytic_within_ten_percent() {
    for &(pp, v, m) in &[(4usize, 1usize, 8usize), (4, 2, 8)] {
        let cfg = staged_cfg(pp, v);
        let part = StagePartition::new(&cfg, pp, v, m).unwrap();
        let (_, totals) = run_pipelined(slow_compute_cluster(pp), &part, &cfg);
        // Span sanity through the p2p boundaries: every rank did real
        // work and never booked more work than wall-clock.
        for (rank, &(now, work)) in totals.iter().enumerate() {
            assert!(work > 0.0, "rank {rank} recorded no work");
            assert!(now >= work, "rank {rank}: work {work} exceeds clock {now}");
        }
        let measured = bubble_fraction(&totals);
        let analytic = part.spec.analytic_bubble();
        assert!(
            (measured - analytic).abs() <= 0.10 * analytic,
            "pp={pp} v={v} m={m}: measured bubble {measured:.4} vs analytic {analytic:.4}"
        );
    }
}

#[test]
fn planner_frontier_is_rich_and_pareto_monotone() {
    let cfg = MoeModelConfig::custom("plan-demo", 2048, 1024, 704, 32, 4, 8);
    let plans = plan_mappings(&PerfModel::frontier_clean(16), &cfg, 1, 8);
    assert!(plans.len() >= 8, "only {} legal foldings", plans.len());
    assert!(plans.iter().any(|p| p.mapping.pp > 1), "no pipelined plan");
    assert!(
        plans.iter().any(|p| p.mapping.virtual_chunks > 1),
        "no interleaved plan"
    );
    for w in plans.windows(2) {
        assert!(
            w[0].step_time <= w[1].step_time,
            "plans not sorted by step time"
        );
    }
    let mut prev_mem = u64::MAX;
    let mut on_frontier = 0usize;
    for p in plans.iter().filter(|p| p.pareto) {
        assert!(
            p.fits,
            "{}: non-fitting plan marked Pareto",
            p.mapping.label()
        );
        assert!(
            p.mem.total() <= prev_mem,
            "{}: memory rises along the Pareto frontier",
            p.mapping.label()
        );
        prev_mem = p.mem.total();
        on_frontier += 1;
    }
    assert!(on_frontier >= 1, "empty Pareto frontier");
}

/// Skewed histogram over a permuted popularity order (mirrors the
/// in-crate generator): hot experts scatter under round-robin, giving the
/// optimizer structure to exploit.
fn skewed_hist(e: usize, n: usize, k: usize, seed: u64, tokens: usize) -> RoutingHistogram {
    let mut rng = DetRng::new(seed);
    let mut perm: Vec<usize> = (0..e).collect();
    rng.shuffle(&mut perm);
    let weights: Vec<f64> = (0..e)
        .map(|i| (-(i as f64) / e as f64 * 6.0).exp())
        .collect();
    let mut hist = RoutingHistogram::new(e, n, tokens);
    for _ in 0..tokens {
        let src = rng.next_below(n);
        let hot = rng.sample_weighted(&weights);
        let experts: Vec<usize> = (0..k).map(|j| perm[(hot + j) % e]).collect();
        hist.observe(src, &experts);
    }
    hist
}

#[test]
fn ragged_placement_stays_never_worse_than_naive() {
    // experts % ranks != 0 and experts < ranks — the shapes that used to
    // panic in `optimize_placement`'s even-division capacity arithmetic.
    for &(e, n, k) in &[(10usize, 8usize, 3usize), (12, 16, 2), (65, 32, 6)] {
        let cost = CostModel::new(ClusterTopology::new(MachineSpec::frontier(), n))
            .with_congestion(CongestionModel::none());
        let hist = skewed_hist(e, n, k.min(e), 0xF01D, 1000);
        let opt = optimize_placement(&hist, &cost, 2048);
        assert_eq!(opt.n_experts(), e, "E={e} N={n}: experts lost in placement");
        let budget = e.div_ceil(n);
        for r in 0..n {
            assert!(
                opt.experts_on(r).len() <= budget,
                "E={e} N={n}: rank {r} over the {budget}-slot budget"
            );
        }
        let naive = ExpertPlacement::naive(e, n);
        let c_opt = placement_cost(&opt, &hist, &cost, 2048);
        let c_naive = placement_cost(&naive, &hist, &cost, 2048);
        assert!(
            c_opt.off_node_bytes <= c_naive.off_node_bytes
                && c_opt.dispatch_time <= c_naive.dispatch_time,
            "E={e} N={n}: optimized placement worse than naive"
        );
    }
}
