//! Tier-1 trajectory tests for the workspace-arena hot path: every pooled
//! variant must be **bitwise** identical to the owned-allocation path it
//! replaces — not merely close. Each test runs a multi-step trajectory in
//! which the next input is derived from the previous output, so a single
//! ULP of drift compounds across steps and fails the comparison.
//!
//! Coverage per pipeline:
//! * dense — pooled gating (`Router::gate_into` with reused scratch) vs
//!   owned gating feeding the padded dispatch slab (dense has no pooled
//!   forward of its own; gating is its pooled surface);
//! * pft (single-rank) — `forward_single_pooled` vs `forward_single`;
//! * blocksparse — `forward_single_block_sparse_pooled` vs owned;
//! * rbd (distributed) — `forward_ep_rbd_pooled` vs `forward_ep_rbd` on the
//!   threads-as-ranks runtime;
//! * pft (training) — full pooled train steps (forward + backward + SGD
//!   update) vs the owned baseline: the *loss trajectory* and the evolved
//!   weights must match bit for bit.

use xmoe::collectives::SimCluster;
use xmoe::core::expert::ExpertShard;
use xmoe::core::gating::{DropPolicy, GateScratch, GatingOutput, Router, RouterGuard};
use xmoe::core::pipeline::{self, DenseDropOrder, MoeLayerSpec, PooledSingleState};
use xmoe::core::rbd::{self, RbdComms};
use xmoe::tensor::{DetRng, Tensor};
use xmoe::train::{MoeTrainScratch, TrainableMoe};

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Next-step input: a deterministic mix of the previous output into the
/// previous input, so trajectories compound any divergence.
fn chain(out: &Tensor, x: &Tensor) -> Tensor {
    let mut nx = x.clone();
    for (a, b) in nx.as_mut_slice().iter_mut().zip(out.as_slice()) {
        *a = 0.5 * *a + 0.25 * *b;
    }
    nx
}

#[test]
fn pft_single_forward_trajectory_is_bitwise_identical() {
    let (s, h, f, e, k) = (20, 12, 10, 6, 2);
    let router = Router::new(h, e, k, 0x7A10);
    let experts = ExpertShard::full(e, h, f, 0x7A11);
    // Tight capacity so the drop path is exercised on every step.
    let spec = MoeLayerSpec::new(e, 5);
    let mut state = PooledSingleState::default();
    let mut x = Tensor::rand_uniform(s, h, 1.0, 0x7A12);
    for step in 0..5 {
        let owned = pipeline::padding_free::forward_single(&x, &router, &experts, &spec);
        let pooled =
            pipeline::padding_free::forward_single_pooled(&x, &router, &experts, &spec, &mut state);
        assert_eq!(bits(&owned), bits(&pooled), "pft diverges at step {step}");
        x = chain(&pooled, &x);
        state.ws.recycle(pooled);
    }
}

#[test]
fn blocksparse_forward_trajectory_is_bitwise_identical() {
    let (s, h, f, e, k, block) = (20, 12, 10, 6, 2, 3);
    let router = Router::new(h, e, k, 0x7B10);
    let experts = ExpertShard::full(e, h, f, 0x7B11);
    let spec = MoeLayerSpec::new(e, 1000);
    let mut state = PooledSingleState::default();
    let mut x = Tensor::rand_uniform(s, h, 1.0, 0x7B12);
    for step in 0..5 {
        let owned = pipeline::block_sparse::forward_single_block_sparse(
            &x, &router, &experts, &spec, block,
        );
        let pooled = pipeline::block_sparse::forward_single_block_sparse_pooled(
            &x, &router, &experts, &spec, block, &mut state,
        );
        assert_eq!(
            bits(&owned),
            bits(&pooled),
            "blocksparse diverges at step {step}"
        );
        x = chain(&pooled, &x);
        state.ws.recycle(pooled);
    }
}

#[test]
fn dense_dispatch_trajectory_with_pooled_gating_is_bitwise_identical() {
    let (s, h, f, e, k) = (20, 12, 10, 6, 2);
    let router = Router::new(h, e, k, 0x7C10);
    let experts = ExpertShard::full(e, h, f, 0x7C11);
    let spec = MoeLayerSpec::new(e, 5);
    let mut scratch = GateScratch::default();
    let mut gating = GatingOutput::default();
    let mut x = Tensor::rand_uniform(s, h, 1.0, 0x7C12);
    for step in 0..5 {
        let owned_gate = router.gate(&x);
        router.gate_into(&x, &mut scratch, &mut gating);
        assert_eq!(owned_gate.top_experts, gating.top_experts, "step {step}");
        assert_eq!(
            owned_gate
                .combine_weights
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            gating
                .combine_weights
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "step {step}"
        );
        assert_eq!(
            bits(&owned_gate.scores),
            bits(&gating.scores),
            "step {step}"
        );
        let d_owned = pipeline::dense::build_dense_dispatch(
            &x,
            &owned_gate,
            &spec,
            DenseDropOrder::TokenOrder,
        );
        let d_pooled =
            pipeline::dense::build_dense_dispatch(&x, &gating, &spec, DenseDropOrder::TokenOrder);
        assert_eq!(
            bits(&d_owned.buffers),
            bits(&d_pooled.buffers),
            "dense slab diverges at step {step}"
        );
        assert_eq!(d_owned.entries, d_pooled.entries, "step {step}");
        let out = pipeline::dense::forward_single_dense(
            &x,
            &router,
            &experts,
            &spec,
            DenseDropOrder::TokenOrder,
        );
        x = chain(&out, &x);
    }
}

#[test]
fn rbd_forward_trajectory_is_bitwise_identical() {
    let world = 4usize;
    let (s, h, f, e, k) = (12, 12, 8, 8, 2);
    let router = Router::new(h, e, k, 0x7D10);
    let spec = MoeLayerSpec::new(e, 1000);
    let router = &router;
    let spec = &spec;
    SimCluster::frontier(world).run(move |ctx| {
        let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 0x7D11);
        let comms = RbdComms::create(&ctx.world, &mut ctx.clock).expect("comms");
        let mut state = PooledSingleState::default();
        let mut x = Tensor::rand_uniform(s, h, 1.0, 0x7D12 + ctx.rank as u64);
        for step in 0..4 {
            // Identical pilot RNG per call so both paths pick the same pilots.
            let seed = 0x7D20 + (step * world + ctx.rank) as u64;
            let mut rng_a = DetRng::new(seed);
            let mut rng_b = DetRng::new(seed);
            let owned =
                rbd::forward_ep_rbd(&x, router, &shard, spec, &comms, &mut rng_a, &mut ctx.clock)
                    .expect("owned step");
            let pooled = rbd::forward_ep_rbd_pooled(
                &x,
                router,
                &shard,
                spec,
                &comms,
                &mut rng_b,
                &mut ctx.clock,
                &mut state,
            )
            .expect("pooled step");
            assert_eq!(
                bits(&owned),
                bits(&pooled),
                "rbd rank {} diverges at step {step}",
                ctx.rank
            );
            x = chain(&pooled, &x);
            state.ws.recycle(pooled);
        }
    });
}

/// Plain SGD on every parameter group: both runs apply the identical update
/// expression, so bitwise-equal gradients keep the weights bitwise equal.
fn sgd(layer: &mut TrainableMoe, lr: f32) {
    for (w, g) in layer
        .gate
        .as_mut_slice()
        .iter_mut()
        .zip(layer.g_gate.as_slice())
    {
        *w -= lr * g;
    }
    for ((w1, w2), (g1, g2)) in layer.experts.iter_mut().zip(layer.g_experts.iter()) {
        for (w, g) in w1.as_mut_slice().iter_mut().zip(g1.as_slice()) {
            *w -= lr * g;
        }
        for (w, g) in w2.as_mut_slice().iter_mut().zip(g2.as_slice()) {
            *w -= lr * g;
        }
    }
}

#[test]
fn pft_training_loss_trajectory_is_bitwise_identical() {
    let (s, h, f, e, k) = (18, 12, 10, 6, 2);
    // Aux loss + full router guard on, so every gradient term of the pooled
    // backward is compared, including the z-loss and clamp paths.
    let guard = RouterGuard {
        logit_clamp: 1.0,
        z_loss_coef: 0.1,
    };
    let mut owned = TrainableMoe::new(h, f, e, k, 7, DropPolicy::CapacityOnly, 0x7E10)
        .with_aux(0.02)
        .with_router_guard(guard);
    let mut pooled = TrainableMoe::new(h, f, e, k, 7, DropPolicy::CapacityOnly, 0x7E10)
        .with_aux(0.02)
        .with_router_guard(guard);
    let mut st = MoeTrainScratch::default();
    let probe = Tensor::rand_uniform(s, h, 1.0, 0x7E11);
    let lr = 0.05f32;
    let (mut owned_losses, mut pooled_losses) = (Vec::new(), Vec::new());
    for step in 0..6u64 {
        let x = Tensor::rand_uniform(s, h, 1.0, 0x7E20 + step);

        owned.zero_grads();
        let (out, ctx) = owned.forward(&x);
        let loss: f64 = out
            .as_slice()
            .iter()
            .zip(probe.as_slice())
            .map(|(&o, &p)| (o * p) as f64)
            .sum();
        let _ = owned.backward_scaled(&ctx, &probe, 2.0);
        sgd(&mut owned, lr);
        owned_losses.push(loss.to_bits());

        pooled.zero_grads();
        let pout = pooled.forward_pooled(&x, &mut st);
        let ploss: f64 = pout
            .as_slice()
            .iter()
            .zip(probe.as_slice())
            .map(|(&o, &p)| (o * p) as f64)
            .sum();
        let d = pooled.backward_scaled_pooled(&mut st, &probe, 2.0);
        st.ws.recycle(d);
        st.ws.recycle(pout);
        sgd(&mut pooled, lr);
        pooled_losses.push(ploss.to_bits());
    }
    assert_eq!(owned_losses, pooled_losses, "loss trajectories diverge");
    assert_eq!(
        bits(&owned.gate),
        bits(&pooled.gate),
        "gate weights diverge"
    );
    for (i, ((o1, o2), (p1, p2))) in owned.experts.iter().zip(pooled.experts.iter()).enumerate() {
        assert_eq!(bits(o1), bits(p1), "expert {i} w1 diverges");
        assert_eq!(bits(o2), bits(p2), "expert {i} w2 diverges");
    }
}
