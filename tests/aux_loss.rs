//! Load-balancing auxiliary loss: gradient correctness by finite
//! differences, and the functional claim — training with the aux loss
//! balances expert load.

use xmoe::core::gating::DropPolicy;
use xmoe::tensor::Tensor;
use xmoe::train::TrainableMoe;

/// Scalar probe of (output projection + aux loss).
fn probe_loss(layer: &TrainableMoe, x: &Tensor, probe: &Tensor) -> f64 {
    let (out, ctx) = layer.forward(x);
    let main: f64 = out
        .as_slice()
        .iter()
        .zip(probe.as_slice())
        .map(|(&o, &p)| (o * p) as f64)
        .sum();
    main + layer.aux_loss(&ctx)
}

#[test]
fn aux_gradient_matches_finite_difference_with_full_k() {
    // k = E removes the selection discontinuity; f_e is then constant and
    // the aux path through P_e is exactly differentiable.
    let (h, f, e) = (6usize, 5usize, 4usize);
    let mut base =
        TrainableMoe::new(h, f, e, e, 100_000, DropPolicy::CapacityOnly, 31).with_aux(0.7);
    base.top_k = e;
    let x = Tensor::rand_uniform(5, h, 1.0, 32);
    let probe = Tensor::rand_uniform(5, h, 1.0, 33);

    let mut layer = base.clone();
    let (_, ctx) = layer.forward(&x);
    let _ = layer.backward(&ctx, &probe);

    let eps = 1e-2f32;
    for &(r, c) in &[(0usize, 0usize), (3, 2), (5, 3)] {
        let w0 = base.gate.get(r, c);
        let fd = {
            let mut up = base.clone();
            up.gate.set(r, c, w0 + eps);
            let mut dn = base.clone();
            dn.gate.set(r, c, w0 - eps);
            (probe_loss(&up, &x, &probe) - probe_loss(&dn, &x, &probe)) / (2.0 * eps as f64)
        };
        let an = layer.g_gate.get(r, c) as f64;
        assert!(
            (fd - an).abs() < 3e-2 * (1.0 + an.abs().max(fd.abs())),
            "dGate[{r},{c}] with aux: fd {fd} an {an}"
        );
    }
}

#[test]
fn aux_loss_value_is_one_at_perfect_balance_limit() {
    // With k = E every expert receives every token, so f_e = 1/E and
    // sum_e P_e = 1: L_aux = alpha * E * (1/E) * sum_e P_e / ... = alpha.
    let (h, f, e) = (6usize, 4usize, 4usize);
    let layer = TrainableMoe::new(h, f, e, e, 100_000, DropPolicy::CapacityOnly, 41).with_aux(1.0);
    let x = Tensor::rand_uniform(8, h, 1.0, 42);
    let (_, ctx) = layer.forward(&x);
    let l = layer.aux_loss(&ctx);
    assert!(
        (l - 1.0).abs() < 1e-5,
        "aux at full k must equal alpha: {l}"
    );
}

#[test]
fn training_with_aux_balances_expert_load() {
    // A skewed input distribution makes the untrained router concentrate
    // load; SGD on the aux loss alone must spread it out.
    let (h, f, e, k) = (8usize, 6usize, 8usize, 2usize);
    let s = 256usize;
    // Inputs clustered in one half-space -> initial routing is skewed.
    let mut x = Tensor::rand_uniform(s, h, 0.3, 52);
    for r in 0..s {
        let v = x.get(r, 0);
        x.set(r, 0, v + 1.0);
    }

    let imbalance_of = |layer: &TrainableMoe| -> f64 {
        let (_, ctx) = layer.forward(&x);
        let loads = ctx_loads(&ctx);
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<usize>() as f64 / e as f64;
        max / mean
    };
    fn ctx_loads(ctx: &xmoe::train::moe_layer::MoeCtx) -> Vec<usize> {
        ctx.tokens_per_expert().to_vec()
    }

    let mut layer =
        TrainableMoe::new(h, f, e, k, 100_000, DropPolicy::CapacityOnly, 51).with_aux(1.0);
    let before = imbalance_of(&layer);
    // Pure aux-loss descent on the gate.
    for _ in 0..200 {
        let (_, ctx) = layer.forward(&x);
        layer.zero_grads();
        // Backward with zero task gradient: only the aux path contributes.
        let d_out = Tensor::zeros(s, h);
        let _ = layer.backward(&ctx, &d_out);
        let lr = 0.5f32;
        let (gate, g) = (&mut layer.gate, &layer.g_gate);
        for (w, gv) in gate.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *w -= lr * gv;
        }
    }
    let after = imbalance_of(&layer);
    assert!(
        after < before - 0.2 || after < 1.3,
        "aux loss must reduce load imbalance: {before:.2} -> {after:.2}"
    );
}
