//! Cross-thread-count determinism of the persistent worker pool: the four
//! pipelines and a pooled training trajectory must produce **bitwise
//! identical** results at `XMOE_THREADS` ∈ {1, 2, 8}.
//!
//! `worker_threads()` (and therefore the pool size) is pinned per process via
//! a `OnceLock`, so each thread count needs its own process: the parent test
//! re-executes this test binary with `XMOE_POOL_CHILD=1` and a pinned
//! `XMOE_THREADS`, the child prints `FP <name> <hex>` checksum lines for
//! every workload, and the parent asserts the full line sets are equal. At
//! `XMOE_THREADS=1` no worker is ever spawned and every kernel runs the
//! serial schedule — so equality here *is* the "bitwise identical to serial
//! at any worker count" guarantee of `xmoe_tensor::par`.

use std::process::Command;

use xmoe::collectives::SimCluster;
use xmoe::core::expert::ExpertShard;
use xmoe::core::gating::{DropPolicy, Router, RouterGuard};
use xmoe::core::pipeline::{
    BlockSparsePipeline, DenseDropOrder, DensePipeline, ExecCtx, MoeLayerSpec, PaddingFreePipeline,
    Pipeline, PooledSingleState, RbdPipeline,
};
use xmoe::core::rbd::{PilotPolicy, RbdComms};
use xmoe::tensor::{DetRng, Tensor};
use xmoe::train::{MoeTrainScratch, TrainableMoe};

/// Order-sensitive bit-exact checksum of a float buffer (the `BENCH`-style
/// fingerprint): any single-bit or ordering change flips it.
fn checksum(acc: u64, xs: &[f32]) -> u64 {
    xs.iter().fold(acc, |h, v| {
        (h.rotate_left(5) ^ u64::from(v.to_bits())).wrapping_mul(0x100_0000_01b3)
    })
}

/// Shapes chosen so the grouped hot path crosses the parallel cutoff at
/// every stage: seq*k = 128 dispatch rows, 128·64·32 ≥ 64³ per batch.
const SEQ: usize = 64;
const HID: usize = 32;
const FFN: usize = 64;
const EXP: usize = 8;
const TOPK: usize = 2;

/// All four pipelines (dense, padding-free, block-sparse, RBD) at world 4,
/// fingerprinting every rank's output.
fn pipeline_fingerprints(out: &mut Vec<(String, u64)>) {
    let seed = 4242u64;
    let router = Router::new(HID, EXP, TOPK, seed);
    let spec = MoeLayerSpec::new(EXP, 10_000);
    let world = 4usize;
    let results = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(world).run(move |ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, EXP, HID, FFN, seed + 1);
            let tokens = Tensor::rand_uniform(SEQ, HID, 1.0, 6100 + ctx.rank as u64);
            let dense = DensePipeline {
                order: DenseDropOrder::WeightRanked,
            }
            .forward(
                &tokens,
                router,
                &shard,
                spec,
                &mut ExecCtx::ep(&ctx.world, &mut ctx.clock),
            )
            .unwrap();
            let pft = PaddingFreePipeline
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock),
                )
                .unwrap();
            let mut state = PooledSingleState::default();
            let pft_pooled = PaddingFreePipeline
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock).with_state(&mut state),
                )
                .unwrap();
            let bs = BlockSparsePipeline { block: 4 }
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock),
                )
                .unwrap();
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(seed + 77 + ctx.rank as u64);
            let rbd = RbdPipeline {
                policy: PilotPolicy::Random,
            }
            .forward(
                &tokens,
                router,
                &shard,
                spec,
                &mut ExecCtx::hier(&comms, &mut ctx.clock).with_rng(&mut rng),
            )
            .unwrap();
            (dense, pft, pft_pooled, bs, rbd, ctx.clock.now())
        })
    };
    let mut fps = [0u64; 5];
    let mut time = 0u64;
    for (dense, pft, pft_pooled, bs, rbd, now) in &results {
        fps[0] = checksum(fps[0], dense.as_slice());
        fps[1] = checksum(fps[1], pft.as_slice());
        fps[2] = checksum(fps[2], pft_pooled.as_slice());
        fps[3] = checksum(fps[3], bs.as_slice());
        fps[4] = checksum(fps[4], rbd.as_slice());
        time = (time.rotate_left(5) ^ now.to_bits()).wrapping_mul(0x100_0000_01b3);
    }
    for (name, fp) in ["dense", "pft", "pft_pooled", "block_sparse", "rbd"]
        .iter()
        .zip(fps)
    {
        out.push((format!("pipeline_{name}"), fp));
    }
    // Simulated time is analytic and must not move with the pool size.
    out.push(("sim_time".into(), time));
}

/// Four pooled training steps with SGD updates, aux loss, both router
/// guards and a loss scale: fingerprints losses, gradients and weights.
fn training_fingerprints(out: &mut Vec<(String, u64)>) {
    let mut layer = TrainableMoe::new(HID, FFN, EXP, TOPK, 10_000, DropPolicy::CapacityOnly, 7331)
        .with_aux(0.05)
        .with_router_guard(RouterGuard {
            logit_clamp: 5.0,
            z_loss_coef: 0.01,
        });
    let mut st = MoeTrainScratch::default();
    let mut loss_fp = 0u64;
    for step in 0..4u64 {
        let x = Tensor::rand_uniform(SEQ, HID, 1.0, 8800 + step);
        let probe = Tensor::rand_uniform(SEQ, HID, 1.0, 8850 + step);
        layer.zero_grads();
        let y = layer.forward_pooled(&x, &mut st);
        let loss: f64 = y
            .as_slice()
            .iter()
            .zip(probe.as_slice())
            .map(|(&o, &p)| (o * p) as f64)
            .sum();
        loss_fp = checksum(loss_fp, &[loss as f32]);
        let d = layer.backward_scaled_pooled(&mut st, &probe, 2.0);
        st.ws.recycle(y);
        st.ws.recycle(d);
        let lr = 1e-3f32;
        for (w, g) in layer
            .gate
            .as_mut_slice()
            .iter_mut()
            .zip(st_grad(&layer.g_gate))
        {
            *w -= lr * g;
        }
        for e in 0..EXP {
            let (g1, g2): (Vec<f32>, Vec<f32>) = (
                layer.g_experts[e].0.as_slice().to_vec(),
                layer.g_experts[e].1.as_slice().to_vec(),
            );
            for (w, g) in layer.experts[e].0.as_mut_slice().iter_mut().zip(g1) {
                *w -= lr * g;
            }
            for (w, g) in layer.experts[e].1.as_mut_slice().iter_mut().zip(g2) {
                *w -= lr * g;
            }
        }
    }
    out.push(("train_losses".into(), loss_fp));
    let mut g_fp = checksum(0, layer.g_gate.as_slice());
    let mut w_fp = checksum(0, layer.gate.as_slice());
    for (w1, w2) in &layer.experts {
        w_fp = checksum(w_fp, w1.as_slice());
        w_fp = checksum(w_fp, w2.as_slice());
    }
    for (g1, g2) in &layer.g_experts {
        g_fp = checksum(g_fp, g1.as_slice());
        g_fp = checksum(g_fp, g2.as_slice());
    }
    out.push(("train_grads".into(), g_fp));
    out.push(("train_weights".into(), w_fp));
}

fn st_grad(g: &Tensor) -> Vec<f32> {
    g.as_slice().to_vec()
}

/// Child mode: compute and print every fingerprint. A no-op under a normal
/// `cargo test` run (the parent drives it via `XMOE_POOL_CHILD=1`).
#[test]
fn child_fingerprint() {
    if std::env::var("XMOE_POOL_CHILD").is_err() {
        return;
    }
    let mut fps = Vec::new();
    pipeline_fingerprints(&mut fps);
    training_fingerprints(&mut fps);
    for (name, fp) in fps {
        println!("FP {name} {fp:016x}");
    }
}

#[test]
fn pipelines_and_training_bitwise_identical_across_thread_counts() {
    if std::env::var("XMOE_POOL_CHILD").is_ok() {
        return; // re-exec guard
    }
    let exe = std::env::current_exe().expect("test binary path");
    let run = |threads: &str| -> Vec<String> {
        let out = Command::new(&exe)
            .args(["child_fingerprint", "--exact", "--nocapture"])
            .env("XMOE_POOL_CHILD", "1")
            .env("XMOE_THREADS", threads)
            .output()
            .expect("spawning child fingerprint process");
        assert!(
            out.status.success(),
            "child at XMOE_THREADS={threads} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // libtest prints its `test ... ` prefix without a newline, so the
        // first fingerprint can share a line with it — split on the marker.
        let lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter_map(|l| l.find("FP ").map(|i| l[i..].to_owned()))
            .collect();
        assert!(
            lines.len() >= 9,
            "child at XMOE_THREADS={threads} printed {} fingerprints",
            lines.len()
        );
        lines
    };
    let serial = run("1");
    for threads in ["2", "8"] {
        let got = run(threads);
        assert_eq!(
            serial, got,
            "XMOE_THREADS={threads} diverges bitwise from the serial schedule"
        );
    }
}
