//! Tier-1 chaos-engine invariants.
//!
//! 1. **Elastic recovery is bitwise deterministic**: kill half the ranks
//!    exactly on a checkpoint boundary; the survivors re-form the group,
//!    reload the checkpoint, and their subsequent per-step losses are
//!    bitwise identical (`f64::to_bits`) to a fresh run of the surviving
//!    configuration restored from the same bytes.
//! 2. **Same-world restore is a no-op**: capture mid-run, restore into a
//!    fresh model at the same world size, and the continued trajectory is
//!    bitwise identical to the uninterrupted run (pins Adam moment order,
//!    including the gathered expert moments).
//! 3. **Ragged re-shard works**: one of four ranks dies and eight
//!    experts re-shard over three survivors (3+3+2) bitwise identically
//!    to a fresh three-rank run — a regression test for the old
//!    divisibility assert in the recovery path.
//! 4. **Sequential failures compose**: two kills at different steps,
//!    the second recovered from a checkpoint the already-shrunk world
//!    captured, still bitwise identical to a fresh run.
//! 5. **Transient link flaps surface as `fault_retry:*` spans** and the
//!    PR-1 span-exactness invariant (spans sum to `clock.now()`) holds
//!    under retries.

use xmoe::collectives::{FaultPlan, LinkTier, RankTrace, SimCluster};
use xmoe::core::gating::DropPolicy;
use xmoe::tensor::DetRng;
use xmoe::train::{
    run_chaos_rank, step_batch, ChaosConfig, ChaosReport, Checkpoint, DistMoeLm, TrainConfig,
};

fn cfg() -> TrainConfig {
    let mut c = TrainConfig::fig15(DropPolicy::CapacityOnly);
    c.vocab = 32;
    c.hidden = 16;
    c.ffn = 8;
    c.num_experts = 8;
    c.top_k = 2;
    c.layers = 2;
    c.seq_len = 10;
    c.batch = 2;
    c.capacity_factor = 1e6;
    c.seed = 77;
    c
}

fn chaos_run(world: usize, plan: Option<FaultPlan>, chaos: ChaosConfig) -> Vec<ChaosReport> {
    let cfg = cfg();
    let cluster = match plan {
        Some(p) => SimCluster::frontier(world).with_faults(p),
        None => SimCluster::frontier(world),
    };
    let cfg = &cfg;
    cluster.run(move |ctx| run_chaos_rank(cfg, &chaos, ctx).unwrap())
}

/// Continue training from a checkpoint on a fresh cluster of `world` ranks.
fn resume_reference(world: usize, bytes: &[u8], until: u64) -> Vec<Vec<(u64, f64)>> {
    let cfg = cfg();
    let cfg = &cfg;
    SimCluster::frontier(world).run(move |ctx| {
        let ckpt = Checkpoint::decode(bytes).unwrap();
        let mut model = DistMoeLm::from_checkpoint(cfg, &ckpt, ctx.rank, world);
        let mut rng = DetRng::from_state(ckpt.rng_state);
        let comm = ctx.world.clone();
        let mut losses = Vec::new();
        for step in ckpt.step..until {
            ctx.set_step(step);
            comm.set_step(step);
            let step_seed = rng.next_u64();
            let batch = step_batch(cfg, step_seed, comm.rank());
            let loss = model.train_step(&batch, &comm, &mut ctx.clock).unwrap();
            losses.push((step, loss));
        }
        losses
    })
}

#[test]
fn elastic_recovery_on_checkpoint_boundary_is_bitwise_deterministic() {
    let world = 4;
    let steps = 6u64;
    let chaos = ChaosConfig::new(steps, 2);
    // Ranks 2 and 3 die at step 4 — exactly the step the last checkpoint
    // (captured at the end of step 3) covers, so nothing is replayed.
    let plan = FaultPlan::new(1).kill(2, 4).kill(3, 4);
    let reports = chaos_run(world, Some(plan), chaos);

    for r in &reports[2..] {
        assert_eq!(
            r.exited_at,
            Some(4),
            "rank {} should die at 4",
            r.global_rank
        );
        assert!(r.recoveries.is_empty());
    }
    for r in &reports[..2] {
        assert_eq!(r.exited_at, None);
        assert_eq!(r.final_world, 2);
        assert_eq!(r.losses.len(), steps as usize, "one loss per step");
        assert_eq!(r.recoveries.len(), 1);
        let rec = &r.recoveries[0];
        assert_eq!(rec.failed_ranks, vec![2, 3]);
        assert_eq!(rec.failed_at_step, 4);
        assert_eq!(rec.resumed_from_step, 4);
        assert_eq!(rec.steps_replayed, 0, "boundary failure replays nothing");
        assert!(rec.detect_time > 0.0 && rec.restore_time > 0.0);
        assert!(rec.mttr >= rec.detect_time + rec.restore_time - 1e-12);
    }
    // Survivors agree on the loss curve (losses are world-averaged).
    let bits = |l: &[(u64, f64)]| -> Vec<(u64, u64)> {
        l.iter().map(|&(s, v)| (s, v.to_bits())).collect()
    };
    assert_eq!(bits(&reports[0].losses), bits(&reports[1].losses));

    // A fault-free run of the same world, stopped at the failure step,
    // reproduces the checkpoint the survivors recovered from.
    let pre = chaos_run(world, None, ChaosConfig::new(4, 2));
    let ckpt_bytes = pre[0].last_ckpt.clone().expect("checkpoint captured");
    assert_eq!(Checkpoint::decode(&ckpt_bytes).unwrap().step, 4);
    // Pre-failure prefix matches the fault-free run bitwise.
    assert_eq!(
        bits(&reports[0].losses[..4]),
        bits(&pre[0].losses),
        "pre-failure trajectory must be unaffected by the scheduled fault"
    );

    // The gold standard: a *fresh two-rank cluster* restoring the same
    // bytes produces bitwise-identical losses to the survivors.
    let reference = resume_reference(2, &ckpt_bytes, steps);
    for (rank, r) in reference.iter().enumerate() {
        assert_eq!(
            bits(r),
            bits(&reports[rank].losses[4..]),
            "rank {rank}: post-recovery losses must match a fresh surviving-world run"
        );
    }
}

#[test]
fn same_world_restore_continues_bitwise_identically() {
    let world = 4;
    // Uninterrupted 6-step run, checkpointing after step 4.
    let full = chaos_run(world, None, ChaosConfig::new(6, 4));
    let short = chaos_run(world, None, ChaosConfig::new(4, 4));
    let bytes = short[0].last_ckpt.clone().unwrap();
    let resumed = resume_reference(world, &bytes, 6);
    for rank in 0..world {
        let tail: Vec<(u64, u64)> = full[rank].losses[4..]
            .iter()
            .map(|&(s, v)| (s, v.to_bits()))
            .collect();
        let res: Vec<(u64, u64)> = resumed[rank]
            .iter()
            .map(|&(s, v)| (s, v.to_bits()))
            .collect();
        assert_eq!(tail, res, "rank {rank}: restore must not perturb training");
    }
}

#[test]
fn ragged_restore_after_single_kill_is_bitwise_deterministic() {
    // One of four ranks dies, so eight experts must re-shard over three
    // survivors — a ragged 3+3+2 split. Before the elastic-restore fix
    // the recovery path asserted `experts % survivors == 0` and panicked
    // right here; this pins both that it works and that it is exact.
    let world = 4;
    let steps = 8u64;
    let chaos = ChaosConfig::new(steps, 2);
    let plan = FaultPlan::new(5).kill(3, 4);
    let reports = chaos_run(world, Some(plan), chaos);

    assert_eq!(reports[3].exited_at, Some(4));
    let bits = |l: &[(u64, f64)]| -> Vec<(u64, u64)> {
        l.iter().map(|&(s, v)| (s, v.to_bits())).collect()
    };
    for r in &reports[..3] {
        assert_eq!(r.exited_at, None);
        assert_eq!(r.final_world, 3, "eight experts over three survivors");
        assert_eq!(r.losses.len(), steps as usize);
        assert_eq!(r.recoveries.len(), 1);
        assert_eq!(r.recoveries[0].failed_ranks, vec![3]);
        assert_eq!(bits(&r.losses), bits(&reports[0].losses));
    }

    // Gold standard: a fresh three-rank cluster restoring the same bytes
    // (and therefore performing the same ragged split) continues bitwise
    // identically.
    let pre = chaos_run(world, None, ChaosConfig::new(4, 2));
    let ckpt_bytes = pre[0].last_ckpt.clone().expect("checkpoint captured");
    assert_eq!(Checkpoint::decode(&ckpt_bytes).unwrap().step, 4);
    let reference = resume_reference(3, &ckpt_bytes, steps);
    for (rank, r) in reference.iter().enumerate() {
        assert_eq!(
            bits(r),
            bits(&reports[rank].losses[4..]),
            "rank {rank}: ragged restore must match a fresh three-rank run"
        );
    }
}

#[test]
fn sequential_two_kill_recovery_is_bitwise_deterministic() {
    // Rank 3 dies at step 4; after that recovery completes, rank 2 dies
    // at step 8 — two independent shrink events in one run, the second
    // recovering from a checkpoint captured by the already-shrunk world.
    let world = 4;
    let steps = 10u64;
    let chaos = ChaosConfig::new(steps, 2);
    let plan = FaultPlan::new(1).kill(3, 4).kill(2, 8);
    let reports = chaos_run(world, Some(plan), chaos);

    assert_eq!(reports[3].exited_at, Some(4));
    assert_eq!(reports[2].exited_at, Some(8));
    let bits = |l: &[(u64, f64)]| -> Vec<(u64, u64)> {
        l.iter().map(|&(s, v)| (s, v.to_bits())).collect()
    };
    for r in &reports[..2] {
        assert_eq!(r.exited_at, None);
        assert_eq!(r.final_world, 2);
        assert_eq!(r.losses.len(), steps as usize);
        assert_eq!(r.recoveries.len(), 2, "both shrink events recorded");
        assert_eq!(r.recoveries[0].failed_ranks, vec![3]);
        assert_eq!(r.recoveries[0].failed_at_step, 4);
        assert_eq!(r.recoveries[1].failed_ranks, vec![2]);
        assert_eq!(r.recoveries[1].failed_at_step, 8);
        assert_eq!(
            r.recoveries[1].resumed_from_step, 8,
            "second failure lands on a boundary of the shrunk world's checkpoints"
        );
    }
    assert_eq!(bits(&reports[0].losses), bits(&reports[1].losses));

    // Gold standard: replay the same plan but stop before the second
    // kill — the three-survivor world's step-8 checkpoint is the image
    // the second recovery restored — then continue it on a fresh
    // two-rank cluster and demand bitwise agreement with the suffix.
    let pre_plan = FaultPlan::new(1).kill(3, 4).kill(2, 8);
    let pre = chaos_run(world, Some(pre_plan), ChaosConfig::new(8, 2));
    let ckpt_bytes = pre[0].last_ckpt.clone().expect("checkpoint captured");
    assert_eq!(Checkpoint::decode(&ckpt_bytes).unwrap().step, 8);
    let reference = resume_reference(2, &ckpt_bytes, steps);
    for (rank, r) in reference.iter().enumerate() {
        assert_eq!(
            bits(r),
            bits(&reports[rank].losses[8..]),
            "rank {rank}: second recovery must match a fresh two-rank run"
        );
    }
}

#[test]
fn link_flaps_produce_retry_spans_and_exact_accounting() {
    let world = 16; // two Frontier nodes => inter-node links exist
    let mut c = cfg();
    c.num_experts = 16;
    let chaos = ChaosConfig::new(2, 0);
    let plan = FaultPlan::new(3).flap(LinkTier::Inter, 2, 0, 10);
    let traces = {
        let c = &c;
        SimCluster::frontier(world)
            .with_faults(plan)
            .run(move |ctx| {
                run_chaos_rank(c, &chaos, ctx).unwrap();
                RankTrace::capture(ctx.rank, &mut ctx.clock, ctx.world.traffic())
            })
    };
    let mut saw_retry = false;
    for tr in &traces {
        let span_sum: f64 = tr.spans.iter().map(|s| s.dur).sum();
        assert!(
            (span_sum - tr.end).abs() < 1e-9,
            "rank {}: spans sum {span_sum} != clock {}",
            tr.rank,
            tr.end
        );
        if tr
            .bucket_totals()
            .iter()
            .any(|(l, v)| l.starts_with("fault_retry:") && *v > 0.0)
        {
            saw_retry = true;
        }
    }
    assert!(
        saw_retry,
        "flapping links must be visible as fault_retry:* spans"
    );
}
