//! Byte-level verification of the paper's traffic claims, using the
//! communicator's ground-truth traffic counters (bytes actually sent over
//! each link class, independent of the time model).

use xmoe::collectives::SimCluster;
use xmoe::core::expert::ExpertShard;
use xmoe::core::gating::{DropPolicy, Router};
use xmoe::core::pft::Pft;
use xmoe::core::pipeline::{self, DenseDropOrder, MoeLayerSpec};
use xmoe::core::rbd::{self, redundancy_rate, RbdComms};
use xmoe::tensor::{DetRng, Tensor};

const WORLD: usize = 16; // 2 simulated Frontier nodes
const S: usize = 256;
const H: usize = 32;
const F: usize = 16;
const E: usize = 16;
const K: usize = 6;

fn router() -> Router {
    Router::new(H, E, K, 1301)
}

fn spec() -> MoeLayerSpec {
    MoeLayerSpec::new(E, usize::MAX / 2)
}

#[test]
fn rbd_off_node_bytes_shrink_by_the_redundancy_factor() {
    let router = router();
    let spec = spec();

    // Ground-truth redundancy of rank 0's batch across the 2 nodes.
    let tokens0 = Tensor::rand_uniform(S, H, 1.0, 1400);
    let gating = router.gate(&tokens0);
    let pft = Pft::construct(&gating, E, usize::MAX / 2, DropPolicy::CapacityOnly);
    let rho = redundancy_rate(&pft, |e| e / (E / 2));

    let plain_off_node: u64 = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(WORLD)
            .run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, WORLD, E, H, F, 1302);
                let tokens = Tensor::rand_uniform(S, H, 1.0, 1400 + ctx.rank as u64);
                let _ = pipeline::padding_free::forward_ep(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &ctx.world,
                    &mut ctx.clock,
                );
                ctx.world.traffic().off_node()
            })
            .iter()
            .sum()
    };
    let rbd_off_node: u64 = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(WORLD)
            .run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, WORLD, E, H, F, 1302);
                let tokens = Tensor::rand_uniform(S, H, 1.0, 1400 + ctx.rank as u64);
                let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                let mut rng = DetRng::new(1500 + ctx.rank as u64);
                let _ = rbd::forward_ep_rbd(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                );
                // All inter-node bytes flow through the EP (world) comm;
                // the node sub-communicator is intra-node by construction.
                let node_off = comms.node.traffic().off_node();
                assert_eq!(node_off, 0, "node comm must never leave the node");
                ctx.world.traffic().off_node()
            })
            .iter()
            .sum()
    };

    // RBD's off-node row bytes shrink to ~(1 - rho) of the plain pipeline's
    // (metadata adds a little on top).
    let ratio = rbd_off_node as f64 / plain_off_node as f64;
    let expected = 1.0 - rho;
    assert!(
        (ratio - expected).abs() < 0.15,
        "off-node byte ratio {ratio:.3} should track 1 - redundancy = {expected:.3}"
    );
    assert!(
        ratio < 0.6,
        "with k=6 over 2 nodes RBD must cut off-node bytes deeply: {ratio:.3}"
    );
}

#[test]
fn padded_baseline_moves_more_bytes_than_padding_free() {
    let router = router();
    // Realistic capacity so padding exists.
    let cap = (1.25 * (S * K) as f64 / E as f64).ceil() as usize;
    let spec = MoeLayerSpec::new(E, cap);
    let run = |dense: bool| -> u64 {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(WORLD)
            .run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, WORLD, E, H, F, 1602);
                let tokens = Tensor::rand_uniform(S, H, 1.0, 1700 + ctx.rank as u64);
                if dense {
                    let _ = pipeline::dense::forward_ep_dense(
                        &tokens,
                        router,
                        &shard,
                        spec,
                        DenseDropOrder::TokenOrder,
                        &ctx.world,
                        &mut ctx.clock,
                    );
                } else {
                    let _ = pipeline::padding_free::forward_ep(
                        &tokens,
                        router,
                        &shard,
                        spec,
                        &ctx.world,
                        &mut ctx.clock,
                    );
                }
                ctx.world.traffic().total()
            })
            .iter()
            .sum()
    };
    let dense_bytes = run(true);
    let pf_bytes = run(false);
    assert!(
        dense_bytes > pf_bytes,
        "padded pipeline must move more bytes: dense {dense_bytes} vs pf {pf_bytes}"
    );
    // The padding overhead is roughly the capacity factor (1.25x) at
    // near-balanced load.
    let ratio = dense_bytes as f64 / pf_bytes as f64;
    assert!(
        (1.05..1.8).contains(&ratio),
        "padded/padding-free byte ratio {ratio:.2} out of expected band"
    );
}

#[test]
fn traffic_counters_reconcile_with_payload_sizes() {
    // A deterministic even all-to-all: every rank sends 100 f32 to every
    // other; check the exact counter values by link class.
    let out = SimCluster::frontier(16).run(|ctx| {
        let send: Vec<Vec<f32>> = (0..16).map(|_| vec![1.0; 100]).collect();
        let _ = ctx.world.all_to_all_v(send, &mut ctx.clock);
        ctx.world.traffic()
    });
    for (rank, t) in out.iter().enumerate() {
        // 7 intra-node peers, 8 inter-node peers, 400 bytes each.
        assert_eq!(t.intra_node, 7 * 400, "rank {rank} intra");
        assert_eq!(t.inter_node, 8 * 400, "rank {rank} inter");
        assert_eq!(t.cross_rack, 0);
        assert_eq!(t.total(), 15 * 400);
        assert_eq!(t.off_node(), 8 * 400);
    }
}
