//! The attention block earns its place: on an order-2 Markov corpus the
//! next token depends on the last *two* tokens, so a per-token model
//! (MLP + MoE only) is information-theoretically stuck above the entropy
//! floor while the transformer (attention + MLP + MoE) can mix positions
//! and descend further.

use xmoe::core::gating::DropPolicy;
use xmoe::train::{HigherOrderCorpus, MoeLm, TrainConfig};

fn train(cfg: TrainConfig, steps: usize, corpus_seed: u64) -> f64 {
    let mut corpus = HigherOrderCorpus::new(cfg.vocab, 2, 2, corpus_seed);
    let mut model = MoeLm::new(cfg.clone());
    let mut tail = Vec::new();
    for step in 0..steps {
        let batch = corpus.batch(cfg.batch, cfg.seq_len);
        let stats = model.train_step(&batch);
        assert!(stats.loss.is_finite(), "loss diverged at step {step}");
        if step >= steps - 10 {
            tail.push(stats.loss);
        }
    }
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[test]
fn attention_beats_per_token_model_on_order2_corpus() {
    let steps = 500;
    let mut base = TrainConfig::fig15(DropPolicy::CapacityOnly);
    base.vocab = 32;
    base.num_experts = 8;
    base.top_k = 2;
    base.lr = 5e-3;

    let mut with_attention = base.clone();
    with_attention.use_attention = true;
    let mut without_attention = base;
    without_attention.use_attention = false;

    let attn_loss = train(with_attention, steps, 777);
    let plain_loss = train(without_attention, steps, 777);
    // Both learn something (initial loss ~ ln 32 = 3.47) but only the
    // attention model can exploit the order-2 structure.
    assert!(
        plain_loss < 3.4,
        "plain model should learn the marginal: {plain_loss}"
    );
    assert!(
        attn_loss < plain_loss - 0.15,
        "attention must beat the per-token model: {attn_loss} vs {plain_loss}"
    );
}

#[test]
fn attention_model_trains_stably_with_drops() {
    // Tight capacity + attention: stays finite and improves.
    let mut cfg = TrainConfig::transformer(DropPolicy::CapacityOnly);
    cfg.vocab = 32;
    cfg.num_experts = 8;
    cfg.top_k = 2;
    cfg.capacity_factor = 0.8; // forces drops
    let mut corpus = HigherOrderCorpus::new(cfg.vocab, 2, 2, 888);
    let mut model = MoeLm::new(cfg.clone());
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..120 {
        let batch = corpus.batch(cfg.batch, cfg.seq_len);
        let stats = model.train_step(&batch);
        if step == 0 {
            first = stats.loss;
        }
        last = stats.loss;
        assert!(stats.loss.is_finite());
        assert!(stats.drop_fraction > 0.0, "capacity 0.8 must drop tokens");
    }
    assert!(last < first - 0.3, "loss should improve: {first} -> {last}");
}
