//! Property-based tests over the core data structures and models:
//! PFT construction invariants, routing-kernel roundtrips, redundancy
//! bounds, cost-model monotonicity and memory-model monotonicity.

use proptest::prelude::*;
use xmoe::core::config::MoeModelConfig;
use xmoe::core::gating::{DropPolicy, GatingOutput, Router};
use xmoe::core::memory::{moe_layer_activation, MoeSystem};
use xmoe::core::pft::Pft;
use xmoe::core::rbd::{expected_redundancy_uniform, redundancy_rate};
use xmoe::tensor::{gather_rows, scatter_rows_scaled, sequential_gemm, Tensor};
use xmoe::topology::{ClusterTopology, CongestionModel, CostModel, MachineSpec};

/// Random gating output over `s` tokens, `e` experts, `k` selections.
fn arb_gating(s: usize, e: usize, k: usize, seed: u64) -> GatingOutput {
    let router = Router::new(8, e, k, seed);
    let tokens = Tensor::rand_uniform(s, 8, 1.0, seed ^ 0x55AA);
    router.gate(&tokens)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pft_construction_invariants(
        s in 1usize..80,
        e_pow in 1usize..5,
        seed in 0u64..1000,
        cap in 1usize..40,
    ) {
        let e = 1usize << e_pow;
        let k = (e / 2).max(1).min(4);
        let g = arb_gating(s, e, k, seed);
        let pft = Pft::construct(&g, e, cap, DropPolicy::CapacityOnly);
        // Structural invariants.
        pft.validate(s);
        // Conservation: retained + dropped = all routed assignments.
        prop_assert_eq!(pft.len() + pft.dropped, s * k);
        // Capacity respected per expert.
        prop_assert!(pft.tokens_per_expert.iter().all(|&c| c <= cap));
        // Each retained weight appears in the gating output for its token.
        for i in 0..pft.len() {
            let t = pft.token_ids[i];
            let e_id = pft.expert_ids[i];
            let j = g.top_experts[t].iter().position(|&x| x == e_id);
            prop_assert!(j.is_some(), "retained pair not in gating output");
            prop_assert_eq!(pft.combine_weights[i], g.combine_weights[t][j.unwrap()]);
        }
    }

    #[test]
    fn pft_drop_policies_are_ordered(
        s in 1usize..60,
        seed in 0u64..500,
    ) {
        let (e, k) = (8usize, 3usize);
        let g = arb_gating(s, e, k, seed);
        let x = Pft::construct(&g, e, 1_000, DropPolicy::CapacityOnly);
        let d = Pft::construct(&g, e, 1_000, DropPolicy::CapacityAndNegativeLogit);
        // The DeepSpeed policy can only retain a subset.
        prop_assert!(d.len() <= x.len());
    }

    #[test]
    fn gather_scatter_roundtrip(
        rows in 1usize..40,
        cols in 1usize..24,
        seed in 0u64..1000,
    ) {
        let src = Tensor::rand_uniform(rows, cols, 1.0, seed);
        // Random permutation of rows.
        let mut ids: Vec<usize> = (0..rows).collect();
        let mut rng = xmoe::tensor::DetRng::new(seed ^ 0xBEEF);
        rng.shuffle(&mut ids);
        let gathered = gather_rows(&src, &ids);
        let mut restored = Tensor::zeros(rows, cols);
        scatter_rows_scaled(&gathered, &ids, &vec![1.0; rows], &mut restored);
        prop_assert!(restored.allclose(&src, 0.0));
    }

    #[test]
    fn scatter_linearity_in_weights(
        rows in 1usize..20,
        cols in 1usize..12,
        w in 0.0f32..4.0,
        seed in 0u64..1000,
    ) {
        // scatter with weight w == w * scatter with weight 1.
        let src = Tensor::rand_uniform(rows, cols, 1.0, seed);
        let ids: Vec<usize> = (0..rows).collect();
        let mut a = Tensor::zeros(rows, cols);
        scatter_rows_scaled(&src, &ids, &vec![w; rows], &mut a);
        let mut b = Tensor::zeros(rows, cols);
        scatter_rows_scaled(&src, &ids, &vec![1.0; rows], &mut b);
        xmoe::tensor::scale_assign(&mut b, w);
        prop_assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn sequential_gemm_matches_segmentwise_matmul(
        seg_sizes in prop::collection::vec(0usize..12, 1..6),
        inner in 1usize..10,
        out_dim in 1usize..10,
        seed in 0u64..1000,
    ) {
        let total: usize = seg_sizes.iter().sum();
        let input = Tensor::rand_uniform(total.max(1), inner, 1.0, seed);
        let input = input.slice_rows(0, total);
        let ws: Vec<Tensor> = (0..seg_sizes.len())
            .map(|i| Tensor::rand_uniform(inner, out_dim, 1.0, seed + 31 * i as u64))
            .collect();
        let out = sequential_gemm(&input, &seg_sizes, &ws);
        prop_assert_eq!(out.shape(), (total, out_dim));
        let mut row = 0usize;
        for (i, &cnt) in seg_sizes.iter().enumerate() {
            if cnt == 0 { continue; }
            let seg = input.slice_rows(row, row + cnt);
            let want = xmoe::tensor::matmul(&seg, &ws[i]);
            prop_assert!(out.slice_rows(row, row + cnt).allclose(&want, 1e-4));
            row += cnt;
        }
    }

    #[test]
    fn redundancy_rate_bounds(
        s in 1usize..100,
        nodes_pow in 0usize..4,
        seed in 0u64..500,
    ) {
        let (e, k) = (16usize, 4usize);
        let nodes = 1usize << nodes_pow; // 1..8 nodes
        let g = arb_gating(s, e, k, seed);
        let pft = Pft::construct(&g, e, 10_000, DropPolicy::CapacityOnly);
        let rate = redundancy_rate(&pft, |ex| ex % nodes);
        // Bounds: 0 <= rate <= (k-1)/k (a token needs >= 1 copy per node).
        prop_assert!((0.0..=((k - 1) as f64 / k as f64) + 1e-9).contains(&rate));
        if nodes == 1 {
            // One node: everything beyond the first copy is redundant.
            prop_assert!((rate - (k - 1) as f64 / k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_redundancy_monotone_in_nodes(k in 1usize..17) {
        let mut prev = f64::MAX;
        for nodes in [1usize, 2, 4, 8, 16, 64] {
            let r = expected_redundancy_uniform(k, nodes);
            prop_assert!(r <= prev + 1e-12, "redundancy must not grow with node count");
            prop_assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
    }

    #[test]
    fn alltoall_cost_monotone_in_bytes(
        n_pow in 1usize..6,
        b1 in 1u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let n = 1usize << n_pow;
        let topo = ClusterTopology::new(MachineSpec::frontier(), n);
        let cost = CostModel::new(topo).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        let t1 = cost.alltoall_even_time(&group, b1);
        let t2 = cost.alltoall_even_time(&group, b1 + extra);
        prop_assert!(t2 >= t1, "more bytes cannot be faster");
        prop_assert!(t1 > 0.0);
    }

    #[test]
    fn collective_costs_nonnegative_and_scale(
        n_pow in 1usize..6,
        bytes in 1u64..10_000_000,
    ) {
        let n = 1usize << n_pow;
        let topo = ClusterTopology::new(MachineSpec::frontier(), n);
        let cost = CostModel::new(topo).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        let ag = cost.allgather_time(&group, bytes);
        let ar = cost.allreduce_time(&group, bytes);
        let rs = cost.reduce_scatter_time(&group, bytes);
        prop_assert!(ag >= 0.0 && ar >= 0.0 && rs >= 0.0);
        if n > 1 {
            // all-reduce = reduce-scatter + all-gather of shards: the ring
            // identities make it at least as expensive as reduce-scatter.
            prop_assert!(ar >= rs);
        }
    }

    #[test]
    fn activation_memory_monotone_in_tokens(
        tokens in 64usize..4096,
        extra in 1usize..2048,
    ) {
        let cfg = MoeModelConfig::large();
        for sys in MoeSystem::ALL {
            let a = moe_layer_activation(&cfg, sys, tokens, 1).total();
            let b = moe_layer_activation(&cfg, sys, tokens + extra, 1).total();
            prop_assert!(b >= a, "{sys:?}: more tokens cannot shrink activations");
        }
    }

    #[test]
    fn ssmb_sharding_never_increases_memory(
        tokens in 64usize..4096,
        tp_pow in 0usize..4,
    ) {
        let cfg = MoeModelConfig::large();
        let tp = 1usize << tp_pow;
        let base = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, 1).total();
        let sharded = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, tp).total();
        prop_assert!(sharded <= base);
    }

    #[test]
    fn xmoe_activation_never_above_padded_baselines(
        tokens in 256usize..4096,
    ) {
        // PFT stores only routed entries; the padded baselines store at
        // least the capacity-padded volume, so X-MoE is never worse.
        let cfg = MoeModelConfig::large();
        let x = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, 1).total();
        let ds = moe_layer_activation(&cfg, MoeSystem::DsMoe, tokens, 1).total();
        let tutel = moe_layer_activation(&cfg, MoeSystem::Tutel, tokens, 1).total();
        prop_assert!(x <= ds && x <= tutel);
    }
}
