//! Randomized-but-deterministic property tests over the core data
//! structures and models: PFT construction invariants, routing-kernel
//! roundtrips, redundancy bounds, cost-model monotonicity and memory-model
//! monotonicity. Cases are derived from `DetRng`, so failures reproduce
//! exactly without an external property-testing framework.

use xmoe::core::config::MoeModelConfig;
use xmoe::core::gating::{DropPolicy, GatingOutput, Router};
use xmoe::core::memory::{moe_layer_activation, MoeSystem};
use xmoe::core::pft::Pft;
use xmoe::core::rbd::{expected_redundancy_uniform, redundancy_rate};
use xmoe::tensor::{gather_rows, scatter_rows_scaled, sequential_gemm, DetRng, Tensor};
use xmoe::topology::{ClusterTopology, CongestionModel, CostModel, MachineSpec};

const CASES: u64 = 64;

/// Random gating output over `s` tokens, `e` experts, `k` selections.
fn arb_gating(s: usize, e: usize, k: usize, seed: u64) -> GatingOutput {
    let router = Router::new(8, e, k, seed);
    let tokens = Tensor::rand_uniform(s, 8, 1.0, seed ^ 0x55AA);
    router.gate(&tokens)
}

#[test]
fn pft_construction_invariants() {
    let mut rng = DetRng::new(0x31);
    for case in 0..CASES {
        let s = 1 + rng.next_below(79);
        let e = 1usize << (1 + rng.next_below(4));
        let seed = rng.next_below(1000) as u64;
        let cap = 1 + rng.next_below(39);
        let k = (e / 2).clamp(1, 4);
        let g = arb_gating(s, e, k, seed);
        let pft = Pft::construct(&g, e, cap, DropPolicy::CapacityOnly);
        // Structural invariants.
        pft.validate(s);
        // Conservation: retained + dropped = all routed assignments.
        assert_eq!(pft.len() + pft.dropped, s * k, "case {case}");
        // Capacity respected per expert.
        assert!(pft.tokens_per_expert.iter().all(|&c| c <= cap));
        // Each retained weight appears in the gating output for its token.
        for i in 0..pft.len() {
            let t = pft.token_ids[i];
            let e_id = pft.expert_ids[i];
            let row = &g.top_experts[t * k..(t + 1) * k];
            let j = row.iter().position(|&x| x == e_id);
            assert!(j.is_some(), "retained pair not in gating output");
            assert_eq!(
                pft.combine_weights[i],
                g.combine_weights[t * k + j.unwrap()]
            );
        }
    }
}

#[test]
fn pft_drop_policies_are_ordered() {
    let mut rng = DetRng::new(0x32);
    for case in 0..CASES {
        let s = 1 + rng.next_below(59);
        let seed = rng.next_below(500) as u64;
        let (e, k) = (8usize, 3usize);
        let g = arb_gating(s, e, k, seed);
        let x = Pft::construct(&g, e, 1_000, DropPolicy::CapacityOnly);
        let d = Pft::construct(&g, e, 1_000, DropPolicy::CapacityAndNegativeLogit);
        // The DeepSpeed policy can only retain a subset.
        assert!(d.len() <= x.len(), "case {case}");
    }
}

#[test]
fn gather_scatter_roundtrip() {
    let mut rng = DetRng::new(0x33);
    for case in 0..CASES {
        let rows = 1 + rng.next_below(39);
        let cols = 1 + rng.next_below(23);
        let src = Tensor::rand_uniform(rows, cols, 1.0, 8000 + case);
        // Random permutation of rows.
        let mut ids: Vec<usize> = (0..rows).collect();
        rng.shuffle(&mut ids);
        let gathered = gather_rows(&src, &ids);
        let mut restored = Tensor::zeros(rows, cols);
        scatter_rows_scaled(&gathered, &ids, &vec![1.0; rows], &mut restored);
        assert!(restored.allclose(&src, 0.0), "case {case}");
    }
}

#[test]
fn scatter_linearity_in_weights() {
    let mut rng = DetRng::new(0x34);
    for case in 0..CASES {
        // scatter with weight w == w * scatter with weight 1.
        let rows = 1 + rng.next_below(19);
        let cols = 1 + rng.next_below(11);
        let w = rng.next_f32() * 4.0;
        let src = Tensor::rand_uniform(rows, cols, 1.0, 9000 + case);
        let ids: Vec<usize> = (0..rows).collect();
        let mut a = Tensor::zeros(rows, cols);
        scatter_rows_scaled(&src, &ids, &vec![w; rows], &mut a);
        let mut b = Tensor::zeros(rows, cols);
        scatter_rows_scaled(&src, &ids, &vec![1.0; rows], &mut b);
        xmoe::tensor::scale_assign(&mut b, w);
        assert!(a.allclose(&b, 1e-5), "case {case}");
    }
}

#[test]
fn sequential_gemm_matches_segmentwise_matmul() {
    let mut rng = DetRng::new(0x35);
    for case in 0..CASES {
        let n_segs = 1 + rng.next_below(5);
        let seg_sizes: Vec<usize> = (0..n_segs).map(|_| rng.next_below(12)).collect();
        let inner = 1 + rng.next_below(9);
        let out_dim = 1 + rng.next_below(9);
        let total: usize = seg_sizes.iter().sum();
        let input = Tensor::rand_uniform(total.max(1), inner, 1.0, 10_000 + case);
        let input = input.slice_rows(0, total);
        let ws: Vec<Tensor> = (0..seg_sizes.len())
            .map(|i| Tensor::rand_uniform(inner, out_dim, 1.0, 10_000 + case + 31 * i as u64))
            .collect();
        let out = sequential_gemm(&input, &seg_sizes, &ws);
        assert_eq!(out.shape(), (total, out_dim), "case {case}");
        let mut row = 0usize;
        for (i, &cnt) in seg_sizes.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let seg = input.slice_rows(row, row + cnt);
            let want = xmoe::tensor::matmul(&seg, &ws[i]);
            assert!(out.slice_rows(row, row + cnt).allclose(&want, 1e-4));
            row += cnt;
        }
    }
}

#[test]
fn redundancy_rate_bounds() {
    let mut rng = DetRng::new(0x36);
    for case in 0..CASES {
        let s = 1 + rng.next_below(99);
        let nodes = 1usize << rng.next_below(4); // 1..8 nodes
        let seed = rng.next_below(500) as u64;
        let (e, k) = (16usize, 4usize);
        let g = arb_gating(s, e, k, seed);
        let pft = Pft::construct(&g, e, 10_000, DropPolicy::CapacityOnly);
        let rate = redundancy_rate(&pft, |ex| ex % nodes);
        // Bounds: 0 <= rate <= (k-1)/k (a token needs >= 1 copy per node).
        assert!(
            (0.0..=((k - 1) as f64 / k as f64) + 1e-9).contains(&rate),
            "case {case}"
        );
        if nodes == 1 {
            // One node: everything beyond the first copy is redundant.
            assert!((rate - (k - 1) as f64 / k as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn expected_redundancy_monotone_in_nodes() {
    for k in 1usize..17 {
        let mut prev = f64::MAX;
        for nodes in [1usize, 2, 4, 8, 16, 64] {
            let r = expected_redundancy_uniform(k, nodes);
            assert!(
                r <= prev + 1e-12,
                "redundancy must not grow with node count"
            );
            assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
    }
}

#[test]
fn alltoall_cost_monotone_in_bytes() {
    let mut rng = DetRng::new(0x37);
    for case in 0..CASES {
        let n = 1usize << (1 + rng.next_below(5));
        let b1 = 1 + rng.next_below(1_000_000) as u64;
        let extra = 1 + rng.next_below(1_000_000) as u64;
        let topo = ClusterTopology::new(MachineSpec::frontier(), n);
        let cost = CostModel::new(topo).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        let t1 = cost.alltoall_even_time(&group, b1);
        let t2 = cost.alltoall_even_time(&group, b1 + extra);
        assert!(t2 >= t1, "case {case}: more bytes cannot be faster");
        assert!(t1 > 0.0);
    }
}

#[test]
fn collective_costs_nonnegative_and_scale() {
    let mut rng = DetRng::new(0x38);
    for case in 0..CASES {
        let n = 1usize << (1 + rng.next_below(5));
        let bytes = 1 + rng.next_below(10_000_000) as u64;
        let topo = ClusterTopology::new(MachineSpec::frontier(), n);
        let cost = CostModel::new(topo).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        let ag = cost.allgather_time(&group, bytes);
        let ar = cost.allreduce_time(&group, bytes);
        let rs = cost.reduce_scatter_time(&group, bytes);
        assert!(ag >= 0.0 && ar >= 0.0 && rs >= 0.0, "case {case}");
        if n > 1 {
            // all-reduce = reduce-scatter + all-gather of shards: the ring
            // identities make it at least as expensive as reduce-scatter.
            assert!(ar >= rs);
        }
    }
}

#[test]
fn activation_memory_monotone_in_tokens() {
    let mut rng = DetRng::new(0x39);
    let cfg = MoeModelConfig::large();
    for case in 0..CASES {
        let tokens = 64 + rng.next_below(4032);
        let extra = 1 + rng.next_below(2047);
        for sys in MoeSystem::ALL {
            let a = moe_layer_activation(&cfg, sys, tokens, 1).total();
            let b = moe_layer_activation(&cfg, sys, tokens + extra, 1).total();
            assert!(
                b >= a,
                "case {case} {sys:?}: more tokens cannot shrink activations"
            );
        }
    }
}

#[test]
fn ssmb_sharding_never_increases_memory() {
    let mut rng = DetRng::new(0x3A);
    let cfg = MoeModelConfig::large();
    for case in 0..CASES {
        let tokens = 64 + rng.next_below(4032);
        let tp = 1usize << rng.next_below(4);
        let base = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, 1).total();
        let sharded = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, tp).total();
        assert!(sharded <= base, "case {case}");
    }
}

#[test]
fn xmoe_activation_never_above_padded_baselines() {
    let mut rng = DetRng::new(0x3B);
    let cfg = MoeModelConfig::large();
    for case in 0..CASES {
        // PFT stores only routed entries; the padded baselines store at
        // least the capacity-padded volume, so X-MoE is never worse.
        let tokens = 256 + rng.next_below(3840);
        let x = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, 1).total();
        let ds = moe_layer_activation(&cfg, MoeSystem::DsMoe, tokens, 1).total();
        let tutel = moe_layer_activation(&cfg, MoeSystem::Tutel, tokens, 1).total();
        assert!(x <= ds && x <= tutel, "case {case}");
    }
}
