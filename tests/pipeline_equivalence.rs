//! Cross-crate integration tests: the four transports (single-rank
//! reference, dense padded baseline, padding-free EP, RBD, SSMB) must all
//! compute the same MoE layer, across cluster shapes that exercise every
//! link class of the simulated Frontier topology.

use xmoe::collectives::SimCluster;
use xmoe::core::expert::ExpertShard;
use xmoe::core::gating::{DropPolicy, Router};
use xmoe::core::pipeline::{
    self, BlockSparsePipeline, DenseDropOrder, DensePipeline, ExecCtx, MoeLayerSpec,
    PaddingFreePipeline, Pipeline, PooledSingleState, RbdPipeline,
};
use xmoe::core::rbd::{self, PilotPolicy, RbdComms};
use xmoe::core::ssmb::{self, SsmbComms};
use xmoe::tensor::{DetRng, Tensor};

struct Case {
    world: usize,
    seq: usize,
    hidden: usize,
    ffn: usize,
    experts: usize,
    top_k: usize,
    capacity: usize,
    seed: u64,
}

fn reference(case: &Case, rank: usize) -> Tensor {
    let router = Router::new(case.hidden, case.experts, case.top_k, case.seed);
    let experts = ExpertShard::full(case.experts, case.hidden, case.ffn, case.seed + 1);
    let spec = MoeLayerSpec::new(case.experts, case.capacity);
    let tokens = Tensor::rand_uniform(case.seq, case.hidden, 1.0, 5000 + rank as u64);
    pipeline::padding_free::forward_single(&tokens, &router, &experts, &spec)
}

fn check(case: &Case, outputs: &[Tensor], what: &str) {
    for (rank, out) in outputs.iter().enumerate() {
        let want = reference(case, rank);
        assert!(
            out.allclose(&want, 2e-4),
            "{what}: world {} rank {rank} diverges (max diff {})",
            case.world,
            out.max_abs_diff(&want)
        );
    }
}

fn run_case(case: &Case) {
    let router = Router::new(case.hidden, case.experts, case.top_k, case.seed);
    let spec = MoeLayerSpec::new(case.experts, case.capacity);

    // Padding-free distributed.
    let pf = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(case.world).run(move |ctx| {
            let shard = ExpertShard::for_rank(
                ctx.rank,
                case.world,
                case.experts,
                case.hidden,
                case.ffn,
                case.seed + 1,
            );
            let tokens = Tensor::rand_uniform(case.seq, case.hidden, 1.0, 5000 + ctx.rank as u64);
            pipeline::padding_free::forward_ep(
                &tokens,
                router,
                &shard,
                spec,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap()
        })
    };
    check(case, &pf, "padding-free EP");

    // Dense padded distributed (weight-ranked drops to match PFT retention).
    let dense = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(case.world).run(move |ctx| {
            let shard = ExpertShard::for_rank(
                ctx.rank,
                case.world,
                case.experts,
                case.hidden,
                case.ffn,
                case.seed + 1,
            );
            let tokens = Tensor::rand_uniform(case.seq, case.hidden, 1.0, 5000 + ctx.rank as u64);
            pipeline::dense::forward_ep_dense(
                &tokens,
                router,
                &shard,
                spec,
                DenseDropOrder::WeightRanked,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap()
        })
    };
    check(case, &dense, "dense padded EP");

    // RBD distributed.
    let rbd_out = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(case.world).run(move |ctx| {
            let shard = ExpertShard::for_rank(
                ctx.rank,
                case.world,
                case.experts,
                case.hidden,
                case.ffn,
                case.seed + 1,
            );
            let tokens = Tensor::rand_uniform(case.seq, case.hidden, 1.0, 5000 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(case.seed + 77 + ctx.rank as u64);
            rbd::forward_ep_rbd(
                &tokens,
                router,
                &shard,
                spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        })
    };
    check(case, &rbd_out, "RBD EP");
}

/// The unified engine surface: one config pushed through all four
/// [`Pipeline`] impls in EP mode (dense via the weight-ranked drop order so
/// its retention matches PFT), each against the single-rank reference. Also
/// exercises the context axes the named entry points cannot: a pooled EP
/// padding-free run through the trait, and the typed errors for missing or
/// unsupported context.
#[test]
fn pipeline_trait_runs_all_four_impls_equivalently() {
    let case = Case {
        world: 4,
        seq: 24,
        hidden: 16,
        ffn: 8,
        experts: 8,
        top_k: 3,
        capacity: 10_000,
        seed: 111,
    };
    let router = Router::new(case.hidden, case.experts, case.top_k, case.seed);
    let spec = MoeLayerSpec::new(case.experts, case.capacity);
    let outs = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(case.world).run(move |ctx| {
            let shard = ExpertShard::for_rank(
                ctx.rank,
                case.world,
                case.experts,
                case.hidden,
                case.ffn,
                case.seed + 1,
            );
            let tokens = Tensor::rand_uniform(case.seq, case.hidden, 1.0, 5000 + ctx.rank as u64);
            let dense = DensePipeline {
                order: DenseDropOrder::WeightRanked,
            }
            .forward(
                &tokens,
                router,
                &shard,
                spec,
                &mut ExecCtx::ep(&ctx.world, &mut ctx.clock),
            )
            .unwrap();
            let pft = PaddingFreePipeline
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock),
                )
                .unwrap();
            // Pooled + overlapped EP padding-free through the same trait
            // call — context properties, not new entry points.
            let mut state = PooledSingleState::default();
            let pft_pooled_overlap = PaddingFreePipeline
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock)
                        .with_state(&mut state)
                        .with_overlap(2),
                )
                .unwrap();
            let blocksparse = BlockSparsePipeline { block: 4 }
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock),
                )
                .unwrap();
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(case.seed + 77 + ctx.rank as u64);
            let rbd_pipe = RbdPipeline {
                policy: PilotPolicy::Random,
            };
            let rbd_out = rbd_pipe
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::hier(&comms, &mut ctx.clock).with_rng(&mut rng),
                )
                .unwrap();
            // Context contract violations come back as typed errors.
            assert!(matches!(
                rbd_pipe.forward(&tokens, router, &shard, spec, &mut ExecCtx::single()),
                Err(pipeline::PipelineError::MissingCtx(_))
            ));
            assert!(matches!(
                DensePipeline {
                    order: DenseDropOrder::WeightRanked,
                }
                .forward(
                    &tokens,
                    router,
                    &shard,
                    spec,
                    &mut ExecCtx::ep(&ctx.world, &mut ctx.clock).with_overlap(2),
                ),
                Err(pipeline::PipelineError::Unsupported(_))
            ));
            (dense, pft, pft_pooled_overlap, blocksparse, rbd_out)
        })
    };
    let (dense, pft, pft_po, bs, rbd_out): (Vec<_>, Vec<_>, Vec<_>, Vec<_>, Vec<_>) =
        outs.into_iter().fold(
            (vec![], vec![], vec![], vec![], vec![]),
            |(mut a, mut b, mut c, mut d, mut e), t| {
                a.push(t.0);
                b.push(t.1);
                c.push(t.2);
                d.push(t.3);
                e.push(t.4);
                (a, b, c, d, e)
            },
        );
    check(&case, &dense, "trait dense EP");
    check(&case, &pft, "trait pft EP");
    check(&case, &pft_po, "trait pft EP pooled+overlap");
    check(&case, &bs, "trait blocksparse EP");
    check(&case, &rbd_out, "trait rbd EP");
    // The pooled/overlapped run must be bitwise the serial owned run, not
    // merely close — same guarantee the named entry points are pinned to.
    for (rank, (a, b)) in pft.iter().zip(&pft_po).enumerate() {
        assert!(
            a.allclose(b, 0.0),
            "rank {rank}: pooled+overlap trait run diverges bitwise from serial"
        );
    }
}

#[test]
fn transports_agree_single_node() {
    run_case(&Case {
        world: 4,
        seq: 24,
        hidden: 16,
        ffn: 8,
        experts: 8,
        top_k: 3,
        capacity: 10_000,
        seed: 101,
    });
}

#[test]
fn transports_agree_two_nodes() {
    run_case(&Case {
        world: 16,
        seq: 16,
        hidden: 12,
        ffn: 8,
        experts: 16,
        top_k: 5,
        capacity: 10_000,
        seed: 202,
    });
}

#[test]
fn transports_agree_with_tight_capacity() {
    run_case(&Case {
        world: 8,
        seq: 40,
        hidden: 12,
        ffn: 8,
        experts: 8,
        top_k: 4,
        capacity: 9,
        seed: 303,
    });
}

#[test]
fn transports_agree_top1_routing() {
    run_case(&Case {
        world: 4,
        seq: 20,
        hidden: 8,
        ffn: 4,
        experts: 4,
        top_k: 1,
        capacity: 10_000,
        seed: 404,
    });
}

#[test]
fn transports_agree_one_expert_per_rank() {
    run_case(&Case {
        world: 8,
        seq: 24,
        hidden: 12,
        ffn: 8,
        experts: 8,
        top_k: 4,
        capacity: 10_000,
        seed: 505,
    });
}

#[test]
fn transports_agree_at_eight_node_scale() {
    // 64 ranks = 8 simulated Frontier nodes: exercises many-threaded
    // mailboxes, multi-node RBD grouping and the full link-class spread.
    // Capacity is kept realistic: the dense baseline *physically
    // allocates* E x C padded rows, so an unbounded capacity would make
    // this test quadratic in disguise.
    run_case(&Case {
        world: 64,
        seq: 8,
        hidden: 8,
        ffn: 4,
        experts: 64,
        top_k: 6,
        capacity: 4,
        seed: 909,
    });
}

/// The chunked dispatch–compute overlap must be bitwise-identical to the
/// serial padding-free forward — not merely close — across routing skews:
/// skew concentrates tokens on few experts, producing empty and lopsided
/// chunks, exactly the shapes where a chunking bug would reorder rows or
/// re-associate a float.
#[test]
fn overlapped_padding_free_is_bitwise_identical_across_skews() {
    let (world, seq, hidden, ffn, experts, top_k) = (8usize, 32usize, 12usize, 8usize, 16usize, 4);
    let seed = 808u64;
    let spec = MoeLayerSpec::new(experts, 10_000);
    for &skew in &[0.0f32, 2.0, 8.0] {
        // Bias the router weight column-wise so low expert ids are hot (the
        // exponential popularity profile of `bench ablation_skew`).
        let base = Router::new(hidden, experts, top_k, seed);
        let mut w = base.weight.clone();
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let bias = skew * (-(c as f32) / experts as f32 * 4.0).exp() / hidden as f32;
                let v = w.get(r, c);
                w.set(r, c, v + bias);
            }
        }
        let router = Router::from_weight(w, top_k);
        for chunks in [2usize, 3] {
            let pairs = {
                let (router, spec) = (&router, &spec);
                SimCluster::frontier(world).run(move |ctx| {
                    let shard =
                        ExpertShard::for_rank(ctx.rank, world, experts, hidden, ffn, seed + 1);
                    let tokens = Tensor::rand_uniform(seq, hidden, 1.0, 7000 + ctx.rank as u64);
                    let serial = pipeline::padding_free::forward_ep(
                        &tokens,
                        router,
                        &shard,
                        spec,
                        &ctx.world,
                        &mut ctx.clock,
                    )
                    .unwrap();
                    let overlapped = pipeline::padding_free::forward_ep_overlap(
                        &tokens,
                        router,
                        &shard,
                        spec,
                        chunks,
                        &ctx.world,
                        &mut ctx.clock,
                    )
                    .unwrap();
                    (serial, overlapped)
                })
            };
            for (rank, (serial, overlapped)) in pairs.iter().enumerate() {
                assert!(
                    serial.allclose(overlapped, 0.0),
                    "skew {skew} chunks {chunks} rank {rank}: overlap diverges bitwise \
                     (max diff {})",
                    serial.max_abs_diff(overlapped)
                );
            }
        }
    }
}

#[test]
fn ssmb_matches_reference_over_tp_dp_grid() {
    // TP=2, DP=2, EP=4 over 4 ranks: SSMB shards the sequence then
    // restores it; results must match the single-rank reference of the
    // DP group's sequence.
    let (seq, hidden, ffn, experts, top_k) = (16usize, 12usize, 8usize, 8usize, 3usize);
    let seed = 606u64;
    let router = Router::new(hidden, experts, top_k, seed);
    let spec = MoeLayerSpec::new(experts, 10_000);
    let out = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(4).run(move |ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, experts, hidden, ffn, seed + 1);
            let dp_group = ctx.rank / 2;
            let tokens = Tensor::rand_uniform(seq, hidden, 1.0, 9000 + dp_group as u64);
            let comms = SsmbComms::create(&ctx.world, 2, &mut ctx.clock).unwrap();
            ssmb::forward_ssmb(&tokens, router, &shard, spec, &comms, &mut ctx.clock).unwrap()
        })
    };
    let full_experts = ExpertShard::full(experts, hidden, ffn, seed + 1);
    for (rank, got) in out.iter().enumerate() {
        let dp_group = rank / 2;
        let tokens = Tensor::rand_uniform(seq, hidden, 1.0, 9000 + dp_group as u64);
        let want = pipeline::padding_free::forward_single(&tokens, &router, &full_experts, &spec);
        assert!(
            got.allclose(&want, 2e-4),
            "SSMB rank {rank} diverges, max diff {}",
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn drop_policies_differ_only_in_retention() {
    // Same batch under both policies: the X-MoE output restricted to
    // entries both retained must match is hard to observe from outputs, but
    // the DS policy output must equal an X-MoE run whose router zeroes the
    // dropped entries. We verify the weaker, still-sharp property: with no
    // negative logits the two policies coincide exactly.
    let (seq, hidden, ffn, experts, top_k) = (24usize, 12usize, 8usize, 8usize, 3usize);
    let router = Router::new(hidden, experts, top_k, 707);
    let experts_full = ExpertShard::full(experts, hidden, ffn, 708);
    // Shift tokens so all gate logits are comfortably positive.
    let mut tokens = Tensor::rand_uniform(seq, hidden, 0.05, 709);
    // Build a rank-1 direction that yields positive logits for every expert.
    let probe = Tensor::full(1, hidden, 1.0);
    let logits = xmoe::tensor::matmul(&probe, &router.weight);
    if logits.as_slice().iter().all(|&v| v > 0.0) {
        for r in 0..tokens.rows() {
            for c in 0..tokens.cols() {
                let v = tokens.get(r, c);
                tokens.set(r, c, v + 1.0);
            }
        }
        let g = router.gate(&tokens);
        if g.top_logits.iter().all(|&l| l > 0.0) {
            let spec_x = MoeLayerSpec::new(experts, 10_000).with_policy(DropPolicy::CapacityOnly);
            let spec_d = MoeLayerSpec::new(experts, 10_000)
                .with_policy(DropPolicy::CapacityAndNegativeLogit);
            let out_x =
                pipeline::padding_free::forward_single(&tokens, &router, &experts_full, &spec_x);
            let out_d =
                pipeline::padding_free::forward_single(&tokens, &router, &experts_full, &spec_d);
            assert!(
                out_x.allclose(&out_d, 1e-6),
                "policies must coincide with no negatives"
            );
        }
    }
    // If the random direction did not give all-positive logits, the
    // property is vacuous for this seed; the unit tests cover the
    // differing-retention side.
}
