//! End-to-end distributed training equivalence: a 4-rank data+expert-
//! parallel run (experts sharded EP=world, dense/router replicated with
//! averaged gradients, 4 all-to-alls per MoE layer per step) must follow
//! the same optimization trajectory as a single process training on the
//! concatenation of the four ranks' batches.
//!
//! This exercises the full stack — gating, PFT, routed dispatch, expert
//! FFN forward/backward, the mirrored gradient all-to-alls, gradient
//! averaging over the world, and Adam — against the hand-written
//! single-rank reference.

use xmoe::collectives::SimCluster;
use xmoe::core::gating::DropPolicy;
use xmoe::train::model::build_moe_layers;
use xmoe::train::{DistMoeLm, MarkovCorpus, MoeLm, TrainConfig};

fn cfg() -> TrainConfig {
    let mut c = TrainConfig::fig15(DropPolicy::CapacityOnly);
    // Small but non-trivial; huge capacity so per-rank vs global capacity
    // granularity cannot change the retained set.
    c.vocab = 32;
    c.hidden = 16;
    c.ffn = 8;
    c.num_experts = 8;
    c.top_k = 2;
    c.layers = 2;
    c.seq_len = 12;
    c.batch = 2; // per rank
    c.capacity_factor = 1e6;
    c.seed = 2025;
    c
}

/// Per-rank batches for `steps` steps: rank r draws from its own corpus.
fn rank_batches(cfg: &TrainConfig, world: usize, steps: usize) -> Vec<Vec<Vec<Vec<usize>>>> {
    (0..world)
        .map(|r| {
            let mut corpus = MarkovCorpus::new(cfg.vocab, 3, 4000 + r as u64);
            (0..steps)
                .map(|_| corpus.batch(cfg.batch, cfg.seq_len))
                .collect()
        })
        .collect()
}

#[test]
fn four_rank_dp_ep_training_matches_single_process() {
    let cfg = cfg();
    let world = 4usize;
    let steps = 4usize;
    let per_rank = rank_batches(&cfg, world, steps);

    // --- Single-process reference on the concatenated batches ----------
    let mut reference = MoeLm::new(cfg.clone());
    let mut ref_losses = Vec::new();
    for step in 0..steps {
        let mut concat = Vec::new();
        for rank_batches in per_rank.iter().take(world) {
            concat.extend(rank_batches[step].clone());
        }
        ref_losses.push(reference.train_step(&concat).loss);
    }

    // --- Distributed run ------------------------------------------------
    let full_layers = build_moe_layers(&cfg);
    let dist_results = {
        let cfg = &cfg;
        let per_rank = &per_rank;
        let full_layers = &full_layers;
        SimCluster::frontier(world).run(move |ctx| {
            let mut model = DistMoeLm::new(cfg, full_layers, ctx.rank, world);
            let mut losses = Vec::new();
            for batch in per_rank[ctx.rank].iter().take(steps) {
                losses.push(model.train_step(batch, &ctx.world, &mut ctx.clock).unwrap());
            }
            // Return the replicated head weights and this rank's expert
            // shard for trajectory comparison.
            let head = model.head.weight.clone();
            let gate0 = model.blocks[0].moe.gate.clone();
            let shard0: Vec<_> = model.blocks[0].moe.shard.clone();
            (
                losses,
                head,
                gate0,
                shard0,
                model.blocks[0].moe.local_experts.clone(),
            )
        })
    };

    // Losses match step by step on every rank (they are globally averaged).
    for (rank, (losses, ..)) in dist_results.iter().enumerate() {
        for (step, (&d, &s)) in losses.iter().zip(&ref_losses).enumerate() {
            assert!(
                (d - s).abs() < 2e-3,
                "rank {rank} step {step}: dist loss {d} vs reference {s}"
            );
        }
    }

    // Replicated parameters are identical across ranks and match the
    // reference trajectory.
    let (_, head0, gate0, _, _) = &dist_results[0];
    for (rank, (_, head, gate, _, _)) in dist_results.iter().enumerate().skip(1) {
        assert!(
            head.allclose(head0, 1e-6),
            "head replicas diverged at rank {rank}"
        );
        assert!(
            gate.allclose(gate0, 1e-6),
            "gate replicas diverged at rank {rank}"
        );
    }
    assert!(
        head0.allclose(&reference.head.weight, 5e-3),
        "head trajectory diverged: max diff {}",
        head0.max_abs_diff(&reference.head.weight)
    );
    assert!(
        gate0.allclose(&reference.blocks[0].moe.gate, 5e-3),
        "gate trajectory diverged: max diff {}",
        gate0.max_abs_diff(&reference.blocks[0].moe.gate)
    );

    // Expert shards match the corresponding reference experts.
    for (_, _, _, shard, locals) in &dist_results {
        for (i, (w1, w2)) in shard.iter().enumerate() {
            let global = locals[i];
            let (ref_w1, ref_w2) = &reference.blocks[0].moe.experts[global];
            assert!(
                w1.allclose(ref_w1, 5e-3),
                "expert {global} w1 diverged: {}",
                w1.max_abs_diff(ref_w1)
            );
            assert!(
                w2.allclose(ref_w2, 5e-3),
                "expert {global} w2 diverged: {}",
                w2.max_abs_diff(ref_w2)
            );
        }
    }
}

#[test]
fn distributed_training_reduces_loss() {
    // Longer distributed-only run: the loss must actually go down.
    let mut cfg = cfg();
    cfg.lr = 1e-2;
    cfg.batch = 4;
    let world = 2usize;
    let steps = 80usize;
    let per_rank = rank_batches(&cfg, world, steps);
    let full_layers = build_moe_layers(&cfg);
    let losses = {
        let cfg = &cfg;
        let per_rank = &per_rank;
        let full_layers = &full_layers;
        SimCluster::frontier(world).run(move |ctx| {
            let mut model = DistMoeLm::new(cfg, full_layers, ctx.rank, world);
            let mut l = Vec::new();
            for batch in per_rank[ctx.rank].iter().take(steps) {
                l.push(model.train_step(batch, &ctx.world, &mut ctx.clock).unwrap());
            }
            l
        })
    };
    let first = losses[0][0];
    let last = *losses[0].last().unwrap();
    assert!(
        last < first - 0.4,
        "distributed loss should decrease markedly: {first} -> {last}"
    );
}
