//! The allocation-regression gate as a tier-1 test: after warm-up, a pooled
//! MoE training step performs **zero** transient heap allocations, and the
//! single-rank pooled forwards likewise. This file is its own test binary so
//! the counting `#[global_allocator]` observes only this test's work, and it
//! holds exactly one `#[test]` so no sibling test thread allocates
//! concurrently with the counted window.
//!
//! The training/forward windows keep every kernel below its parallelism
//! threshold, gating the serial schedule; the grouped-GEMM window at the end
//! runs *above* the cutoff, gating the persistent worker pool itself: after
//! the pool's one-time startup (warmed up outside the window, like the
//! arenas) a parallel grouped step is just as allocation-free, because task
//! scheduling uses a grow-once panel arena and pool workers charge any
//! incidental heap traffic to the untracked counter.

use xmoe::collectives::SimCluster;
use xmoe::core::expert::ExpertShard;
use xmoe::core::gating::{DropPolicy, Router};
use xmoe::core::pipeline::{self, MoeLayerSpec, PooledSingleState};
use xmoe::core::rbd::{self, RbdComms};
use xmoe::tensor::{gemm_grouped, CountingAlloc, DetRng, Tensor, Workspace};
use xmoe::train::{MoeTrainScratch, TrainableMoe};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn steady_state_pooled_hot_path_allocates_nothing() {
    let (s, h, f, e, k) = (32usize, 16usize, 8usize, 8usize, 2usize);
    let inputs: Vec<Tensor> = (0..4)
        .map(|i| Tensor::rand_uniform(s, h, 1.0, 0x2E30 + i))
        .collect();

    // -- full training step: router + PFT + experts + exact backward -----
    let mut layer = TrainableMoe::new(h, f, e, k, 10_000, DropPolicy::CapacityOnly, 0x2E20);
    let d_out = Tensor::rand_uniform(s, h, 1.0, 0x2E40);
    let mut st = MoeTrainScratch::default();
    let train_step = |layer: &mut TrainableMoe, st: &mut MoeTrainScratch, i: usize| {
        layer.zero_grads();
        let out = layer.forward_pooled(&inputs[i % inputs.len()], st);
        let d_x = layer.backward_pooled(st, &d_out);
        st.ws.recycle(d_x);
        st.ws.recycle(out);
    };
    // Warm-up: every grow-only buffer reaches its fixed point over the
    // deterministic input cycle.
    for i in 0..12 {
        train_step(&mut layer, &mut st, i);
    }
    let before = ALLOC.stats();
    for i in 0..16 {
        train_step(&mut layer, &mut st, i);
    }
    let after = ALLOC.stats();
    assert_eq!(
        after.allocs - before.allocs,
        0,
        "steady-state pooled training step hit the heap"
    );
    assert_eq!(
        after.live_bytes, before.live_bytes,
        "steady-state live bytes drifted"
    );

    // -- single-rank pooled forwards (pft + block-sparse) ----------------
    let router = Router::new(h, e, k, 0x2E50);
    let experts = ExpertShard::full(e, h, f, 0x2E51);
    let spec = MoeLayerSpec::new(e, 10_000);
    let mut state = PooledSingleState::default();
    let fwd_step = |state: &mut PooledSingleState, i: usize| {
        let a = pipeline::padding_free::forward_single_pooled(
            &inputs[i % inputs.len()],
            &router,
            &experts,
            &spec,
            state,
        );
        state.ws.recycle(a);
        let b = pipeline::block_sparse::forward_single_block_sparse_pooled(
            &inputs[i % inputs.len()],
            &router,
            &experts,
            &spec,
            4,
            state,
        );
        state.ws.recycle(b);
    };
    for i in 0..12 {
        fwd_step(&mut state, i);
    }
    let before = ALLOC.stats();
    for i in 0..16 {
        fwd_step(&mut state, i);
    }
    let after = ALLOC.stats();
    assert_eq!(
        after.allocs - before.allocs,
        0,
        "steady-state pooled single-rank forward hit the heap"
    );
    assert_eq!(
        after.live_bytes, before.live_bytes,
        "steady-state forward live bytes drifted"
    );

    // -- distributed pooled RBD forward ----------------------------------
    // Each simulated rank is one thread, so `thread_tracked_allocs` fences
    // exactly the rank's own hot path — no barriers, no cross-thread
    // harness noise on the process-wide counter. Wire plumbing a rank
    // performs on behalf of the exchange is untracked (no malloc analog on
    // real hardware); tensor/staging work a rank performs is tracked and
    // attributed to that rank. The rng seed cycle recurs (period matches
    // the input cycle) so every leased capacity reaches a fixed point
    // during warm-up — the wire buffers circulate between the ranks'
    // pools, so recurrence, not per-rank reuse, is what makes the
    // capacities converge.
    let world = 4usize;
    let router = Router::new(h, e, k, 0x2E60);
    let spec = MoeLayerSpec::new(e, 10_000);
    let counted = {
        let (router, spec) = (&router, &spec);
        SimCluster::frontier(world).run(move |ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 0x2E61);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).expect("rbd comms");
            let tokens = Tensor::rand_uniform(s, h, 1.0, 0x2E62 + ctx.rank as u64);
            let mut state = PooledSingleState::default();
            let seed_of = |step: usize| 0x2E63 + ((step % 4) * world + ctx.rank) as u64;
            let rbd_step = |state: &mut PooledSingleState,
                            clock: &mut xmoe::collectives::SimClock,
                            step: usize| {
                let mut rng = DetRng::new(seed_of(step));
                let out = rbd::forward_ep_rbd_pooled(
                    &tokens, router, &shard, spec, &comms, &mut rng, clock, state,
                )
                .expect("rbd step");
                state.ws.recycle(out);
            };
            for step in 0..12 {
                rbd_step(&mut state, &mut ctx.clock, step);
            }
            let a0 = xmoe::tensor::thread_tracked_allocs();
            for step in 0..8 {
                rbd_step(&mut state, &mut ctx.clock, step);
            }
            xmoe::tensor::thread_tracked_allocs() - a0
        })
    };
    for (rank, &d) in counted.iter().enumerate() {
        assert_eq!(
            d, 0,
            "steady-state pooled RBD step hit the heap on rank {rank}"
        );
    }

    // -- pooled grouped expert GEMM above the parallel cutoff -------------
    // 128 rows x (64 -> 128 -> 64) across 16 experts: both grouped batches
    // exceed 64^3 total volume, so with XMOE_THREADS > 1 this runs on the
    // worker pool. Warm-up starts the pool (thread spawn allocates, once)
    // and grows the panel arena; the counted steady state must be clean.
    let (gb, gh, gf, ge) = (128usize, 64usize, 128usize, 16usize);
    let counts: Vec<usize> = (0..ge).map(|e| gb / ge + (e % 2)).collect();
    let total: usize = counts.iter().sum();
    let shard = ExpertShard::full(ge, gh, gf, 0x2E70);
    let input = Tensor::rand_uniform(total, gh, 1.0, 0x2E71);
    let mut ws = Workspace::new();
    let mut direct = Tensor::zeros(total, gf);
    let grouped_step = |ws: &mut Workspace, direct: &mut Tensor| {
        let y = shard.forward_segments_pooled(&input, &counts, ws);
        ws.recycle(y);
        direct.as_mut_slice().fill(0.0);
        gemm_grouped(
            input.as_slice(),
            &counts,
            gh,
            |e| shard.experts[e].w1.as_slice(),
            gf,
            direct.as_mut_slice(),
        );
    };
    for _ in 0..4 {
        grouped_step(&mut ws, &mut direct);
    }
    let before = ALLOC.stats();
    for _ in 0..8 {
        grouped_step(&mut ws, &mut direct);
    }
    let after = ALLOC.stats();
    assert_eq!(
        after.allocs - before.allocs,
        0,
        "steady-state pooled grouped GEMM hit the heap"
    );
    assert_eq!(
        after.live_bytes, before.live_bytes,
        "grouped GEMM live bytes drifted"
    );
}
