//! Tier-1 elasticity invariants: ranks join mid-run, hot experts
//! rebalance under skew, and both are bitwise-deterministic.
//!
//! 1. **Kill-then-join restores the full world**: the dark rank comes
//!    back through the grow rendezvous + live scatter, and the post-join
//!    trajectory is bitwise identical to an uninterrupted same-world run
//!    started from the scatter image — the recovery and rendezvous leave
//!    only their charged spans behind, never a numerical trace.
//! 2. **Skew-triggered live migration is bitwise-deterministic**: a run
//!    whose hot experts migrate mid-run continues exactly as a fresh run
//!    launched in the post-migration configuration from the same image.
//! 3. **`bench elastic` self-gates**: the smoke bench exits 0, writes a
//!    `BENCH_elastic.json` whose validator enforces rebalanced step time
//!    strictly below the skewed baseline, and a tampered report fails.

use xmoe::collectives::{FaultPlan, SimCluster};
use xmoe::core::gating::DropPolicy;
use xmoe::tensor::DetRng;
use xmoe::topology::{ClusterTopology, CongestionModel, CostModel, MachineSpec};
use xmoe::train::{
    run_chaos_rank, step_batch, ChaosConfig, ChaosReport, Checkpoint, DistMoeLm, RebalanceConfig,
    TrainConfig,
};

fn cfg() -> TrainConfig {
    let mut c = TrainConfig::fig15(DropPolicy::CapacityOnly);
    c.vocab = 32;
    c.hidden = 16;
    c.ffn = 8;
    c.num_experts = 8;
    c.top_k = 2;
    c.layers = 2;
    c.seq_len = 10;
    c.batch = 2;
    c.capacity_factor = 1e6;
    c.seed = 41;
    c
}

fn bits(l: &[(u64, f64)]) -> Vec<(u64, u64)> {
    l.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

/// Four Frontier GCDs repacked three per node: ranks 0-2 share node 0,
/// rank 3 sits alone on node 1, so expert dispatch crosses a real NIC
/// and a placement change has priced consequences.
fn two_node_cluster(world: usize) -> SimCluster {
    let mut spec = MachineSpec::frontier();
    spec.gpus_per_node = 3;
    let topo = ClusterTopology::new(spec, world);
    SimCluster::new(CostModel::new(topo).with_congestion(CongestionModel::none()))
}

fn chaos_run(world: usize, plan: Option<FaultPlan>, chaos: ChaosConfig) -> Vec<ChaosReport> {
    let cfg = cfg();
    let cluster = match plan {
        Some(p) => SimCluster::frontier(world).with_faults(p),
        None => SimCluster::frontier(world),
    };
    let cfg = &cfg;
    cluster.run(move |ctx| run_chaos_rank(cfg, &chaos, ctx).unwrap())
}

/// Continue training from a checkpoint on a fresh cluster of `world`
/// ranks under the default contiguous assignment.
fn resume_reference(world: usize, bytes: &[u8], until: u64) -> Vec<Vec<(u64, f64)>> {
    let cfg = cfg();
    let cfg = &cfg;
    SimCluster::frontier(world).run(move |ctx| {
        let ckpt = Checkpoint::decode(bytes).unwrap();
        let mut model = DistMoeLm::from_checkpoint(cfg, &ckpt, ctx.rank, world);
        let mut rng = DetRng::from_state(ckpt.rng_state);
        let comm = ctx.world.clone();
        let mut losses = Vec::new();
        for step in ckpt.step..until {
            ctx.set_step(step);
            comm.set_step(step);
            let step_seed = rng.next_u64();
            let batch = step_batch(cfg, step_seed, comm.rank());
            let loss = model.train_step(&batch, &comm, &mut ctx.clock).unwrap();
            losses.push((step, loss));
        }
        losses
    })
}

#[test]
fn kill_then_join_restores_full_world_bitwise_deterministically() {
    let world = 4;
    let steps = 10u64;
    // No periodic checkpoints: the one restore image in this run is the
    // live scatter at the join, so `last_ckpt` is exactly that image (and
    // the kill recovery must replay from scratch — over 3 survivors that
    // is also a ragged 8-experts-over-3-ranks re-shard).
    let chaos = ChaosConfig::new(steps, 0);
    let plan = FaultPlan::parse(1, "kill:rank=2,at=3;join:rank=2,at=6").unwrap();
    let reports = chaos_run(world, Some(plan), chaos);

    let rejoined = &reports[2];
    assert_eq!(rejoined.exited_at, Some(3), "rank 2 died at step 3");
    for (rank, r) in reports.iter().enumerate() {
        assert_eq!(
            r.final_world, 4,
            "rank {rank} must finish in the full world"
        );
        assert_eq!(r.joins.len(), 1, "rank {rank} saw one rendezvous");
        let j = &r.joins[0];
        assert_eq!(j.joined_ranks, vec![2]);
        assert_eq!(j.at_step, 6);
        assert_eq!(j.world_after, 4);
        assert!(j.mttr > 0.0, "rendezvous must cost simulated time");
    }
    // Survivors agree on the full curve; the rejoined rank carries
    // exactly the post-join suffix.
    assert_eq!(reports[0].losses.len(), steps as usize);
    assert_eq!(bits(&reports[0].losses), bits(&reports[1].losses));
    assert_eq!(bits(&reports[0].losses), bits(&reports[3].losses));
    assert_eq!(bits(&rejoined.losses), bits(&reports[0].losses[6..]));

    // Gold standard: a fresh four-rank cluster restoring the scatter
    // image continues bitwise identically — after the join the run is
    // indistinguishable (modulo the charged elastic_join/elastic_scatter
    // spans) from an uninterrupted run of the same world in that state.
    let bytes = reports[0].last_ckpt.clone().expect("scatter image kept");
    assert_eq!(Checkpoint::decode(&bytes).unwrap().step, 6);
    let reference = resume_reference(world, &bytes, steps);
    for (rank, r) in reference.iter().enumerate() {
        // The rejoined rank only has the post-join suffix; survivors
        // carry the full curve.
        let n = reports[rank].losses.len();
        let tail = &reports[rank].losses[n - 4..];
        assert_eq!(
            bits(tail),
            bits(r),
            "rank {rank}: post-join trajectory must match an uninterrupted same-world run"
        );
    }
}

#[test]
fn skew_triggered_migration_matches_fresh_run_in_migrated_layout() {
    let world = 4;
    let steps = 10u64;
    let cfg = cfg();
    // Experts 6 and 7 — both on rank 3, the lone rank of node 1 — are
    // made co-hot; the profiling window closing at step 4 sees the skew
    // and migrates the pair onto node 0.
    let chaos = ChaosConfig::new(steps, 0)
        .with_hot_bias(6, 7, 6.0)
        .with_rebalance(RebalanceConfig {
            threshold: 1.2,
            every: 4,
            ..RebalanceConfig::default()
        });
    let reports = {
        let cfg = &cfg;
        two_node_cluster(world).run(move |ctx| run_chaos_rank(cfg, &chaos, ctx).unwrap())
    };
    for (rank, r) in reports.iter().enumerate() {
        assert_eq!(
            r.rebalances.len(),
            1,
            "rank {rank}: exactly one committed rebalance"
        );
        assert_eq!(r.losses.len(), steps as usize);
    }
    let d = &reports[0].rebalances[0];
    assert_eq!(d.step, 4, "first window closes at step 4");
    assert!(
        d.dispatch_after < d.dispatch_before,
        "never-worse: priced dispatch must strictly improve \
         ({} -> {})",
        d.dispatch_before,
        d.dispatch_after
    );
    assert!(
        d.migration_bytes > 0,
        "weights + moments moved over the wire"
    );
    assert!(!d.moved_experts.is_empty());
    for (rank, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            bits(&r.losses),
            bits(&reports[0].losses),
            "rank {rank}: losses are world-averaged and must agree"
        );
        assert_eq!(
            r.final_assignment, reports[0].final_assignment,
            "rank {rank}: every rank commits the same assignment"
        );
    }

    // Gold standard: a fresh cluster launched in the post-migration
    // configuration from the migration-point image produces bitwise
    // identical losses for the remaining steps.
    let bytes = reports[0]
        .rebalance_ckpt
        .clone()
        .expect("migration image kept");
    let asg = reports[0].final_assignment.clone();
    assert_eq!(Checkpoint::decode(&bytes).unwrap().step, 4);
    let reference = {
        let cfg = &cfg;
        let bytes = &bytes;
        let asg = &asg;
        two_node_cluster(world).run(move |ctx| {
            let ckpt = Checkpoint::decode(bytes).unwrap();
            let mut model =
                DistMoeLm::from_checkpoint_with_assignment(cfg, &ckpt, ctx.rank, asg.clone());
            let mut rng = DetRng::from_state(ckpt.rng_state);
            let comm = ctx.world.clone();
            let mut losses = Vec::new();
            for step in ckpt.step..steps {
                ctx.set_step(step);
                comm.set_step(step);
                let step_seed = rng.next_u64();
                let batch = step_batch(cfg, step_seed, comm.rank());
                let loss = model.train_step(&batch, &comm, &mut ctx.clock).unwrap();
                losses.push((step, loss));
            }
            losses
        })
    };
    for (rank, r) in reference.iter().enumerate() {
        assert_eq!(
            bits(&reports[rank].losses[4..]),
            bits(r),
            "rank {rank}: post-migration trajectory must match a fresh run \
             started in the migrated layout"
        );
    }
}

#[test]
fn bench_elastic_smoke_writes_and_gates_its_report() {
    let bin = env!("CARGO_BIN_EXE_xmoe-cli");
    let dir = std::env::temp_dir().join(format!("xmoe_bench_elastic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_elastic.json");

    let run = std::process::Command::new(bin)
        .args(["bench", "elastic", "--smoke", "--out"])
        .arg(&out)
        .output()
        .expect("bench elastic runs");
    assert!(
        run.status.success(),
        "bench elastic exited nonzero:\n{}{}",
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&run.stderr)
    );
    let text = std::fs::read_to_string(&out).unwrap();
    for key in [
        "join_mttr_s",
        "world_after",
        "skewed_step_s",
        "rebalanced_step_s",
        "migration_bytes",
    ] {
        assert!(text.contains(key), "BENCH_elastic.json missing {key}");
    }

    let validate = std::process::Command::new(bin)
        .args(["bench", "elastic", "--validate"])
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        validate.status.success(),
        "self-written report must validate:\n{}",
        String::from_utf8_lossy(&validate.stderr)
    );

    // The gate is live: inflate the rebalanced step time past the skewed
    // baseline and the validator must reject the file.
    let broken = text.replace("\"rebalanced_step_s\": ", "\"rebalanced_step_s\": 9");
    assert_ne!(broken, text, "tamper target key present");
    std::fs::write(&out, broken).unwrap();
    let invalid = std::process::Command::new(bin)
        .args(["bench", "elastic", "--validate"])
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        !invalid.status.success(),
        "a rebalance slower than the skewed baseline must fail validation"
    );
    std::fs::remove_dir_all(&dir).ok();
}
