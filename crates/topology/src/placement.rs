//! Process-grid placement: EP-first vs DP-first (paper Appendix C.1).
//!
//! Combining expert parallelism (EP) and data parallelism (DP) over the same
//! GPUs forces a locality trade-off:
//!
//! * **EP-first** packs one full expert set into consecutive ranks (within a
//!   node when EP size ≤ node size) and replicates that set across nodes —
//!   token routing (all-to-all) stays local, gradient synchronization
//!   (all-reduce) crosses nodes.
//! * **DP-first** packs the replicas of each expert into consecutive ranks
//!   and spreads distinct experts across nodes — gradient sync stays local,
//!   token routing crosses nodes.
//!
//! The paper shows DP-first wins for large MoEs on Frontier because DP
//! volume is linear in parameters while EP volume is linear in tokens.
//! [`build_grid`] realizes both layouts; an optional innermost TP dimension
//! supports the SSMB/TED analyses.

/// Which parallel dimension varies fastest across consecutive global ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// EP varies fastest: ranks `[g*ep, (g+1)*ep)` form EP group `g`
    /// (DeepSpeed-MoE's default layout).
    EpFirst,
    /// DP varies fastest: consecutive ranks hold replicas of the same
    /// experts; EP groups stride by the DP size (X-MoE's layout on Frontier).
    DpFirst,
}

/// The rank groups of a (TP ×) EP × DP process grid.
#[derive(Clone, Debug)]
pub struct ProcessGrid {
    /// Global rank count.
    pub n_ranks: usize,
    /// Tensor-parallel group size (1 = no TP). TP is always innermost
    /// (consecutive ranks), because TP all-reduces are per-microbatch and
    /// must use the fastest links.
    pub tp_size: usize,
    pub ep_size: usize,
    pub dp_size: usize,
    pub policy: PlacementPolicy,
    /// `ep_groups[g]` lists the global ranks forming EP group `g` (each
    /// entry represents a TP group leader when `tp_size > 1`).
    pub ep_groups: Vec<Vec<usize>>,
    /// `dp_groups[g]` lists the ranks that hold replicas of the same expert
    /// shard and all-reduce gradients together.
    pub dp_groups: Vec<Vec<usize>>,
    /// `tp_groups[g]` lists the consecutive ranks of each TP group.
    pub tp_groups: Vec<Vec<usize>>,
}

/// Build an EP × DP grid over `n_ranks` GPUs (no TP).
pub fn build_grid(n_ranks: usize, ep_size: usize, policy: PlacementPolicy) -> ProcessGrid {
    build_grid_tp(n_ranks, 1, ep_size, policy)
}

/// Build a TP × EP × DP grid. `n_ranks` must equal
/// `tp_size * ep_size * dp_size` for some integer `dp_size >= 1`.
pub fn build_grid_tp(
    n_ranks: usize,
    tp_size: usize,
    ep_size: usize,
    policy: PlacementPolicy,
) -> ProcessGrid {
    assert!(tp_size >= 1 && ep_size >= 1, "grid dims must be positive");
    assert_eq!(
        n_ranks % (tp_size * ep_size),
        0,
        "{} ranks not divisible by tp {} x ep {}",
        n_ranks,
        tp_size,
        ep_size
    );
    let dp_size = n_ranks / (tp_size * ep_size);
    let leaders = n_ranks / tp_size; // one logical worker per TP group

    // Leader index l -> (ep position, dp position) per policy.
    type PosFn = Box<dyn Fn(usize) -> usize>;
    let (ep_of, dp_of): (PosFn, PosFn) = match policy {
        PlacementPolicy::EpFirst => (
            Box::new(move |l: usize| l % ep_size),
            Box::new(move |l: usize| l / ep_size),
        ),
        PlacementPolicy::DpFirst => (
            Box::new(move |l: usize| l / dp_size),
            Box::new(move |l: usize| l % dp_size),
        ),
    };

    let mut ep_groups = vec![Vec::with_capacity(ep_size); dp_size];
    let mut dp_groups = vec![Vec::with_capacity(dp_size); ep_size];
    for l in 0..leaders {
        let rank = l * tp_size; // TP-group leader rank
        ep_groups[dp_of(l)].push(rank);
        dp_groups[ep_of(l)].push(rank);
    }
    for g in &mut ep_groups {
        g.sort_unstable_by_key(|&r| ep_of(r / tp_size));
    }
    for g in &mut dp_groups {
        g.sort_unstable_by_key(|&r| dp_of(r / tp_size));
    }

    let tp_groups = (0..leaders)
        .map(|l| (l * tp_size..(l + 1) * tp_size).collect())
        .collect();

    ProcessGrid {
        n_ranks,
        tp_size,
        ep_size,
        dp_size,
        policy,
        ep_groups,
        dp_groups,
        tp_groups,
    }
}

/// Build an EP × DP grid over the survivors of a partial failure: the ranks
/// of `excluded` (a failed node, typically) are dropped and the remaining
/// *original* global ranks are packed into a fresh grid in ascending order.
///
/// Group members are original global rank ids, so a survivor can look up its
/// post-recovery EP/DP peers with [`ProcessGrid::ep_group_of`] before the
/// shrunken communicator even exists; its new dense rank is its position in
/// the survivor list. The survivor count must still be divisible by
/// `ep_size` — elastic recovery drops whole nodes so the expert shards stay
/// rebalanceable.
pub fn build_grid_excluding(
    n_ranks: usize,
    excluded: &[usize],
    ep_size: usize,
    policy: PlacementPolicy,
) -> ProcessGrid {
    let survivors: Vec<usize> = (0..n_ranks).filter(|r| !excluded.contains(r)).collect();
    assert!(
        !survivors.is_empty(),
        "cannot build a grid with every rank excluded"
    );
    let mut grid = build_grid(survivors.len(), ep_size, policy);
    for groups in [
        &mut grid.ep_groups,
        &mut grid.dp_groups,
        &mut grid.tp_groups,
    ] {
        for grp in groups.iter_mut() {
            for r in grp.iter_mut() {
                *r = survivors[*r];
            }
        }
    }
    grid
}

impl ProcessGrid {
    /// EP group (by index) that contains `rank`'s TP leader.
    pub fn ep_group_of(&self, rank: usize) -> &[usize] {
        let leader = rank / self.tp_size * self.tp_size;
        self.ep_groups
            .iter()
            .find(|g| g.contains(&leader))
            .map(|g| g.as_slice())
            .expect("rank not in any EP group")
    }

    /// DP group that contains `rank`'s TP leader.
    pub fn dp_group_of(&self, rank: usize) -> &[usize] {
        let leader = rank / self.tp_size * self.tp_size;
        self.dp_groups
            .iter()
            .find(|g| g.contains(&leader))
            .map(|g| g.as_slice())
            .expect("rank not in any DP group")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_first_groups_are_consecutive() {
        let g = build_grid(16, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.dp_size, 4);
        assert_eq!(g.ep_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[3], vec![12, 13, 14, 15]);
        assert_eq!(g.dp_groups[0], vec![0, 4, 8, 12]);
    }

    #[test]
    fn dp_first_groups_are_strided() {
        let g = build_grid(16, 4, PlacementPolicy::DpFirst);
        assert_eq!(g.dp_size, 4);
        assert_eq!(g.dp_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[0], vec![0, 4, 8, 12]);
    }

    #[test]
    fn every_rank_in_exactly_one_ep_and_dp_group() {
        for policy in [PlacementPolicy::EpFirst, PlacementPolicy::DpFirst] {
            let g = build_grid(64, 8, policy);
            let mut seen_ep = vec![0usize; 64];
            for grp in &g.ep_groups {
                assert_eq!(grp.len(), 8);
                for &r in grp {
                    seen_ep[r] += 1;
                }
            }
            let mut seen_dp = vec![0usize; 64];
            for grp in &g.dp_groups {
                assert_eq!(grp.len(), 8);
                for &r in grp {
                    seen_dp[r] += 1;
                }
            }
            assert!(seen_ep.iter().all(|&c| c == 1));
            assert!(seen_dp.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn appendix_c_example_8_nodes_8_gpus() {
        // 64 GPUs, 8 experts, EP=8 (paper's concrete example).
        // EP-first: all 8 experts within each node.
        let ep_first = build_grid(64, 8, PlacementPolicy::EpFirst);
        for grp in &ep_first.ep_groups {
            let node0 = grp[0] / 8;
            assert!(
                grp.iter().all(|&r| r / 8 == node0),
                "EP group spans nodes: {grp:?}"
            );
        }
        // DP-first: each node holds 8 replicas of one expert shard.
        let dp_first = build_grid(64, 8, PlacementPolicy::DpFirst);
        for grp in &dp_first.dp_groups {
            let node0 = grp[0] / 8;
            assert!(
                grp.iter().all(|&r| r / 8 == node0),
                "DP group spans nodes: {grp:?}"
            );
        }
    }

    #[test]
    fn tp_groups_are_innermost_consecutive() {
        let g = build_grid_tp(32, 2, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.dp_size, 4);
        assert_eq!(g.tp_groups[0], vec![0, 1]);
        assert_eq!(g.tp_groups[5], vec![10, 11]);
        // EP groups contain TP leaders only.
        assert_eq!(g.ep_groups[0], vec![0, 2, 4, 6]);
    }

    #[test]
    fn group_lookup_by_rank() {
        let g = build_grid(16, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.ep_group_of(5), &[4, 5, 6, 7]);
        assert_eq!(g.dp_group_of(5), &[1, 5, 9, 13]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_non_divisible_grid() {
        let _ = build_grid(10, 4, PlacementPolicy::EpFirst);
    }

    #[test]
    fn degenerate_single_group_grids() {
        // All ranks in one TP group: one logical worker, EP = DP = 1.
        let g = build_grid_tp(8, 8, 1, PlacementPolicy::EpFirst);
        assert_eq!((g.ep_size, g.dp_size), (1, 1));
        assert_eq!(g.tp_groups, vec![(0..8).collect::<Vec<usize>>()]);
        assert_eq!(g.ep_groups, vec![vec![0]]);
        // All ranks in one EP group: a single-node cluster with no replicas.
        let g = build_grid_tp(8, 1, 8, PlacementPolicy::DpFirst);
        assert_eq!((g.tp_size, g.dp_size), (1, 1));
        assert_eq!(g.ep_groups, vec![(0..8).collect::<Vec<usize>>()]);
        for r in 0..8 {
            assert_eq!(g.dp_group_of(r), &[r]);
        }
    }

    #[test]
    fn excluding_a_node_rebuilds_over_survivors() {
        // 16 ranks = 2 Frontier nodes; node 1 (ranks 8..16) fails.
        let excluded: Vec<usize> = (8..16).collect();
        let g = build_grid_excluding(16, &excluded, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.n_ranks, 8);
        assert_eq!(g.dp_size, 2);
        assert_eq!(g.ep_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[1], vec![4, 5, 6, 7]);
        for r in 0..8 {
            assert!(g.ep_group_of(r).contains(&r));
        }
    }

    #[test]
    fn excluding_interior_ranks_keeps_global_ids() {
        // Drop node 0 of a 2-node cluster: survivors keep ids 8..16.
        let excluded: Vec<usize> = (0..8).collect();
        let g = build_grid_excluding(16, &excluded, 4, PlacementPolicy::DpFirst);
        assert_eq!(g.ep_groups[0], vec![8, 10, 12, 14]);
        assert_eq!(g.dp_groups[0], vec![8, 9]);
        assert_eq!(g.ep_group_of(12), &[8, 10, 12, 14]);
        let all: Vec<usize> = g.ep_groups.iter().flatten().copied().collect();
        assert!(all.iter().all(|r| (8..16).contains(r)));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn excluding_rejects_unbalanced_survivors() {
        let _ = build_grid_excluding(16, &[3], 4, PlacementPolicy::EpFirst);
    }
}
