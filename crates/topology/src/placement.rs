//! Placement: process grids (paper Appendix C.1) and expert→rank
//! placement solved from observed routing histograms (MoETuner-style).
//!
//! Combining expert parallelism (EP) and data parallelism (DP) over the same
//! GPUs forces a locality trade-off:
//!
//! * **EP-first** packs one full expert set into consecutive ranks (within a
//!   node when EP size ≤ node size) and replicates that set across nodes —
//!   token routing (all-to-all) stays local, gradient synchronization
//!   (all-reduce) crosses nodes.
//! * **DP-first** packs the replicas of each expert into consecutive ranks
//!   and spreads distinct experts across nodes — gradient sync stays local,
//!   token routing crosses nodes.
//!
//! The paper shows DP-first wins for large MoEs on Frontier because DP
//! volume is linear in parameters while EP volume is linear in tokens.
//! [`build_grid`] realizes both layouts; an optional innermost TP dimension
//! supports the SSMB/TED analyses.

/// Which parallel dimension varies fastest across consecutive global ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// EP varies fastest: ranks `[g*ep, (g+1)*ep)` form EP group `g`
    /// (DeepSpeed-MoE's default layout).
    EpFirst,
    /// DP varies fastest: consecutive ranks hold replicas of the same
    /// experts; EP groups stride by the DP size (X-MoE's layout on Frontier).
    DpFirst,
}

/// The rank groups of a (TP ×) EP × DP process grid.
#[derive(Clone, Debug)]
pub struct ProcessGrid {
    /// Global rank count.
    pub n_ranks: usize,
    /// Tensor-parallel group size (1 = no TP). TP is always innermost
    /// (consecutive ranks), because TP all-reduces are per-microbatch and
    /// must use the fastest links.
    pub tp_size: usize,
    pub ep_size: usize,
    pub dp_size: usize,
    pub policy: PlacementPolicy,
    /// `ep_groups[g]` lists the global ranks forming EP group `g` (each
    /// entry represents a TP group leader when `tp_size > 1`).
    pub ep_groups: Vec<Vec<usize>>,
    /// `dp_groups[g]` lists the ranks that hold replicas of the same expert
    /// shard and all-reduce gradients together.
    pub dp_groups: Vec<Vec<usize>>,
    /// `tp_groups[g]` lists the consecutive ranks of each TP group.
    pub tp_groups: Vec<Vec<usize>>,
}

/// Build an EP × DP grid over `n_ranks` GPUs (no TP).
pub fn build_grid(n_ranks: usize, ep_size: usize, policy: PlacementPolicy) -> ProcessGrid {
    build_grid_tp(n_ranks, 1, ep_size, policy)
}

/// Build a TP × EP × DP grid. `n_ranks` must equal
/// `tp_size * ep_size * dp_size` for some integer `dp_size >= 1`.
pub fn build_grid_tp(
    n_ranks: usize,
    tp_size: usize,
    ep_size: usize,
    policy: PlacementPolicy,
) -> ProcessGrid {
    assert!(tp_size >= 1 && ep_size >= 1, "grid dims must be positive");
    assert_eq!(
        n_ranks % (tp_size * ep_size),
        0,
        "{} ranks not divisible by tp {} x ep {}",
        n_ranks,
        tp_size,
        ep_size
    );
    let dp_size = n_ranks / (tp_size * ep_size);
    let leaders = n_ranks / tp_size; // one logical worker per TP group

    // Leader index l -> (ep position, dp position) per policy.
    type PosFn = Box<dyn Fn(usize) -> usize>;
    let (ep_of, dp_of): (PosFn, PosFn) = match policy {
        PlacementPolicy::EpFirst => (
            Box::new(move |l: usize| l % ep_size),
            Box::new(move |l: usize| l / ep_size),
        ),
        PlacementPolicy::DpFirst => (
            Box::new(move |l: usize| l / dp_size),
            Box::new(move |l: usize| l % dp_size),
        ),
    };

    let mut ep_groups = vec![Vec::with_capacity(ep_size); dp_size];
    let mut dp_groups = vec![Vec::with_capacity(dp_size); ep_size];
    for l in 0..leaders {
        let rank = l * tp_size; // TP-group leader rank
        ep_groups[dp_of(l)].push(rank);
        dp_groups[ep_of(l)].push(rank);
    }
    for g in &mut ep_groups {
        g.sort_unstable_by_key(|&r| ep_of(r / tp_size));
    }
    for g in &mut dp_groups {
        g.sort_unstable_by_key(|&r| dp_of(r / tp_size));
    }

    let tp_groups = (0..leaders)
        .map(|l| (l * tp_size..(l + 1) * tp_size).collect())
        .collect();

    ProcessGrid {
        n_ranks,
        tp_size,
        ep_size,
        dp_size,
        policy,
        ep_groups,
        dp_groups,
        tp_groups,
    }
}

/// Build an EP × DP grid over the survivors of a partial failure: the ranks
/// of `excluded` (a failed node, typically) are dropped and the remaining
/// *original* global ranks are packed into a fresh grid in ascending order.
///
/// Group members are original global rank ids, so a survivor can look up its
/// post-recovery EP/DP peers with [`ProcessGrid::ep_group_of`] before the
/// shrunken communicator even exists; its new dense rank is its position in
/// the survivor list. The survivor count must still be divisible by
/// `ep_size` — elastic recovery drops whole nodes so the expert shards stay
/// rebalanceable.
pub fn build_grid_excluding(
    n_ranks: usize,
    excluded: &[usize],
    ep_size: usize,
    policy: PlacementPolicy,
) -> ProcessGrid {
    let survivors: Vec<usize> = (0..n_ranks).filter(|r| !excluded.contains(r)).collect();
    assert!(
        !survivors.is_empty(),
        "cannot build a grid with every rank excluded"
    );
    let mut grid = build_grid(survivors.len(), ep_size, policy);
    for groups in [
        &mut grid.ep_groups,
        &mut grid.dp_groups,
        &mut grid.tp_groups,
    ] {
        for grp in groups.iter_mut() {
            for r in grp.iter_mut() {
                *r = survivors[*r];
            }
        }
    }
    grid
}

/// Build an EP × DP grid over an explicit member list — the dual of
/// [`build_grid_excluding`], used when ranks *join* mid-run: the present
/// ranks (survivors plus joiners, original global ids, any order) are
/// packed into a fresh grid in ascending order. As with the excluding
/// variant, group members are original global ids and a member's dense
/// rank is its position in the sorted member list.
pub fn build_grid_including(
    present: &[usize],
    ep_size: usize,
    policy: PlacementPolicy,
) -> ProcessGrid {
    let mut members: Vec<usize> = present.to_vec();
    members.sort_unstable();
    members.dedup();
    assert!(
        !members.is_empty(),
        "cannot build a grid with no member ranks"
    );
    let mut grid = build_grid(members.len(), ep_size, policy);
    for groups in [
        &mut grid.ep_groups,
        &mut grid.dp_groups,
        &mut grid.tp_groups,
    ] {
        for grp in groups.iter_mut() {
            for r in grp.iter_mut() {
                *r = members[*r];
            }
        }
    }
    grid
}

impl ProcessGrid {
    /// EP group (by index) that contains `rank`'s TP leader.
    pub fn ep_group_of(&self, rank: usize) -> &[usize] {
        let leader = rank / self.tp_size * self.tp_size;
        self.ep_groups
            .iter()
            .find(|g| g.contains(&leader))
            .map(|g| g.as_slice())
            .expect("rank not in any EP group")
    }

    /// DP group that contains `rank`'s TP leader.
    pub fn dp_group_of(&self, rank: usize) -> &[usize] {
        let leader = rank / self.tp_size * self.tp_size;
        self.dp_groups
            .iter()
            .find(|g| g.contains(&leader))
            .map(|g| g.as_slice())
            .expect("rank not in any DP group")
    }
}

// ---------------------------------------------------------------------
// Expert → rank placement from observed routing histograms (MoETuner-style:
// balance expert load across ranks and pack co-activated experts onto the
// same node so hierarchical dispatch sends one copy per node instead of
// one per expert).
// ---------------------------------------------------------------------

use crate::cost::CostModel;

/// An assignment of every global expert to a serving rank. No rank ever
/// holds more than `ceil(n_experts / n_ranks)` experts (the per-rank slot
/// budget), so placements are always applicable by swapping expert
/// weights between ranks. Ragged shapes — an expert count that does not
/// divide the rank count, or fewer experts than ranks — are first-class:
/// round-robin dealing and the solver both respect the ceiling budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpertPlacement {
    /// `expert_to_rank[e]` is the rank holding global expert `e`.
    pub expert_to_rank: Vec<usize>,
    pub n_ranks: usize,
}

impl ExpertPlacement {
    /// The naive round-robin baseline: expert `e` lives on rank
    /// `e % n_ranks` (DeepSpeed-style dealing, ignorant of routing). For
    /// ragged shapes the first `n_experts % n_ranks` ranks hold one more
    /// expert than the rest; with `n_experts < n_ranks` the tail ranks
    /// simply host none.
    pub fn naive(n_experts: usize, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "placement needs at least one rank");
        Self {
            expert_to_rank: (0..n_experts).map(|e| e % n_ranks).collect(),
            n_ranks,
        }
    }

    pub fn n_experts(&self) -> usize {
        self.expert_to_rank.len()
    }

    /// Per-rank slot budget: the most experts any rank may host
    /// (`ceil(n_experts / n_ranks)`; equals the exact per-rank count when
    /// the shape divides evenly).
    pub fn experts_per_rank(&self) -> usize {
        self.expert_to_rank.len().div_ceil(self.n_ranks)
    }

    pub fn rank_of(&self, expert: usize) -> usize {
        self.expert_to_rank[expert]
    }

    /// Experts hosted on `rank`, ascending.
    pub fn experts_on(&self, rank: usize) -> Vec<usize> {
        (0..self.n_experts())
            .filter(|&e| self.expert_to_rank[e] == rank)
            .collect()
    }

    /// Number of experts whose rank differs between two placements (the
    /// migration volume applying the new placement must move).
    pub fn migrated_experts(&self, other: &ExpertPlacement) -> usize {
        assert_eq!(self.n_experts(), other.n_experts());
        self.expert_to_rank
            .iter()
            .zip(&other.expert_to_rank)
            .filter(|(a, b)| a != b)
            .count()
    }
}

/// One observed token route: the source rank it was served on and the
/// expert set its top-k gating selected.
#[derive(Clone, Debug)]
pub struct RouteSample {
    pub src_rank: u32,
    pub experts: Vec<u16>,
}

/// Live routing statistics collected over a profiling window: per-expert
/// loads plus a sample of full token routes (the co-activation structure
/// the per-expert marginals cannot express). `total_routed` counts every
/// (token, expert) pair in the window; the samples are scaled up by
/// `total_routed / sampled_routed` when pricing, so a capped sample buffer
/// still prices the whole window.
#[derive(Clone, Debug)]
pub struct RoutingHistogram {
    pub n_experts: usize,
    pub n_ranks: usize,
    /// (token, expert) pairs routed to each expert over the window.
    pub expert_load: Vec<u64>,
    /// Sampled token routes (capped; see [`RoutingHistogram::observe`]).
    pub routes: Vec<RouteSample>,
    /// All (token, expert) pairs observed, sampled or not.
    pub total_routed: u64,
    /// (token, expert) pairs covered by `routes`.
    pub sampled_routed: u64,
    max_samples: usize,
}

impl RoutingHistogram {
    /// `max_samples` caps the retained route buffer; loads keep counting
    /// past the cap and pricing rescales accordingly.
    pub fn new(n_experts: usize, n_ranks: usize, max_samples: usize) -> Self {
        assert!(max_samples >= 1, "histogram needs at least one sample slot");
        Self {
            n_experts,
            n_ranks,
            expert_load: vec![0; n_experts],
            routes: Vec::new(),
            total_routed: 0,
            sampled_routed: 0,
            max_samples,
        }
    }

    /// Record one token's route.
    pub fn observe(&mut self, src_rank: usize, experts: &[usize]) {
        for &e in experts {
            debug_assert!(e < self.n_experts);
            self.expert_load[e] += 1;
        }
        self.total_routed += experts.len() as u64;
        if self.routes.len() < self.max_samples {
            self.sampled_routed += experts.len() as u64;
            self.routes.push(RouteSample {
                src_rank: src_rank as u32,
                experts: experts.iter().map(|&e| e as u16).collect(),
            });
        }
    }

    /// Fold another window's statistics into this one (used when a
    /// re-solve wants more history than one window).
    pub fn merge(&mut self, other: &RoutingHistogram) {
        assert_eq!(self.n_experts, other.n_experts);
        for (a, b) in self.expert_load.iter_mut().zip(&other.expert_load) {
            *a += b;
        }
        self.total_routed += other.total_routed;
        for r in &other.routes {
            if self.routes.len() >= self.max_samples {
                break;
            }
            self.sampled_routed += r.experts.len() as u64;
            self.routes.push(r.clone());
        }
    }

    /// Reset for the next profiling window.
    pub fn clear(&mut self) {
        self.expert_load.iter_mut().for_each(|l| *l = 0);
        self.routes.clear();
        self.total_routed = 0;
        self.sampled_routed = 0;
    }

    /// Max-over-mean expert load: 1.0 = perfectly uniform routing. The
    /// drift statistic the serving engine feeds its spike detector.
    pub fn skew(&self) -> f64 {
        let total: u64 = self.expert_load.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.expert_load.iter().max().unwrap() as f64;
        max / (total as f64 / self.n_experts as f64)
    }

    /// Scale factor from the sampled routes to the full window.
    fn sample_scale(&self) -> f64 {
        if self.sampled_routed == 0 {
            0.0
        } else {
            self.total_routed as f64 / self.sampled_routed as f64
        }
    }

    /// Upper-triangular co-activation counts over the sampled routes:
    /// `co[a * E + b]` (a < b) = tokens that selected both experts.
    fn coactivation(&self) -> Vec<u32> {
        let e = self.n_experts;
        let mut co = vec![0u32; e * e];
        for r in &self.routes {
            for (i, &a) in r.experts.iter().enumerate() {
                for &b in &r.experts[i + 1..] {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    co[lo as usize * e + hi as usize] += 1;
                }
            }
        }
        co
    }
}

/// The priced consequences of one placement under one histogram.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlacementCost {
    /// Bytes crossing a node boundary per window (hierarchical dispatch:
    /// one copy per destination *node* per token, then free intra-node
    /// fan-out to the expert ranks on arrival's cheap links).
    pub off_node_bytes: u64,
    /// Priced time of the window's dispatch all-to-all (the combine is its
    /// mirror image, so total a2a time is twice this).
    pub dispatch_time: f64,
    /// Max over ranks of hosted (token, expert) pairs — the expert-compute
    /// straggler.
    pub max_rank_load: u64,
}

/// Price a placement against a histogram on the cost model's topology.
///
/// Dispatch follows the repo's RBD discipline: a token reaches each
/// destination node once, landing on that node's mirror of the source's
/// node-local slot (striped pilots, so receive traffic stays spread over
/// the node's NICs), then fans out over cheap intra-node links — so
/// packing co-activated experts onto one node removes whole inter-node
/// copies. Time prices via [`CostModel::sparse_exchange_time`]: the
/// startup term is per-peer injection overhead, so fewer destination
/// nodes means fewer messages, not just fewer bytes.
pub fn placement_cost(
    placement: &ExpertPlacement,
    hist: &RoutingHistogram,
    cost: &CostModel,
    bytes_per_token: u64,
) -> PlacementCost {
    let topo = cost.topology();
    let n = placement.n_ranks;
    assert!(
        n <= topo.n_ranks(),
        "placement spans {n} ranks but topology has {}",
        topo.n_ranks()
    );
    let scale = hist.sample_scale();
    let gpn = topo.spec().gpus_per_node;
    // Per-(src, dst) token copies under node-dedup dispatch.
    let mut copies = vec![0u64; n * n];
    let mut nodes: Vec<usize> = Vec::with_capacity(8);
    for r in &hist.routes {
        let src = r.src_rank as usize;
        nodes.clear();
        for &e in &r.experts {
            let node = topo.node_of(placement.rank_of(e as usize));
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        for &node in &nodes {
            // Striped pilot: land on this node's mirror of the source slot
            // (clamped for a final partial node).
            let base = node * gpn;
            let dst = base + (src % gpn).min(n - 1 - base);
            copies[src * n + dst] += 1;
        }
    }
    let mut off_node = 0u64;
    for src in 0..n {
        for dst in 0..n {
            if copies[src * n + dst] > 0 && !topo.same_node(src, dst) {
                off_node += copies[src * n + dst] * bytes_per_token;
            }
        }
    }
    let group: Vec<usize> = (0..n).collect();
    let dispatch_time = cost.sparse_exchange_time(&group, &|i, j| {
        (copies[i * n + j] as f64 * scale) as u64 * bytes_per_token
    });
    let mut rank_load = vec![0u64; n];
    for (e, &l) in hist.expert_load.iter().enumerate() {
        rank_load[placement.rank_of(e)] += l;
    }
    PlacementCost {
        off_node_bytes: (off_node as f64 * scale) as u64,
        dispatch_time,
        max_rank_load: rank_load.into_iter().max().unwrap_or(0),
    }
}

/// Solve expert→rank placement from an observed histogram, greedily over
/// the cost model (MoETuner's objective: minimize priced inter-node token
/// traffic while balancing per-rank expert load).
///
/// Two phases, both deterministic (ties break on lowest index, no rng):
///
/// 1. **Node grouping** — experts in descending load order go to the node
///    with the highest co-activation affinity to the experts already
///    grouped there, optionally under a per-node *load* cap on top of the
///    slot capacity. Packing tight (no cap) minimizes off-node copies and
///    message fan-out; capping spreads the NIC drain when a handful of
///    nodes would otherwise absorb all receive traffic. Which wins depends
///    on the histogram, so the solver builds one candidate per cap in a
///    small deterministic portfolio and prices each one.
/// 2. **Rank spreading** — within each node, experts go to the currently
///    least-loaded rank with free slots, so the per-rank NIC drain and
///    expert compute stay balanced.
///
/// Every candidate plus [`ExpertPlacement::naive`] is priced with
/// [`placement_cost`]; the winner is the candidate with the lowest
/// dispatch time, ties broken by off-node bytes then candidate order. The
/// greedy winner is returned only if it is no worse than naive on *both*
/// priced off-node bytes and dispatch time — the solver never degrades
/// either metric.
pub fn optimize_placement(
    hist: &RoutingHistogram,
    cost: &CostModel,
    bytes_per_token: u64,
) -> ExpertPlacement {
    let e = hist.n_experts;
    let n = hist.n_ranks;
    let naive = ExpertPlacement::naive(e, n);
    if n == 1 {
        return naive;
    }
    // Per-rank slot budget. `e / n` would under-count ragged shapes: with
    // 10 experts on 8 ranks it left every node's capacity at its floor and
    // the grouping loop ran out of slots before placing every expert (and
    // with e < n it was zero, so *no* expert had anywhere to go).
    let slot_budget = e.div_ceil(n);
    let topo = cost.topology();
    // Node index of each rank and per-node rank lists.
    let n_nodes = topo.node_of(n - 1) + 1;
    let mut node_ranks: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for r in 0..n {
        node_ranks[topo.node_of(r)].push(r);
    }
    let co = hist.coactivation();
    let node_cap: Vec<usize> = node_ranks.iter().map(|rs| rs.len() * slot_budget).collect();
    let total_load: u64 = hist.expert_load.iter().sum();
    let mut order: Vec<usize> = (0..e).collect();
    order.sort_by_key(|&x| (std::cmp::Reverse(hist.expert_load[x]), x));

    // Phase 1 for one capacity factor: group experts onto nodes by
    // co-activation affinity, load-capped at `factor` × the uniform share
    // (None = slot capacity only).
    let group_onto_nodes = |factor: Option<f64>| -> Vec<Vec<usize>> {
        let load_cap = factor
            .map(|f| (total_load as f64 / n_nodes as f64 * f).ceil() as u64)
            .unwrap_or(u64::MAX);
        let mut node_members: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
        let mut node_load = vec![0u64; n_nodes];
        for &x in &order {
            let l = hist.expert_load[x];
            let mut best: Option<(f64, usize)> = None;
            let mut best_any: Option<(f64, usize)> = None;
            for (node, members) in node_members.iter().enumerate() {
                if members.len() >= node_cap[node] {
                    continue;
                }
                let affinity: f64 = members
                    .iter()
                    .map(|&m| {
                        let (lo, hi) = if m < x { (m, x) } else { (x, m) };
                        co[lo * e + hi] as f64
                    })
                    .sum();
                // Slight preference for load-lighter nodes on equal
                // affinity keeps cold experts spread instead of piling
                // after the hot set. `total_load` is 0 only for an empty
                // histogram, where every load term is 0 anyway.
                let balance = node_load[node] as f64 / (total_load.max(1)) as f64;
                let score = affinity - 1e-9 * balance;
                if node_load[node] + l <= load_cap && best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, node));
                }
                if best_any.is_none_or(|(b, _)| score > b) {
                    best_any = Some((score, node));
                }
            }
            // Fall back to ignoring the load cap when every node with free
            // slots is over it (degenerate single-hot-expert histograms).
            let (_, node) = best
                .or(best_any)
                .expect("capacities sum to the expert count");
            node_members[node].push(x);
            node_load[node] += l;
        }
        node_members
    };

    // Phase 2: spread each node's experts over its ranks, least-loaded
    // first, so hot experts land on distinct NICs.
    let spread_over_ranks = |node_members: Vec<Vec<usize>>| -> ExpertPlacement {
        let mut expert_to_rank = vec![usize::MAX; e];
        for (node, members) in node_members.iter().enumerate() {
            let ranks = &node_ranks[node];
            let mut load = vec![0u64; ranks.len()];
            let mut slots = vec![slot_budget; ranks.len()];
            let mut ms = members.clone();
            ms.sort_by_key(|&x| (std::cmp::Reverse(hist.expert_load[x]), x));
            for x in ms {
                let (i, _) = load
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| slots[i] > 0)
                    .min_by_key(|&(i, &l)| (l, i))
                    .expect("node capacity covers its members");
                expert_to_rank[x] = ranks[i];
                load[i] += hist.expert_load[x];
                slots[i] -= 1;
            }
        }
        ExpertPlacement {
            expert_to_rank,
            n_ranks: n,
        }
    };

    // Portfolio: tight packing plus progressively stricter drain-balancing
    // caps; price each and keep the fastest (ties: fewest off-node bytes,
    // then earliest candidate).
    let mut winner: Option<(f64, u64, ExpertPlacement)> = None;
    for factor in [None, Some(2.0), Some(1.5), Some(1.25)] {
        let candidate = spread_over_ranks(group_onto_nodes(factor));
        let c = placement_cost(&candidate, hist, cost, bytes_per_token);
        let better = winner
            .as_ref()
            .is_none_or(|&(t, b, _)| (c.dispatch_time, c.off_node_bytes) < (t, b));
        if better {
            winner = Some((c.dispatch_time, c.off_node_bytes, candidate));
        }
    }
    let (t_opt, b_opt, optimized) = winner.expect("portfolio is non-empty");

    // Accept only if no worse than naive on both priced metrics.
    let c_naive = placement_cost(&naive, hist, cost, bytes_per_token);
    if b_opt <= c_naive.off_node_bytes && t_opt <= c_naive.dispatch_time {
        optimized
    } else {
        naive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_first_groups_are_consecutive() {
        let g = build_grid(16, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.dp_size, 4);
        assert_eq!(g.ep_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[3], vec![12, 13, 14, 15]);
        assert_eq!(g.dp_groups[0], vec![0, 4, 8, 12]);
    }

    #[test]
    fn dp_first_groups_are_strided() {
        let g = build_grid(16, 4, PlacementPolicy::DpFirst);
        assert_eq!(g.dp_size, 4);
        assert_eq!(g.dp_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[0], vec![0, 4, 8, 12]);
    }

    #[test]
    fn every_rank_in_exactly_one_ep_and_dp_group() {
        for policy in [PlacementPolicy::EpFirst, PlacementPolicy::DpFirst] {
            let g = build_grid(64, 8, policy);
            let mut seen_ep = vec![0usize; 64];
            for grp in &g.ep_groups {
                assert_eq!(grp.len(), 8);
                for &r in grp {
                    seen_ep[r] += 1;
                }
            }
            let mut seen_dp = vec![0usize; 64];
            for grp in &g.dp_groups {
                assert_eq!(grp.len(), 8);
                for &r in grp {
                    seen_dp[r] += 1;
                }
            }
            assert!(seen_ep.iter().all(|&c| c == 1));
            assert!(seen_dp.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn appendix_c_example_8_nodes_8_gpus() {
        // 64 GPUs, 8 experts, EP=8 (paper's concrete example).
        // EP-first: all 8 experts within each node.
        let ep_first = build_grid(64, 8, PlacementPolicy::EpFirst);
        for grp in &ep_first.ep_groups {
            let node0 = grp[0] / 8;
            assert!(
                grp.iter().all(|&r| r / 8 == node0),
                "EP group spans nodes: {grp:?}"
            );
        }
        // DP-first: each node holds 8 replicas of one expert shard.
        let dp_first = build_grid(64, 8, PlacementPolicy::DpFirst);
        for grp in &dp_first.dp_groups {
            let node0 = grp[0] / 8;
            assert!(
                grp.iter().all(|&r| r / 8 == node0),
                "DP group spans nodes: {grp:?}"
            );
        }
    }

    #[test]
    fn tp_groups_are_innermost_consecutive() {
        let g = build_grid_tp(32, 2, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.dp_size, 4);
        assert_eq!(g.tp_groups[0], vec![0, 1]);
        assert_eq!(g.tp_groups[5], vec![10, 11]);
        // EP groups contain TP leaders only.
        assert_eq!(g.ep_groups[0], vec![0, 2, 4, 6]);
    }

    #[test]
    fn group_lookup_by_rank() {
        let g = build_grid(16, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.ep_group_of(5), &[4, 5, 6, 7]);
        assert_eq!(g.dp_group_of(5), &[1, 5, 9, 13]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_non_divisible_grid() {
        let _ = build_grid(10, 4, PlacementPolicy::EpFirst);
    }

    #[test]
    fn degenerate_single_group_grids() {
        // All ranks in one TP group: one logical worker, EP = DP = 1.
        let g = build_grid_tp(8, 8, 1, PlacementPolicy::EpFirst);
        assert_eq!((g.ep_size, g.dp_size), (1, 1));
        assert_eq!(g.tp_groups, vec![(0..8).collect::<Vec<usize>>()]);
        assert_eq!(g.ep_groups, vec![vec![0]]);
        // All ranks in one EP group: a single-node cluster with no replicas.
        let g = build_grid_tp(8, 1, 8, PlacementPolicy::DpFirst);
        assert_eq!((g.tp_size, g.dp_size), (1, 1));
        assert_eq!(g.ep_groups, vec![(0..8).collect::<Vec<usize>>()]);
        for r in 0..8 {
            assert_eq!(g.dp_group_of(r), &[r]);
        }
    }

    #[test]
    fn excluding_a_node_rebuilds_over_survivors() {
        // 16 ranks = 2 Frontier nodes; node 1 (ranks 8..16) fails.
        let excluded: Vec<usize> = (8..16).collect();
        let g = build_grid_excluding(16, &excluded, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.n_ranks, 8);
        assert_eq!(g.dp_size, 2);
        assert_eq!(g.ep_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[1], vec![4, 5, 6, 7]);
        for r in 0..8 {
            assert!(g.ep_group_of(r).contains(&r));
        }
    }

    #[test]
    fn excluding_interior_ranks_keeps_global_ids() {
        // Drop node 0 of a 2-node cluster: survivors keep ids 8..16.
        let excluded: Vec<usize> = (0..8).collect();
        let g = build_grid_excluding(16, &excluded, 4, PlacementPolicy::DpFirst);
        assert_eq!(g.ep_groups[0], vec![8, 10, 12, 14]);
        assert_eq!(g.dp_groups[0], vec![8, 9]);
        assert_eq!(g.ep_group_of(12), &[8, 10, 12, 14]);
        let all: Vec<usize> = g.ep_groups.iter().flatten().copied().collect();
        assert!(all.iter().all(|r| (8..16).contains(r)));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn excluding_rejects_unbalanced_survivors() {
        let _ = build_grid_excluding(16, &[3], 4, PlacementPolicy::EpFirst);
    }

    #[test]
    fn including_is_the_dual_of_excluding() {
        // The survivors of a node-1 failure plus the returning ranks must
        // rebuild the same grid as the original full world.
        let excluded: Vec<usize> = (8..16).collect();
        let shrunk = build_grid_excluding(16, &excluded, 4, PlacementPolicy::EpFirst);
        let present: Vec<usize> = (0..16).collect();
        let regrown = build_grid_including(&present, 4, PlacementPolicy::EpFirst);
        let full = build_grid(16, 4, PlacementPolicy::EpFirst);
        assert_eq!(regrown.ep_groups, full.ep_groups);
        assert_eq!(regrown.dp_groups, full.dp_groups);
        assert_eq!(shrunk.n_ranks, 8);

        // Partial regrowth keeps original global ids, like the excluding
        // variant: ranks {0..4} ∪ {8..12} form a 2-group EP grid.
        let present: Vec<usize> = (0..4).chain(8..12).collect();
        let g = build_grid_including(&present, 4, PlacementPolicy::EpFirst);
        assert_eq!(g.n_ranks, 8);
        assert_eq!(g.ep_groups[0], vec![0, 1, 2, 3]);
        assert_eq!(g.ep_groups[1], vec![8, 9, 10, 11]);
        // Member order and duplicates don't matter.
        let shuffled: Vec<usize> = vec![11, 0, 8, 3, 2, 9, 1, 10, 0];
        let g2 = build_grid_including(&shuffled, 4, PlacementPolicy::EpFirst);
        assert_eq!(g2.ep_groups, g.ep_groups);
    }

    // --- expert placement from routing histograms ---

    use crate::{ClusterTopology, CongestionModel, CostModel, MachineSpec};
    use xmoe_tensor::DetRng;

    fn frontier_cost(n_ranks: usize) -> CostModel {
        CostModel::new(ClusterTopology::new(MachineSpec::frontier(), n_ranks))
            .with_congestion(CongestionModel::none())
    }

    /// Synthetic skewed histogram: expert popularity follows a seeded
    /// exponential decay over a seeded *permutation* of expert ids, so hot
    /// experts are scattered across ranks under naive round-robin. Tokens
    /// co-select `k` consecutive experts in popularity space (strong
    /// co-activation structure for the optimizer to exploit).
    fn skewed_hist(
        n_experts: usize,
        n_ranks: usize,
        k: usize,
        seed: u64,
        tokens: usize,
    ) -> RoutingHistogram {
        let mut rng = DetRng::new(seed);
        let mut perm: Vec<usize> = (0..n_experts).collect();
        rng.shuffle(&mut perm);
        let weights: Vec<f64> = (0..n_experts)
            .map(|i| (-(i as f64) / n_experts as f64 * 6.0).exp())
            .collect();
        let mut hist = RoutingHistogram::new(n_experts, n_ranks, tokens);
        for _ in 0..tokens {
            let src = rng.next_below(n_ranks);
            let hot = rng.sample_weighted(&weights);
            let experts: Vec<usize> = (0..k).map(|j| perm[(hot + j) % n_experts]).collect();
            hist.observe(src, &experts);
        }
        hist
    }

    #[test]
    fn naive_placement_is_round_robin() {
        let p = ExpertPlacement::naive(16, 4);
        assert_eq!(p.rank_of(0), 0);
        assert_eq!(p.rank_of(5), 1);
        assert_eq!(p.experts_on(2), vec![2, 6, 10, 14]);
        assert_eq!(p.experts_per_rank(), 4);
    }

    #[test]
    fn histogram_tracks_loads_skew_and_scaling() {
        let mut h = RoutingHistogram::new(4, 2, 2);
        h.observe(0, &[0, 1]);
        h.observe(1, &[0, 2]);
        h.observe(0, &[0, 3]); // past the sample cap: load counted, route dropped
        assert_eq!(h.expert_load, vec![3, 1, 1, 1]);
        assert_eq!(h.routes.len(), 2);
        assert_eq!(h.total_routed, 6);
        assert_eq!(h.sampled_routed, 4);
        assert!((h.skew() - 2.0).abs() < 1e-12); // max 3 / mean 1.5
        h.clear();
        assert_eq!(h.total_routed, 0);
        assert!((h.skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimized_never_increases_priced_inter_node_traffic() {
        // Sweep seeds and shapes: the fall-back-to-naive guarantee plus the
        // greedy phases must never price worse than round-robin.
        for &(e, n, k) in &[(64usize, 16usize, 4usize), (64, 32, 8), (32, 16, 2)] {
            let cost = frontier_cost(n);
            for seed in 0..5u64 {
                let hist = skewed_hist(e, n, k, 0x5eed + seed, 2000);
                let opt = optimize_placement(&hist, &cost, 4096);
                let naive = ExpertPlacement::naive(e, n);
                let c_opt = placement_cost(&opt, &hist, &cost, 4096);
                let c_naive = placement_cost(&naive, &hist, &cost, 4096);
                assert!(
                    c_opt.off_node_bytes <= c_naive.off_node_bytes,
                    "E={e} N={n} k={k} seed={seed}: opt {} > naive {}",
                    c_opt.off_node_bytes,
                    c_naive.off_node_bytes
                );
                assert!(c_opt.dispatch_time <= c_naive.dispatch_time);
            }
        }
    }

    #[test]
    fn optimized_strictly_beats_naive_under_skew() {
        // The serving-bench gate in miniature: strong co-activation and
        // popularity skew must yield a strict off-node-bytes win.
        let cost = frontier_cost(32);
        let hist = skewed_hist(64, 32, 8, 7, 4000);
        let opt = optimize_placement(&hist, &cost, 4096);
        let c_opt = placement_cost(&opt, &hist, &cost, 4096);
        let c_naive = placement_cost(&ExpertPlacement::naive(64, 32), &hist, &cost, 4096);
        assert!(
            c_opt.off_node_bytes < c_naive.off_node_bytes,
            "expected strict win: opt {} vs naive {}",
            c_opt.off_node_bytes,
            c_naive.off_node_bytes
        );
    }

    #[test]
    fn solver_is_deterministic_for_fixed_seed() {
        let cost = frontier_cost(16);
        let h1 = skewed_hist(64, 16, 4, 42, 1500);
        let h2 = skewed_hist(64, 16, 4, 42, 1500);
        let p1 = optimize_placement(&h1, &cost, 2048);
        let p2 = optimize_placement(&h2, &cost, 2048);
        assert_eq!(p1, p2);
        let c1 = placement_cost(&p1, &h1, &cost, 2048);
        let c2 = placement_cost(&p2, &h2, &cost, 2048);
        assert_eq!(c1.off_node_bytes, c2.off_node_bytes);
        assert_eq!(c1.dispatch_time.to_bits(), c2.dispatch_time.to_bits());
    }

    #[test]
    fn placement_shape_is_always_balanced() {
        let cost = frontier_cost(16);
        let hist = skewed_hist(64, 16, 4, 3, 1000);
        let p = optimize_placement(&hist, &cost, 2048);
        for r in 0..16 {
            assert_eq!(
                p.experts_on(r).len(),
                4,
                "rank {r} must hold exactly 4 experts"
            );
        }
        let mut all: Vec<usize> = p.expert_to_rank.clone();
        all.sort_unstable();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn uniform_histogram_keeps_single_node_local() {
        // All ranks on one node: everything is intra-node, so off-node
        // bytes are zero under any placement and the solver must not panic.
        let cost = frontier_cost(8);
        let mut hist = RoutingHistogram::new(16, 8, 64);
        for t in 0..64usize {
            hist.observe(t % 8, &[t % 16, (t + 1) % 16]);
        }
        let p = optimize_placement(&hist, &cost, 1024);
        let c = placement_cost(&p, &hist, &cost, 1024);
        assert_eq!(c.off_node_bytes, 0);
    }

    #[test]
    fn naive_handles_ragged_shapes() {
        // Regression: pre-fix this asserted `experts % ranks == 0`.
        let p = ExpertPlacement::naive(10, 4);
        assert_eq!(p.experts_on(0), vec![0, 4, 8]);
        assert_eq!(p.experts_on(3), vec![3, 7]);
        assert_eq!(p.experts_per_rank(), 3, "ceil budget, not floor");
        let few = ExpertPlacement::naive(3, 8);
        assert_eq!(few.experts_per_rank(), 1);
        assert!(few.experts_on(5).is_empty(), "tail ranks host nothing");
    }

    /// Ragged-shape property sweep. Regression: pre-fix, the solver's
    /// floor-based slot arithmetic (`per_rank = e / n`) ran out of node
    /// capacity and panicked ("capacities sum to the expert count")
    /// whenever `experts % ranks != 0`, and zeroed every slot when
    /// `experts < ranks`.
    #[test]
    fn ragged_shapes_place_every_expert_within_budget() {
        for &(e, n, k) in &[
            (10usize, 8usize, 3usize), // experts % ranks != 0, single node
            (12, 16, 2),               // fewer experts than ranks, 2 nodes
            (30, 16, 4),               // experts % nodes != 0 (30 over 2 nodes)
            (7, 16, 2),                // fewer experts than one node's ranks
            (65, 32, 6),               // one straggler expert over 4 nodes
        ] {
            let cost = frontier_cost(n);
            let budget = e.div_ceil(n);
            for seed in 0..3u64 {
                let hist = skewed_hist(e, n, k.min(e), 0xA66ED + seed, 1200);
                let opt = optimize_placement(&hist, &cost, 2048);
                // Every expert placed exactly once, on a real rank...
                assert_eq!(opt.n_experts(), e);
                assert!(opt.expert_to_rank.iter().all(|&r| r < n));
                // ...within the per-rank slot budget on every rank.
                for r in 0..n {
                    let hosted = opt.experts_on(r).len();
                    assert!(
                        hosted <= budget,
                        "E={e} N={n} seed={seed}: rank {r} hosts {hosted} > budget {budget}"
                    );
                }
                // Never worse than round-robin on either priced metric.
                let naive = ExpertPlacement::naive(e, n);
                let c_opt = placement_cost(&opt, &hist, &cost, 2048);
                let c_naive = placement_cost(&naive, &hist, &cost, 2048);
                assert!(
                    c_opt.off_node_bytes <= c_naive.off_node_bytes,
                    "E={e} N={n} seed={seed}: opt {} > naive {}",
                    c_opt.off_node_bytes,
                    c_naive.off_node_bytes
                );
                assert!(c_opt.dispatch_time <= c_naive.dispatch_time);
            }
        }
    }

    #[test]
    fn migrated_experts_counts_differences() {
        let a = ExpertPlacement::naive(8, 2);
        let mut b = a.clone();
        b.expert_to_rank.swap(0, 1);
        assert_eq!(a.migrated_experts(&a), 0);
        assert_eq!(a.migrated_experts(&b), 2);
    }
}
