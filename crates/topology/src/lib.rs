//! Hierarchical HPC cluster model for the X-MoE reproduction.
//!
//! The paper's wins hinge on *which bytes cross which links* of a machine
//! with strongly asymmetric bandwidth: Frontier nodes carry 8 effective GPUs
//! (MI250X GCDs) joined by Infinity Fabric (~200 GB/s), while nodes talk over
//! Slingshot NICs (~25 GB/s per GCD share), and traffic beyond one 256-GPU
//! rack suffers congestion from co-scheduled jobs (paper Appendix D).
//!
//! This crate supplies:
//! * [`MachineSpec`] — link bandwidths/latencies, per-GPU peak TFLOP/s and
//!   HBM capacity, with [`MachineSpec::frontier`] and
//!   [`MachineSpec::dgx_a100`] presets;
//! * [`ClusterTopology`] — global rank → (rack, node, local slot) mapping;
//! * [`CostModel`] — prices point-to-point transfers and collectives
//!   (all-to-all(v), all-gather, all-reduce, reduce-scatter) from exact byte
//!   counts, used both by the live simulated runtime and the analytic
//!   performance model;
//! * [`congestion`] — the stochastic cross-rack outlier injector that
//!   reproduces the paper's Fig 18 latency regions;
//! * [`fault`] — deterministic fault schedules ([`FaultPlan`]): rank
//!   slowdowns, link degradation/flaps, and permanent rank failures that the
//!   cost model and the simulated runtime consult per training step;
//! * [`placement`] — EP-first vs DP-first process-grid placement
//!   (paper Appendix C).

pub mod congestion;
pub mod cost;
pub mod fault;
pub mod mapping;
pub mod placement;

pub use congestion::CongestionModel;
pub use cost::CostModel;
pub use fault::{FaultEvent, FaultPlan, LinkTier, SdcBitFlip, SdcSite};
pub use mapping::{
    enumerate_foldings, stage_boundary_p2p_time, AttnFold, FoldSearchSpace, MappingError, MoeFold,
    ParallelMapping,
};
pub use placement::{
    build_grid, build_grid_excluding, build_grid_including, build_grid_tp, optimize_placement,
    placement_cost, ExpertPlacement, PlacementCost, PlacementPolicy, ProcessGrid, RouteSample,
    RoutingHistogram,
};

/// Gigabyte (10^9 bytes), the unit vendors quote link bandwidth in.
pub const GB: f64 = 1e9;

/// Hardware description of one machine family.
///
/// Bandwidths are *effective per-GPU* unidirectional bandwidths in bytes/s;
/// latencies are per-message startup costs in seconds.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Human-readable name (shows up in experiment printouts).
    pub name: &'static str,
    /// Effective GPUs per node (Frontier: 8 GCDs; DGX: 8 GPUs).
    pub gpus_per_node: usize,
    /// Nodes per rack/dragonfly-group; traffic beyond a rack congests.
    pub nodes_per_rack: usize,
    /// Intra-node GPU-to-GPU bandwidth (bytes/s per GPU).
    pub intra_node_bw: f64,
    /// Inter-node bandwidth available to one GPU (bytes/s).
    pub inter_node_bw: f64,
    /// Per-message startup latency for intra-node transfers (s).
    pub intra_latency: f64,
    /// Per-message startup latency for inter-node transfers (s).
    pub inter_latency: f64,
    /// Peak dense throughput of one GPU in FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak a well-tuned GEMM achieves on this machine.
    pub gemm_efficiency: f64,
    /// HBM capacity per GPU in bytes.
    pub hbm_bytes: u64,
    /// Memory bandwidth per GPU (bytes/s) — prices bandwidth-bound kernels
    /// such as gather/scatter and gating.
    pub mem_bw: f64,
    /// Whether vendor-tuned MoE kernels exist for this platform (true on
    /// NVIDIA/CUDA, false on AMD/ROCm). The paper's motivating observation
    /// (§3.1): DeepSpeed-MoE and Tutel run optimized CUDA kernels on NVIDIA
    /// but fall back to inefficient framework-level einsum pipelines on
    /// AMD, and Tutel's kernel additionally forces fp32 `A_combine` there.
    pub vendor_moe_kernels: bool,
}

impl MachineSpec {
    /// Frontier (OLCF): 4x MI250X per node = 8 GCDs ("effective GPUs").
    ///
    /// Numbers from the paper (§5.1, Appendix A): Infinity Fabric up to
    /// 200 GB/s within a node, Slingshot 25 GB/s NICs, 191.5 TFLOP/s peak
    /// per GCD, 64 GB HBM per GCD, 32 nodes (256 GCDs) per rack — the scale
    /// beyond which the paper observes congestion.
    pub fn frontier() -> Self {
        Self {
            name: "frontier",
            gpus_per_node: 8,
            nodes_per_rack: 32,
            intra_node_bw: 200.0 * GB,
            inter_node_bw: 25.0 * GB,
            intra_latency: 8e-6,
            inter_latency: 20e-6,
            peak_flops: 191.5e12,
            gemm_efficiency: 0.45,
            hbm_bytes: 64 * 1_000_000_000,
            mem_bw: 1.6e12,
            vendor_moe_kernels: false,
        }
    }

    /// A single DGX-A100 40 GB node (paper §5.5, Table 5): 8 GPUs over
    /// NVLink/NVSwitch (~300 GB/s per GPU), 312 TFLOP/s BF16 peak, 40 GB HBM.
    pub fn dgx_a100() -> Self {
        Self {
            name: "dgx-a100-40gb",
            gpus_per_node: 8,
            nodes_per_rack: 1,
            intra_node_bw: 300.0 * GB,
            inter_node_bw: 12.5 * GB, // 1x HDR InfiniBand per pair of GPUs
            intra_latency: 5e-6,
            inter_latency: 15e-6,
            peak_flops: 312.0e12,
            gemm_efficiency: 0.45,
            hbm_bytes: 40 * 1_000_000_000,
            mem_bw: 1.555e12,
            vendor_moe_kernels: true,
        }
    }

    /// A hypothetical "balanced DGX cluster" (paper §3.3): intra-node only
    /// 3x faster than inter-node. Used to show why prior systems that treat
    /// all GPUs equivalently were acceptable on such machines.
    pub fn balanced_dgx_cluster() -> Self {
        Self {
            name: "balanced-dgx",
            gpus_per_node: 8,
            nodes_per_rack: 64,
            intra_node_bw: 300.0 * GB,
            inter_node_bw: 100.0 * GB,
            intra_latency: 5e-6,
            inter_latency: 12e-6,
            peak_flops: 312.0e12,
            gemm_efficiency: 0.45,
            hbm_bytes: 80 * 1_000_000_000,
            mem_bw: 2.0e12,
            vendor_moe_kernels: true,
        }
    }

    /// GPUs per rack (the congestion boundary).
    pub fn gpus_per_rack(&self) -> usize {
        self.gpus_per_node * self.nodes_per_rack
    }
}

/// Maps global ranks onto the (rack, node, local-slot) hierarchy.
///
/// Ranks are packed densely: rank `r` lives in node `r / gpus_per_node`,
/// rack `node / nodes_per_rack` — the standard SLURM block distribution the
/// paper's experiments use.
#[derive(Clone, Debug)]
pub struct ClusterTopology {
    spec: MachineSpec,
    n_ranks: usize,
}

impl ClusterTopology {
    /// Build a topology of `n_ranks` GPUs on the given machine.
    pub fn new(spec: MachineSpec, n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "topology needs at least one rank");
        Self { spec, n_ranks }
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Node index of a global rank.
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.n_ranks);
        rank / self.spec.gpus_per_node
    }

    /// Rack index of a global rank.
    pub fn rack_of(&self, rank: usize) -> usize {
        self.node_of(rank) / self.spec.nodes_per_rack
    }

    /// Slot of the rank within its node.
    pub fn local_index(&self, rank: usize) -> usize {
        rank % self.spec.gpus_per_node
    }

    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Number of nodes the ranks occupy (ceiling division).
    pub fn node_count(&self) -> usize {
        self.n_ranks.div_ceil(self.spec.gpus_per_node)
    }

    /// Number of racks the ranks occupy.
    pub fn rack_count(&self) -> usize {
        self.node_count().div_ceil(self.spec.nodes_per_rack)
    }

    /// All ranks co-resident on `rank`'s node (including itself), ascending.
    pub fn node_peers(&self, rank: usize) -> Vec<usize> {
        let node = self.node_of(rank);
        let start = node * self.spec.gpus_per_node;
        let end = (start + self.spec.gpus_per_node).min(self.n_ranks);
        (start..end).collect()
    }

    /// Link class between two ranks.
    pub fn link_class(&self, a: usize, b: usize) -> LinkClass {
        if a == b {
            LinkClass::Local
        } else if self.same_node(a, b) {
            LinkClass::IntraNode
        } else if self.same_rack(a, b) {
            LinkClass::InterNode
        } else {
            LinkClass::CrossRack
        }
    }
}

/// Classes of communication path, ordered from cheapest to most expensive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkClass {
    /// Same GPU (no transfer).
    Local,
    /// Same node: Infinity Fabric / NVLink.
    IntraNode,
    /// Different node, same rack: Slingshot / InfiniBand.
    InterNode,
    /// Different rack: Slingshot through the dragonfly global links,
    /// subject to congestion from co-scheduled jobs.
    CrossRack,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_spec_matches_paper_numbers() {
        let s = MachineSpec::frontier();
        assert_eq!(s.gpus_per_node, 8);
        assert_eq!(s.gpus_per_rack(), 256);
        assert!((s.intra_node_bw / GB - 200.0).abs() < 1e-9);
        assert!((s.inter_node_bw / GB - 25.0).abs() < 1e-9);
        assert!((s.peak_flops - 191.5e12).abs() < 1e6);
    }

    #[test]
    fn rank_mapping_is_block_distributed() {
        let t = ClusterTopology::new(MachineSpec::frontier(), 64);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.local_index(13), 5);
        assert!(t.same_node(0, 7));
        assert!(!t.same_node(7, 8));
        assert_eq!(t.node_count(), 8);
    }

    #[test]
    fn rack_boundaries_at_256_gpus_on_frontier() {
        let t = ClusterTopology::new(MachineSpec::frontier(), 1024);
        assert_eq!(t.rack_of(255), 0);
        assert_eq!(t.rack_of(256), 1);
        assert_eq!(t.rack_count(), 4);
        assert!(t.same_rack(0, 255));
        assert!(!t.same_rack(0, 256));
    }

    #[test]
    fn link_classes_ordered_by_cost() {
        let t = ClusterTopology::new(MachineSpec::frontier(), 1024);
        assert_eq!(t.link_class(3, 3), LinkClass::Local);
        assert_eq!(t.link_class(0, 1), LinkClass::IntraNode);
        assert_eq!(t.link_class(0, 8), LinkClass::InterNode);
        assert_eq!(t.link_class(0, 300), LinkClass::CrossRack);
        assert!(LinkClass::IntraNode < LinkClass::InterNode);
        assert!(LinkClass::InterNode < LinkClass::CrossRack);
    }

    #[test]
    fn node_peers_truncated_at_cluster_edge() {
        let t = ClusterTopology::new(MachineSpec::frontier(), 12);
        assert_eq!(t.node_peers(0), (0..8).collect::<Vec<_>>());
        assert_eq!(t.node_peers(9), vec![8, 9, 10, 11]);
    }

    #[test]
    fn dgx_is_single_node_per_rack() {
        let s = MachineSpec::dgx_a100();
        assert_eq!(s.gpus_per_rack(), 8);
        let t = ClusterTopology::new(s, 8);
        assert_eq!(t.node_count(), 1);
        assert!(t.same_node(0, 7));
    }
}
