//! Cross-rack congestion model (paper Appendix D).
//!
//! Profiling all-to-alls on Frontier from 8 to 1024 GPUs, the paper observes
//! three regions: (i) latency grows from 8 to 32 GPUs as the group spills
//! past one node, (ii) it stays flat from 32 to 256 GPUs (one rack), and
//! (iii) it rises sharply beyond 256 GPUs, with outlier collectives taking
//! > 500 ms at 512–1024 GPUs — attributed to cross-rack traffic contending
//! > with co-scheduled jobs on the shared dragonfly global links.
//!
//! [`CongestionModel`] reproduces region (iii): cross-rack traffic draws a
//! multiplier that is usually ~1 but with scale-dependent probability jumps
//! to a heavy outlier. The live runtime and the analytic model use the mean
//! multiplier; the Fig 18 harness samples per-collective multipliers.

use xmoe_tensor::DetRng;

/// Stochastic stretch factor applied to cross-rack communication.
#[derive(Clone, Debug)]
pub struct CongestionModel {
    /// Baseline multiplier applied to all cross-rack traffic (global-link
    /// oversubscription even without interference).
    pub base: f64,
    /// Probability that a given collective hits an interference outlier.
    pub outlier_prob: f64,
    /// Mean multiplier of an outlier event (on top of `base`).
    pub outlier_mean: f64,
    /// Multiplier applied to inter-node traffic *within* a rack once the
    /// job spans multiple racks. Dragonfly adaptive routing sends intra-
    /// group traffic through shared switches, so a congested fabric slows
    /// even rack-local all-to-alls — this is why the paper sees > 10x
    /// all-to-all latency at 512–1024 GPUs although EP stays <= 256 (§5.2,
    /// Appendix D).
    pub spillover: f64,
}

impl CongestionModel {
    /// No congestion (unit multiplier). Used by correctness tests and by
    /// experiments that isolate algorithmic effects.
    pub fn none() -> Self {
        Self {
            base: 1.0,
            outlier_prob: 0.0,
            outlier_mean: 1.0,
            spillover: 1.0,
        }
    }

    /// Default model for a job of `n_ranks` GPUs on a machine with
    /// `gpus_per_rack` GPUs per rack.
    ///
    /// Within one rack there is no cross-rack traffic, so the parameters are
    /// irrelevant (but kept at unit values). Beyond one rack the outlier
    /// probability grows with the number of racks spanned, matching the
    /// "increasing frequency of outliers for 512 and 1024 GPUs" in Fig 18.
    pub fn for_scale(n_ranks: usize, gpus_per_rack: usize) -> Self {
        let racks = n_ranks.div_ceil(gpus_per_rack.max(1));
        if racks <= 1 {
            return Self::none();
        }
        // Calibrated so that mean all-to-all latency at 512-1024 GPUs is
        // ~an order of magnitude above the in-rack plateau (paper §5.2:
        // "> 10x higher than average").
        let outlier_prob = (0.04 * racks as f64).min(0.25);
        let spillover = (1.0 + 0.35 * (racks - 1) as f64).min(3.0);
        Self {
            base: 1.6,
            outlier_prob,
            outlier_mean: 40.0,
            spillover,
        }
    }

    /// Expected multiplier (used for deterministic cost queries).
    pub fn mean_multiplier(&self) -> f64 {
        self.base * (1.0 + self.outlier_prob * (self.outlier_mean - 1.0))
    }

    /// This model with its baseline multiplier stretched by `factor` — how
    /// a [`FaultPlan`](crate::fault::FaultPlan) link degradation composes
    /// with ambient congestion (a degraded global link is slow *and* still
    /// contended).
    pub fn scaled_by(&self, factor: f64) -> Self {
        let mut c = self.clone();
        c.base *= factor;
        c
    }

    /// Draw a per-collective multiplier.
    pub fn sample_multiplier(&self, rng: &mut DetRng) -> f64 {
        if self.outlier_prob > 0.0 && rng.next_f64() < self.outlier_prob {
            // Heavy-tailed outlier: exponential around the outlier mean.
            let u = rng.next_f64().max(1e-12);
            self.base * (1.0 + (self.outlier_mean - 1.0) * (-u.ln()))
        } else {
            // Mild jitter around the base.
            self.base * (0.9 + 0.2 * rng.next_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_has_no_congestion() {
        let c = CongestionModel::for_scale(256, 256);
        assert_eq!(c.mean_multiplier(), 1.0);
        assert_eq!(c.outlier_prob, 0.0);
    }

    #[test]
    fn multi_rack_congestion_grows_with_scale() {
        let c512 = CongestionModel::for_scale(512, 256);
        let c1024 = CongestionModel::for_scale(1024, 256);
        assert!(c512.mean_multiplier() > 1.0);
        assert!(c1024.outlier_prob > c512.outlier_prob);
        assert!(c1024.mean_multiplier() > c512.mean_multiplier());
    }

    #[test]
    fn sampled_multipliers_hit_outliers_at_expected_rate() {
        let c = CongestionModel {
            base: 1.0,
            outlier_prob: 0.1,
            outlier_mean: 40.0,
            spillover: 1.0,
        };
        let mut rng = DetRng::new(123);
        let n = 20_000;
        let outliers = (0..n)
            .filter(|_| c.sample_multiplier(&mut rng) > 5.0)
            .count();
        let rate = outliers as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "outlier rate {rate}");
    }

    #[test]
    fn mean_multiplier_matches_empirical_mean() {
        let c = CongestionModel {
            base: 1.5,
            outlier_prob: 0.05,
            outlier_mean: 30.0,
            spillover: 1.0,
        };
        let mut rng = DetRng::new(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| c.sample_multiplier(&mut rng)).sum();
        let emp = sum / n as f64;
        let analytic = c.mean_multiplier();
        assert!(
            (emp - analytic).abs() / analytic < 0.08,
            "empirical {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn scaled_by_stretches_the_base() {
        let c = CongestionModel::for_scale(512, 256);
        let s = c.scaled_by(2.0);
        assert!((s.mean_multiplier() - 2.0 * c.mean_multiplier()).abs() < 1e-12);
        assert_eq!(s.spillover, c.spillover);
    }

    #[test]
    fn none_is_exactly_unit() {
        let c = CongestionModel::none();
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let m = c.sample_multiplier(&mut rng);
            assert!((0.9..=1.1).contains(&m));
        }
        assert_eq!(c.mean_multiplier(), 1.0);
    }
}
