//! Deterministic fault injection plans (the chaos engine's schedule).
//!
//! Week-long MoE runs on HPC partitions see slow nodes, degraded Slingshot
//! links, and outright rank loss. A [`FaultPlan`] scripts those events on the
//! simulated cluster: every event is pinned to a training-step window, so the
//! same plan replayed against the same seed produces bitwise-identical
//! timelines — faults are part of the experiment, not noise.
//!
//! The plan is consulted from three places:
//! * `RankCtx::charge_*` multiplies compute/membound kernel times by
//!   [`FaultPlan::slowdown`], so a slow rank shows up as a straggler in the
//!   existing stage breakdowns;
//! * the communicator prices collectives with
//!   [`CostModel::fault_link_multiplier`](crate::CostModel::fault_link_multiplier)
//!   and retries transient flaps with [`FaultPlan::backoff`];
//! * dead ranks are detected *by plan*, not by channel teardown: in the
//!   threads-as-ranks runtime a failed rank's senders live in the shared link
//!   matrix forever, so a real `recv` on it would deadlock. Survivors instead
//!   agree on who is dead from the plan and the current step, which keeps the
//!   SPMD program order intact.

use crate::LinkClass;

/// Which class of links a link-level fault hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkTier {
    /// Intra-node fabric (Infinity Fabric / NVLink).
    Intra,
    /// Anything leaving the node: Slingshot NICs, including cross-rack
    /// traffic (which rides the same NIC).
    Inter,
}

impl LinkTier {
    /// Does this tier cover the given point-to-point link class?
    pub fn covers(self, class: LinkClass) -> bool {
        match self {
            LinkTier::Intra => class == LinkClass::IntraNode,
            LinkTier::Inter => matches!(class, LinkClass::InterNode | LinkClass::CrossRack),
        }
    }
}

/// One scheduled fault. Step windows are half-open: active for
/// `from <= step < until`.
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// Rank `rank`'s kernels run `factor`x slower during the window.
    Slowdown {
        rank: usize,
        factor: f64,
        from: u64,
        until: u64,
    },
    /// Links of `tier` deliver bytes `factor`x slower during the window.
    LinkDegrade {
        tier: LinkTier,
        factor: f64,
        from: u64,
        until: u64,
    },
    /// Links of `tier` drop each collective `retries` times before it goes
    /// through; each attempt is re-charged with exponential backoff.
    LinkFlap {
        tier: LinkTier,
        retries: u32,
        from: u64,
        until: u64,
    },
    /// Rank `rank` dies permanently at the start of step `at`.
    RankFail { rank: usize, at: u64 },
}

impl FaultEvent {
    fn active(&self, step: u64) -> bool {
        match *self {
            FaultEvent::Slowdown { from, until, .. }
            | FaultEvent::LinkDegrade { from, until, .. }
            | FaultEvent::LinkFlap { from, until, .. } => from <= step && step < until,
            FaultEvent::RankFail { at, .. } => step >= at,
        }
    }
}

/// A deterministic schedule of faults, plus the recovery-time constants the
/// runtime charges when reacting to them.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed recorded with the plan (spec strings and sweeps key off it; the
    /// plan itself is fully deterministic given its events).
    pub seed: u64,
    pub events: Vec<FaultEvent>,
    /// Simulated seconds a survivor spends noticing a dead peer (the
    /// heartbeat/timeout budget), charged once per failed collective.
    pub detect_timeout: f64,
    /// Base backoff before the first retry of a flapped collective;
    /// attempt `k` waits `retry_backoff * 2^k`.
    pub retry_backoff: f64,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
            detect_timeout: 5e-3,
            retry_backoff: 1e-4,
        }
    }

    pub fn with_detect_timeout(mut self, t: f64) -> Self {
        self.detect_timeout = t;
        self
    }

    pub fn with_retry_backoff(mut self, t: f64) -> Self {
        self.retry_backoff = t;
        self
    }

    /// Schedule a rank slowdown for `from <= step < until`.
    pub fn slow(mut self, rank: usize, factor: f64, from: u64, until: u64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        self.events.push(FaultEvent::Slowdown {
            rank,
            factor,
            from,
            until,
        });
        self
    }

    /// Schedule a link-bandwidth degradation.
    pub fn degrade(mut self, tier: LinkTier, factor: f64, from: u64, until: u64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.events.push(FaultEvent::LinkDegrade {
            tier,
            factor,
            from,
            until,
        });
        self
    }

    /// Schedule transient link flaps (collectives retry `retries` times).
    pub fn flap(mut self, tier: LinkTier, retries: u32, from: u64, until: u64) -> Self {
        self.events.push(FaultEvent::LinkFlap {
            tier,
            retries,
            from,
            until,
        });
        self
    }

    /// Schedule a permanent rank failure at the start of step `at`.
    pub fn kill(mut self, rank: usize, at: u64) -> Self {
        self.events.push(FaultEvent::RankFail { rank, at });
        self
    }

    /// Combined kernel-time multiplier for `rank` at `step`.
    pub fn slowdown(&self, rank: usize, step: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Slowdown {
                    rank: r, factor, ..
                } if r == rank && e.active(step) => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Combined bandwidth-degradation multiplier for traffic of `class` at
    /// `step` (1.0 when no degradation is active or the class is local).
    pub fn link_multiplier(&self, class: LinkClass, step: u64) -> f64 {
        if class == LinkClass::Local {
            return 1.0;
        }
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkDegrade { tier, factor, .. }
                    if tier.covers(class) && e.active(step) =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .product()
    }

    /// Number of failed attempts a collective over links of `class` suffers
    /// at `step` before succeeding.
    pub fn flap_retries(&self, class: LinkClass, step: u64) -> u32 {
        if class == LinkClass::Local {
            return 0;
        }
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkFlap { tier, retries, .. }
                    if tier.covers(class) && e.active(step) =>
                {
                    Some(retries)
                }
                _ => None,
            })
            .sum()
    }

    /// Is `rank` dead at `step`? Death is permanent: true for every step at
    /// or after the scheduled failure.
    pub fn is_dead(&self, rank: usize, step: u64) -> bool {
        self.events
            .iter()
            .any(|e| matches!(*e, FaultEvent::RankFail { rank: r, at } if r == rank && step >= at))
    }

    /// The step at which `rank` dies, if scheduled.
    pub fn dies_at(&self, rank: usize) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { rank: r, at } if r == rank => Some(at),
                _ => None,
            })
            .min()
    }

    /// All ranks dead at `step`, ascending.
    pub fn dead_ranks(&self, step: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { rank, at } if step >= at => Some(rank),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Earliest scheduled rank failure, if any.
    pub fn first_failure(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { at, .. } => Some(at),
                _ => None,
            })
            .min()
    }

    /// Backoff delay before retry attempt `k` (exponential, deterministic —
    /// every surviving rank computes the same value, keeping clocks aligned).
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.retry_backoff * f64::from(1u32 << attempt.min(16))
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse a CLI fault spec: semicolon-separated events, each
    /// `kind:key=value,...`.
    ///
    /// ```text
    /// slow:rank=2,x=4,from=0,until=10
    /// degrade:tier=inter,x=3,from=2,until=6
    /// flap:tier=inter,retries=2,from=3,until=4
    /// kill:rank=5,at=4
    /// ```
    ///
    /// `from` defaults to 0, `until` to forever.
    pub fn parse(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = Self::new(seed);
        for ev in spec.split(';').filter(|s| !s.trim().is_empty()) {
            let ev = ev.trim();
            let (kind, rest) = ev
                .split_once(':')
                .ok_or_else(|| format!("fault event '{ev}' missing ':'"))?;
            let mut rank = None;
            let mut factor = None;
            let mut tier = None;
            let mut retries = None;
            let mut from = 0u64;
            let mut until = u64::MAX;
            let mut at = None;
            for kv in rest.split(',').filter(|s| !s.trim().is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("fault field '{kv}' missing '='"))?;
                let (k, v) = (k.trim(), v.trim());
                match k {
                    "rank" => rank = Some(parse_num::<usize>(k, v)?),
                    "x" | "factor" => factor = Some(parse_num::<f64>(k, v)?),
                    "tier" => {
                        tier = Some(match v {
                            "intra" => LinkTier::Intra,
                            "inter" => LinkTier::Inter,
                            _ => return Err(format!("unknown link tier '{v}'")),
                        })
                    }
                    "retries" => retries = Some(parse_num::<u32>(k, v)?),
                    "from" => from = parse_num::<u64>(k, v)?,
                    "until" => until = parse_num::<u64>(k, v)?,
                    "at" => at = Some(parse_num::<u64>(k, v)?),
                    _ => return Err(format!("unknown fault field '{k}'")),
                }
            }
            fn need<T>(field: Option<T>, kind: &str, name: &str) -> Result<T, String> {
                field.ok_or_else(|| format!("{kind} event needs '{name}='"))
            }
            plan = match kind {
                "slow" => {
                    let r = need(rank, kind, "rank")?;
                    let f = need(factor, kind, "x")?;
                    plan.slow(r, f, from, until)
                }
                "degrade" => {
                    let t = need(tier, kind, "tier")?;
                    let f = need(factor, kind, "x")?;
                    plan.degrade(t, f, from, until)
                }
                "flap" => {
                    let t = need(tier, kind, "tier")?;
                    let r = need(retries, kind, "retries")?;
                    plan.flap(t, r, from, until)
                }
                "kill" => {
                    let r = need(rank, kind, "rank")?;
                    let a = need(at, kind, "at")?;
                    plan.kill(r, a)
                }
                _ => return Err(format!("unknown fault kind '{kind}'")),
            };
        }
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("cannot parse '{v}' for '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_applies_only_in_window() {
        let p = FaultPlan::new(1).slow(2, 4.0, 3, 6);
        assert_eq!(p.slowdown(2, 2), 1.0);
        assert_eq!(p.slowdown(2, 3), 4.0);
        assert_eq!(p.slowdown(2, 5), 4.0);
        assert_eq!(p.slowdown(2, 6), 1.0);
        assert_eq!(p.slowdown(1, 4), 1.0);
    }

    #[test]
    fn overlapping_slowdowns_compose() {
        let p = FaultPlan::new(1).slow(0, 2.0, 0, 10).slow(0, 3.0, 5, 10);
        assert_eq!(p.slowdown(0, 2), 2.0);
        assert_eq!(p.slowdown(0, 7), 6.0);
    }

    #[test]
    fn link_tiers_cover_the_right_classes() {
        assert!(LinkTier::Intra.covers(LinkClass::IntraNode));
        assert!(!LinkTier::Intra.covers(LinkClass::InterNode));
        assert!(LinkTier::Inter.covers(LinkClass::InterNode));
        assert!(LinkTier::Inter.covers(LinkClass::CrossRack));
        assert!(!LinkTier::Inter.covers(LinkClass::IntraNode));
    }

    #[test]
    fn degrade_and_flap_queries() {
        let p =
            FaultPlan::new(7)
                .degrade(LinkTier::Inter, 3.0, 2, 6)
                .flap(LinkTier::Inter, 2, 3, 4);
        assert_eq!(p.link_multiplier(LinkClass::InterNode, 1), 1.0);
        assert_eq!(p.link_multiplier(LinkClass::InterNode, 2), 3.0);
        assert_eq!(p.link_multiplier(LinkClass::CrossRack, 5), 3.0);
        assert_eq!(p.link_multiplier(LinkClass::IntraNode, 3), 1.0);
        assert_eq!(p.link_multiplier(LinkClass::Local, 3), 1.0);
        assert_eq!(p.flap_retries(LinkClass::InterNode, 3), 2);
        assert_eq!(p.flap_retries(LinkClass::InterNode, 4), 0);
        assert_eq!(p.flap_retries(LinkClass::IntraNode, 3), 0);
    }

    #[test]
    fn death_is_permanent() {
        let p = FaultPlan::new(1).kill(5, 4);
        assert!(!p.is_dead(5, 3));
        assert!(p.is_dead(5, 4));
        assert!(p.is_dead(5, 100));
        assert!(!p.is_dead(4, 100));
        assert_eq!(p.dies_at(5), Some(4));
        assert_eq!(p.dies_at(0), None);
        assert_eq!(p.dead_ranks(4), vec![5]);
        assert!(p.dead_ranks(3).is_empty());
        assert_eq!(p.first_failure(), Some(4));
    }

    #[test]
    fn backoff_is_exponential() {
        let p = FaultPlan::new(1).with_retry_backoff(1e-3);
        assert!((p.backoff(0) - 1e-3).abs() < 1e-15);
        assert!((p.backoff(1) - 2e-3).abs() < 1e-15);
        assert!((p.backoff(3) - 8e-3).abs() < 1e-15);
    }

    #[test]
    fn spec_string_round_trips_the_readme_example() {
        let p = FaultPlan::parse(
            9,
            "slow:rank=2,x=4,from=0,until=10;degrade:tier=inter,x=3,from=2,until=6;\
             flap:tier=inter,retries=2,from=3,until=4;kill:rank=5,at=4",
        )
        .unwrap();
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.slowdown(2, 1), 4.0);
        assert_eq!(p.link_multiplier(LinkClass::InterNode, 4), 3.0);
        assert_eq!(p.flap_retries(LinkClass::CrossRack, 3), 2);
        assert_eq!(p.dies_at(5), Some(4));
    }

    #[test]
    fn spec_defaults_and_errors() {
        let p = FaultPlan::parse(0, "slow:rank=0,x=2").unwrap();
        assert_eq!(p.slowdown(0, 0), 2.0);
        assert_eq!(p.slowdown(0, u64::MAX - 1), 2.0);
        assert!(FaultPlan::parse(0, "slow:rank=0").is_err());
        assert!(FaultPlan::parse(0, "explode:rank=0").is_err());
        assert!(FaultPlan::parse(0, "kill:rank=zero,at=1").is_err());
        assert!(FaultPlan::parse(0, "degrade:tier=quantum,x=2").is_err());
        assert!(FaultPlan::parse(0, "").unwrap().is_empty());
    }
}
