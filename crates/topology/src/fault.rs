//! Deterministic fault injection plans (the chaos engine's schedule).
//!
//! Week-long MoE runs on HPC partitions see slow nodes, degraded Slingshot
//! links, and outright rank loss. A [`FaultPlan`] scripts those events on the
//! simulated cluster: every event is pinned to a training-step window, so the
//! same plan replayed against the same seed produces bitwise-identical
//! timelines — faults are part of the experiment, not noise.
//!
//! The plan is consulted from three places:
//! * `RankCtx::charge_*` multiplies compute/membound kernel times by
//!   [`FaultPlan::slowdown`], so a slow rank shows up as a straggler in the
//!   existing stage breakdowns;
//! * the communicator prices collectives with
//!   [`CostModel::fault_link_multiplier`](crate::CostModel::fault_link_multiplier)
//!   and retries transient flaps with [`FaultPlan::backoff`];
//! * dead ranks are detected *by plan*, not by channel teardown: in the
//!   threads-as-ranks runtime a failed rank's senders live in the shared link
//!   matrix forever, so a real `recv` on it would deadlock. Survivors instead
//!   agree on who is dead from the plan and the current step, which keeps the
//!   SPMD program order intact.

use crate::LinkClass;

/// Which tensor class a silent-data-corruption event hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SdcSite {
    /// Activations flowing between layers (corrupted before the LM head).
    Act,
    /// Gradients, corrupted after backward but before the gradient
    /// all-reduce so the flip propagates like a real device-memory SDC.
    Grad,
    /// Raw checkpoint bytes, corrupted at capture time on the victim rank.
    Ckpt,
}

impl SdcSite {
    pub fn name(self) -> &'static str {
        match self {
            SdcSite::Act => "act",
            SdcSite::Grad => "grad",
            SdcSite::Ckpt => "ckpt",
        }
    }
}

/// One seeded bit-flip scheduled by the plan: the victim rank, the step,
/// the site, and which bit of the chosen f32 word (or checkpoint byte) to
/// flip. `element_hash` is a deterministic 64-bit value the injector
/// reduces modulo the target length to pick the victim element, so the
/// same plan always corrupts the same word.
#[derive(Clone, Copy, Debug)]
pub struct SdcBitFlip {
    pub site: SdcSite,
    /// Bit index inside the 32-bit float word (for `Ckpt`, inside the
    /// chosen byte: `bit % 8`).
    pub bit: u32,
    /// Seeded hash used to pick the victim element deterministically.
    pub element_hash: u64,
}

impl SdcBitFlip {
    /// Victim element index within a buffer of `len` elements.
    pub fn element(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.element_hash % len as u64) as usize
        }
    }
}

/// Which class of links a link-level fault hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkTier {
    /// Intra-node fabric (Infinity Fabric / NVLink).
    Intra,
    /// Anything leaving the node: Slingshot NICs, including cross-rack
    /// traffic (which rides the same NIC).
    Inter,
}

impl LinkTier {
    /// Does this tier cover the given point-to-point link class?
    pub fn covers(self, class: LinkClass) -> bool {
        match self {
            LinkTier::Intra => class == LinkClass::IntraNode,
            LinkTier::Inter => matches!(class, LinkClass::InterNode | LinkClass::CrossRack),
        }
    }
}

/// One scheduled fault. Step windows are half-open: active for
/// `from <= step < until`.
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// Rank `rank`'s kernels run `factor`x slower during the window.
    Slowdown {
        rank: usize,
        factor: f64,
        from: u64,
        until: u64,
    },
    /// Links of `tier` deliver bytes `factor`x slower during the window.
    LinkDegrade {
        tier: LinkTier,
        factor: f64,
        from: u64,
        until: u64,
    },
    /// Links of `tier` drop each collective `retries` times before it goes
    /// through; each attempt is re-charged with exponential backoff.
    LinkFlap {
        tier: LinkTier,
        retries: u32,
        from: u64,
        until: u64,
    },
    /// Rank `rank` dies permanently at the start of step `at`.
    RankFail { rank: usize, at: u64 },
    /// Rank `rank` joins (or rejoins) the run at the start of step `at`.
    /// A join scheduled after a [`RankFail`](FaultEvent::RankFail) cancels
    /// the death from `at` onward; a join with no earlier failure marks a
    /// rank that is *absent* from the start and elastically scales the
    /// world up at `at`.
    RankJoin { rank: usize, at: u64 },
    /// A silent bit flip on rank `rank` at step `at`: one bit of one f32
    /// word (or one checkpoint byte) at `site` is inverted. `bit` is the
    /// explicit bit index if the spec pinned one; otherwise the injector
    /// derives it from the plan seed.
    BitFlip {
        rank: usize,
        at: u64,
        site: SdcSite,
        bit: Option<u32>,
    },
    /// Low-amplitude additive corruption on rank `rank` during the window:
    /// every element at `site` is perturbed by a seeded uniform value in
    /// `[-amp, amp]`. Stays finite, so only anomaly detection can catch it.
    Noise {
        rank: usize,
        site: SdcSite,
        amp: f64,
        from: u64,
        until: u64,
    },
}

impl FaultEvent {
    fn active(&self, step: u64) -> bool {
        match *self {
            FaultEvent::Slowdown { from, until, .. }
            | FaultEvent::LinkDegrade { from, until, .. }
            | FaultEvent::LinkFlap { from, until, .. } => from <= step && step < until,
            FaultEvent::Noise { from, until, .. } => from <= step && step < until,
            FaultEvent::RankFail { at, .. } | FaultEvent::RankJoin { at, .. } => step >= at,
            FaultEvent::BitFlip { at, .. } => step == at,
        }
    }
}

/// splitmix64 — the same seeded mixer the data streams use; good enough to
/// decorrelate (seed, rank, step, site) into an element/bit choice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule of faults, plus the recovery-time constants the
/// runtime charges when reacting to them.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed recorded with the plan (spec strings and sweeps key off it; the
    /// plan itself is fully deterministic given its events).
    pub seed: u64,
    pub events: Vec<FaultEvent>,
    /// Simulated seconds a survivor spends noticing a dead peer (the
    /// heartbeat/timeout budget), charged once per failed collective.
    pub detect_timeout: f64,
    /// Base backoff before the first retry of a flapped collective;
    /// attempt `k` waits `retry_backoff * 2^k`.
    pub retry_backoff: f64,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
            detect_timeout: 5e-3,
            retry_backoff: 1e-4,
        }
    }

    pub fn with_detect_timeout(mut self, t: f64) -> Self {
        self.detect_timeout = t;
        self
    }

    pub fn with_retry_backoff(mut self, t: f64) -> Self {
        self.retry_backoff = t;
        self
    }

    /// Schedule a rank slowdown for `from <= step < until`.
    pub fn slow(mut self, rank: usize, factor: f64, from: u64, until: u64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        self.events.push(FaultEvent::Slowdown {
            rank,
            factor,
            from,
            until,
        });
        self
    }

    /// Schedule a link-bandwidth degradation.
    pub fn degrade(mut self, tier: LinkTier, factor: f64, from: u64, until: u64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.events.push(FaultEvent::LinkDegrade {
            tier,
            factor,
            from,
            until,
        });
        self
    }

    /// Schedule transient link flaps (collectives retry `retries` times).
    pub fn flap(mut self, tier: LinkTier, retries: u32, from: u64, until: u64) -> Self {
        self.events.push(FaultEvent::LinkFlap {
            tier,
            retries,
            from,
            until,
        });
        self
    }

    /// Schedule a permanent rank failure at the start of step `at`.
    pub fn kill(mut self, rank: usize, at: u64) -> Self {
        self.events.push(FaultEvent::RankFail { rank, at });
        self
    }

    /// Schedule rank `rank` to join (or rejoin) at the start of step `at`.
    /// See [`FaultEvent::RankJoin`] for the semantics relative to an
    /// earlier `kill`.
    pub fn join(mut self, rank: usize, at: u64) -> Self {
        self.events.push(FaultEvent::RankJoin { rank, at });
        self
    }

    /// Schedule a single silent bit flip on `rank` at step `at`. Pass
    /// `bit: None` to let the plan seed choose an exponent-region bit.
    pub fn bitflip(mut self, rank: usize, at: u64, site: SdcSite, bit: Option<u32>) -> Self {
        if let Some(b) = bit {
            assert!(b < 32, "bit index must be < 32");
        }
        self.events.push(FaultEvent::BitFlip {
            rank,
            at,
            site,
            bit,
        });
        self
    }

    /// Schedule low-amplitude additive noise on `rank` for
    /// `from <= step < until`.
    pub fn noise(mut self, rank: usize, site: SdcSite, amp: f64, from: u64, until: u64) -> Self {
        assert!(
            amp.is_finite() && amp >= 0.0,
            "noise amplitude must be >= 0"
        );
        self.events.push(FaultEvent::Noise {
            rank,
            site,
            amp,
            from,
            until,
        });
        self
    }

    /// Combined kernel-time multiplier for `rank` at `step`.
    pub fn slowdown(&self, rank: usize, step: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Slowdown {
                    rank: r, factor, ..
                } if r == rank && e.active(step) => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Combined bandwidth-degradation multiplier for traffic of `class` at
    /// `step` (1.0 when no degradation is active or the class is local).
    pub fn link_multiplier(&self, class: LinkClass, step: u64) -> f64 {
        if class == LinkClass::Local {
            return 1.0;
        }
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkDegrade { tier, factor, .. }
                    if tier.covers(class) && e.active(step) =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .product()
    }

    /// Number of failed attempts a collective over links of `class` suffers
    /// at `step` before succeeding.
    pub fn flap_retries(&self, class: LinkClass, step: u64) -> u32 {
        if class == LinkClass::Local {
            return 0;
        }
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkFlap { tier, retries, .. }
                    if tier.covers(class) && e.active(step) =>
                {
                    Some(retries)
                }
                _ => None,
            })
            .sum()
    }

    /// Latest `RankFail` for `rank` at or before `step`, if any.
    fn last_fail_at(&self, rank: usize, step: u64) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { rank: r, at } if r == rank && step >= at => Some(at),
                _ => None,
            })
            .max()
    }

    /// Latest `RankJoin` for `rank` at or before `step`, if any.
    fn last_join_at(&self, rank: usize, step: u64) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankJoin { rank: r, at } if r == rank && step >= at => Some(at),
                _ => None,
            })
            .max()
    }

    /// Is `rank` dead at `step`? Death lasts from the scheduled failure
    /// until a later [`join`](Self::join) (if any) revives the rank; a
    /// kill and a join scheduled at the same step resolve to dead.
    pub fn is_dead(&self, rank: usize, step: u64) -> bool {
        match (self.last_fail_at(rank, step), self.last_join_at(rank, step)) {
            (Some(fail), Some(join)) => fail >= join,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Is `rank` participating in the run at `step`? False while dead, and
    /// false for a fresh joiner (a `join` with no earlier `kill`) before
    /// its join step — such a rank sits out the run until it joins.
    pub fn is_present(&self, rank: usize, step: u64) -> bool {
        if self.is_dead(rank, step) {
            return false;
        }
        // A rank whose first scheduled event is a join is absent until it.
        let first_join = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankJoin { rank: r, at } if r == rank => Some(at),
                _ => None,
            })
            .min();
        let first_fail = self.dies_at(rank);
        match (first_join, first_fail) {
            (Some(j), None) => step >= j,
            (Some(j), Some(f)) => f < j || step >= j,
            (None, _) => true,
        }
    }

    /// Steps at which `rank` is scheduled to join, ascending.
    pub fn joins_of(&self, rank: usize) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankJoin { rank: r, at } if r == rank => Some(at),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Ranks scheduled to join exactly at `step`, ascending.
    pub fn joining_at(&self, step: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankJoin { rank, at } if at == step => Some(rank),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All join steps scheduled by the plan, ascending and deduplicated.
    pub fn join_steps(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankJoin { at, .. } => Some(at),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The step at which `rank` dies, if scheduled.
    pub fn dies_at(&self, rank: usize) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { rank: r, at } if r == rank => Some(at),
                _ => None,
            })
            .min()
    }

    /// All ranks dead at `step` (net of any reviving joins), ascending.
    pub fn dead_ranks(&self, step: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { rank, at } if step >= at => Some(rank),
                _ => None,
            })
            .filter(|&r| self.is_dead(r, step))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Earliest scheduled rank failure, if any.
    pub fn first_failure(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RankFail { at, .. } => Some(at),
                _ => None,
            })
            .min()
    }

    /// All bit flips scheduled for `rank` at `step` on `site`, in plan
    /// order, with the element hash and bit index fully resolved so every
    /// replay corrupts the same word. When the spec did not pin a bit, the
    /// seed picks one in the exponent region (bits 23..30) — the flips a
    /// real SDC study cares about, and the ones detectors must catch.
    pub fn bitflips(&self, rank: usize, step: u64, site: SdcSite) -> Vec<SdcBitFlip> {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match *e {
                FaultEvent::BitFlip {
                    rank: r,
                    at,
                    site: s,
                    bit,
                } if r == rank && at == step && s == site => {
                    let h = splitmix64(
                        self.seed
                            ^ (rank as u64).wrapping_mul(0x9E37_79B9)
                            ^ step.wrapping_mul(0xD1B5_4A32_D192_ED03)
                            ^ ((i as u64) << 48)
                            ^ (site as u64) << 40,
                    );
                    Some(SdcBitFlip {
                        site,
                        bit: bit.unwrap_or(23 + ((h >> 32) % 8) as u32),
                        element_hash: h,
                    })
                }
                _ => None,
            })
            .collect()
    }

    /// Combined noise amplitude for `rank` at `step` on `site` (0.0 when
    /// nothing is active). Amplitudes of overlapping events add.
    pub fn noise_amp(&self, rank: usize, step: u64, site: SdcSite) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Noise {
                    rank: r,
                    site: s,
                    amp,
                    ..
                } if r == rank && s == site && e.active(step) => Some(amp),
                _ => None,
            })
            .sum()
    }

    /// Earliest step at which any SDC event (bit flip or noise) fires on
    /// `rank`, if one is scheduled. Used to classify guard trips as true or
    /// false positives.
    pub fn first_sdc_at(&self, rank: usize) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::BitFlip { rank: r, at, .. } if r == rank => Some(at),
                FaultEvent::Noise { rank: r, from, .. } if r == rank => Some(from),
                _ => None,
            })
            .min()
    }

    /// Latest SDC event step at or before `step` across all ranks —
    /// detectors report latency relative to this.
    pub fn last_sdc_at_or_before(&self, step: u64) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::BitFlip { at, .. } if at <= step => Some(at),
                FaultEvent::Noise { from, .. } if from <= step => Some(from),
                _ => None,
            })
            .max()
    }

    /// Does the plan schedule any silent-data-corruption event at all?
    pub fn has_sdc(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::BitFlip { .. } | FaultEvent::Noise { .. }))
    }

    /// Seeded per-(rank, step, site) stream seed for noise injection: the
    /// injector feeds this to its own RNG so noise values are reproducible
    /// and independent of buffer iteration order elsewhere.
    pub fn sdc_stream_seed(&self, rank: usize, step: u64, site: SdcSite) -> u64 {
        splitmix64(
            self.seed
                ^ 0x5DC5_DC5D_C5DC_5DC5
                ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ step.wrapping_mul(0x9FB2_1C65_1E98_DF25)
                ^ ((site as u64) << 56),
        )
    }

    /// Backoff delay before retry attempt `k` (exponential, deterministic —
    /// every surviving rank computes the same value, keeping clocks aligned).
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.retry_backoff * f64::from(1u32 << attempt.min(16))
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse a CLI fault spec: semicolon-separated events, each
    /// `kind:key=value,...`.
    ///
    /// ```text
    /// slow:rank=2,x=4,from=0,until=10
    /// degrade:tier=inter,x=3,from=2,until=6
    /// flap:tier=inter,retries=2,from=3,until=4
    /// kill:rank=5,at=4
    /// join:rank=5,at=8
    /// bitflip:rank=2,at=5,site=grad,bit=30
    /// noise:rank=1,site=act,amp=0.05,from=3,until=6
    /// ```
    ///
    /// `from` defaults to 0, `until` to forever; `bit` is optional (the
    /// seed picks an exponent bit when omitted); `site` is one of
    /// `act`/`grad`/`ckpt`. Errors name the offending 1-based segment and
    /// key, e.g. `join:rank=x` in the third segment fails with
    /// "invalid rank in segment 3: cannot parse 'x'".
    pub fn parse(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = Self::new(seed);
        for (idx, ev) in spec.split(';').enumerate() {
            let seg = idx + 1;
            let ev = ev.trim();
            if ev.is_empty() {
                continue;
            }
            let (kind, rest) = ev.split_once(':').ok_or_else(|| {
                format!("segment {seg} ('{ev}') is missing ':' between kind and fields")
            })?;
            let mut rank = None;
            let mut factor = None;
            let mut tier = None;
            let mut retries = None;
            let mut from = 0u64;
            let mut until = u64::MAX;
            let mut at = None;
            let mut site = None;
            let mut bit = None;
            let mut amp = None;
            for kv in rest.split(',').filter(|s| !s.trim().is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("field '{kv}' in segment {seg} is missing '='"))?;
                let (k, v) = (k.trim(), v.trim());
                match k {
                    "rank" => rank = Some(parse_num::<usize>(k, v, seg)?),
                    "x" | "factor" => factor = Some(parse_num::<f64>(k, v, seg)?),
                    "tier" => {
                        tier = Some(match v {
                            "intra" => LinkTier::Intra,
                            "inter" => LinkTier::Inter,
                            _ => {
                                return Err(format!(
                                    "invalid tier in segment {seg}: unknown link tier '{v}'"
                                ))
                            }
                        })
                    }
                    "retries" => retries = Some(parse_num::<u32>(k, v, seg)?),
                    "from" => from = parse_num::<u64>(k, v, seg)?,
                    "until" => until = parse_num::<u64>(k, v, seg)?,
                    "at" => at = Some(parse_num::<u64>(k, v, seg)?),
                    "site" => {
                        site = Some(match v {
                            "act" => SdcSite::Act,
                            "grad" => SdcSite::Grad,
                            "ckpt" => SdcSite::Ckpt,
                            _ => {
                                return Err(format!(
                                    "invalid site in segment {seg}: unknown sdc site '{v}'"
                                ))
                            }
                        })
                    }
                    "bit" => {
                        let b = parse_num::<u32>(k, v, seg)?;
                        if b >= 32 {
                            return Err(format!(
                                "invalid bit in segment {seg}: index '{v}' out of range (0..32)"
                            ));
                        }
                        bit = Some(b);
                    }
                    "amp" => amp = Some(parse_num::<f64>(k, v, seg)?),
                    _ => return Err(format!("unknown field '{k}' in segment {seg}")),
                }
            }
            fn need<T>(field: Option<T>, kind: &str, name: &str, seg: usize) -> Result<T, String> {
                field.ok_or_else(|| format!("{kind} event in segment {seg} needs '{name}='"))
            }
            plan = match kind {
                "slow" => {
                    let r = need(rank, kind, "rank", seg)?;
                    let f = need(factor, kind, "x", seg)?;
                    plan.slow(r, f, from, until)
                }
                "degrade" => {
                    let t = need(tier, kind, "tier", seg)?;
                    let f = need(factor, kind, "x", seg)?;
                    plan.degrade(t, f, from, until)
                }
                "flap" => {
                    let t = need(tier, kind, "tier", seg)?;
                    let r = need(retries, kind, "retries", seg)?;
                    plan.flap(t, r, from, until)
                }
                "kill" => {
                    let r = need(rank, kind, "rank", seg)?;
                    let a = need(at, kind, "at", seg)?;
                    plan.kill(r, a)
                }
                "join" => {
                    let r = need(rank, kind, "rank", seg)?;
                    let a = need(at, kind, "at", seg)?;
                    plan.join(r, a)
                }
                "bitflip" => {
                    let r = need(rank, kind, "rank", seg)?;
                    let a = need(at, kind, "at", seg)?;
                    let s = need(site, kind, "site", seg)?;
                    plan.bitflip(r, a, s, bit)
                }
                "noise" => {
                    let r = need(rank, kind, "rank", seg)?;
                    let s = need(site, kind, "site", seg)?;
                    let amp = need(amp, kind, "amp", seg)?;
                    plan.noise(r, s, amp, from, until)
                }
                _ => return Err(format!("unknown fault kind '{kind}' in segment {seg}")),
            };
        }
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str, seg: usize) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("invalid {key} in segment {seg}: cannot parse '{v}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_applies_only_in_window() {
        let p = FaultPlan::new(1).slow(2, 4.0, 3, 6);
        assert_eq!(p.slowdown(2, 2), 1.0);
        assert_eq!(p.slowdown(2, 3), 4.0);
        assert_eq!(p.slowdown(2, 5), 4.0);
        assert_eq!(p.slowdown(2, 6), 1.0);
        assert_eq!(p.slowdown(1, 4), 1.0);
    }

    #[test]
    fn overlapping_slowdowns_compose() {
        let p = FaultPlan::new(1).slow(0, 2.0, 0, 10).slow(0, 3.0, 5, 10);
        assert_eq!(p.slowdown(0, 2), 2.0);
        assert_eq!(p.slowdown(0, 7), 6.0);
    }

    #[test]
    fn link_tiers_cover_the_right_classes() {
        assert!(LinkTier::Intra.covers(LinkClass::IntraNode));
        assert!(!LinkTier::Intra.covers(LinkClass::InterNode));
        assert!(LinkTier::Inter.covers(LinkClass::InterNode));
        assert!(LinkTier::Inter.covers(LinkClass::CrossRack));
        assert!(!LinkTier::Inter.covers(LinkClass::IntraNode));
    }

    #[test]
    fn degrade_and_flap_queries() {
        let p =
            FaultPlan::new(7)
                .degrade(LinkTier::Inter, 3.0, 2, 6)
                .flap(LinkTier::Inter, 2, 3, 4);
        assert_eq!(p.link_multiplier(LinkClass::InterNode, 1), 1.0);
        assert_eq!(p.link_multiplier(LinkClass::InterNode, 2), 3.0);
        assert_eq!(p.link_multiplier(LinkClass::CrossRack, 5), 3.0);
        assert_eq!(p.link_multiplier(LinkClass::IntraNode, 3), 1.0);
        assert_eq!(p.link_multiplier(LinkClass::Local, 3), 1.0);
        assert_eq!(p.flap_retries(LinkClass::InterNode, 3), 2);
        assert_eq!(p.flap_retries(LinkClass::InterNode, 4), 0);
        assert_eq!(p.flap_retries(LinkClass::IntraNode, 3), 0);
    }

    #[test]
    fn death_is_permanent() {
        let p = FaultPlan::new(1).kill(5, 4);
        assert!(!p.is_dead(5, 3));
        assert!(p.is_dead(5, 4));
        assert!(p.is_dead(5, 100));
        assert!(!p.is_dead(4, 100));
        assert_eq!(p.dies_at(5), Some(4));
        assert_eq!(p.dies_at(0), None);
        assert_eq!(p.dead_ranks(4), vec![5]);
        assert!(p.dead_ranks(3).is_empty());
        assert_eq!(p.first_failure(), Some(4));
    }

    #[test]
    fn join_revives_a_killed_rank() {
        let p = FaultPlan::new(1).kill(2, 3).join(2, 6);
        assert!(!p.is_dead(2, 2));
        assert!(p.is_dead(2, 3));
        assert!(p.is_dead(2, 5));
        assert!(!p.is_dead(2, 6));
        assert!(!p.is_dead(2, 100));
        assert!(p.is_present(2, 2));
        assert!(!p.is_present(2, 4));
        assert!(p.is_present(2, 6));
        assert_eq!(p.dead_ranks(4), vec![2]);
        assert!(p.dead_ranks(6).is_empty());
        assert_eq!(p.joins_of(2), vec![6]);
        assert_eq!(p.joining_at(6), vec![2]);
        assert!(p.joining_at(5).is_empty());
        assert_eq!(p.join_steps(), vec![6]);
        // A second kill after the revival takes effect again.
        let q = p.clone().kill(2, 9);
        assert!(!q.is_dead(2, 8));
        assert!(q.is_dead(2, 9));
        // A kill and join at the same step resolve to dead.
        let tie = FaultPlan::new(1).kill(0, 4).join(0, 4);
        assert!(tie.is_dead(0, 4));
    }

    #[test]
    fn fresh_joiner_is_absent_until_its_join_step() {
        let p = FaultPlan::new(1).join(4, 5);
        assert!(!p.is_dead(4, 0));
        assert!(!p.is_present(4, 0));
        assert!(!p.is_present(4, 4));
        assert!(p.is_present(4, 5));
        assert!(p.is_present(3, 0));
        assert!(p.dead_ranks(0).is_empty());
    }

    #[test]
    fn backoff_is_exponential() {
        let p = FaultPlan::new(1).with_retry_backoff(1e-3);
        assert!((p.backoff(0) - 1e-3).abs() < 1e-15);
        assert!((p.backoff(1) - 2e-3).abs() < 1e-15);
        assert!((p.backoff(3) - 8e-3).abs() < 1e-15);
    }

    #[test]
    fn spec_string_round_trips_the_readme_example() {
        let p = FaultPlan::parse(
            9,
            "slow:rank=2,x=4,from=0,until=10;degrade:tier=inter,x=3,from=2,until=6;\
             flap:tier=inter,retries=2,from=3,until=4;kill:rank=5,at=4",
        )
        .unwrap();
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.slowdown(2, 1), 4.0);
        assert_eq!(p.link_multiplier(LinkClass::InterNode, 4), 3.0);
        assert_eq!(p.flap_retries(LinkClass::CrossRack, 3), 2);
        assert_eq!(p.dies_at(5), Some(4));
    }

    #[test]
    fn bitflip_fires_once_and_is_deterministic() {
        let p = FaultPlan::new(42).bitflip(2, 5, SdcSite::Grad, Some(30));
        assert!(p.bitflips(2, 4, SdcSite::Grad).is_empty());
        assert!(p.bitflips(2, 6, SdcSite::Grad).is_empty());
        assert!(p.bitflips(1, 5, SdcSite::Grad).is_empty());
        assert!(p.bitflips(2, 5, SdcSite::Act).is_empty());
        let hits = p.bitflips(2, 5, SdcSite::Grad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].bit, 30);
        // Same plan, same query -> same element choice, twice over.
        assert_eq!(
            hits[0].element(1000),
            p.bitflips(2, 5, SdcSite::Grad)[0].element(1000)
        );
        assert!(hits[0].element(7) < 7);
        assert_eq!(hits[0].element(0), 0);
        assert!(p.has_sdc());
        assert!(!FaultPlan::new(42).kill(0, 3).has_sdc());
        assert_eq!(p.first_sdc_at(2), Some(5));
        assert_eq!(p.first_sdc_at(0), None);
        assert_eq!(p.last_sdc_at_or_before(4), None);
        assert_eq!(p.last_sdc_at_or_before(9), Some(5));
    }

    #[test]
    fn derived_bit_lands_in_exponent_region() {
        for seed in 0..32u64 {
            let p = FaultPlan::new(seed).bitflip(0, 1, SdcSite::Act, None);
            let b = p.bitflips(0, 1, SdcSite::Act)[0].bit;
            assert!(
                (23..31).contains(&b),
                "derived bit {b} outside exponent region"
            );
        }
    }

    #[test]
    fn noise_window_and_amplitude_compose() {
        let p =
            FaultPlan::new(3)
                .noise(1, SdcSite::Act, 0.05, 3, 6)
                .noise(1, SdcSite::Act, 0.01, 5, 8);
        assert_eq!(p.noise_amp(1, 2, SdcSite::Act), 0.0);
        assert_eq!(p.noise_amp(1, 3, SdcSite::Act), 0.05);
        assert!((p.noise_amp(1, 5, SdcSite::Act) - 0.06).abs() < 1e-12);
        assert_eq!(p.noise_amp(1, 7, SdcSite::Act), 0.01);
        assert_eq!(p.noise_amp(1, 8, SdcSite::Act), 0.0);
        assert_eq!(p.noise_amp(0, 4, SdcSite::Act), 0.0);
        assert_eq!(p.noise_amp(1, 4, SdcSite::Grad), 0.0);
        // Stream seeds differ across (rank, step, site) but replay identically.
        assert_eq!(
            p.sdc_stream_seed(1, 4, SdcSite::Act),
            p.sdc_stream_seed(1, 4, SdcSite::Act)
        );
        assert_ne!(
            p.sdc_stream_seed(1, 4, SdcSite::Act),
            p.sdc_stream_seed(1, 5, SdcSite::Act)
        );
    }

    #[test]
    fn sdc_spec_strings_parse() {
        let p = FaultPlan::parse(
            11,
            "bitflip:rank=2,at=5,site=grad,bit=30;noise:rank=1,site=act,amp=0.05,from=3,until=6",
        )
        .unwrap();
        assert_eq!(p.events.len(), 2);
        let hits = p.bitflips(2, 5, SdcSite::Grad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].bit, 30);
        assert_eq!(p.noise_amp(1, 4, SdcSite::Act), 0.05);
        // bit defaults to a seeded exponent bit when omitted.
        let q = FaultPlan::parse(11, "bitflip:rank=0,at=1,site=ckpt").unwrap();
        assert!((23..31).contains(&q.bitflips(0, 1, SdcSite::Ckpt)[0].bit));
        assert!(FaultPlan::parse(0, "bitflip:rank=0,at=1").is_err());
        assert!(FaultPlan::parse(0, "bitflip:rank=0,at=1,site=weights").is_err());
        assert!(FaultPlan::parse(0, "bitflip:rank=0,at=1,site=grad,bit=32").is_err());
        assert!(FaultPlan::parse(0, "noise:rank=0,site=act").is_err());
    }

    #[test]
    fn spec_defaults_and_errors() {
        let p = FaultPlan::parse(0, "slow:rank=0,x=2").unwrap();
        assert_eq!(p.slowdown(0, 0), 2.0);
        assert_eq!(p.slowdown(0, u64::MAX - 1), 2.0);
        assert!(FaultPlan::parse(0, "slow:rank=0").is_err());
        assert!(FaultPlan::parse(0, "explode:rank=0").is_err());
        assert!(FaultPlan::parse(0, "kill:rank=zero,at=1").is_err());
        assert!(FaultPlan::parse(0, "degrade:tier=quantum,x=2").is_err());
        assert!(FaultPlan::parse(0, "").unwrap().is_empty());
    }

    #[test]
    fn join_spec_strings_parse() {
        let p = FaultPlan::parse(3, "kill:rank=3,at=2;join:rank=3,at=5").unwrap();
        assert!(p.is_dead(3, 3));
        assert!(!p.is_dead(3, 5));
        assert_eq!(p.joining_at(5), vec![3]);
        assert!(FaultPlan::parse(0, "join:rank=1").is_err());
        assert!(FaultPlan::parse(0, "join:at=4").is_err());
    }

    #[test]
    fn parse_errors_name_segment_and_key() {
        let e =
            FaultPlan::parse(0, "kill:rank=0,at=1;slow:rank=1,x=2;join:rank=x,at=4").unwrap_err();
        assert!(e.contains("invalid rank in segment 3"), "got: {e}");
        assert!(e.contains("'x'"), "got: {e}");

        let e = FaultPlan::parse(0, "kill:rank=0,at=oops").unwrap_err();
        assert!(e.contains("invalid at in segment 1"), "got: {e}");

        let e = FaultPlan::parse(0, "slow:rank=0,x=2;degrade:tier=quantum,x=2").unwrap_err();
        assert!(e.contains("invalid tier in segment 2"), "got: {e}");

        let e = FaultPlan::parse(0, "explode:rank=0").unwrap_err();
        assert!(
            e.contains("unknown fault kind 'explode' in segment 1"),
            "got: {e}"
        );

        let e = FaultPlan::parse(0, "kill:rank=0,at=1;noise:rank=0,site=act").unwrap_err();
        assert!(e.contains("segment 2"), "got: {e}");
        assert!(e.contains("'amp='"), "got: {e}");

        let e = FaultPlan::parse(0, "kill:rank=0,at=1;kill rank 2").unwrap_err();
        assert!(e.contains("segment 2"), "got: {e}");

        let e = FaultPlan::parse(0, "bitflip:rank=0,at=1,site=grad,bit=40").unwrap_err();
        assert!(e.contains("invalid bit in segment 1"), "got: {e}");

        let e = FaultPlan::parse(0, "slow:rank=0,x=2,wat=3").unwrap_err();
        assert!(e.contains("unknown field 'wat' in segment 1"), "got: {e}");
    }
}
