//! Heterogeneous parallelism foldings: a 4D (PP, TP, EP, DP) mapping in
//! which attention and MoE blocks use *different* decompositions of the
//! same per-stage rank set.
//!
//! The fold grammar follows "MoE Parallel Folding": the world is first cut
//! into `pp` contiguous pipeline stages of `R = world / pp` ranks; inside
//! a stage, attention runs TP×DP over those `R` ranks while the MoE block
//! independently runs EP×TP×DP over the *same* ranks. Both products must
//! equal `R` — that is the only coupling between the two sub-mappings.
//!
//! This module is pure topology: it enumerates legal foldings, assigns
//! global ranks to groups, and prices the stage-boundary activation hops.
//! What a folding *costs in time and memory* for a concrete model is the
//! planner's job (`xmoe_core::plan`), which layers the perf and memory
//! models on top of these types.

use crate::cost::CostModel;

/// TP×DP fold of one pipeline stage's ranks for the dense/attention path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttnFold {
    pub tp: usize,
    pub dp: usize,
}

/// EP×TP×DP fold of the same ranks for the MoE path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoeFold {
    pub ep: usize,
    pub tp: usize,
    pub dp: usize,
}

/// One complete 4D folding of a `world`-rank cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelMapping {
    /// Pipeline stages (contiguous rank blocks).
    pub pp: usize,
    /// Virtual chunks per pipeline rank (interleaved 1F1B when > 1).
    pub virtual_chunks: usize,
    /// Microbatches in flight per step.
    pub microbatches: usize,
    /// Attention-block fold of each stage's ranks.
    pub attn: AttnFold,
    /// MoE-block fold of the same ranks.
    pub moe: MoeFold,
}

/// Why a candidate folding is illegal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// Some factor is zero or the per-stage products disagree with world.
    Shape(String),
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::Shape(why) => write!(f, "illegal parallel mapping: {why}"),
        }
    }
}

impl std::error::Error for MappingError {}

impl ParallelMapping {
    /// The trivial mapping: everything on one rank.
    pub fn single() -> Self {
        Self {
            pp: 1,
            virtual_chunks: 1,
            microbatches: 1,
            attn: AttnFold { tp: 1, dp: 1 },
            moe: MoeFold {
                ep: 1,
                tp: 1,
                dp: 1,
            },
        }
    }

    /// Ranks per pipeline stage.
    pub fn stage_ranks(&self) -> usize {
        self.attn.tp * self.attn.dp
    }

    /// Check internal consistency against a world size (and optionally the
    /// model shape via [`legal_for_model`](Self::legal_for_model)).
    pub fn validate(&self, world: usize) -> Result<(), MappingError> {
        let fail = |why: String| Err(MappingError::Shape(why));
        if self.pp == 0
            || self.virtual_chunks == 0
            || self.microbatches == 0
            || self.attn.tp == 0
            || self.attn.dp == 0
            || self.moe.ep == 0
            || self.moe.tp == 0
            || self.moe.dp == 0
        {
            return fail("every parallel degree must be >= 1".into());
        }
        if !world.is_multiple_of(self.pp) {
            return fail(format!("pp={} does not divide world={world}", self.pp));
        }
        let r = world / self.pp;
        if self.attn.tp * self.attn.dp != r {
            return fail(format!(
                "attention fold tp{}xdp{} != {r} ranks per stage",
                self.attn.tp, self.attn.dp
            ));
        }
        if self.moe.ep * self.moe.tp * self.moe.dp != r {
            return fail(format!(
                "moe fold ep{}xtp{}xdp{} != {r} ranks per stage",
                self.moe.ep, self.moe.tp, self.moe.dp
            ));
        }
        if self.virtual_chunks > 1 && !self.microbatches.is_multiple_of(self.pp) {
            return fail(format!(
                "interleaved schedule needs microbatches={} divisible by pp={}",
                self.microbatches, self.pp
            ));
        }
        Ok(())
    }

    /// Model-shape legality on top of [`validate`](Self::validate): stages
    /// must split the layer stack evenly and experts must shard over EP.
    pub fn legal_for_model(
        &self,
        world: usize,
        num_layers: usize,
        num_experts: usize,
    ) -> Result<(), MappingError> {
        self.validate(world)?;
        let stages = self.pp * self.virtual_chunks;
        if !num_layers.is_multiple_of(stages) {
            return Err(MappingError::Shape(format!(
                "{num_layers} layers do not split into {stages} virtual stages"
            )));
        }
        if !num_experts.is_multiple_of(self.moe.ep) {
            return Err(MappingError::Shape(format!(
                "{num_experts} experts do not shard over ep={}",
                self.moe.ep
            )));
        }
        Ok(())
    }

    /// Compact human label, e.g. `pp2·v2·m8·(tp2×dp2 | ep4×tp1×dp1)`.
    pub fn label(&self) -> String {
        format!(
            "pp{}.v{}.m{}.attn(tp{}xdp{}).moe(ep{}xtp{}xdp{})",
            self.pp,
            self.virtual_chunks,
            self.microbatches,
            self.attn.tp,
            self.attn.dp,
            self.moe.ep,
            self.moe.tp,
            self.moe.dp
        )
    }

    /// Analytic 1F1B bubble fraction `(p-1)/(v·m + p-1)`.
    pub fn analytic_bubble(&self) -> f64 {
        let p = self.pp as f64;
        (p - 1.0) / (self.virtual_chunks as f64 * self.microbatches as f64 + p - 1.0)
    }

    /// Global ranks of pipeline stage `s` (contiguous block layout — keeps
    /// each stage's TP/EP groups as dense and node-local as possible).
    pub fn stage_group(&self, world: usize, s: usize) -> Vec<usize> {
        let r = world / self.pp;
        (s * r..(s + 1) * r).collect()
    }

    /// Global ranks of the MoE EP group containing stage-local rank `j` of
    /// stage `s`. EP is laid out TP-innermost: EP peer `e` of local rank
    /// `j` is `base + e·tp_moe + (j % tp_moe)` within the stage's slice of
    /// `dp` replica `j / (ep·tp_moe)`.
    pub fn ep_group(&self, world: usize, s: usize, j: usize) -> Vec<usize> {
        let r = world / self.pp;
        debug_assert!(j < r);
        let base = s * r;
        let replica = j / (self.moe.ep * self.moe.tp);
        let tp_slot = j % self.moe.tp;
        (0..self.moe.ep)
            .map(|e| base + replica * self.moe.ep * self.moe.tp + e * self.moe.tp + tp_slot)
            .collect()
    }
}

/// Worst-case stage-boundary activation hop time for `bytes` per
/// microbatch: the max over all adjacent-stage rank pairs `(s·R + j,
/// (s+1)·R + j)` of the point-to-point price. This is the term the 1F1B
/// executor pays twice per microbatch per boundary (forward activation +
/// backward gradient).
pub fn stage_boundary_p2p_time(cost: &CostModel, mapping: &ParallelMapping, bytes: u64) -> f64 {
    let world = cost.topology().n_ranks();
    if mapping.pp <= 1 {
        return 0.0;
    }
    let r = world / mapping.pp;
    let mut worst: f64 = 0.0;
    for s in 0..mapping.pp - 1 {
        for j in 0..r {
            worst = worst.max(cost.p2p_time(s * r + j, (s + 1) * r + j, bytes));
        }
    }
    worst
}

/// Search space for [`enumerate_foldings`].
#[derive(Clone, Copy, Debug)]
pub struct FoldSearchSpace {
    /// Total ranks to fold.
    pub world: usize,
    /// Experts per MoE layer (EP must divide it).
    pub num_experts: usize,
    /// Transformer layers (virtual stages must divide it).
    pub num_layers: usize,
    /// Microbatches per step (fixed across candidates so step times
    /// compare like-for-like).
    pub microbatches: usize,
    /// Cap on either tensor-parallel degree (TP beyond one node is never
    /// competitive on the machines modelled here).
    pub max_tp: usize,
}

impl FoldSearchSpace {
    pub fn new(world: usize, num_experts: usize, num_layers: usize, microbatches: usize) -> Self {
        Self {
            world,
            num_experts,
            num_layers,
            microbatches,
            max_tp: 8,
        }
    }
}

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

/// Enumerate every legal folding of the space: `pp` over divisors of both
/// world and the layer stack, independent TP×DP and EP×TP×DP folds of the
/// per-stage ranks, and the deepest interleaving `v` the layer count
/// admits (plus the non-interleaved `v = 1` variant when they differ).
pub fn enumerate_foldings(space: &FoldSearchSpace) -> Vec<ParallelMapping> {
    let mut out = Vec::new();
    for &pp in &divisors(space.world) {
        if !space.num_layers.is_multiple_of(pp) {
            continue;
        }
        let r = space.world / pp;
        let mut vs = vec![1];
        if pp > 1 && space.microbatches.is_multiple_of(pp) {
            // Deepest interleaving the layer stack allows, capped at 2:
            // deeper chunking multiplies p2p traffic for little extra
            // bubble shrink at these depths.
            if space.num_layers.is_multiple_of(pp * 2) {
                vs.push(2);
            }
        }
        for &v in &vs {
            for &tp_attn in &divisors(r) {
                if tp_attn > space.max_tp {
                    continue;
                }
                for &ep in &divisors(r) {
                    if !space.num_experts.is_multiple_of(ep) {
                        continue;
                    }
                    for &tp_moe in &divisors(r / ep) {
                        if tp_moe > space.max_tp {
                            continue;
                        }
                        let m = ParallelMapping {
                            pp,
                            virtual_chunks: v,
                            microbatches: space.microbatches,
                            attn: AttnFold {
                                tp: tp_attn,
                                dp: r / tp_attn,
                            },
                            moe: MoeFold {
                                ep,
                                tp: tp_moe,
                                dp: r / (ep * tp_moe),
                            },
                        };
                        debug_assert!(m
                            .legal_for_model(space.world, space.num_layers, space.num_experts)
                            .is_ok());
                        out.push(m);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterTopology, CongestionModel, MachineSpec};

    #[test]
    fn validate_catches_bad_products() {
        let mut m = ParallelMapping::single();
        assert!(m.validate(1).is_ok());
        m.attn = AttnFold { tp: 2, dp: 1 };
        assert!(m.validate(1).is_err());
        let m = ParallelMapping {
            pp: 2,
            virtual_chunks: 1,
            microbatches: 4,
            attn: AttnFold { tp: 2, dp: 4 },
            moe: MoeFold {
                ep: 4,
                tp: 2,
                dp: 1,
            },
        };
        assert!(m.validate(16).is_ok());
        assert!(m.validate(32).is_err());
    }

    #[test]
    fn interleaving_requires_divisible_microbatches() {
        let mut m = ParallelMapping {
            pp: 4,
            virtual_chunks: 2,
            microbatches: 6,
            attn: AttnFold { tp: 1, dp: 1 },
            moe: MoeFold {
                ep: 1,
                tp: 1,
                dp: 1,
            },
        };
        assert!(m.validate(4).is_err());
        m.microbatches = 8;
        assert!(m.validate(4).is_ok());
    }

    #[test]
    fn enumeration_is_legal_and_heterogeneous() {
        let space = FoldSearchSpace::new(16, 32, 8, 8);
        let folds = enumerate_foldings(&space);
        assert!(folds.len() >= 8, "only {} foldings", folds.len());
        assert!(folds.iter().any(|m| m.pp > 1), "need a PP>1 candidate");
        // The point of folding: at least one candidate where attention and
        // MoE decompose the stage differently.
        assert!(folds.iter().any(|m| m.attn.tp != m.moe.tp || m.moe.ep > 1));
        for m in &folds {
            m.legal_for_model(16, 8, 32).unwrap();
        }
    }

    #[test]
    fn ep_groups_partition_each_stage() {
        let m = ParallelMapping {
            pp: 2,
            virtual_chunks: 1,
            microbatches: 4,
            attn: AttnFold { tp: 4, dp: 2 },
            moe: MoeFold {
                ep: 2,
                tp: 2,
                dp: 2,
            },
        };
        m.validate(16).unwrap();
        for s in 0..2 {
            let stage = m.stage_group(16, s);
            assert_eq!(stage.len(), 8);
            for &j in &[0usize, 3, 5, 7] {
                let g = m.ep_group(16, s, j);
                assert_eq!(g.len(), 2);
                assert!(g.contains(&(s * 8 + j)), "{g:?} must contain rank {j}");
                for r in g {
                    assert!(stage.contains(&r));
                }
            }
        }
    }

    #[test]
    fn boundary_p2p_prices_the_worst_pair() {
        let topo = ClusterTopology::new(MachineSpec::frontier(), 16);
        let cost = CostModel::new(topo).with_congestion(CongestionModel::none());
        let m = ParallelMapping {
            pp: 2,
            virtual_chunks: 1,
            microbatches: 4,
            attn: AttnFold { tp: 1, dp: 8 },
            moe: MoeFold {
                ep: 8,
                tp: 1,
                dp: 1,
            },
        };
        // Stage 0 = ranks 0..8 (node 0), stage 1 = ranks 8..16 (node 1):
        // every boundary pair crosses nodes.
        let t = stage_boundary_p2p_time(&cost, &m, 1 << 20);
        let spec = MachineSpec::frontier();
        let want = spec.inter_latency + (1u64 << 20) as f64 / spec.inter_node_bw;
        assert!((t - want).abs() < 1e-12, "got {t}, want {want}");
        // pp = 1 has no boundary.
        assert_eq!(
            stage_boundary_p2p_time(&cost, &ParallelMapping::single(), 123),
            0.0
        );
    }
}
