//! Communication/computation cost model.
//!
//! Collectives are priced from exact per-(src, dst) byte counts using an
//! α–β (latency–bandwidth) model with per-link-class bandwidths. For an
//! all-to-all, every rank sends and receives concurrently, so the collective
//! finishes when the busiest rank drains its slowest link class:
//!
//! ```text
//! t = max over ranks r of
//!       max(send_intra_r, recv_intra_r) / bw_intra
//!     + max(send_inter_r, recv_inter_r) / bw_inter * congestion
//!     + startup(α, peers)
//! ```
//!
//! This is the standard model for NIC-bound all-to-alls and captures
//! precisely the effect X-MoE exploits: moving bytes from the `inter` term
//! (25 GB/s on Frontier) to the `intra` term (200 GB/s) or removing them
//! entirely (padding-free buffers).

use crate::{ClusterTopology, CongestionModel, LinkClass};
use xmoe_tensor::DetRng;

/// Prices communication and computation on a [`ClusterTopology`].
///
/// ```
/// use xmoe_topology::{ClusterTopology, CostModel, MachineSpec};
/// let topo = ClusterTopology::new(MachineSpec::frontier(), 16);
/// let cost = CostModel::new(topo);
/// // Intra-node Infinity Fabric vs inter-node Slingshot: ~8x.
/// let intra = cost.p2p_time(0, 1, 100_000_000);
/// let inter = cost.p2p_time(0, 8, 100_000_000);
/// assert!(inter > 6.0 * intra);
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    topo: ClusterTopology,
    congestion: CongestionModel,
}

/// Per-rank traffic split by link class, in bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficSplit {
    pub intra_send: u64,
    pub intra_recv: u64,
    pub inter_send: u64,
    pub inter_recv: u64,
    pub cross_rack_send: u64,
    pub cross_rack_recv: u64,
}

impl TrafficSplit {
    pub fn total_send(&self) -> u64 {
        self.intra_send + self.inter_send + self.cross_rack_send
    }
}

impl CostModel {
    /// Build a cost model with the default congestion behaviour for the
    /// topology's scale.
    pub fn new(topo: ClusterTopology) -> Self {
        let congestion = CongestionModel::for_scale(topo.n_ranks(), topo.spec().gpus_per_rack());
        Self { topo, congestion }
    }

    /// Override the congestion model (tests use [`CongestionModel::none`]).
    pub fn with_congestion(mut self, congestion: CongestionModel) -> Self {
        self.congestion = congestion;
        self
    }

    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    pub fn congestion(&self) -> &CongestionModel {
        &self.congestion
    }

    /// Point-to-point transfer time.
    pub fn p2p_time(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let spec = self.topo.spec();
        match self.topo.link_class(src, dst) {
            LinkClass::Local => 0.0,
            LinkClass::IntraNode => spec.intra_latency + bytes as f64 / spec.intra_node_bw,
            LinkClass::InterNode => spec.inter_latency + bytes as f64 / spec.inter_node_bw,
            LinkClass::CrossRack => {
                (spec.inter_latency + bytes as f64 / spec.inter_node_bw)
                    * self.congestion.mean_multiplier()
            }
        }
    }

    /// Classify the byte matrix of a (sub-)all-to-all into per-rank traffic
    /// splits. `group[i]` is the global rank at group position `i`;
    /// `bytes(i, j)` is how many bytes position `i` sends to position `j`.
    pub fn traffic_splits(
        &self,
        group: &[usize],
        bytes: &dyn Fn(usize, usize) -> u64,
    ) -> Vec<TrafficSplit> {
        let n = group.len();
        let mut splits = vec![TrafficSplit::default(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue; // self-sends are local memcpy, priced as compute
                }
                let b = bytes(i, j);
                if b == 0 {
                    continue;
                }
                match self.topo.link_class(group[i], group[j]) {
                    LinkClass::Local => {}
                    LinkClass::IntraNode => {
                        splits[i].intra_send += b;
                        splits[j].intra_recv += b;
                    }
                    LinkClass::InterNode => {
                        splits[i].inter_send += b;
                        splits[j].inter_recv += b;
                    }
                    LinkClass::CrossRack => {
                        splits[i].cross_rack_send += b;
                        splits[j].cross_rack_recv += b;
                    }
                }
            }
        }
        splits
    }

    /// Expected (mean-congestion) time of an uneven all-to-all described by
    /// a byte matrix over `group`.
    pub fn alltoallv_time(&self, group: &[usize], bytes: &dyn Fn(usize, usize) -> u64) -> f64 {
        self.alltoallv_time_with_multiplier(group, bytes, self.congestion.mean_multiplier())
    }

    /// Sampled time of an uneven all-to-all: cross-rack traffic draws a
    /// congestion multiplier from the outlier distribution.
    pub fn alltoallv_time_sampled(
        &self,
        group: &[usize],
        bytes: &dyn Fn(usize, usize) -> u64,
        rng: &mut DetRng,
    ) -> f64 {
        self.alltoallv_time_with_multiplier(group, bytes, self.congestion.sample_multiplier(rng))
    }

    fn alltoallv_time_with_multiplier(
        &self,
        group: &[usize],
        bytes: &dyn Fn(usize, usize) -> u64,
        cross_rack_mult: f64,
    ) -> f64 {
        if group.len() <= 1 {
            return 0.0;
        }
        // Pricing is simulation machinery with no malloc analog on real
        // hardware (the split table models the NIC, it isn't training
        // state), so its scratch Vec lives under the untracked counter —
        // same policy as the simulated wire in the collectives crate.
        let splits = xmoe_tensor::untracked(|| self.traffic_splits(group, bytes));
        let (worst, any_intra, any_inter) = self.worst_drain(&splits, cross_rack_mult);
        worst + self.startup(group.len(), any_intra, any_inter)
    }

    /// Busiest-rank drain time over per-rank splits, plus which link
    /// classes carried traffic at all.
    fn worst_drain(&self, splits: &[TrafficSplit], cross_rack_mult: f64) -> (f64, bool, bool) {
        let spec = self.topo.spec();
        let mut worst: f64 = 0.0;
        let mut any_inter = false;
        let mut any_intra = false;
        for s in splits {
            let intra = s.intra_send.max(s.intra_recv) as f64 / spec.intra_node_bw;
            // Inter-node and cross-rack traffic share the NIC; the
            // cross-rack share is additionally stretched by congestion.
            let inter_bytes = s.inter_send.max(s.inter_recv) as f64;
            let xr_bytes = s.cross_rack_send.max(s.cross_rack_recv) as f64;
            let inter = (inter_bytes * self.congestion.spillover + xr_bytes * cross_rack_mult)
                / spec.inter_node_bw;
            worst = worst.max(intra + inter);
            any_intra |= s.intra_send > 0 || s.intra_recv > 0;
            any_inter |= s.inter_send > 0
                || s.inter_recv > 0
                || s.cross_rack_send > 0
                || s.cross_rack_recv > 0;
        }
        (worst, any_intra, any_inter)
    }

    /// Time of a *sparse* uneven all-to-all — the MoE-dispatch shape where
    /// most (src, dst) pairs carry nothing. Drains price exactly like
    /// [`alltoallv_time`](Self::alltoallv_time), but the startup term is
    /// per-message injection overhead: the busiest rank pays one α per
    /// *distinct peer it actually sends to* (at that link's latency class)
    /// instead of the dense collective's `α log₂ n` rounds. This is the
    /// term expert placement moves: packing a token's experts onto fewer
    /// nodes removes whole messages, not just bytes.
    pub fn sparse_exchange_time(
        &self,
        group: &[usize],
        bytes: &dyn Fn(usize, usize) -> u64,
    ) -> f64 {
        if group.len() <= 1 {
            return 0.0;
        }
        let spec = self.topo.spec();
        let splits = xmoe_tensor::untracked(|| self.traffic_splits(group, bytes));
        let (worst, _, _) = self.worst_drain(&splits, self.congestion.mean_multiplier());
        let n = group.len();
        let mut max_startup: f64 = 0.0;
        for i in 0..n {
            let mut startup = 0.0;
            for j in 0..n {
                if i == j || bytes(i, j) == 0 {
                    continue;
                }
                startup += match self.topo.link_class(group[i], group[j]) {
                    LinkClass::Local => 0.0,
                    LinkClass::IntraNode => spec.intra_latency,
                    LinkClass::InterNode | LinkClass::CrossRack => spec.inter_latency,
                };
            }
            max_startup = max_startup.max(startup);
        }
        worst + max_startup
    }

    /// Even all-to-all: every rank sends `bytes_per_pair` to every other.
    pub fn alltoall_even_time(&self, group: &[usize], bytes_per_pair: u64) -> f64 {
        self.alltoallv_time(group, &|_, _| bytes_per_pair)
    }

    /// Ring all-gather: each rank contributes `bytes_per_rank` and receives
    /// everyone else's contribution.
    pub fn allgather_time(&self, group: &[usize], bytes_per_rank: u64) -> f64 {
        let n = group.len();
        if n <= 1 {
            return 0.0;
        }
        let bw = self.bottleneck_bw(group);
        (n - 1) as f64 * bytes_per_rank as f64 / bw + self.startup_ring(group, n)
    }

    /// Ring all-gather with *uneven* per-rank contributions. In a ring, link
    /// `r → r+1` carries every chunk except the one that originates at
    /// `r+1`, so the bottleneck link moves `Σ bytes − min(bytes)` and the
    /// collective finishes in that link's drain time. Reduces exactly to
    /// [`allgather_time`](Self::allgather_time) when all contributions are
    /// equal; for a skewed gather (one big contributor, n−1 tiny ones) it is
    /// up to n× cheaper than pricing every rank at the max.
    pub fn allgather_time_uneven(&self, group: &[usize], bytes_per_rank: &[u64]) -> f64 {
        let n = group.len();
        assert_eq!(
            bytes_per_rank.len(),
            n,
            "allgather_time_uneven needs one byte count per group member"
        );
        if n <= 1 {
            return 0.0;
        }
        let total: u64 = bytes_per_rank.iter().sum();
        let min = bytes_per_rank.iter().copied().min().unwrap_or(0);
        let bw = self.bottleneck_bw(group);
        (total - min) as f64 / bw + self.startup_ring(group, n)
    }

    /// Ring all-reduce of `bytes` (reduce-scatter + all-gather):
    /// `2 (n-1)/n * bytes / bw`.
    pub fn allreduce_time(&self, group: &[usize], bytes: u64) -> f64 {
        let n = group.len();
        if n <= 1 {
            return 0.0;
        }
        let bw = self.bottleneck_bw(group);
        2.0 * (n - 1) as f64 / n as f64 * bytes as f64 / bw + self.startup_ring(group, n)
    }

    /// Ring reduce-scatter of `bytes` total: `(n-1)/n * bytes / bw`.
    pub fn reduce_scatter_time(&self, group: &[usize], bytes: u64) -> f64 {
        let n = group.len();
        if n <= 1 {
            return 0.0;
        }
        let bw = self.bottleneck_bw(group);
        (n - 1) as f64 / n as f64 * bytes as f64 / bw + self.startup_ring(group, n)
    }

    /// Time for a dense GEMM of `flops` floating point operations.
    pub fn compute_time(&self, flops: f64) -> f64 {
        let spec = self.topo.spec();
        flops / (spec.peak_flops * spec.gemm_efficiency)
    }

    /// Time for a bandwidth-bound kernel touching `bytes` of HBM.
    pub fn mem_bound_time(&self, bytes: f64) -> f64 {
        bytes / self.topo.spec().mem_bw
    }

    /// Worst (most expensive) link class present between any pair of ranks
    /// in the group. This is the class a ring collective bottlenecks on, and
    /// the class link-level faults are matched against.
    pub fn group_class(&self, group: &[usize]) -> LinkClass {
        let mut class = LinkClass::Local;
        'outer: for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                class = class.max(self.topo.link_class(a, b));
                if class == LinkClass::CrossRack {
                    break 'outer;
                }
            }
        }
        class
    }

    /// Fault-induced time multiplier for a collective over `group` at
    /// training step `step`: the [`FaultPlan`]'s degradation factor for the
    /// group's bottleneck link class (1.0 when nothing is degraded).
    pub fn fault_link_multiplier(
        &self,
        group: &[usize],
        plan: &crate::fault::FaultPlan,
        step: u64,
    ) -> f64 {
        plan.link_multiplier(self.group_class(group), step)
    }

    /// Slowest link bandwidth present among any pair in the group, with mean
    /// congestion applied if the group spans racks.
    fn bottleneck_bw(&self, group: &[usize]) -> f64 {
        let spec = self.topo.spec();
        match self.group_class(group) {
            LinkClass::Local | LinkClass::IntraNode => spec.intra_node_bw,
            LinkClass::InterNode => spec.inter_node_bw / self.congestion.spillover,
            LinkClass::CrossRack => spec.inter_node_bw / self.congestion.mean_multiplier(),
        }
    }

    fn startup(&self, n: usize, any_intra: bool, any_inter: bool) -> f64 {
        let spec = self.topo.spec();
        let alpha = if any_inter {
            spec.inter_latency
        } else if any_intra {
            spec.intra_latency
        } else {
            return 0.0;
        };
        // Pairwise-exchange all-to-all: n-1 rounds, overlapped; the startup
        // term grows logarithmically in well-tuned implementations.
        alpha * (n as f64).log2().max(1.0)
    }

    fn startup_ring(&self, group: &[usize], n: usize) -> f64 {
        let spec = self.topo.spec();
        let mut crosses_nodes = false;
        for (i, &a) in group.iter().enumerate() {
            if let Some(&b) = group.get(i + 1) {
                if !self.topo.same_node(a, b) {
                    crosses_nodes = true;
                    break;
                }
            }
        }
        let alpha = if crosses_nodes {
            spec.inter_latency
        } else {
            spec.intra_latency
        };
        alpha * (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineSpec;

    fn frontier_model(n: usize) -> CostModel {
        CostModel::new(ClusterTopology::new(MachineSpec::frontier(), n))
            .with_congestion(CongestionModel::none())
    }

    #[test]
    fn p2p_intra_is_much_cheaper_than_inter() {
        let m = frontier_model(16);
        let bytes = 100_000_000; // 100 MB
        let intra = m.p2p_time(0, 1, bytes);
        let inter = m.p2p_time(0, 8, bytes);
        // 200 GB/s vs 25 GB/s => ~8x.
        assert!(
            inter / intra > 6.0 && inter / intra < 9.0,
            "ratio {}",
            inter / intra
        );
    }

    #[test]
    fn p2p_local_is_free() {
        let m = frontier_model(8);
        assert_eq!(m.p2p_time(3, 3, 1 << 30), 0.0);
    }

    #[test]
    fn alltoall_time_scales_with_bytes() {
        let m = frontier_model(16);
        let group: Vec<usize> = (0..16).collect();
        let t1 = m.alltoall_even_time(&group, 1_000_000);
        let t2 = m.alltoall_even_time(&group, 10_000_000);
        assert!(
            t2 > 5.0 * t1,
            "expected near-linear scaling, got {t1} -> {t2}"
        );
    }

    #[test]
    fn removing_inter_node_bytes_dominates_savings() {
        // Same total bytes; variant B routes the inter-node share intra-node.
        let m = frontier_model(16);
        let group: Vec<usize> = (0..16).collect();
        let all = m.alltoallv_time(&group, &|_i, _j| 1_000_000);
        let intra_only = m.alltoallv_time(&group, &|i, j| {
            if (group[i] < 8) != (group[j] < 8) {
                0
            } else {
                2_000_000
            }
        });
        assert!(all > 2.0 * intra_only, "inter {all} vs intra {intra_only}");
    }

    #[test]
    fn traffic_split_accounts_every_byte() {
        let m = frontier_model(16);
        let group: Vec<usize> = (0..16).collect();
        let splits = m.traffic_splits(&group, &|_, _| 10);
        for s in &splits {
            // 7 intra-node peers, 8 inter-node peers, no cross-rack at 16 GPUs.
            assert_eq!(s.intra_send, 70);
            assert_eq!(s.inter_send, 80);
            assert_eq!(s.cross_rack_send, 0);
            assert_eq!(s.intra_recv, 70);
            assert_eq!(s.inter_recv, 80);
        }
    }

    #[test]
    fn cross_rack_traffic_appears_beyond_256_frontier_gpus() {
        let m = frontier_model(512);
        let group: Vec<usize> = vec![0, 300];
        let splits = m.traffic_splits(&group, &|_, _| 5);
        assert_eq!(splits[0].cross_rack_send, 5);
        assert_eq!(splits[0].inter_send, 0);
    }

    #[test]
    fn allreduce_over_nodes_slower_than_within_node() {
        let m = frontier_model(64);
        let within: Vec<usize> = (0..8).collect(); // one node
        let across: Vec<usize> = (0..64).step_by(8).collect(); // 8 nodes
        let bytes = 1 << 28;
        assert!(m.allreduce_time(&across, bytes) > 4.0 * m.allreduce_time(&within, bytes));
    }

    #[test]
    fn allgather_linear_in_group_size() {
        let m = frontier_model(64);
        let g8: Vec<usize> = (0..8).collect();
        let g4: Vec<usize> = (0..4).collect();
        let b = 1 << 26;
        let t8 = m.allgather_time(&g8, b);
        let t4 = m.allgather_time(&g4, b);
        assert!(t8 / t4 > 2.0 && t8 / t4 < 2.7, "ratio {}", t8 / t4);
    }

    #[test]
    fn uneven_allgather_matches_even_formula_when_uniform() {
        let m = frontier_model(64);
        let g: Vec<usize> = (0..16).collect();
        let b = 1 << 22;
        let even = m.allgather_time(&g, b);
        let uneven = m.allgather_time_uneven(&g, &[b; 16]);
        assert!((even - uneven).abs() < 1e-12, "even {even} uneven {uneven}");
    }

    #[test]
    fn skewed_allgather_is_cheaper_than_max_pricing() {
        // One rank contributes everything: the ring moves ~1/n of what
        // max-based pricing assumed.
        let m = frontier_model(64);
        let g: Vec<usize> = (0..16).collect();
        let big = 1u64 << 26;
        let mut bytes = vec![0u64; 16];
        bytes[3] = big;
        let skewed = m.allgather_time_uneven(&g, &bytes);
        let max_priced = m.allgather_time(&g, big);
        assert!(
            skewed < max_priced / 8.0,
            "skewed {skewed} vs max-priced {max_priced}"
        );
    }

    #[test]
    fn singleton_collectives_are_free() {
        let m = frontier_model(8);
        assert_eq!(m.alltoall_even_time(&[2], 1 << 20), 0.0);
        assert_eq!(m.allreduce_time(&[5], 1 << 20), 0.0);
        assert_eq!(m.allgather_time(&[1], 1 << 20), 0.0);
    }

    #[test]
    fn compute_time_uses_efficiency() {
        let m = frontier_model(8);
        let t = m.compute_time(191.5e12 * 0.45);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_class_finds_the_bottleneck() {
        let m = frontier_model(512);
        assert_eq!(m.group_class(&[3]), LinkClass::Local);
        assert_eq!(m.group_class(&[0, 1, 7]), LinkClass::IntraNode);
        assert_eq!(m.group_class(&[0, 1, 8]), LinkClass::InterNode);
        assert_eq!(m.group_class(&[0, 8, 300]), LinkClass::CrossRack);
    }

    #[test]
    fn fault_multiplier_matches_group_tier() {
        use crate::fault::{FaultPlan, LinkTier};
        let m = frontier_model(16);
        let plan = FaultPlan::new(0).degrade(LinkTier::Inter, 3.0, 0, 10);
        let intra: Vec<usize> = (0..8).collect();
        let spanning: Vec<usize> = (0..16).collect();
        assert_eq!(m.fault_link_multiplier(&intra, &plan, 5), 1.0);
        assert_eq!(m.fault_link_multiplier(&spanning, &plan, 5), 3.0);
        assert_eq!(m.fault_link_multiplier(&spanning, &plan, 10), 1.0);
    }

    #[test]
    fn congested_cross_rack_slower_than_clean() {
        let topo = ClusterTopology::new(MachineSpec::frontier(), 1024);
        let clean = CostModel::new(topo.clone()).with_congestion(CongestionModel::none());
        let congested = CostModel::new(topo); // default: congestion at 1024 GPUs
        let group: Vec<usize> = (0..1024).step_by(64).collect();
        let t_clean = clean.alltoall_even_time(&group, 1 << 22);
        let t_cong = congested.alltoall_even_time(&group, 1 << 22);
        assert!(
            t_cong > t_clean,
            "congestion must add time: {t_clean} vs {t_cong}"
        );
    }
}
