//! Randomized-but-deterministic property tests for the cluster model, cost
//! model and placement. A local splitmix64 drives the case sweep so the
//! crate needs no external dependencies and failures reproduce exactly.

use xmoe_topology::{
    build_grid, ClusterTopology, CongestionModel, CostModel, LinkClass, MachineSpec,
    PlacementPolicy,
};

const CASES: u64 = 64;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn rank_mapping_is_consistent() {
    let mut rng = Rng(0x21);
    for _ in 0..CASES {
        let n = 1 + rng.below(2047) as usize;
        let r = (((n - 1) as f64) * rng.f64()) as usize;
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let node = t.node_of(r);
        let rack = t.rack_of(r);
        assert_eq!(node, r / 8);
        assert_eq!(rack, node / 32);
        assert!(t.local_index(r) < 8);
        assert!(t.node_peers(r).contains(&r));
        // Peers share the node.
        for &p in &t.node_peers(r) {
            assert!(t.same_node(r, p));
        }
    }
}

#[test]
fn link_class_is_symmetric() {
    let mut rng = Rng(0x22);
    for _ in 0..CASES {
        let n = 2 + rng.below(2046) as usize;
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let a = (((n - 1) as f64) * rng.f64()) as usize;
        let b = (((n - 1) as f64) * rng.f64()) as usize;
        assert_eq!(t.link_class(a, b), t.link_class(b, a));
        if a == b {
            assert_eq!(t.link_class(a, b), LinkClass::Local);
        }
    }
}

#[test]
fn p2p_cost_ordered_by_link_class() {
    let mut rng = Rng(0x23);
    let t = ClusterTopology::new(MachineSpec::frontier(), 1024);
    let m = CostModel::new(t);
    for _ in 0..CASES {
        let bytes = 1 + rng.below(1_000_000_000);
        let local = m.p2p_time(0, 0, bytes);
        let intra = m.p2p_time(0, 1, bytes);
        let inter = m.p2p_time(0, 8, bytes);
        let xrack = m.p2p_time(0, 300, bytes);
        assert!(local <= intra && intra < inter && inter <= xrack);
    }
}

#[test]
fn traffic_splits_conserve_bytes() {
    let mut rng = Rng(0x24);
    for _ in 0..CASES {
        let n = 1usize << (1 + rng.below(5) as usize);
        let bytes = 1 + rng.below(1_000_000);
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let m = CostModel::new(t).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        let splits = m.traffic_splits(&group, &|_, _| bytes);
        let sent: u64 = splits.iter().map(|s| s.total_send()).sum();
        // Every ordered pair except self-sends.
        assert_eq!(sent, bytes * (n * (n - 1)) as u64);
        // Send and receive totals balance.
        let recv: u64 = splits
            .iter()
            .map(|s| s.intra_recv + s.inter_recv + s.cross_rack_recv)
            .sum();
        assert_eq!(sent, recv);
    }
}

#[test]
fn grid_partitions_for_any_divisible_shape() {
    let mut rng = Rng(0x25);
    for _ in 0..CASES {
        let ep = 1usize << rng.below(5);
        let dp = 1usize << rng.below(5);
        let tp = 1usize << rng.below(3);
        let n = ep * dp * tp;
        let policy = if rng.below(2) == 0 {
            PlacementPolicy::EpFirst
        } else {
            PlacementPolicy::DpFirst
        };
        let g = xmoe_topology::placement::build_grid_tp(n, tp, ep, policy);
        assert_eq!(g.dp_size, dp);
        // Each leader appears exactly once in EP groups and once in DP groups.
        let mut ep_seen = std::collections::HashSet::new();
        for grp in &g.ep_groups {
            assert_eq!(grp.len(), ep);
            for &r in grp {
                assert!(ep_seen.insert(r));
                assert_eq!(r % tp, 0, "EP members must be TP leaders");
            }
        }
        let mut dp_seen = std::collections::HashSet::new();
        for grp in &g.dp_groups {
            assert_eq!(grp.len(), dp);
            for &r in grp {
                assert!(dp_seen.insert(r));
            }
        }
        assert_eq!(ep_seen.len(), n / tp);
        assert_eq!(dp_seen.len(), n / tp);
        // EP group ∩ DP group = exactly one leader.
        for eg in &g.ep_groups {
            for dg in &g.dp_groups {
                let common = eg.iter().filter(|r| dg.contains(r)).count();
                assert_eq!(common, 1);
            }
        }
        let _ = build_grid(n / tp, ep.min(n / tp), policy); // smoke the 2-D path
    }
}

#[test]
fn congestion_mean_at_least_base() {
    let mut rng = Rng(0x26);
    for _ in 0..CASES {
        let base = 1.0 + 2.0 * rng.f64();
        let prob = 0.3 * rng.f64();
        let mean = 1.0 + 59.0 * rng.f64();
        let c = CongestionModel {
            base,
            outlier_prob: prob,
            outlier_mean: mean,
            spillover: 1.0,
        };
        assert!(c.mean_multiplier() >= base - 1e-12);
        assert!(c.mean_multiplier() <= base * mean + 1e-9);
    }
}

#[test]
fn allreduce_cost_monotone_in_bytes_any_group() {
    let mut rng = Rng(0x27);
    for _ in 0..CASES {
        let n = 1usize << (1 + rng.below(6) as usize);
        let b = 1 + rng.below(100_000_000);
        let extra = 1 + rng.below(100_000_000);
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let m = CostModel::new(t).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        assert!(m.allreduce_time(&group, b + extra) >= m.allreduce_time(&group, b));
    }
}
