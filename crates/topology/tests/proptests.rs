//! Property-based tests for the cluster model, cost model and placement.

use proptest::prelude::*;
use xmoe_topology::{
    build_grid, ClusterTopology, CongestionModel, CostModel, LinkClass, MachineSpec,
    PlacementPolicy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_mapping_is_consistent(n in 1usize..2048, r_frac in 0.0f64..1.0) {
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let r = ((n - 1) as f64 * r_frac) as usize;
        let node = t.node_of(r);
        let rack = t.rack_of(r);
        prop_assert_eq!(node, r / 8);
        prop_assert_eq!(rack, node / 32);
        prop_assert!(t.local_index(r) < 8);
        prop_assert!(t.node_peers(r).contains(&r));
        // Peers share the node.
        for &p in &t.node_peers(r) {
            prop_assert!(t.same_node(r, p));
        }
    }

    #[test]
    fn link_class_is_symmetric(n in 2usize..2048, a_f in 0.0f64..1.0, b_f in 0.0f64..1.0) {
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let a = ((n - 1) as f64 * a_f) as usize;
        let b = ((n - 1) as f64 * b_f) as usize;
        prop_assert_eq!(t.link_class(a, b), t.link_class(b, a));
        if a == b {
            prop_assert_eq!(t.link_class(a, b), LinkClass::Local);
        }
    }

    #[test]
    fn p2p_cost_ordered_by_link_class(bytes in 1u64..1_000_000_000) {
        let t = ClusterTopology::new(MachineSpec::frontier(), 1024);
        let m = CostModel::new(t);
        let local = m.p2p_time(0, 0, bytes);
        let intra = m.p2p_time(0, 1, bytes);
        let inter = m.p2p_time(0, 8, bytes);
        let xrack = m.p2p_time(0, 300, bytes);
        prop_assert!(local <= intra && intra < inter && inter <= xrack);
    }

    #[test]
    fn traffic_splits_conserve_bytes(
        n_pow in 1usize..6,
        bytes in 1u64..1_000_000,
    ) {
        let n = 1usize << n_pow;
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let m = CostModel::new(t).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        let splits = m.traffic_splits(&group, &|_, _| bytes);
        let sent: u64 = splits.iter().map(|s| s.total_send()).sum();
        // Every ordered pair except self-sends.
        prop_assert_eq!(sent, bytes * (n * (n - 1)) as u64);
        // Send and receive totals balance.
        let recv: u64 = splits
            .iter()
            .map(|s| s.intra_recv + s.inter_recv + s.cross_rack_recv)
            .sum();
        prop_assert_eq!(sent, recv);
    }

    #[test]
    fn grid_partitions_for_any_divisible_shape(
        ep_pow in 0usize..5,
        dp_pow in 0usize..5,
        tp_pow in 0usize..3,
        policy in prop::bool::ANY,
    ) {
        let (ep, dp, tp) = (1usize << ep_pow, 1usize << dp_pow, 1usize << tp_pow);
        let n = ep * dp * tp;
        let policy = if policy { PlacementPolicy::EpFirst } else { PlacementPolicy::DpFirst };
        let g = xmoe_topology::placement::build_grid_tp(n, tp, ep, policy);
        prop_assert_eq!(g.dp_size, dp);
        // Each leader appears exactly once in EP groups and once in DP groups.
        let mut ep_seen = std::collections::HashSet::new();
        for grp in &g.ep_groups {
            prop_assert_eq!(grp.len(), ep);
            for &r in grp {
                prop_assert!(ep_seen.insert(r));
                prop_assert_eq!(r % tp, 0, "EP members must be TP leaders");
            }
        }
        let mut dp_seen = std::collections::HashSet::new();
        for grp in &g.dp_groups {
            prop_assert_eq!(grp.len(), dp);
            for &r in grp {
                prop_assert!(dp_seen.insert(r));
            }
        }
        prop_assert_eq!(ep_seen.len(), n / tp);
        prop_assert_eq!(dp_seen.len(), n / tp);
        // EP group ∩ DP group = exactly one leader.
        for eg in &g.ep_groups {
            for dg in &g.dp_groups {
                let common = eg.iter().filter(|r| dg.contains(r)).count();
                prop_assert_eq!(common, 1);
            }
        }
        let _ = build_grid(n / tp, ep.min(n / tp), policy); // smoke the 2-D path
    }

    #[test]
    fn congestion_mean_at_least_base(
        base in 1.0f64..3.0,
        prob in 0.0f64..0.3,
        mean in 1.0f64..60.0,
    ) {
        let c = CongestionModel { base, outlier_prob: prob, outlier_mean: mean, spillover: 1.0 };
        prop_assert!(c.mean_multiplier() >= base - 1e-12);
        prop_assert!(c.mean_multiplier() <= base * mean + 1e-9);
    }

    #[test]
    fn allreduce_cost_monotone_in_bytes_any_group(
        n_pow in 1usize..7,
        b in 1u64..100_000_000,
        extra in 1u64..100_000_000,
    ) {
        let n = 1usize << n_pow;
        let t = ClusterTopology::new(MachineSpec::frontier(), n);
        let m = CostModel::new(t).with_congestion(CongestionModel::none());
        let group: Vec<usize> = (0..n).collect();
        prop_assert!(m.allreduce_time(&group, b + extra) >= m.allreduce_time(&group, b));
    }
}
