//! Adam optimizer with global-norm gradient clipping.
//!
//! The model exposes its parameters through a visitor
//! ([`crate::model::MoeLm::visit_params`]); [`Adam`] keeps first/second
//! moment buffers indexed by visitation order, which is stable because the
//! model's structure is fixed after construction.

use xmoe_tensor::Tensor;

/// Adam state and hyperparameters.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Global-norm clip threshold (0 disables clipping).
    pub clip: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 1.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of optimizer steps taken so far (drives bias correction).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// First/second moment buffers in visitation order, for checkpointing.
    /// Slots the optimizer has not seen yet are simply absent.
    pub fn moments(&self) -> (&[Vec<f32>], &[Vec<f32>]) {
        (&self.m, &self.v)
    }

    /// Restore optimizer state captured by [`Adam::step_count`] and
    /// [`Adam::moments`]. The moment vectors must be in the same visitation
    /// order the optimizer will see on the next [`Adam::step`] call.
    pub fn restore(&mut self, step: u64, m: Vec<Vec<f32>>, v: Vec<Vec<f32>>) {
        assert_eq!(m.len(), v.len(), "mismatched moment buffer counts");
        self.step = step;
        self.m = m;
        self.v = v;
    }

    /// Apply one update over `(param, grad)` pairs delivered by a visitor.
    ///
    /// The caller must deliver the same parameters in the same order every
    /// step. Gradients are scaled by the global-norm clip factor first.
    pub fn step<'a>(&mut self, params: Vec<(&'a mut Tensor, &'a Tensor)>) {
        self.step += 1;
        // Global grad norm across all tensors.
        let mut sq = 0.0f64;
        for (_, g) in &params {
            sq += g
                .as_slice()
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>();
        }
        let norm = sq.sqrt() as f32;
        let scale = if self.clip > 0.0 && norm > self.clip {
            self.clip / norm
        } else {
            1.0
        };

        if self.m.len() < params.len() {
            for (p, _) in params.iter().skip(self.m.len()) {
                self.m.push(vec![0.0; p.len()]);
                self.v.push(vec![0.0; p.len()]);
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for (idx, (p, g)) in params.into_iter().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            assert_eq!(
                m.len(),
                p.len(),
                "parameter {idx} changed size between steps"
            );
            for ((pv, &gv), (mv, vv)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                let g = gv * scale;
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // f(w) = 0.5 * ||w - target||^2, grad = w - target.
        let target = [3.0f32, -2.0, 0.5];
        let mut w = Tensor::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let mut opt = Adam::new(0.05);
        opt.clip = 0.0;
        for _ in 0..2000 {
            let g = Tensor::from_vec(
                1,
                3,
                w.as_slice()
                    .iter()
                    .zip(&target)
                    .map(|(&wv, &t)| wv - t)
                    .collect(),
            );
            opt.step(vec![(&mut w, &g)]);
        }
        for (wv, t) in w.as_slice().iter().zip(&target) {
            assert!((wv - t).abs() < 1e-2, "w {wv} target {t}");
        }
    }

    #[test]
    fn clipping_bounds_the_applied_update() {
        let mut w = Tensor::from_vec(1, 2, vec![0.0, 0.0]);
        let g = Tensor::from_vec(1, 2, vec![1e6, 1e6]);
        let mut opt = Adam::new(0.1);
        opt.clip = 1.0;
        opt.step(vec![(&mut w, &g)]);
        // First Adam step magnitude is bounded by lr regardless of grad.
        assert!(
            w.as_slice().iter().all(|&v| v.abs() <= 0.11),
            "{:?}",
            w.as_slice()
        );
    }

    #[test]
    fn multiple_tensors_keep_independent_state() {
        let mut a = Tensor::from_vec(1, 1, vec![0.0]);
        let mut b = Tensor::from_vec(1, 1, vec![0.0]);
        let mut opt = Adam::new(0.01);
        opt.clip = 0.0;
        for _ in 0..500 {
            let ga = Tensor::from_vec(1, 1, vec![a.get(0, 0) - 1.0]);
            let gb = Tensor::from_vec(1, 1, vec![b.get(0, 0) + 1.0]);
            opt.step(vec![(&mut a, &ga), (&mut b, &gb)]);
        }
        assert!((a.get(0, 0) - 1.0).abs() < 0.05);
        assert!((b.get(0, 0) + 1.0).abs() < 0.05);
    }
}
