//! Deterministic model checkpoints for elastic recovery.
//!
//! A checkpoint is the *canonical full model* — every parameter under a
//! global name (expert weights keyed by global expert id, not by owning
//! rank), the matching Adam moments, the completed-step counter and the
//! data-stream RNG state. Because the layout is rank-agnostic, a checkpoint
//! written by a 16-rank run restores onto 8 survivors (or any world size
//! that divides the expert count) without conversion.
//!
//! The encoding is a hand-rolled binary format (no serde in the tree):
//!
//! ```text
//! magic   8 bytes  "XMOECKP2"
//! step    u64 LE   completed optimizer steps
//! rng     u64 LE   DetRng state of the training data stream
//! adam    u64 LE   Adam step counter (bias correction)
//! count   u64 LE   number of named entries
//! hcrc    u32 LE   CRC32 (IEEE) of the 32 header bytes above
//! entry*  u32 LE name_len | name bytes | u64 LE rows | u64 LE cols
//!         | rows*cols f32 LE | u32 LE CRC32 of this entry's bytes
//! ```
//!
//! Version 2 adds the per-section CRC32s: a flipped bit anywhere in a
//! section is rejected at decode time with an error naming the section,
//! which is what lets the chaos runner fall back to the previous
//! checkpoint instead of silently restoring corrupt weights. Version 1
//! streams (no CRCs) still decode for read-compat.
//!
//! `f32` values round-trip bitwise (`to_le_bytes`/`from_le_bytes`), which is
//! what makes resume-from-checkpoint produce losses *identical* to an
//! uninterrupted run rather than merely close.

use std::fmt;

use xmoe_tensor::Tensor;

/// Why a checkpoint byte stream could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The stream does not start with a known `XMOECKP*` magic.
    BadMagic,
    /// The stream ended before the advertised content.
    Truncated { need: usize, have: usize },
    /// An entry header is internally inconsistent (e.g. absurd name length).
    BadEntry(String),
    /// A section's CRC32 did not match its bytes — silent corruption.
    Corrupt {
        section: String,
        want: u32,
        got: u32,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a checkpoint: bad magic"),
            CkptError::Truncated { need, have } => {
                write!(f, "truncated checkpoint: need {need} bytes, have {have}")
            }
            CkptError::BadEntry(what) => write!(f, "malformed checkpoint entry: {what}"),
            CkptError::Corrupt { section, want, got } => write!(
                f,
                "corrupt checkpoint section '{section}': crc32 {got:#010x}, expected {want:#010x}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

const MAGIC_V1: &[u8; 8] = b"XMOECKP1";
const MAGIC_V2: &[u8; 8] = b"XMOECKP2";
/// Guard against nonsense name lengths in corrupt streams.
const MAX_NAME: usize = 4096;

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
/// every section of a v2 checkpoint carries. Table built at compile time;
/// no external crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// A canonical full-model snapshot (see module docs for the wire format).
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Completed optimizer steps; resume starts at this step.
    pub step: u64,
    /// Data-stream [`xmoe_tensor::DetRng`] state at the end of `step`.
    pub rng_state: u64,
    /// Adam's internal step counter (drives bias correction).
    pub adam_step: u64,
    entries: Vec<(String, Tensor)>,
}

impl Checkpoint {
    pub fn new(step: u64, rng_state: u64, adam_step: u64) -> Self {
        Self {
            step,
            rng_state,
            adam_step,
            entries: Vec::new(),
        }
    }

    /// Append a named tensor. Names must be unique; insertion order is the
    /// wire order, so writers must emit entries deterministically.
    pub fn push(&mut self, name: impl Into<String>, t: Tensor) {
        let name = name.into();
        debug_assert!(
            self.tensor(&name).is_none(),
            "duplicate checkpoint entry {name}"
        );
        self.entries.push((name, t));
    }

    /// Look up an entry by name.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    pub fn entries(&self) -> &[(String, Tensor)] {
        &self.entries
    }

    /// Serialize to the current (v2, CRC-protected) wire format.
    pub fn encode(&self) -> Vec<u8> {
        let payload: usize = self
            .entries
            .iter()
            .map(|(n, t)| 4 + n.len() + 16 + t.len() * 4 + 4)
            .sum();
        let mut out = Vec::with_capacity(8 + 32 + 4 + payload);
        out.extend_from_slice(MAGIC_V2);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.rng_state.to_le_bytes());
        out.extend_from_slice(&self.adam_step.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        let hcrc = crc32(&out[8..40]);
        out.extend_from_slice(&hcrc.to_le_bytes());
        for (name, t) in &self.entries {
            let start = out.len();
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(t.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(t.cols() as u64).to_le_bytes());
            for &v in t.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            let ecrc = crc32(&out[start..]);
            out.extend_from_slice(&ecrc.to_le_bytes());
        }
        out
    }

    /// Serialize to the legacy v1 format (no CRCs). Kept so read-compat
    /// with pre-CRC streams stays an executable contract, not a promise.
    pub fn encode_v1(&self) -> Vec<u8> {
        let payload: usize = self
            .entries
            .iter()
            .map(|(n, t)| 4 + n.len() + 16 + t.len() * 4)
            .sum();
        let mut out = Vec::with_capacity(8 + 32 + payload);
        out.extend_from_slice(MAGIC_V1);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.rng_state.to_le_bytes());
        out.extend_from_slice(&self.adam_step.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (name, t) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(t.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(t.cols() as u64).to_le_bytes());
            for &v in t.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parse the wire format back into a checkpoint. Accepts v2 (with
    /// CRC verification per section) and legacy v1 (no CRCs).
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        let v2 = if magic == MAGIC_V2 {
            true
        } else if magic == MAGIC_V1 {
            false
        } else {
            return Err(CkptError::BadMagic);
        };
        let step = r.u64()?;
        let rng_state = r.u64()?;
        let adam_step = r.u64()?;
        let count = r.u64()? as usize;
        if v2 {
            let want = crc32(&bytes[8..40]);
            let got = r.u32()?;
            if got != want {
                return Err(CkptError::Corrupt {
                    section: "header".into(),
                    want,
                    got,
                });
            }
        }
        let mut ckpt = Checkpoint::new(step, rng_state, adam_step);
        for i in 0..count {
            let entry_start = r.pos;
            let name_len = r.u32()? as usize;
            if name_len > MAX_NAME {
                return Err(CkptError::BadEntry(format!("name length {name_len}")));
            }
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| CkptError::BadEntry("non-UTF-8 name".into()))?
                .to_string();
            let rows = r.u64()? as usize;
            let cols = r.u64()? as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| CkptError::BadEntry(format!("{name}: shape overflow")))?;
            let raw = r.take(n * 4)?;
            let data = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            if v2 {
                let want = crc32(&bytes[entry_start..r.pos]);
                let got = r.u32()?;
                if got != want {
                    return Err(CkptError::Corrupt {
                        section: format!("entry {i} '{name}'"),
                        want,
                        got,
                    });
                }
            }
            ckpt.entries
                .push((name, Tensor::from_vec(rows, cols, data)));
        }
        Ok(ckpt)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated {
            need: usize::MAX,
            have: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(CkptError::Truncated {
                need: end,
                have: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new(42, 0xDEAD_BEEF_CAFE_F00D, 41);
        c.push(
            "embed.weight",
            Tensor::from_vec(2, 3, vec![1.5, -0.25, 3e-9, f32::MIN_POSITIVE, -1e30, 0.0]),
        );
        c.push("head.weight", Tensor::from_vec(1, 2, vec![-0.0, 7.0]));
        c
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let c = sample();
        let d = Checkpoint::decode(&c.encode()).unwrap();
        assert_eq!(d.step, 42);
        assert_eq!(d.rng_state, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(d.adam_step, 41);
        assert_eq!(d.entries().len(), 2);
        for ((na, ta), (nb, tb)) in c.entries().iter().zip(d.entries()) {
            assert_eq!(na, nb);
            assert_eq!(ta.shape(), tb.shape());
            for (a, b) in ta.as_slice().iter().zip(tb.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{na} not bitwise equal");
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        let c = sample();
        assert_eq!(c.tensor("head.weight").unwrap().shape(), (1, 2));
        assert!(c.tensor("missing").is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'Y';
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CkptError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match Checkpoint::decode(&bytes[..cut]) {
                Err(CkptError::Truncated { .. }) | Err(CkptError::BadMagic) => {}
                other => panic!("cut at {cut}: expected error, got {other:?}"),
            }
        }
        assert!(Checkpoint::decode(&bytes).is_ok());
    }

    #[test]
    fn absurd_name_length_is_rejected() {
        let mut c = Checkpoint::new(0, 0, 0);
        c.push("x", Tensor::from_vec(1, 1, vec![1.0]));
        let mut bytes = c.encode();
        // Corrupt the name length field (first entry starts after the
        // 8-byte magic, four u64 header fields and the u32 header CRC).
        let off = 8 + 32 + 4;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CkptError::BadEntry(_)) | Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn flipped_payload_byte_is_rejected_naming_the_section() {
        let c = sample();
        let clean = c.encode();
        assert!(Checkpoint::decode(&clean).is_ok());
        // Flip one bit inside the f32 payload of the *second* entry
        // ("head.weight"): its CRC comes last, so target the bytes of its
        // final f32.
        let mut bytes = clean.clone();
        let n = bytes.len();
        bytes[n - 5] ^= 0x10; // last payload byte before the entry CRC
        match Checkpoint::decode(&bytes) {
            Err(CkptError::Corrupt { section, .. }) => {
                assert!(section.contains("head.weight"), "section: {section}");
                assert!(
                    format!("{}", Checkpoint::decode(&bytes).unwrap_err()).contains("head.weight")
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Flip a header byte (the step counter): the header CRC catches it.
        let mut bytes = clean.clone();
        bytes[9] ^= 0x01;
        match Checkpoint::decode(&bytes) {
            Err(CkptError::Corrupt { section, .. }) => assert_eq!(section, "header"),
            other => panic!("expected header Corrupt, got {other:?}"),
        }
        // Flip a byte of the first entry's payload: its name is reported.
        let mut bytes = clean;
        let off = 8 + 32 + 4 + 4 + "embed.weight".len() + 16 + 2;
        bytes[off] ^= 0x80;
        match Checkpoint::decode(&bytes) {
            Err(CkptError::Corrupt { section, .. }) => {
                assert!(section.contains("embed.weight"), "section: {section}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn v1_streams_still_decode() {
        let c = sample();
        let v1 = c.encode_v1();
        assert_eq!(&v1[..8], b"XMOECKP1");
        let d = Checkpoint::decode(&v1).unwrap();
        assert_eq!(d.step, c.step);
        assert_eq!(d.entries().len(), 2);
        for ((na, ta), (nb, tb)) in c.entries().iter().zip(d.entries()) {
            assert_eq!(na, nb);
            for (a, b) in ta.as_slice().iter().zip(tb.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // v1 has no CRCs: a flipped payload byte decodes silently — the
        // exact gap v2 closes.
        let mut bad = c.encode_v1();
        let n = bad.len();
        bad[n - 1] ^= 0x10;
        assert!(Checkpoint::decode(&bad).is_ok());
    }
}
