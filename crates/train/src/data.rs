//! Synthetic training corpus: a random sparse Markov chain.
//!
//! The paper's loss validation trains on a text corpus; what the experiment
//! needs from the data is only that it carries *learnable* next-token
//! structure so the loss demonstrably decreases. A first-order Markov chain
//! with a few successors per state provides exactly that, with entropy we
//! can compute in closed form to sanity-check convergence.

use xmoe_tensor::DetRng;

/// A deterministic Markov-chain token stream.
#[derive(Clone, Debug)]
pub struct MarkovCorpus {
    vocab: usize,
    /// `transitions[s]` — (successor, probability) pairs for state `s`.
    transitions: Vec<Vec<(usize, f64)>>,
    rng: DetRng,
    state: usize,
}

impl MarkovCorpus {
    /// Build a corpus over `vocab` tokens where each state transitions to
    /// `branching` random successors with random (normalized) weights.
    pub fn new(vocab: usize, branching: usize, seed: u64) -> Self {
        assert!(vocab >= 2 && branching >= 1 && branching <= vocab);
        let mut rng = DetRng::new(seed);
        let transitions = (0..vocab)
            .map(|_| {
                // Sample distinct successors.
                let mut succ: Vec<usize> = (0..vocab).collect();
                rng.shuffle(&mut succ);
                succ.truncate(branching);
                let mut weights: Vec<f64> = (0..branching).map(|_| rng.next_f64() + 0.1).collect();
                let total: f64 = weights.iter().sum();
                for w in &mut weights {
                    *w /= total;
                }
                succ.into_iter().zip(weights).collect()
            })
            .collect();
        let state = rng.next_below(vocab);
        Self {
            vocab,
            transitions,
            rng,
            state,
        }
    }

    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Next token in the stream.
    pub fn next_token(&mut self) -> usize {
        let options = &self.transitions[self.state];
        let weights: Vec<f64> = options.iter().map(|&(_, p)| p).collect();
        let choice = self.rng.sample_weighted(&weights);
        self.state = options[choice].0;
        self.state
    }

    /// A batch of `batch` sequences of `seq_len + 1` tokens; the extra token
    /// makes (input, next-token target) pairs.
    pub fn batch(&mut self, batch: usize, seq_len: usize) -> Vec<Vec<usize>> {
        (0..batch)
            .map(|_| (0..=seq_len).map(|_| self.next_token()).collect())
            .collect()
    }

    /// The entropy rate of the chain (expected cross-entropy floor of a
    /// perfect model), in nats, under the stationary assumption of uniform
    /// state visitation (adequate for the shuffled construction).
    pub fn entropy_floor(&self) -> f64 {
        let per_state: f64 = self
            .transitions
            .iter()
            .map(|opts| -opts.iter().map(|&(_, p)| p * p.ln()).sum::<f64>())
            .sum();
        per_state / self.vocab as f64
    }
}

/// A higher-order Markov corpus: the next-token distribution depends on
/// the last `order` tokens. Transitions are derived lazily and
/// deterministically by hashing the history with the seed, so the state
/// space can be large without precomputation.
///
/// With `order >= 2`, a per-token (bigram) model cannot reach the entropy
/// floor — predicting well requires mixing information across positions,
/// which is what the attention block is for.
#[derive(Clone, Debug)]
pub struct HigherOrderCorpus {
    vocab: usize,
    branching: usize,
    order: usize,
    seed: u64,
    rng: DetRng,
    history: Vec<usize>,
}

impl HigherOrderCorpus {
    pub fn new(vocab: usize, branching: usize, order: usize, seed: u64) -> Self {
        assert!(vocab >= 2 && branching >= 1 && branching <= vocab && order >= 1);
        let mut rng = DetRng::new(seed ^ 0x0D0E);
        let history = (0..order).map(|_| rng.next_below(vocab)).collect();
        Self {
            vocab,
            branching,
            order,
            seed,
            rng,
            history,
        }
    }

    /// The (deterministic) successor options for a history.
    fn options(&self, hist: &[usize]) -> (Vec<usize>, Vec<f64>) {
        let mut h = self.seed ^ 0xC0FFEE;
        for &t in hist {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(t as u64 + 1);
        }
        let mut state_rng = DetRng::new(h);
        let mut succ: Vec<usize> = (0..self.vocab).collect();
        state_rng.shuffle(&mut succ);
        succ.truncate(self.branching);
        let mut weights: Vec<f64> = (0..self.branching)
            .map(|_| state_rng.next_f64() + 0.1)
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        (succ, weights)
    }

    pub fn next_token(&mut self) -> usize {
        let (succ, weights) = self.options(&self.history.clone());
        let choice = self.rng.sample_weighted(&weights);
        let t = succ[choice];
        self.history.remove(0);
        self.history.push(t);
        t
    }

    /// A batch of `batch` sequences of `seq_len + 1` tokens.
    pub fn batch(&mut self, batch: usize, seq_len: usize) -> Vec<Vec<usize>> {
        (0..batch)
            .map(|_| (0..=seq_len).map(|_| self.next_token()).collect())
            .collect()
    }

    pub fn order(&self) -> usize {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_stay_in_vocab() {
        let mut c = MarkovCorpus::new(16, 3, 1);
        for _ in 0..1000 {
            assert!(c.next_token() < 16);
        }
    }

    #[test]
    fn transitions_respect_branching() {
        let mut c = MarkovCorpus::new(32, 2, 2);
        // Count observed successors per state.
        let mut succ = vec![std::collections::HashSet::new(); 32];
        let mut prev = c.next_token();
        for _ in 0..20_000 {
            let t = c.next_token();
            succ[prev].insert(t);
            prev = t;
        }
        for (s, set) in succ.iter().enumerate() {
            assert!(set.len() <= 2, "state {s} has {} successors", set.len());
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let mut a = MarkovCorpus::new(16, 3, 7);
        let mut b = MarkovCorpus::new(16, 3, 7);
        for _ in 0..100 {
            assert_eq!(a.next_token(), b.next_token());
        }
    }

    #[test]
    fn batch_shapes() {
        let mut c = MarkovCorpus::new(16, 3, 3);
        let b = c.batch(4, 8);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|s| s.len() == 9));
    }

    #[test]
    fn higher_order_tokens_stay_in_vocab_and_deterministic() {
        let mut a = HigherOrderCorpus::new(16, 2, 2, 5);
        let mut b = HigherOrderCorpus::new(16, 2, 2, 5);
        for _ in 0..500 {
            let t = a.next_token();
            assert!(t < 16);
            assert_eq!(t, b.next_token());
        }
    }

    #[test]
    fn higher_order_needs_full_history() {
        // The same last token with different second-to-last tokens must
        // lead to different successor sets (almost surely).
        let c = HigherOrderCorpus::new(32, 2, 2, 7);
        let (s1, _) = c.options(&[3, 10]);
        let (s2, _) = c.options(&[4, 10]);
        assert_ne!(s1, s2, "order-2 structure collapsed to order-1");
    }

    #[test]
    fn entropy_floor_is_positive_and_below_uniform() {
        let c = MarkovCorpus::new(64, 4, 5);
        let h = c.entropy_floor();
        assert!(h > 0.0);
        assert!(h < (64f64).ln(), "floor {h} must be below uniform entropy");
        assert!(
            h < (4f64).ln() + 0.01,
            "floor {h} bounded by branching entropy"
        );
    }
}
