//! Dense layers with hand-written backward passes: embedding, a GELU MLP
//! block, and the fused softmax-cross-entropy head.

use xmoe_tensor::{add_assign, matmul, matmul_transpose_b, Tensor};

/// Token embedding table `[V, H]`.
#[derive(Clone, Debug)]
pub struct Embedding {
    pub weight: Tensor,
    pub grad: Tensor,
}

impl Embedding {
    pub fn new(vocab: usize, hidden: usize, seed: u64) -> Self {
        Self {
            weight: Tensor::rand_uniform(vocab, hidden, 0.1, seed),
            grad: Tensor::zeros(vocab, hidden),
        }
    }

    /// Look up `tokens`, producing `[n, H]`.
    pub fn forward(&self, tokens: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(tokens.len(), self.weight.cols());
        for (i, &t) in tokens.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.weight.row(t));
        }
        out
    }

    /// Accumulate `d_out` rows into the embedding gradient.
    pub fn backward(&mut self, tokens: &[usize], d_out: &Tensor) {
        for (i, &t) in tokens.iter().enumerate() {
            let g = self.grad.row_mut(t);
            for (gv, dv) in g.iter_mut().zip(d_out.row(i)) {
                *gv += dv;
            }
        }
    }
}

/// Row-wise layer normalization with learnable scale/shift:
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    pub gamma: Tensor,
    pub beta: Tensor,
    pub g_gamma: Tensor,
    pub g_beta: Tensor,
    pub eps: f32,
}

/// Saved forward state of a layer norm.
pub struct LayerNormCtx {
    /// Normalized activations `x_hat`.
    x_hat: Tensor,
    /// Per-row `1 / sqrt(var + eps)`.
    inv_std: Vec<f32>,
}

impl LayerNorm {
    pub fn new(hidden: usize) -> Self {
        Self {
            gamma: Tensor::full(1, hidden, 1.0),
            beta: Tensor::zeros(1, hidden),
            g_gamma: Tensor::zeros(1, hidden),
            g_beta: Tensor::zeros(1, hidden),
            eps: 1e-5,
        }
    }

    pub fn forward(&self, x: &Tensor) -> (Tensor, LayerNormCtx) {
        let (n, h) = x.shape();
        let mut x_hat = Tensor::zeros(n, h);
        let mut out = Tensor::zeros(n, h);
        let mut inv_std = Vec::with_capacity(n);
        let g = self.gamma.row(0);
        let b = self.beta.row(0);
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / h as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / h as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            let xh = x_hat.row_mut(r);
            let o = out.row_mut(r);
            for c in 0..h {
                xh[c] = (row[c] - mean) * is;
                o[c] = g[c] * xh[c] + b[c];
            }
        }
        (out, LayerNormCtx { x_hat, inv_std })
    }

    /// Backward: accumulates `g_gamma`/`g_beta`, returns `d_x`.
    pub fn backward(&mut self, ctx: &LayerNormCtx, d_y: &Tensor) -> Tensor {
        let (n, h) = d_y.shape();
        let mut d_x = Tensor::zeros(n, h);
        let g = self.gamma.row(0);
        for r in 0..n {
            let dy = d_y.row(r);
            let xh = ctx.x_hat.row(r);
            // Parameter grads.
            {
                let gg = self.g_gamma.row_mut(0);
                let gb = self.g_beta.row_mut(0);
                for c in 0..h {
                    gg[c] += dy[c] * xh[c];
                    gb[c] += dy[c];
                }
            }
            // d_xhat = dy * gamma; dx via the standard LN backward.
            let mut sum_dxh = 0.0f32;
            let mut sum_dxh_xh = 0.0f32;
            for c in 0..h {
                let dxh = dy[c] * g[c];
                sum_dxh += dxh;
                sum_dxh_xh += dxh * xh[c];
            }
            let inv_h = 1.0 / h as f32;
            let dx = d_x.row_mut(r);
            for c in 0..h {
                let dxh = dy[c] * g[c];
                dx[c] = ctx.inv_std[r] * (dxh - inv_h * sum_dxh - xh[c] * inv_h * sum_dxh_xh);
            }
        }
        d_x
    }
}

/// A pre-norm residual two-matrix GELU MLP:
/// `y = x + gelu(LN(x) W1) W2`.
#[derive(Clone, Debug)]
pub struct DenseMlp {
    pub norm: LayerNorm,
    pub w1: Tensor,
    pub w2: Tensor,
    pub g1: Tensor,
    pub g2: Tensor,
}

/// Saved forward state for the backward pass.
pub struct DenseMlpCtx {
    ln: LayerNormCtx,
    x_norm: Tensor,
    h_pre: Tensor,
    h_act: Tensor,
}

fn gelu_val(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

impl DenseMlp {
    pub fn new(hidden: usize, inner: usize, seed: u64) -> Self {
        Self {
            norm: LayerNorm::new(hidden),
            w1: Tensor::rand_init(hidden, inner, hidden, seed),
            w2: Tensor::rand_init(inner, hidden, inner, seed ^ 0xABCD),
            g1: Tensor::zeros(hidden, inner),
            g2: Tensor::zeros(inner, hidden),
        }
    }

    pub fn forward(&self, x: &Tensor) -> (Tensor, DenseMlpCtx) {
        let (x_norm, ln) = self.norm.forward(x);
        let h_pre = matmul(&x_norm, &self.w1);
        let mut h_act = h_pre.clone();
        for v in h_act.as_mut_slice() {
            *v = gelu_val(*v);
        }
        let mut y = matmul(&h_act, &self.w2);
        add_assign(&mut y, x); // residual
        (
            y,
            DenseMlpCtx {
                ln,
                x_norm,
                h_pre,
                h_act,
            },
        )
    }

    /// Backward: returns `d_x`; accumulates weight grads.
    pub fn backward(&mut self, ctx: &DenseMlpCtx, d_y: &Tensor) -> Tensor {
        // dW2 += h_act^T d_y
        let h_act_t = ctx.h_act.transpose();
        let dw2 = matmul(&h_act_t, d_y);
        add_assign(&mut self.g2, &dw2);
        // d_h_act = d_y W2^T
        let mut d_h = matmul_transpose_b(d_y, &self.w2);
        // Through GELU.
        for (d, &pre) in d_h.as_mut_slice().iter_mut().zip(ctx.h_pre.as_slice()) {
            *d *= gelu_grad(pre);
        }
        // dW1 += x_norm^T d_h
        let xn_t = ctx.x_norm.transpose();
        let dw1 = matmul(&xn_t, &d_h);
        add_assign(&mut self.g1, &dw1);
        // Through the layer norm, then add the residual path.
        let d_norm_in = matmul_transpose_b(&d_h, &self.w1);
        let mut d_x = self.norm.backward(&ctx.ln, &d_norm_in);
        add_assign(&mut d_x, d_y);
        d_x
    }

    /// Zero the weight and norm gradients.
    pub fn zero_grads(&mut self) {
        for v in self.g1.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.g2.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.norm.g_gamma.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.norm.g_beta.as_mut_slice() {
            *v = 0.0;
        }
    }
}

/// Output head with fused softmax cross-entropy.
#[derive(Clone, Debug)]
pub struct Head {
    /// `[H, V]`.
    pub weight: Tensor,
    pub grad: Tensor,
}

impl Head {
    pub fn new(hidden: usize, vocab: usize, seed: u64) -> Self {
        Self {
            weight: Tensor::rand_init(hidden, vocab, hidden, seed),
            grad: Tensor::zeros(hidden, vocab),
        }
    }

    /// Mean cross-entropy of `targets` under `softmax(x W)`, plus `d_x`.
    /// Weight gradient accumulates into `self.grad`.
    pub fn loss_and_backward(&mut self, x: &Tensor, targets: &[usize]) -> (f64, Tensor) {
        self.loss_and_backward_scaled(x, targets, 1.0)
    }

    /// [`Self::loss_and_backward`] with the loss multiplied by
    /// `loss_scale` — mixed-precision loss scaling. The scale enters at
    /// `d_logits`, *before* the weight gradient is formed, so `self.grad`
    /// and the returned `d_x` carry it consistently. A power-of-two scale
    /// is folded in as an exact multiply on the `1/n` factor, so every
    /// gradient is the bitwise-scaled image of the unscaled run's.
    pub fn loss_and_backward_scaled(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        loss_scale: f32,
    ) -> (f64, Tensor) {
        assert_eq!(x.rows(), targets.len());
        let n = targets.len().max(1);
        let logits = matmul(x, &self.weight);
        let mut probs = logits;
        xmoe_tensor::softmax_rows(&mut probs);
        let mut loss = 0.0f64;
        let mut d_logits = probs.clone();
        for (i, &t) in targets.iter().enumerate() {
            let p = probs.get(i, t).max(1e-12);
            loss -= (p as f64).ln();
            let v = d_logits.get(i, t);
            d_logits.set(i, t, v - 1.0);
        }
        xmoe_tensor::scale_assign(&mut d_logits, (1.0 / n as f32) * loss_scale);
        // dW += x^T d_logits
        let x_t = x.transpose();
        let dw = matmul(&x_t, &d_logits);
        add_assign(&mut self.grad, &dw);
        let d_x = matmul_transpose_b(&d_logits, &self.weight);
        (loss / n as f64, d_x)
    }
}

/// Finite-difference helper used by gradient tests across the crate:
/// perturb `param[idx]` by ±eps around its current value and report the
/// centered difference of `loss_fn`.
#[cfg(test)]
pub(crate) fn central_diff(mut loss_fn: impl FnMut(f32) -> f64, base: f32, eps: f32) -> f64 {
    let up = loss_fn(base + eps);
    let down = loss_fn(base - eps);
    (up - down) / (2.0 * eps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_forward_and_grad() {
        let mut e = Embedding::new(4, 3, 1);
        let out = e.forward(&[2, 0, 2]);
        assert_eq!(out.row(0), e.weight.row(2));
        let d = Tensor::full(3, 3, 1.0);
        e.backward(&[2, 0, 2], &d);
        // Token 2 appears twice.
        assert!(e.grad.row(2).iter().all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(e.grad.row(0).iter().all(|&g| (g - 1.0).abs() < 1e-6));
        assert!(e.grad.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn head_loss_matches_manual_ce() {
        let mut h = Head::new(2, 3, 2);
        let x = Tensor::from_vec(1, 2, vec![0.5, -0.25]);
        let (loss, _) = h.loss_and_backward(&x, &[1]);
        // Manual computation.
        let logits = matmul(&x, &h.weight);
        let mut p = logits.clone();
        xmoe_tensor::softmax_rows(&mut p);
        let expect = -(p.get(0, 1) as f64).ln();
        assert!((loss - expect).abs() < 1e-6);
    }

    #[test]
    fn head_gradients_match_finite_difference() {
        let hidden = 3;
        let vocab = 4;
        let x = Tensor::rand_uniform(2, hidden, 1.0, 3);
        let targets = [1usize, 3];
        let base = Head::new(hidden, vocab, 4);
        let mut h = base.clone();
        let (_, d_x) = h.loss_and_backward(&x, &targets);
        let eps = 1e-3;
        // Check a few weight entries.
        for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let w0 = base.weight.get(r, c);
            let fd = central_diff(
                |v| {
                    let mut hh = base.clone();
                    hh.weight.set(r, c, v);
                    hh.loss_and_backward(&x, &targets).0
                },
                w0,
                eps,
            );
            let an = h.grad.get(r, c) as f64;
            assert!((fd - an).abs() < 1e-3, "dW[{r},{c}] fd {fd} vs an {an}");
        }
        // Check an input entry.
        let fd = central_diff(
            |v| {
                let mut xx = x.clone();
                xx.set(0, 1, v);
                base.clone().loss_and_backward(&xx, &targets).0
            },
            x.get(0, 1),
            eps,
        );
        assert!((fd - d_x.get(0, 1) as f64).abs() < 1e-3);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 10.0]);
        let (y, _) = ln.forward(&x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_gamma_beta_affine() {
        let mut ln = LayerNorm::new(3);
        ln.gamma = Tensor::from_vec(1, 3, vec![2.0, 2.0, 2.0]);
        ln.beta = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let x = Tensor::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let (y, _) = ln.forward(&x);
        // Normalized row is symmetric around 0; gamma/beta shift it.
        let mean: f32 = y.row(0).iter().sum::<f32>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn layernorm_gradients_match_finite_difference() {
        let (n, h) = (3usize, 5usize);
        let x = Tensor::rand_uniform(n, h, 1.0, 71);
        let probe = Tensor::rand_uniform(n, h, 1.0, 72);
        let mut base = LayerNorm::new(h);
        base.gamma = Tensor::rand_uniform(1, h, 0.5, 73);
        for v in base.gamma.as_mut_slice() {
            *v += 1.0;
        }
        base.beta = Tensor::rand_uniform(1, h, 0.5, 74);

        let loss_of = |ln: &LayerNorm, x: &Tensor| -> f64 {
            let (y, _) = ln.forward(x);
            y.as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&a, &p)| (a * p) as f64)
                .sum()
        };

        let mut ln = base.clone();
        let (_, ctx) = ln.forward(&x);
        let d_x = ln.backward(&ctx, &probe);
        let eps = 1e-3f32;
        let rel_ok = |fd: f64, an: f64| (fd - an).abs() < 2e-2 * (1.0 + an.abs().max(fd.abs()));

        for c in [0usize, 2, 4] {
            let g0 = base.gamma.get(0, c);
            let fd = {
                let mut up = base.clone();
                up.gamma.set(0, c, g0 + eps);
                let mut dn = base.clone();
                dn.gamma.set(0, c, g0 - eps);
                (loss_of(&up, &x) - loss_of(&dn, &x)) / (2.0 * eps as f64)
            };
            assert!(rel_ok(fd, ln.g_gamma.get(0, c) as f64), "dGamma[{c}]");
            let b0 = base.beta.get(0, c);
            let fd_b = {
                let mut up = base.clone();
                up.beta.set(0, c, b0 + eps);
                let mut dn = base.clone();
                dn.beta.set(0, c, b0 - eps);
                (loss_of(&up, &x) - loss_of(&dn, &x)) / (2.0 * eps as f64)
            };
            assert!(rel_ok(fd_b, ln.g_beta.get(0, c) as f64), "dBeta[{c}]");
        }
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 4)] {
            let v0 = x.get(r, c);
            let fd = {
                let mut up = x.clone();
                up.set(r, c, v0 + eps);
                let mut dn = x.clone();
                dn.set(r, c, v0 - eps);
                (loss_of(&base, &up) - loss_of(&base, &dn)) / (2.0 * eps as f64)
            };
            assert!(
                rel_ok(fd, d_x.get(r, c) as f64),
                "dX[{r},{c}] fd {fd} an {}",
                d_x.get(r, c)
            );
        }
    }

    #[test]
    fn dense_mlp_gradients_match_finite_difference() {
        let (n, h, inner) = (3usize, 4usize, 5usize);
        let x = Tensor::rand_uniform(n, h, 0.5, 5);
        let base = DenseMlp::new(h, inner, 6);
        // Scalar loss: sum of outputs.
        let loss_of = |mlp: &DenseMlp, x: &Tensor| -> f64 {
            let (y, _) = mlp.forward(x);
            y.as_slice().iter().map(|&v| v as f64).sum()
        };
        let mut mlp = base.clone();
        let (y, ctx) = mlp.forward(&x);
        let d_y = Tensor::full(y.rows(), y.cols(), 1.0);
        let d_x = mlp.backward(&ctx, &d_y);
        let eps = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (2, 3)] {
            let w0 = base.w1.get(r, c);
            let fd = central_diff(
                |v| {
                    let mut m = base.clone();
                    m.w1.set(r, c, v);
                    loss_of(&m, &x)
                },
                w0,
                eps,
            );
            let an = mlp.g1.get(r, c) as f64;
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "dW1[{r},{c}] fd {fd} an {an}"
            );
        }
        let fd = central_diff(
            |v| {
                let mut xx = x.clone();
                xx.set(1, 2, v);
                loss_of(&base, &xx)
            },
            x.get(1, 2),
            eps,
        );
        assert!(
            (fd - d_x.get(1, 2) as f64).abs() < 2e-2 * (1.0 + fd.abs()),
            "dx fd {fd}"
        );
    }
}
