//! The assembled MoE language model and training loop.
//!
//! Architecture per block: optional causal self-attention, residual
//! pre-norm dense MLP, residual MoE layer. The Fig 15 run disables
//! attention: a first-order Markov corpus is learnable by a per-token
//! model, so the lighter skeleton preserves exactly what the figure
//! measures (two drop policies optimizing the same objective on the same
//! data from the same initialization). The `transformer` config enables
//! attention for sequence-structured corpora
//! ([`crate::data::HigherOrderCorpus`]).

use xmoe_core::gating::DropPolicy;
use xmoe_tensor::Tensor;

use crate::adam::Adam;
use crate::attention::Attention;
use crate::data::MarkovCorpus;
use crate::layers::{DenseMlp, Embedding, Head};
use crate::moe_layer::TrainableMoe;

/// Model + training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub vocab: usize,
    pub hidden: usize,
    pub ffn: usize,
    pub num_experts: usize,
    pub top_k: usize,
    pub layers: usize,
    pub seq_len: usize,
    pub batch: usize,
    pub lr: f32,
    /// GShard capacity factor over the per-batch average load.
    pub capacity_factor: f64,
    pub policy: DropPolicy,
    pub seed: u64,
    /// Include a causal self-attention mixer in every block (the full
    /// transformer skeleton). Off for the Fig 15 run, whose corpus is
    /// first-order Markov and needs no sequence mixing.
    pub use_attention: bool,
    pub n_heads: usize,
}

impl TrainConfig {
    /// The Fig 15 defaults: a miniature DeepSeek-style MoE.
    pub fn fig15(policy: DropPolicy) -> Self {
        Self {
            vocab: 64,
            hidden: 32,
            ffn: 16,
            // DeepSeek-style fine-grained routing: a large k relative to E
            // means the lowest-ranked selections often carry negative raw
            // logits — exactly the assignments DeepSpeed-MoE's policy drops
            // (§5.6), which is what separates the two curves.
            num_experts: 16,
            top_k: 6,
            layers: 2,
            seq_len: 32,
            batch: 8,
            lr: 3e-3,
            capacity_factor: 1.25,
            policy,
            seed: 1234,
            use_attention: false,
            n_heads: 4,
        }
    }

    /// A full transformer configuration (attention + MLP + MoE per block)
    /// for sequence-structured corpora.
    pub fn transformer(policy: DropPolicy) -> Self {
        let mut c = Self::fig15(policy);
        c.use_attention = true;
        c
    }

    pub(crate) fn capacity(&self) -> usize {
        let tokens = self.batch * self.seq_len;
        ((self.capacity_factor * tokens as f64 * self.top_k as f64) / self.num_experts as f64)
            .ceil()
            .max(1.0) as usize
    }
}

/// Per-step training statistics.
#[derive(Clone, Copy, Debug)]
pub struct TrainStats {
    pub loss: f64,
    /// Fraction of routed (token, expert) assignments dropped.
    pub drop_fraction: f64,
}

/// One transformer block: optional attention mixer, dense MLP, MoE layer
/// (all residual, pre-norm where applicable).
pub struct Block {
    pub attn: Option<Attention>,
    pub mlp: DenseMlp,
    pub moe: TrainableMoe,
}

/// The MoE language model.
pub struct MoeLm {
    pub cfg: TrainConfig,
    pub embed: Embedding,
    pub blocks: Vec<Block>,
    pub head: Head,
    opt: Adam,
}

/// Build the per-layer MoE stacks for `cfg` — shared between the
/// single-rank [`MoeLm`] and the distributed
/// [`crate::dist::DistMoeLm`], so both start from identical weights.
pub fn build_moe_layers(cfg: &TrainConfig) -> Vec<TrainableMoe> {
    let cap = cfg.capacity();
    (0..cfg.layers)
        .map(|l| {
            let s = cfg.seed.wrapping_add(l as u64 * 7001);
            TrainableMoe::new(
                cfg.hidden,
                cfg.ffn,
                cfg.num_experts,
                cfg.top_k,
                cap,
                cfg.policy,
                s ^ 0xBEEF,
            )
        })
        .collect()
}

impl MoeLm {
    pub fn new(cfg: TrainConfig) -> Self {
        let moes = build_moe_layers(&cfg);
        let blocks = moes
            .into_iter()
            .enumerate()
            .map(|(l, moe)| {
                let s = cfg.seed.wrapping_add(l as u64 * 7001);
                Block {
                    attn: cfg
                        .use_attention
                        .then(|| Attention::new(cfg.hidden, cfg.n_heads, s ^ 0xA77)),
                    mlp: DenseMlp::new(cfg.hidden, cfg.hidden * 2, s),
                    moe,
                }
            })
            .collect();
        Self {
            embed: Embedding::new(cfg.vocab, cfg.hidden, cfg.seed),
            head: Head::new(cfg.hidden, cfg.vocab, cfg.seed ^ 0x4EAD),
            blocks,
            opt: Adam::new(cfg.lr),
            cfg,
        }
    }

    /// Forward + backward + update over one batch of sequences (each
    /// `seq_len + 1` tokens). Returns loss and drop statistics.
    pub fn train_step(&mut self, batch: &[Vec<usize>]) -> TrainStats {
        let (stats, _) = self.forward_backward(batch, true);
        self.apply_update();
        stats
    }

    /// Evaluate without updating (used for matched-data loss curves).
    pub fn eval_step(&mut self, batch: &[Vec<usize>]) -> TrainStats {
        let (stats, _) = self.forward_backward(batch, false);
        self.zero_grads();
        stats
    }

    fn forward_backward(&mut self, batch: &[Vec<usize>], _train: bool) -> (TrainStats, ()) {
        // Flatten the batch into one token stream of (input, target) pairs.
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for seq in batch {
            assert!(seq.len() >= 2, "sequences need at least two tokens");
            for w in seq.windows(2) {
                inputs.push(w[0]);
                targets.push(w[1]);
            }
        }

        let mut x = self.embed.forward(&inputs);
        let mut ctxs = Vec::with_capacity(self.blocks.len());
        let mut dropped = 0usize;
        let mut routed_total = 0usize;
        for block in &self.blocks {
            let attn_ctx = block.attn.as_ref().map(|a| {
                let (x1, c) = a.forward(&x, self.cfg.seq_len);
                x = x1;
                c
            });
            let (x1, mlp_ctx) = block.mlp.forward(&x);
            let (x2, moe_ctx) = block.moe.forward(&x1);
            dropped += moe_ctx_dropped(&moe_ctx);
            routed_total += inputs.len() * self.cfg.top_k;
            ctxs.push((attn_ctx, mlp_ctx, moe_ctx));
            x = x2;
        }
        let (loss, mut d_x) = self.head.loss_and_backward(&x, &targets);
        for (block, (attn_ctx, mlp_ctx, moe_ctx)) in self.blocks.iter_mut().zip(ctxs.iter()).rev() {
            d_x = block.moe.backward(moe_ctx, &d_x);
            d_x = block.mlp.backward(mlp_ctx, &d_x);
            if let (Some(a), Some(c)) = (block.attn.as_mut(), attn_ctx.as_ref()) {
                d_x = a.backward(c, &d_x);
            }
        }
        self.embed.backward(&inputs, &d_x);

        let drop_fraction = if routed_total == 0 {
            0.0
        } else {
            dropped as f64 / routed_total as f64
        };
        (
            TrainStats {
                loss,
                drop_fraction,
            },
            (),
        )
    }

    fn apply_update(&mut self) {
        // Collect (param, grad) pairs in a stable order for Adam.
        let mut pairs: Vec<(&mut Tensor, &Tensor)> = Vec::new();
        pairs.push((&mut self.embed.weight, &self.embed.grad));
        for block in &mut self.blocks {
            if let Some(a) = block.attn.as_mut() {
                pairs.push((&mut a.wq, &a.gq));
                pairs.push((&mut a.wk, &a.gk));
                pairs.push((&mut a.wv, &a.gv));
                pairs.push((&mut a.wo, &a.go));
                pairs.push((&mut a.norm.gamma, &a.norm.g_gamma));
                pairs.push((&mut a.norm.beta, &a.norm.g_beta));
            }
            let mlp = &mut block.mlp;
            pairs.push((&mut mlp.w1, &mlp.g1));
            pairs.push((&mut mlp.w2, &mlp.g2));
            pairs.push((&mut mlp.norm.gamma, &mlp.norm.g_gamma));
            pairs.push((&mut mlp.norm.beta, &mlp.norm.g_beta));
            let moe = &mut block.moe;
            pairs.push((&mut moe.gate, &moe.g_gate));
            for ((w1, w2), (g1, g2)) in moe.experts.iter_mut().zip(moe.g_experts.iter()) {
                pairs.push((w1, g1));
                pairs.push((w2, g2));
            }
        }
        pairs.push((&mut self.head.weight, &self.head.grad));
        self.opt.step(pairs);
        self.zero_grads();
    }

    fn zero_grads(&mut self) {
        for v in self.embed.grad.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.head.grad.as_mut_slice() {
            *v = 0.0;
        }
        for block in &mut self.blocks {
            if let Some(a) = block.attn.as_mut() {
                a.zero_grads();
            }
            block.mlp.zero_grads();
            block.moe.zero_grads();
        }
    }
}

fn moe_ctx_dropped(ctx: &crate::moe_layer::MoeCtx) -> usize {
    ctx.dropped()
}

/// Train both drop policies on identical data streams (same corpus seed)
/// and return their loss curves — the Fig 15 experiment.
pub fn loss_validation_curves(steps: usize, smooth: usize) -> (Vec<f64>, Vec<f64>) {
    let run = |policy: DropPolicy| -> Vec<f64> {
        let cfg = TrainConfig::fig15(policy);
        let mut corpus = MarkovCorpus::new(cfg.vocab, 4, 999);
        let mut model = MoeLm::new(cfg.clone());
        let mut losses = Vec::with_capacity(steps);
        for _ in 0..steps {
            let batch = corpus.batch(cfg.batch, cfg.seq_len);
            let stats = model.train_step(&batch);
            losses.push(stats.loss);
        }
        // Optional moving-average smoothing for plotting.
        if smooth > 1 {
            losses = losses
                .windows(smooth)
                .map(|w| w.iter().sum::<f64>() / w.len() as f64)
                .collect();
        }
        losses
    };
    (
        run(DropPolicy::CapacityOnly),
        run(DropPolicy::CapacityAndNegativeLogit),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_on_markov_corpus() {
        let cfg = TrainConfig::fig15(DropPolicy::CapacityOnly);
        let mut corpus = MarkovCorpus::new(cfg.vocab, 4, 7);
        let mut model = MoeLm::new(cfg.clone());
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..120 {
            let batch = corpus.batch(cfg.batch, cfg.seq_len);
            let stats = model.train_step(&batch);
            if step == 0 {
                first = stats.loss;
            }
            last = stats.loss;
            // Divergence flows through the guard's recoverable check (a
            // policy trip in production, a test failure here) instead of
            // an unconditional abort.
            assert_eq!(crate::guard::check_loss(step as u64, stats.loss), Ok(()));
        }
        assert!(
            last < first - 0.5,
            "loss should drop markedly: {first} -> {last}"
        );
        // Initial loss near uniform ln(V).
        assert!(
            (first - (cfg.vocab as f64).ln()).abs() < 0.8,
            "first loss {first}"
        );
    }

    #[test]
    fn negative_logit_policy_shows_higher_drop_rate() {
        let mk = |policy| {
            let cfg = TrainConfig::fig15(policy);
            let mut corpus = MarkovCorpus::new(cfg.vocab, 4, 17);
            let mut model = MoeLm::new(cfg.clone());
            let batch = corpus.batch(cfg.batch, cfg.seq_len);
            model.eval_step(&batch).drop_fraction
        };
        let xmoe = mk(DropPolicy::CapacityOnly);
        let ds = mk(DropPolicy::CapacityAndNegativeLogit);
        // With layer norm in the dense blocks the MoE input distribution
        // shifts and both policies see some capacity pressure; the
        // invariant is that the negative-logit pre-drop strictly adds
        // dropped assignments on top.
        assert!(
            ds > xmoe + 0.005,
            "DeepSpeed policy must drop measurably more: {ds} vs {xmoe}"
        );
    }

    #[test]
    fn fig15_curves_track_with_xmoe_at_or_below() {
        // Short version of the full experiment: both policies converge, the
        // curves track each other, and X-MoE's final loss is not higher
        // (it retains more tokens; §5.6).
        let (xmoe, ds) = loss_validation_curves(80, 1);
        let tail = 10;
        let x_end: f64 = xmoe.iter().rev().take(tail).sum::<f64>() / tail as f64;
        let d_end: f64 = ds.iter().rev().take(tail).sum::<f64>() / tail as f64;
        assert!(x_end < xmoe[0] - 0.3, "X-MoE curve must descend");
        assert!(d_end < ds[0] - 0.3, "DS curve must descend");
        assert!(x_end <= d_end + 0.05, "X-MoE end {x_end} vs DS end {d_end}");
        // Curves track: pointwise gap bounded over the tail.
        for (a, b) in xmoe.iter().zip(&ds).skip(40) {
            assert!((a - b).abs() < 1.0, "curves diverged: {a} vs {b}");
        }
    }

    #[test]
    fn eval_step_does_not_change_parameters() {
        let cfg = TrainConfig::fig15(DropPolicy::CapacityOnly);
        let mut corpus = MarkovCorpus::new(cfg.vocab, 4, 27);
        let mut model = MoeLm::new(cfg.clone());
        let batch = corpus.batch(cfg.batch, cfg.seq_len);
        let l1 = model.eval_step(&batch).loss;
        let l2 = model.eval_step(&batch).loss;
        assert_eq!(l1, l2, "eval must be side-effect free");
    }
}
