//! Trainable SSMB block: sequence-sharded MoE forward **and backward**
//! (paper §4.3, including the backward description: "it first drops the
//! gradients corresponding to the partial sequences retained during
//! forward. It then performs expert-specific gradient computation and
//! alltoall communications, mirroring the forward process. Finally, SSMB
//! uses an all-gather operation to reconstruct the full input gradient
//! across TP ranks").
//!
//! Wraps [`DistMoe`] (which already implements the mirrored gradient
//! all-to-alls) with the sequence shard/gather boundary.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_core::ssmb::shard_range;
use xmoe_tensor::Tensor;

use crate::dist::{DistMoe, DistMoeCtx};

/// A sequence-sharded trainable MoE block bound to a TP group.
pub struct SsmbMoe {
    pub inner: DistMoe,
}

/// Saved forward state: the inner layer's context plus the shard bounds.
pub struct SsmbCtx {
    inner: DistMoeCtx,
    start: usize,
    end: usize,
    seq_len: usize,
}

impl SsmbMoe {
    pub fn new(inner: DistMoe) -> Self {
        Self { inner }
    }

    /// Forward: keep this TP rank's `S/TP` slice (①), run the MoE block as
    /// an EP rank over it (②), all-gather the slices back to the full
    /// replicated sequence (③).
    pub fn forward(
        &self,
        tokens: &Tensor,
        ep: &Communicator,
        tp: &Communicator,
        clock: &mut SimClock,
    ) -> Result<(Tensor, SsmbCtx), CommError> {
        let (start, end) = shard_range(tokens.rows(), tp.size(), tp.rank());
        let my_slice = tokens.slice_rows(start, end);
        let (local_out, inner) = self.inner.forward(&my_slice, ep, clock)?;
        let gathered = tp.all_gather(local_out.into_vec(), clock)?;
        clock.commit("ssmb_allgather");
        let hidden = tokens.cols();
        let mut data = Vec::with_capacity(tokens.rows() * hidden);
        for chunk in gathered {
            data.extend_from_slice(&chunk);
        }
        Ok((
            Tensor::from_vec(tokens.rows(), hidden, data),
            SsmbCtx {
                inner,
                start,
                end,
                seq_len: tokens.rows(),
            },
        ))
    }

    /// Backward: drop the other shards' gradient rows, mirror the MoE
    /// backward over the shard, all-gather the input gradient.
    ///
    /// `d_out` is the replicated full-sequence gradient coming from the
    /// next (replicated-input) block; each token's gradient is complete on
    /// every TP rank, so slicing (not reduce-scattering) is the correct
    /// adjoint of the replication boundary.
    pub fn backward(
        &mut self,
        ctx: &SsmbCtx,
        d_out: &Tensor,
        ep: &Communicator,
        tp: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        assert_eq!(
            d_out.rows(),
            ctx.seq_len,
            "gradient must cover the full sequence"
        );
        // ① drop gradients outside this rank's shard.
        let d_slice = d_out.slice_rows(ctx.start, ctx.end);
        // ② expert-specific gradient computation + mirrored all-to-alls.
        let d_local = self.inner.backward(&ctx.inner, &d_slice, ep, clock)?;
        // ③ all-gather the full input gradient across TP ranks.
        let gathered = tp.all_gather(d_local.into_vec(), clock)?;
        clock.commit("ssmb_bwd_allgather");
        let hidden = d_out.cols();
        let mut data = Vec::with_capacity(ctx.seq_len * hidden);
        for chunk in gathered {
            data.extend_from_slice(&chunk);
        }
        Ok(Tensor::from_vec(ctx.seq_len, hidden, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmoe_collectives::SimCluster;
    use xmoe_core::gating::DropPolicy;
    use xmoe_tensor::add_assign;

    use crate::moe_layer::TrainableMoe;

    fn full_layer(seed: u64) -> TrainableMoe {
        TrainableMoe::new(8, 6, 8, 2, 100_000, DropPolicy::CapacityOnly, seed)
    }

    #[test]
    fn ssmb_forward_matches_unsharded() {
        // TP = world = 2, one DP group: both ranks hold the same sequence.
        let full = full_layer(91);
        let world = 2;
        let outs = SimCluster::frontier(world).run(|ctx| {
            let layer = SsmbMoe::new(DistMoe::from_trainable(&full, ctx.rank, world));
            let tp = ctx.world.split(0, &mut ctx.clock).unwrap(); // whole world is one TP group
            let tokens = Tensor::rand_uniform(12, 8, 1.0, 910);
            let (out, _) = layer
                .forward(&tokens, &ctx.world, &tp, &mut ctx.clock)
                .unwrap();
            out
        });
        // Reference: single-rank full layer on the full sequence.
        let tokens = Tensor::rand_uniform(12, 8, 1.0, 910);
        let (want, _) = full.forward(&tokens);
        for (rank, out) in outs.iter().enumerate() {
            assert!(
                out.allclose(&want, 1e-4),
                "rank {rank} SSMB fwd diff {}",
                out.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn ssmb_backward_matches_unsharded_gradients() {
        let full = full_layer(93);
        let world = 2;
        let tokens = Tensor::rand_uniform(12, 8, 1.0, 930);
        let d_out = Tensor::rand_uniform(12, 8, 1.0, 931);
        let results = {
            let (tokens, d_out, full) = (&tokens, &d_out, &full);
            SimCluster::frontier(world).run(move |ctx| {
                let mut layer = SsmbMoe::new(DistMoe::from_trainable(full, ctx.rank, world));
                let tp = ctx.world.split(0, &mut ctx.clock).unwrap();
                let (_, c) = layer
                    .forward(tokens, &ctx.world, &tp, &mut ctx.clock)
                    .unwrap();
                let d_x = layer
                    .backward(&c, d_out, &ctx.world, &tp, &mut ctx.clock)
                    .unwrap();
                (d_x, layer.inner.g_shard.clone(), layer.inner.g_gate.clone())
            })
        };
        // Reference: single-rank full layer, full sequence.
        let mut reference = full.clone();
        let (_, c) = reference.forward(&tokens);
        let ref_dx = reference.backward(&c, &d_out);

        for (rank, (d_x, g_shard, _)) in results.iter().enumerate() {
            assert!(
                d_x.allclose(&ref_dx, 1e-4),
                "rank {rank} d_x diff {}",
                d_x.max_abs_diff(&ref_dx)
            );
            // Expert grads (each expert's full gradient lives on its rank).
            for (e_local, (g1, g2)) in g_shard.iter().enumerate() {
                let global = rank * 4 + e_local;
                assert!(
                    g1.allclose(&reference.g_experts[global].0, 1e-3),
                    "expert {global} dW1 diff {}",
                    g1.max_abs_diff(&reference.g_experts[global].0)
                );
                assert!(g2.allclose(&reference.g_experts[global].1, 1e-3));
            }
        }
        // Router grads: the sequence is split across ranks, so per-rank
        // router grads cover disjoint token slices; their sum must equal
        // the reference.
        let mut summed = xmoe_tensor::Tensor::zeros(8, 8);
        for (_, _, g_gate) in &results {
            add_assign(&mut summed, g_gate);
        }
        assert!(
            summed.allclose(&reference.g_gate, 1e-3),
            "router grad diff {}",
            summed.max_abs_diff(&reference.g_gate)
        );
    }

    #[test]
    fn ssmb_charges_both_allgathers() {
        let full = full_layer(95);
        let world = 2;
        let buckets = SimCluster::frontier(world).run(|ctx| {
            let mut layer = SsmbMoe::new(DistMoe::from_trainable(&full, ctx.rank, world));
            let tp = ctx.world.split(0, &mut ctx.clock).unwrap();
            let tokens = Tensor::rand_uniform(8, 8, 1.0, 950);
            let (out, c) = layer
                .forward(&tokens, &ctx.world, &tp, &mut ctx.clock)
                .unwrap();
            let _ = layer
                .backward(&c, &out, &ctx.world, &tp, &mut ctx.clock)
                .unwrap();
            (
                ctx.clock.bucket("ssmb_allgather"),
                ctx.clock.bucket("ssmb_bwd_allgather"),
            )
        });
        for (f, b) in buckets {
            assert!(f > 0.0 && b > 0.0, "both all-gathers must be charged");
        }
    }
}
