//! Chaos harness: fault-injected distributed training with deterministic
//! checkpoint/restore and elastic recovery.
//!
//! [`run_chaos_rank`] is the per-rank body for
//! [`xmoe_collectives::SimCluster::run`]: it trains a [`DistMoeLm`] under a
//! [`xmoe_topology::FaultPlan`], periodically capturing canonical
//! checkpoints, and when a peer dies it re-forms the group from the
//! survivors, reloads the last checkpoint and continues at the reduced
//! world size.
//!
//! Two properties make the recovery *deterministic*:
//!
//! * The training data stream is stateless per step: a harness
//!   [`DetRng`] draws one `step_seed` per step (the same on every rank,
//!   and its state is part of the checkpoint), and [`step_batch`] derives
//!   each rank's batch from `step_seed` and the rank's *dense* index in
//!   the current group. Survivors at dense ranks `0..N` therefore see
//!   exactly the tokens a fresh `N`-rank run would see.
//! * Checkpoints are rank-agnostic and bitwise exact
//!   ([`crate::checkpoint`]), so restoring onto the survivors yields the
//!   same parameters a fresh `N`-rank run restoring the same bytes would
//!   hold — and from identical parameters, data and RNG state, the loss
//!   trajectory is bitwise identical.
//!
//! When the failure lands exactly on a checkpoint boundary no steps are
//! replayed and MTTR reduces to detect + restore time.

use xmoe_collectives::{CommError, RankCtx, RecoveryStats};
use xmoe_tensor::DetRng;
use xmoe_topology::{build_grid_excluding, PlacementPolicy};

use crate::checkpoint::Checkpoint;
use crate::data::MarkovCorpus;
use crate::dist::DistMoeLm;
use crate::model::{build_moe_layers, TrainConfig};

/// Seed tweak separating the data-stream RNG from weight-init streams.
const DATA_STREAM_SALT: u64 = 0xC4A0_5EED;

/// Knobs of one chaos run (the model itself comes from [`TrainConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Training steps to attempt.
    pub steps: u64,
    /// Capture a checkpoint after every `ckpt_every` completed steps
    /// (0 disables checkpointing — recovery then restarts from scratch).
    pub ckpt_every: u64,
}

/// What one rank experienced during a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// This rank's immutable global id.
    pub global_rank: usize,
    /// `(step, loss)` for every step in the *final* trajectory: entries
    /// invalidated by a rollback are pruned, so survivors' vectors read as
    /// one uninterrupted curve.
    pub losses: Vec<(u64, f64)>,
    /// `Some(step)` if the fault plan killed this rank at `step`.
    pub exited_at: Option<u64>,
    /// One entry per failure this rank recovered from.
    pub recoveries: Vec<RecoveryStats>,
    /// Encoded bytes of the last checkpoint captured (also the restore
    /// source for the determinism tests).
    pub last_ckpt: Option<Vec<u8>>,
    /// Group size when the rank finished (or exited).
    pub final_world: usize,
}

/// The batch rank `dense_rank` trains on at the step identified by
/// `step_seed`. Stateless: the corpus is rebuilt from the seed each step,
/// so the stream depends only on `(step_seed, dense_rank)` — the property
/// elastic recovery's determinism rests on.
pub fn step_batch(cfg: &TrainConfig, step_seed: u64, dense_rank: usize) -> Vec<Vec<usize>> {
    let salt = (dense_rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    MarkovCorpus::new(cfg.vocab, 3, step_seed ^ salt).batch(cfg.batch, cfg.seq_len)
}

/// Per-rank chaos-run body. Returns `Err` only for faults the harness does
/// not model (poisoned locks, closed channels); planned rank deaths and
/// recoveries are part of the `Ok` report.
pub fn run_chaos_rank(
    cfg: &TrainConfig,
    chaos: &ChaosConfig,
    ctx: &mut RankCtx,
) -> Result<ChaosReport, CommError> {
    let plan = ctx.fault_plan().cloned();
    let world0 = ctx.n_ranks();
    let my_global = ctx.world.global_rank();
    let mut comm = ctx.world.clone();
    let full_layers = build_moe_layers(cfg);
    let mut model = DistMoeLm::new(cfg, &full_layers, comm.rank(), comm.size());
    let mut rng = DetRng::new(cfg.seed ^ DATA_STREAM_SALT);
    let mut report = ChaosReport {
        global_rank: my_global,
        losses: Vec::new(),
        exited_at: None,
        recoveries: Vec::new(),
        last_ckpt: None,
        final_world: comm.size(),
    };
    let mut dead_so_far: Vec<usize> = Vec::new();
    // `(recovery index, clock at failure)` until the replay catches back up.
    let mut catch_up: Option<(usize, f64)> = None;

    let mut step = 0u64;
    while step < chaos.steps {
        if let Some(p) = &plan {
            if p.is_dead(my_global, step) {
                report.exited_at = Some(step);
                report.final_world = comm.size();
                return Ok(report);
            }
        }
        if let Some((i, t_err)) = catch_up {
            if step >= report.recoveries[i].failed_at_step {
                let r = &mut report.recoveries[i];
                r.mttr = r.detect_time + (ctx.clock.now() - t_err);
                catch_up = None;
            }
        }
        ctx.set_step(step);
        comm.set_step(step);
        let step_seed = rng.next_u64();
        let batch = step_batch(cfg, step_seed, comm.rank());
        match model.train_step(&batch, &comm, &mut ctx.clock) {
            Ok(loss) => {
                report.losses.push((step, loss));
                if chaos.ckpt_every > 0 && (step + 1).is_multiple_of(chaos.ckpt_every) {
                    let ckpt =
                        model.capture_checkpoint(step + 1, rng.state(), &comm, &mut ctx.clock)?;
                    report.last_ckpt = Some(ckpt.encode());
                }
                step += 1;
            }
            Err(CommError::DeadPeer { .. }) => {
                // `check_dead` already charged `fault_detect` before erring,
                // so `t_err` marks the end of detection.
                let t_err = ctx.clock.now();
                let p = plan
                    .as_ref()
                    .expect("DeadPeer reported without a fault plan");
                let newly_dead: Vec<usize> = comm
                    .group_ranks()
                    .iter()
                    .copied()
                    .filter(|&g| p.is_dead(g, step))
                    .collect();
                assert!(
                    !newly_dead.is_empty(),
                    "DeadPeer error but the plan lists no dead group member"
                );
                dead_so_far.extend(newly_dead.iter().copied());
                dead_so_far.sort_unstable();
                dead_so_far.dedup();
                let survivors = comm.size() - newly_dead.len();
                assert!(
                    survivors > 0 && cfg.num_experts.is_multiple_of(survivors),
                    "cannot re-shard {} experts over {survivors} survivors",
                    cfg.num_experts
                );

                // Re-form the group: every survivor joins color 0. The
                // placement grid rebuilt without the dead ranks must agree
                // with what the collective layer produced.
                let new_comm = comm.split(0, &mut ctx.clock)?;
                let grid =
                    build_grid_excluding(world0, &dead_so_far, survivors, PlacementPolicy::EpFirst);
                assert_eq!(
                    grid.ep_groups[0].as_slice(),
                    new_comm.group_ranks(),
                    "recovered communicator disagrees with the placement grid"
                );

                let resumed = if let Some(bytes) = &report.last_ckpt {
                    let ckpt = Checkpoint::decode(bytes).expect("own checkpoint must decode");
                    let t_io = ctx.cost().mem_bound_time(bytes.len() as f64);
                    ctx.clock.charge("ckpt_restore", t_io);
                    model =
                        DistMoeLm::from_checkpoint(cfg, &ckpt, new_comm.rank(), new_comm.size());
                    rng = DetRng::from_state(ckpt.rng_state);
                    ckpt.step
                } else {
                    model = DistMoeLm::new(cfg, &full_layers, new_comm.rank(), new_comm.size());
                    rng = DetRng::new(cfg.seed ^ DATA_STREAM_SALT);
                    0
                };
                report.losses.retain(|&(s, _)| s < resumed);
                let t_done = ctx.clock.now();
                report.recoveries.push(RecoveryStats {
                    failed_ranks: newly_dead,
                    failed_at_step: step,
                    resumed_from_step: resumed,
                    steps_replayed: step - resumed,
                    detect_time: p.detect_timeout,
                    restore_time: t_done - t_err,
                    mttr: p.detect_timeout + (t_done - t_err),
                });
                catch_up = Some((report.recoveries.len() - 1, t_err));
                comm = new_comm;
                step = resumed;
            }
            Err(e) => return Err(e),
        }
    }
    report.final_world = comm.size();
    Ok(report)
}
