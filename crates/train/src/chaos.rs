//! Chaos harness: fault-injected distributed training with deterministic
//! checkpoint/restore, elastic recovery, and a silent-fault defense layer.
//!
//! [`run_chaos_rank`] is the per-rank body for
//! [`xmoe_collectives::SimCluster::run`]: it trains a [`DistMoeLm`] under a
//! [`xmoe_topology::FaultPlan`], periodically capturing canonical
//! checkpoints, and when a peer dies it re-forms the group from the
//! survivors, reloads the last checkpoint and continues at the reduced
//! world size.
//!
//! On top of the fail-stop machinery sits the SDC defense
//! ([`crate::guard`]): when [`crate::guard::GuardConfig::enabled`] is set,
//! every step runs scaled by the dynamic loss scale, injected `bitflip:` /
//! `noise:` events corrupt activations, gradients or checkpoint bytes,
//! the synced gradients are scanned (non-finite count + global norm, made
//! rank-consistent by a tiny status all-reduce charged as `guard:*`
//! spans), then unscaled by the exact inverse scale — and, when
//! [`GuardConfig::max_grad_norm`] is set, global-norm clipped — before
//! Adam consumes them, and anomalies walk the policy ladder `skip_step` →
//! `backoff_loss_scale` → `rollback_to_checkpoint`.
//!
//! Determinism properties:
//!
//! * The training data stream is stateless per step: a harness
//!   [`DetRng`] draws one `step_seed` per step (the same on every rank,
//!   and its state is part of the checkpoint), and [`step_batch`] derives
//!   each rank's batch from `step_seed` and the rank's *dense* index in
//!   the current group. Survivors at dense ranks `0..N` therefore see
//!   exactly the tokens a fresh `N`-rank run would see.
//! * Checkpoints are rank-agnostic and bitwise exact
//!   ([`crate::checkpoint`]), so restoring onto the survivors yields the
//!   same parameters a fresh `N`-rank run restoring the same bytes would
//!   hold — and from identical parameters, data and RNG state, the loss
//!   trajectory is bitwise identical.
//! * SDC events are one-shot per `(step, site)`: a replay after rollback
//!   does *not* re-fire an injection it already delivered (real bit flips
//!   are transient), so a rollback replays clean and the post-rollback
//!   trajectory is bitwise identical to an uninjected run's.
//! * Every guard decision derives from rank-consistent statistics
//!   (all-reduced status vector, global loss), so policies fire in
//!   lockstep across the group and no rank deadlocks in a collective.
//!
//! When the failure lands exactly on a checkpoint boundary no steps are
//! replayed and MTTR reduces to detect + restore time.

use std::collections::BTreeSet;

use xmoe_collectives::{CommError, Communicator, RankCtx, RecoveryStats, SimClock};
use xmoe_core::memory::expert_replica_bytes;
use xmoe_tensor::DetRng;
use xmoe_topology::{build_grid_excluding, FaultPlan, PlacementPolicy, RoutingHistogram, SdcSite};

use crate::checkpoint::Checkpoint;
use crate::data::MarkovCorpus;
use crate::dist::DistMoeLm;
use crate::elastic::{
    assignment_cost, ExpertAssignment, RebalanceConfig, RebalanceDecision, RebalancePolicy,
};
use crate::guard::{
    self, GuardConfig, GuardEvent, LossScale, PolicyAction, PolicyEngine, SpikeDetector, Verdict,
};
use crate::model::{build_moe_layers, TrainConfig};

/// Seed tweak separating the data-stream RNG from weight-init streams.
const DATA_STREAM_SALT: u64 = 0xC4A0_5EED;

/// Cap on retained route samples per rebalance window (loads keep
/// counting past it; pricing rescales — see [`RoutingHistogram`]).
const MAX_ROUTE_SAMPLES: usize = 4096;

/// Knobs of one chaos run (the model itself comes from [`TrainConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Training steps to attempt.
    pub steps: u64,
    /// Capture a checkpoint after every `ckpt_every` completed steps
    /// (0 disables checkpointing — recovery then restarts from scratch).
    pub ckpt_every: u64,
    /// Silent-fault defense knobs; `guard.enabled = false` reproduces the
    /// pre-guard step (and its simulated timeline) exactly.
    pub guard: GuardConfig,
    /// Live expert-rebalance knobs; `None` (the default) disables route
    /// tracking and reproduces the pre-elastic step exactly.
    pub rebalance: Option<RebalanceConfig>,
    /// Deterministic skew injector: `(a, b, delta)` adds `delta` to the
    /// gate columns of experts `a` and `b` at model build, making the pair
    /// co-hot on every rank (with `top_k = 2` every token routes to both).
    /// The bias lives in the checkpointed gate weights, so every restore
    /// carries it automatically.
    pub hot_bias: Option<(usize, usize, f32)>,
}

impl ChaosConfig {
    /// Legacy-equivalent configuration: fail-stop chaos only, no guard.
    pub fn new(steps: u64, ckpt_every: u64) -> Self {
        Self {
            steps,
            ckpt_every,
            guard: GuardConfig {
                enabled: false,
                ..GuardConfig::default()
            },
            rebalance: None,
            hot_bias: None,
        }
    }

    /// Enable the silent-fault defense with the given knobs.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Enable histogram-driven live expert rebalance.
    pub fn with_rebalance(mut self, rb: RebalanceConfig) -> Self {
        self.rebalance = Some(rb);
        self
    }

    /// Bias two experts' router columns by `delta` to manufacture skew.
    pub fn with_hot_bias(mut self, a: usize, b: usize, delta: f32) -> Self {
        self.hot_bias = Some((a, b, delta));
        self
    }
}

/// One completed join rendezvous, as seen by a participating rank.
#[derive(Clone, Debug)]
pub struct JoinStats {
    /// Ranks that (re)joined the run at this rendezvous.
    pub joined_ranks: Vec<usize>,
    /// Step the grown group resumed training at.
    pub at_step: u64,
    /// Simulated seconds from rendezvous start to training resumption on
    /// this rank: live capture + grow + scatter broadcast + rebuild I/O.
    /// On a joining rank the interval starts at its frozen pre-join clock,
    /// so its value also counts the time it sat out; read join MTTR from
    /// an incumbent's report.
    pub mttr: f64,
    /// Group size after the join.
    pub world_after: usize,
}

/// What one rank experienced during a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// This rank's immutable global id.
    pub global_rank: usize,
    /// `(step, loss)` for every step in the *final* trajectory: entries
    /// invalidated by a rollback are pruned, so survivors' vectors read as
    /// one uninterrupted curve.
    pub losses: Vec<(u64, f64)>,
    /// `Some(step)` if the fault plan killed this rank at `step`.
    pub exited_at: Option<u64>,
    /// One entry per failure this rank recovered from (fail-stop *and*
    /// guard rollbacks; the latter have empty `failed_ranks`).
    pub recoveries: Vec<RecoveryStats>,
    /// Encoded bytes of the last checkpoint captured (also the restore
    /// source for the determinism tests).
    pub last_ckpt: Option<Vec<u8>>,
    /// Group size when the rank finished (or exited).
    pub final_world: usize,
    /// Guard timeline: every detection, policy action and checkpoint
    /// rejection, in step order.
    pub guard_events: Vec<GuardEvent>,
    /// Guard trips not attributable to any injected SDC event (must stay
    /// 0 on clean runs — the no-false-positive contract).
    pub guard_false_positives: u64,
    /// Clean steps whose gradients global-norm clipping rescaled (0 when
    /// [`GuardConfig::max_grad_norm`] is disabled or never exceeded).
    pub grad_clips: u64,
    /// Loss scale at the end of the run (init value when the guard is
    /// off or never backed off).
    pub final_loss_scale: f32,
    /// One entry per join rendezvous this rank participated in.
    pub joins: Vec<JoinStats>,
    /// One entry per committed live rebalance (empty when
    /// [`ChaosConfig::rebalance`] is `None` or the policy never fired).
    pub rebalances: Vec<RebalanceDecision>,
    /// The expert assignment the rank finished (or exited) under.
    pub final_assignment: ExpertAssignment,
    /// Encoded live snapshot taken at the most recent rebalance commit —
    /// together with [`ChaosReport::final_assignment`] it lets a verifier
    /// launch a fresh run in the post-migration configuration and demand
    /// bitwise agreement.
    pub rebalance_ckpt: Option<Vec<u8>>,
}

/// The batch rank `dense_rank` trains on at the step identified by
/// `step_seed`. Stateless: the corpus is rebuilt from the seed each step,
/// so the stream depends only on `(step_seed, dense_rank)` — the property
/// elastic recovery's determinism rests on.
pub fn step_batch(cfg: &TrainConfig, step_seed: u64, dense_rank: usize) -> Vec<Vec<usize>> {
    let salt = (dense_rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    MarkovCorpus::new(cfg.vocab, 3, step_seed ^ salt).batch(cfg.batch, cfg.seq_len)
}

/// Flip one bit of the `target`-th gradient element (global index across
/// the canonical grad visitation order).
fn inject_grad_flip(model: &mut DistMoeLm, target: usize, bit: u32) {
    let mut seen = 0usize;
    model.visit_grads_mut(&mut |_, xs| {
        if target >= seen && target < seen + xs.len() {
            guard::flip_bit_f32(xs, target - seen, bit);
        }
        seen += xs.len();
    });
}

/// What the detectors concluded about one guarded step.
struct StepVerdict {
    global_loss: f64,
    /// `(site, detector, value)` of the highest-priority anomaly, if any.
    anomaly: Option<(&'static str, &'static str, f64)>,
    /// Whether global grad-norm clipping rescaled this step's gradients.
    clipped: bool,
}

/// Detector state carried across steps of a guarded run.
struct GuardState {
    loss_scale: LossScale,
    norm_det: SpikeDetector,
    loss_det: SpikeDetector,
    policy: PolicyEngine,
    /// `(step, site)` pairs whose injection already fired — SDC events
    /// are one-shot, so replays after rollback stay clean.
    applied: BTreeSet<(u64, u8)>,
}

impl GuardState {
    fn new(g: &GuardConfig) -> Self {
        Self {
            loss_scale: LossScale::new(g.loss_scale),
            norm_det: SpikeDetector::new(g.spike_factor, g.spike_window, g.spike_min_history),
            loss_det: SpikeDetector::new(g.spike_factor, g.spike_window, g.spike_min_history),
            policy: PolicyEngine::new(g.policy),
            applied: BTreeSet::new(),
        }
    }

    fn mark(&mut self, step: u64, site: SdcSite) {
        self.applied.insert((step, site as u8));
    }

    fn is_applied(&self, step: u64, site: SdcSite) -> bool {
        self.applied.contains(&(step, site as u8))
    }
}

/// One guarded training step: scaled forward/backward with `site=act`
/// injection, `site=grad` injection, gradient sync, the guard scan +
/// status all-reduce, loss reduction, and anomaly detection. The optimizer
/// update is *not* applied here — the caller applies or discards it
/// according to the policy decision. All guard work is charged under
/// `guard:*` span labels, so the span-exactness invariant keeps holding.
#[allow(clippy::too_many_arguments)]
fn guarded_step(
    g: &GuardConfig,
    model: &mut DistMoeLm,
    plan: Option<&FaultPlan>,
    my_global: usize,
    step: u64,
    batch: &[Vec<usize>],
    comm: &Communicator,
    clock: &mut SimClock,
    gs: &mut GuardState,
) -> Result<StepVerdict, CommError> {
    // --- site=act injection hook (runs on the pre-head activations) ----
    let mut act_flips: Vec<(u64, u32)> = Vec::new();
    let mut act_noise: Option<(u64, f64)> = None;
    if let Some(p) = plan {
        if !gs.is_applied(step, SdcSite::Act) {
            for fl in p.bitflips(my_global, step, SdcSite::Act) {
                act_flips.push((fl.element_hash, fl.bit));
            }
            let amp = p.noise_amp(my_global, step, SdcSite::Act);
            if amp > 0.0 {
                act_noise = Some((p.sdc_stream_seed(my_global, step, SdcSite::Act), amp));
            }
        }
    }
    let inject_act = !act_flips.is_empty() || act_noise.is_some();
    let mut hook = |xs: &mut [f32]| {
        for &(h, bit) in &act_flips {
            let elem = (h % xs.len().max(1) as u64) as usize;
            guard::flip_bit_f32(xs, elem, bit);
        }
        if let Some((seed, amp)) = act_noise {
            guard::apply_noise(xs, seed, amp);
        }
    };
    let act_hook: Option<crate::dist::ActHook<'_>> =
        if inject_act { Some(&mut hook) } else { None };

    let local_loss =
        model.forward_backward_hooked(batch, gs.loss_scale.scale(), act_hook, comm, clock)?;
    if inject_act {
        gs.mark(step, SdcSite::Act);
    }

    // --- site=grad injection (pre-sync, so corruption propagates through
    // the all-reduce exactly like real device-memory SDC) ---------------
    if let Some(p) = plan {
        if !gs.is_applied(step, SdcSite::Grad) {
            let mut fired = false;
            let flips = p.bitflips(my_global, step, SdcSite::Grad);
            if !flips.is_empty() {
                let total = model.grad_elem_count();
                for fl in &flips {
                    inject_grad_flip(model, fl.element(total), fl.bit);
                }
                fired = true;
            }
            let amp = p.noise_amp(my_global, step, SdcSite::Grad);
            if amp > 0.0 {
                let base = p.sdc_stream_seed(my_global, step, SdcSite::Grad);
                let mut i = 0u64;
                model.visit_grads_mut(&mut |_, xs| {
                    guard::apply_noise(xs, base.wrapping_add(i.wrapping_mul(0x9E37)), amp);
                    i += 1;
                });
                fired = true;
            }
            if fired {
                gs.mark(step, SdcSite::Grad);
            }
        }
    }

    model.sync_grads(comm, clock)?;

    // --- guard scan: one mem-bound pass over every gradient ------------
    // Post-sync, replicated grads are bitwise-identical on every rank;
    // expert-shard stats are local and must be all-reduced before any
    // rank acts on them, or policies would fire out of lockstep.
    let mut rep_nonfin = 0usize;
    let mut shard_nonfin = 0usize;
    let mut rep_sq = 0.0f64;
    let mut shard_sq = 0.0f64;
    let mut total_elems = 0usize;
    model.visit_grads(&mut |name, xs| {
        total_elems += xs.len();
        let nf = guard::count_non_finite(xs);
        let sq = guard::sq_norm(xs);
        if DistMoeLm::is_replicated_grad(name) {
            rep_nonfin += nf;
            rep_sq += sq;
        } else {
            shard_nonfin += nf;
            shard_sq += sq;
        }
    });
    if g.bf16_grads {
        // Simulated-bf16 device gradients over f32 master weights: the
        // synced (still loss-scaled) gradient is what low-precision
        // hardware would hand the optimizer.
        model.visit_grads_mut(&mut |_, xs| guard::bf16_round_slice(xs));
        clock.charge(
            "guard:bf16",
            comm.cost().mem_bound_time(4.0 * total_elems as f64),
        );
    }
    // Unscale: the whole backward ran multiplied by the loss scale, so the
    // synced (and bf16-rounded) gradients still carry it. Divide it back
    // out *before* the optimizer ever sees them — Adam must always consume
    // gradients at their true magnitude, or its m/v buffers would mix
    // scales across growth/backoff transitions. Exact: scales are powers
    // of two. (The scan statistics above were taken pre-unscale; the
    // detector's norm applies `inv_scale` to them below, so both views
    // agree.)
    let unscale = gs.loss_scale.inv_scale();
    if unscale != 1.0 {
        model.visit_grads_mut(&mut |_, xs| {
            for v in xs {
                *v *= unscale;
            }
        });
        clock.charge(
            "guard:unscale",
            comm.cost().mem_bound_time(4.0 * total_elems as f64),
        );
    }
    clock.charge(
        "guard:scan",
        comm.cost().mem_bound_time(4.0 * total_elems as f64),
    );
    // Guard status rides the loss all-reduce: one merged collective
    // carries [loss, shard_nonfinite, shard_sq_norm], so the per-step
    // guard traffic costs only its marginal bytes (charged as
    // `guard:reduce`), not an extra latency-bound collective. Element 0
    // sums in the same canonical order `reduce_loss` uses, so the global
    // loss is bitwise what the unmerged path would produce.
    let mut status = [local_loss as f32, shard_nonfin as f32, shard_sq as f32];
    comm.all_reduce_sum_f32(&mut status, clock)?;
    clock.commit("loss_allreduce");
    clock.charge(
        "guard:reduce",
        comm.cost().mem_bound_time((status.len() - 1) as f64 * 4.0),
    );
    let global_loss = (status[0] / comm.size() as f32) as f64;
    let nonfinite = rep_nonfin as f64 + status[1] as f64;
    // Norm of the *unscaled* gradient: undo the loss scale (exact — the
    // scale is a power of two) so the spike baseline is scale-invariant.
    let inv = gs.loss_scale.inv_scale() as f64;
    let grad_norm = (rep_sq + status[2] as f64).sqrt() * inv;

    // --- detection ladder: non-finite first, then relative spikes ------
    let anomaly = if nonfinite > 0.0 {
        Some(("grad", "nonfinite", nonfinite))
    } else if !global_loss.is_finite() {
        Some(("loss", "nonfinite", 1.0))
    } else {
        match gs.norm_det.observe(grad_norm) {
            Verdict::Spike { ratio } => Some(("grad", "spike", ratio)),
            Verdict::NonFinite => Some(("grad", "nonfinite", 1.0)),
            Verdict::Clean => match gs.loss_det.observe(global_loss) {
                Verdict::Spike { ratio } => Some(("loss", "spike", ratio)),
                Verdict::NonFinite => Some(("loss", "nonfinite", 1.0)),
                Verdict::Clean => None,
            },
        }
    };

    // --- global grad-norm clipping (clean steps only: anomalous steps are
    // discarded by the policy, so conditioning them would be wasted work).
    // The factor derives from the all-reduced unscaled norm, so every rank
    // rescales identically and replicated grads stay bitwise-identical.
    let mut clipped = false;
    if anomaly.is_none() && g.max_grad_norm > 0.0 {
        let factor = guard::clip_factor(grad_norm, g.max_grad_norm);
        if factor != 1.0 {
            model.visit_grads_mut(&mut |_, xs| {
                for v in xs {
                    *v *= factor;
                }
            });
            clock.charge(
                "guard:clip",
                comm.cost().mem_bound_time(4.0 * total_elems as f64),
            );
            clipped = true;
        }
    }
    Ok(StepVerdict {
        global_loss,
        anomaly,
        clipped,
    })
}

/// Decode the newest intact checkpoint: `last` if its CRCs verify, else
/// `prev` (the fallback), else `None`. On fallback the corrupt `last`
/// image is discarded and the intact `prev` bytes are promoted into its
/// slot, so later recoveries never re-decode a known-corrupt image.
/// Returns the decoded checkpoint paired with the byte length actually
/// restored (for the I/O time charge), whether the fallback was taken,
/// and the decode error that forced it.
fn restore_source(
    last: &mut Option<Vec<u8>>,
    prev: &mut Option<Vec<u8>>,
) -> (Option<(Checkpoint, usize)>, bool, Option<String>) {
    let err = match last.as_ref() {
        None => return (None, false, None),
        Some(bytes) => match Checkpoint::decode(bytes) {
            Ok(c) => return (Some((c, bytes.len())), false, None),
            Err(e) => e.to_string(),
        },
    };
    *last = None;
    let fb = prev.take().and_then(|b| match Checkpoint::decode(&b) {
        Ok(c) => {
            let n = b.len();
            *last = Some(b);
            Some((c, n))
        }
        Err(_) => None,
    });
    (fb, true, Some(err))
}

/// Per-rank chaos-run body. Returns `Err` only for faults the harness does
/// not model (poisoned locks, closed channels); planned rank deaths and
/// recoveries are part of the `Ok` report.
pub fn run_chaos_rank(
    cfg: &TrainConfig,
    chaos: &ChaosConfig,
    ctx: &mut RankCtx,
) -> Result<ChaosReport, CommError> {
    let plan = ctx.fault_plan().cloned();
    let world0 = ctx.n_ranks();
    let my_global = ctx.world.global_rank();
    let mut comm = ctx.world.clone();
    let mut dead_so_far: Vec<usize> = Vec::new();
    // Ranks whose first scheduled event is a join sit out from step 0:
    // the incumbents split into the present subset so the opening group
    // matches the plan, and the dark ranks idle until their rendezvous.
    if let Some(p) = &plan {
        let absent0: Vec<usize> = (0..world0)
            .filter(|&r| !p.is_present(r, 0) && !p.is_dead(r, 0))
            .collect();
        if !absent0.is_empty() {
            ctx.set_step(0);
            comm.set_step(0);
            if !p.is_dead(my_global, 0) {
                let color = usize::from(absent0.contains(&my_global));
                comm = comm.split(color, &mut ctx.clock)?;
                ctx.clock.commit("elastic_join");
            }
            dead_so_far = absent0;
        }
    }
    let full_layers = build_moe_layers(cfg);
    let mut model = DistMoeLm::new(cfg, &full_layers, comm.rank(), comm.size());
    if let Some((a, b, delta)) = chaos.hot_bias {
        model.bias_router(a, delta);
        model.bias_router(b, delta);
    }
    let mut rng = DetRng::new(cfg.seed ^ DATA_STREAM_SALT);
    let guard_on = chaos.guard.enabled;
    let mut gs = GuardState::new(&chaos.guard);
    let mut policy = chaos.rebalance.map(RebalancePolicy::new);
    if policy.is_some() {
        model.set_route_tracking(true);
    }
    let mut report = ChaosReport {
        global_rank: my_global,
        losses: Vec::new(),
        exited_at: None,
        recoveries: Vec::new(),
        last_ckpt: None,
        final_world: comm.size(),
        guard_events: Vec::new(),
        guard_false_positives: 0,
        grad_clips: 0,
        final_loss_scale: gs.loss_scale.scale(),
        joins: Vec::new(),
        rebalances: Vec::new(),
        final_assignment: model.assignment().clone(),
        rebalance_ckpt: None,
    };
    let mut prev_ckpt: Option<Vec<u8>> = None;
    // Join steps whose rendezvous already ran: a rollback replay that
    // crosses a join step must not re-grow a group that already holds the
    // joined ranks.
    let mut joins_done: BTreeSet<u64> = BTreeSet::new();
    // `(recovery index, clock at failure)` until the replay catches back up.
    let mut catch_up: Option<(usize, f64)> = None;

    let mut step = 0u64;
    while step < chaos.steps {
        // ---- elastic join rendezvous: dark ranks come (back) online ----
        if let Some(p) = &plan {
            let joiners: Vec<usize> = p
                .joining_at(step)
                .into_iter()
                .filter(|&r| r < world0 && step > 0 && !p.is_present(r, step - 1))
                .collect();
            if !joiners.is_empty() && !joins_done.contains(&step) && p.is_present(my_global, step) {
                let members: Vec<usize> = (0..world0).filter(|&r| p.is_present(r, step)).collect();
                let i_join = joiners.contains(&my_global);
                let t0 = ctx.clock.now();
                ctx.set_step(step);
                comm.set_step(step);
                // Incumbents snapshot the live model collectively before
                // the group changes; the image is rank-agnostic, so any
                // single incumbent can scatter it to the grown group.
                let scatter = if i_join {
                    None
                } else {
                    let ckpt =
                        model.capture_checkpoint(step, rng.state(), &comm, &mut ctx.clock)?;
                    Some(ckpt.encode())
                };
                // Rendezvous: every present rank meets in the grown
                // communicator; clocks align on the slowest member.
                let new_comm = ctx.world.grow(&members, &mut ctx.clock)?;
                ctx.clock.commit("elastic_join");
                // Checkpoint-free scatter: the lowest incumbent broadcasts
                // the in-memory image and every member rebuilds its shard
                // from the canonical global-expert-id keying.
                let root_global = *members
                    .iter()
                    .find(|r| !joiners.contains(r))
                    .expect("a join rendezvous needs at least one incumbent rank");
                let root = members.iter().position(|&r| r == root_global).unwrap();
                let bytes = new_comm.broadcast(root, scatter, &mut ctx.clock)?;
                ctx.clock.commit("elastic_scatter");
                ctx.clock.charge(
                    "elastic_scatter",
                    ctx.cost().mem_bound_time(bytes.len() as f64),
                );
                let ckpt = Checkpoint::decode(&bytes).expect("live scatter image failed its CRC");
                model = DistMoeLm::from_checkpoint(cfg, &ckpt, new_comm.rank(), new_comm.size());
                rng = DetRng::from_state(ckpt.rng_state);
                // The scattered image is the newest group-consistent
                // checkpoint; adopting it everywhere keeps later restores
                // rank-consistent (a joiner's stale copy must never win).
                prev_ckpt = None;
                report.last_ckpt = Some(bytes);
                if i_join {
                    // Pre-death entries belong to a trajectory the group
                    // replayed past while this rank was dark.
                    report.losses.clear();
                }
                // Detector/policy state restarts rank-consistently: a
                // joiner has no window history, so everyone drops theirs.
                // One-shot SDC delivery memory is per-rank and survives.
                let applied = std::mem::take(&mut gs.applied);
                gs = GuardState::new(&chaos.guard);
                gs.applied = applied;
                policy = chaos.rebalance.map(RebalancePolicy::new);
                if policy.is_some() {
                    model.set_route_tracking(true);
                }
                dead_so_far = (0..world0).filter(|&r| !p.is_present(r, step)).collect();
                joins_done.insert(step);
                report.joins.push(JoinStats {
                    joined_ranks: joiners,
                    at_step: step,
                    mttr: ctx.clock.now() - t0,
                    world_after: new_comm.size(),
                });
                comm = new_comm;
            }
        }
        if let Some(p) = &plan {
            if !p.is_present(my_global, step) {
                if report.exited_at.is_none() && p.is_dead(my_global, step) {
                    report.exited_at = Some(step);
                }
                if p.joins_of(my_global).iter().any(|&s| s > step) {
                    // Scheduled to (re)join later: idle without advancing
                    // the simulated clock; the rendezvous aligns it.
                    step += 1;
                    continue;
                }
                report.final_world = comm.size();
                report.final_loss_scale = gs.loss_scale.scale();
                report.final_assignment = model.assignment().clone();
                return Ok(report);
            }
        }
        if let Some((i, t_err)) = catch_up {
            if step >= report.recoveries[i].failed_at_step {
                let r = &mut report.recoveries[i];
                r.mttr = r.detect_time + (ctx.clock.now() - t_err);
                catch_up = None;
            }
        }
        ctx.set_step(step);
        comm.set_step(step);
        let step_seed = rng.next_u64();
        let batch = step_batch(cfg, step_seed, comm.rank());

        // ---- execute one step (guarded or legacy) ----------------------
        let outcome: Result<Option<f64>, CommError> = if guard_on {
            match guarded_step(
                &chaos.guard,
                &mut model,
                plan.as_deref(),
                my_global,
                step,
                &batch,
                &comm,
                &mut ctx.clock,
                &mut gs,
            ) {
                Ok(v) => {
                    if let Some((site, detector, value)) = v.anomaly {
                        // All ranks saw identical statistics, so every rank
                        // reaches the identical decision here — policies
                        // fire in lockstep with no extra coordination.
                        let action = gs.policy.decide();
                        // A trip is a true positive iff the plan injected
                        // *anything* at or before this step. The plan is the
                        // harness oracle, identical on every rank, so the
                        // classification is rank-consistent even though the
                        // victim rank is not the detecting rank.
                        let injected_at =
                            plan.as_deref().and_then(|p| p.last_sdc_at_or_before(step));
                        if injected_at.is_none() {
                            report.guard_false_positives += 1;
                        }
                        let latency = injected_at.map_or(0, |s| step - s);
                        report.guard_events.push(GuardEvent {
                            step,
                            site: site.into(),
                            detector: detector.into(),
                            action: action.name().into(),
                            value,
                            detail: String::new(),
                        });
                        match action {
                            PolicyAction::SkipStep => {
                                model.zero_all_grads();
                                step += 1;
                            }
                            PolicyAction::BackoffLossScale => {
                                model.zero_all_grads();
                                gs.loss_scale.on_overflow();
                                step += 1;
                            }
                            PolicyAction::RollbackToCheckpoint => {
                                model.zero_all_grads();
                                let t_trip = ctx.clock.now();
                                let (src, fell_back, err) =
                                    restore_source(&mut report.last_ckpt, &mut prev_ckpt);
                                if fell_back {
                                    report.guard_events.push(GuardEvent {
                                        step,
                                        site: "ckpt".into(),
                                        detector: "crc".into(),
                                        action: "fallback_prev_ckpt".into(),
                                        value: 1.0,
                                        // The section-naming decode error,
                                        // kept for postmortems.
                                        detail: err.unwrap_or_default(),
                                    });
                                }
                                let resumed = if let Some((ckpt, bytes)) = src {
                                    ctx.clock.charge(
                                        "ckpt_restore",
                                        ctx.cost().mem_bound_time(bytes as f64),
                                    );
                                    model = DistMoeLm::from_checkpoint(
                                        cfg,
                                        &ckpt,
                                        comm.rank(),
                                        comm.size(),
                                    );
                                    rng = DetRng::from_state(ckpt.rng_state);
                                    ckpt.step
                                } else {
                                    model =
                                        DistMoeLm::new(cfg, &full_layers, comm.rank(), comm.size());
                                    if let Some((a, b, delta)) = chaos.hot_bias {
                                        model.bias_router(a, delta);
                                        model.bias_router(b, delta);
                                    }
                                    rng = DetRng::new(cfg.seed ^ DATA_STREAM_SALT);
                                    0
                                };
                                if policy.is_some() {
                                    model.set_route_tracking(true);
                                }
                                report.losses.retain(|&(s, _)| s < resumed);
                                let t_done = ctx.clock.now();
                                report.recoveries.push(RecoveryStats {
                                    failed_ranks: Vec::new(),
                                    failed_at_step: step,
                                    resumed_from_step: resumed,
                                    steps_replayed: step - resumed,
                                    detect_time: 0.0,
                                    restore_time: t_done - t_trip,
                                    mttr: t_done - t_trip,
                                    detect_latency_steps: latency,
                                    false_positives: report.guard_false_positives,
                                    steps_lost_to_rollback: step - resumed,
                                });
                                catch_up = Some((report.recoveries.len() - 1, t_trip));
                                step = resumed;
                            }
                        }
                        continue;
                    }
                    gs.policy.on_clean();
                    gs.loss_scale.on_clean();
                    if v.clipped {
                        report.grad_clips += 1;
                    }
                    model.apply_update();
                    Ok(Some(v.global_loss))
                }
                Err(e) => Err(e),
            }
        } else {
            model.train_step(&batch, &comm, &mut ctx.clock).map(Some)
        };

        match outcome {
            Ok(Some(loss)) => {
                report.losses.push((step, loss));
                if chaos.ckpt_every > 0 && (step + 1).is_multiple_of(chaos.ckpt_every) {
                    let ckpt =
                        model.capture_checkpoint(step + 1, rng.state(), &comm, &mut ctx.clock)?;
                    let mut bytes = ckpt.encode();
                    if guard_on {
                        // The per-section CRC pass is guard work.
                        ctx.clock
                            .charge("guard:crc", ctx.cost().mem_bound_time(bytes.len() as f64));
                    }
                    // site=ckpt injection: corrupt this rank's copy of the
                    // freshly captured image.
                    if let Some(p) = &plan {
                        if !gs.is_applied(step, SdcSite::Ckpt) {
                            let flips = p.bitflips(my_global, step, SdcSite::Ckpt);
                            if !flips.is_empty() {
                                let len = bytes.len();
                                for fl in &flips {
                                    guard::flip_bit_bytes(&mut bytes, fl.element(len), fl.bit);
                                }
                                gs.mark(step, SdcSite::Ckpt);
                            }
                        }
                    }
                    if guard_on {
                        // Capture-time integrity vote: every rank checks its
                        // copy's CRCs and the group keeps the capture only if
                        // *all* copies verify. A corrupt copy on any rank
                        // discards the capture everywhere, so later restores
                        // agree on the bytes — rank-consistent by
                        // construction.
                        let ok = Checkpoint::decode(&bytes).is_ok();
                        let mut flag = [if ok { 1.0f32 } else { 0.0 }];
                        comm.all_reduce_sum_f32(&mut flag, &mut ctx.clock)?;
                        ctx.clock.commit("guard:reduce");
                        if flag[0] as usize == comm.size() {
                            prev_ckpt = report.last_ckpt.take();
                            report.last_ckpt = Some(bytes);
                        } else {
                            let injected =
                                plan.as_deref().and_then(|p| p.last_sdc_at_or_before(step));
                            if injected.is_none() {
                                report.guard_false_positives += 1;
                            }
                            report.guard_events.push(GuardEvent {
                                step,
                                site: "ckpt".into(),
                                detector: "crc".into(),
                                action: "discard_corrupt_ckpt".into(),
                                value: comm.size() as f64 - flag[0] as f64,
                                detail: String::new(),
                            });
                        }
                    } else {
                        prev_ckpt = report.last_ckpt.take();
                        report.last_ckpt = Some(bytes);
                    }
                }
                // ---- live expert rebalance: close a profiling window ---
                if let Some(pol) = policy.as_mut() {
                    let rcfg = *pol.config();
                    if rcfg.every > 0 && (step + 1).is_multiple_of(rcfg.every) {
                        // Merge the window's routes in dense-rank order:
                        // every rank sees the identical histogram, so the
                        // (deterministic) policy reaches the identical
                        // decision with no extra agreement round.
                        let mine = model.take_route_samples();
                        let gathered = comm.all_gather(mine, &mut ctx.clock)?;
                        ctx.clock.commit("elastic_histogram");
                        let mut hist =
                            RoutingHistogram::new(cfg.num_experts, comm.size(), MAX_ROUTE_SAMPLES);
                        for per_src in &gathered {
                            for (src, experts) in per_src {
                                let experts: Vec<usize> =
                                    experts.iter().map(|&e| e as usize).collect();
                                hist.observe(*src as usize, &experts);
                            }
                        }
                        let replica_cost = expert_replica_bytes(cfg.hidden, cfg.ffn, cfg.layers);
                        let old = model.assignment().clone();
                        if let Some((new_asg, kind)) =
                            pol.observe_window(&hist, &old, comm.cost(), replica_cost)
                        {
                            // Commit: snapshot the live state (weights +
                            // Adam moments, rank-agnostic keying), price
                            // the expert transfers, and rebuild every rank
                            // under the new assignment. Replicas are
                            // bitwise copies of their primary, so the run
                            // continues exactly as a fresh run launched in
                            // this layout from the same image would.
                            let ckpt = model.capture_checkpoint(
                                step + 1,
                                rng.state(),
                                &comm,
                                &mut ctx.clock,
                            )?;
                            let moved = old.changed_experts(&new_asg);
                            let grp = comm.group_ranks();
                            // Per expert per layer: w1|m|v and w2|m|v.
                            let per_expert =
                                6 * cfg.hidden as u64 * cfg.ffn as u64 * 4 * cfg.layers as u64;
                            let mut migration_bytes = 0u64;
                            let mut t_mig = 0.0f64;
                            for &g in &moved {
                                let src = grp[old.primary(g)];
                                for &h in new_asg.holders(g) {
                                    if !old.holders(g).contains(&h) {
                                        migration_bytes += per_expert;
                                        t_mig += comm.cost().p2p_time(src, grp[h], per_expert);
                                    }
                                }
                            }
                            ctx.clock.charge("elastic_migrate", t_mig);
                            let bpt = rcfg.bytes_per_token;
                            let before = assignment_cost(&old, &hist, comm.cost(), bpt);
                            let after = assignment_cost(&new_asg, &hist, comm.cost(), bpt);
                            model = DistMoeLm::from_checkpoint_with_assignment(
                                cfg,
                                &ckpt,
                                comm.rank(),
                                new_asg,
                            );
                            model.set_route_tracking(true);
                            rng = DetRng::from_state(ckpt.rng_state);
                            report.rebalance_ckpt = Some(ckpt.encode());
                            report.rebalances.push(RebalanceDecision {
                                step: step + 1,
                                kind,
                                moved_experts: moved,
                                dispatch_before: before.dispatch_time,
                                dispatch_after: after.dispatch_time,
                                migration_bytes,
                            });
                        }
                    }
                }
                step += 1;
            }
            Ok(None) => unreachable!("anomaly outcomes continue the loop directly"),
            Err(CommError::DeadPeer { .. }) => {
                // `check_dead` already charged `fault_detect` before erring,
                // so `t_err` marks the end of detection.
                let t_err = ctx.clock.now();
                let p = plan
                    .as_ref()
                    .expect("DeadPeer reported without a fault plan");
                let newly_dead: Vec<usize> = comm
                    .group_ranks()
                    .iter()
                    .copied()
                    .filter(|&g| p.is_dead(g, step))
                    .collect();
                assert!(
                    !newly_dead.is_empty(),
                    "DeadPeer error but the plan lists no dead group member"
                );
                dead_so_far.extend(newly_dead.iter().copied());
                dead_so_far.sort_unstable();
                dead_so_far.dedup();
                let survivors = comm.size() - newly_dead.len();
                assert!(survivors > 0, "no survivors to recover onto");
                // Ragged re-sharding handles any survivor count up to the
                // expert count (floor-boundary contiguous split).
                assert!(
                    cfg.num_experts >= survivors,
                    "cannot re-shard {} experts over {survivors} survivors: \
                     every rank must host at least one expert",
                    cfg.num_experts
                );

                // Re-form the group: every survivor joins color 0. The
                // placement grid rebuilt without the dead ranks must agree
                // with what the collective layer produced.
                let new_comm = comm.split(0, &mut ctx.clock)?;
                let grid =
                    build_grid_excluding(world0, &dead_so_far, survivors, PlacementPolicy::EpFirst);
                assert_eq!(
                    grid.ep_groups[0].as_slice(),
                    new_comm.group_ranks(),
                    "recovered communicator disagrees with the placement grid"
                );

                // Restore from the newest intact checkpoint; a corrupt
                // `last` falls back to `prev` (both CRC-verified on decode).
                let (src, fell_back, err) = restore_source(&mut report.last_ckpt, &mut prev_ckpt);
                if fell_back {
                    report.guard_events.push(GuardEvent {
                        step,
                        site: "ckpt".into(),
                        detector: "crc".into(),
                        action: "fallback_prev_ckpt".into(),
                        value: 1.0,
                        detail: err.unwrap_or_default(),
                    });
                }
                let resumed = if let Some((ckpt, bytes)) = src {
                    let t_io = ctx.cost().mem_bound_time(bytes as f64);
                    ctx.clock.charge("ckpt_restore", t_io);
                    model =
                        DistMoeLm::from_checkpoint(cfg, &ckpt, new_comm.rank(), new_comm.size());
                    rng = DetRng::from_state(ckpt.rng_state);
                    ckpt.step
                } else {
                    model = DistMoeLm::new(cfg, &full_layers, new_comm.rank(), new_comm.size());
                    if let Some((a, b, delta)) = chaos.hot_bias {
                        model.bias_router(a, delta);
                        model.bias_router(b, delta);
                    }
                    rng = DetRng::new(cfg.seed ^ DATA_STREAM_SALT);
                    0
                };
                if policy.is_some() {
                    model.set_route_tracking(true);
                }
                report.losses.retain(|&(s, _)| s < resumed);
                let t_done = ctx.clock.now();
                report.recoveries.push(RecoveryStats {
                    failed_ranks: newly_dead,
                    failed_at_step: step,
                    resumed_from_step: resumed,
                    steps_replayed: step - resumed,
                    detect_time: p.detect_timeout,
                    restore_time: t_done - t_err,
                    mttr: p.detect_timeout + (t_done - t_err),
                    detect_latency_steps: 0,
                    false_positives: report.guard_false_positives,
                    steps_lost_to_rollback: 0,
                });
                catch_up = Some((report.recoveries.len() - 1, t_err));
                comm = new_comm;
                step = resumed;
            }
            Err(e) => return Err(e),
        }
    }
    report.final_world = comm.size();
    report.final_loss_scale = gs.loss_scale.scale();
    report.final_assignment = model.assignment().clone();
    Ok(report)
}
