//! Elastic training: replicated/migrated expert assignments, the dispatch
//! route that serves them, and the histogram-driven rebalance policy
//! (ROADMAP item 4; the training-side twin of the PR 7 placement solver).
//!
//! Three pieces:
//!
//! * [`ExpertAssignment`] — which EP ranks hold which global expert. The
//!   classic layout (contiguous, one holder each) is one point in the
//!   space; migration rewrites a holder, replication adds one, and ragged
//!   worlds (expert count not divisible by world size) get a balanced
//!   contiguous split with per-rank counts in `{⌊E/W⌋, ⌈E/W⌉}`.
//! * [`ElasticRoute`] — the all-to-all dispatch/combine pair for an
//!   arbitrary assignment, generalizing `EpRoute`'s uniform-contiguous
//!   layout. Receivers regroup rows expert-major in (local expert
//!   ascending, source rank ascending, source PFT order) — exactly
//!   `EpRoute`'s order — so on a uniform assignment the route is
//!   bitwise-identical to the specialized path, and on any assignment the
//!   expert GEMM order is independent of which rank serves which copy.
//! * [`RebalancePolicy`] — feeds per-window routing skew to a reused
//!   [`SpikeDetector`], and when it trips (or the skew threshold is
//!   crossed) prices *migrate* (the PR 7 [`optimize_placement`] solve)
//!   against *replicate-the-hottest-expert* with
//!   [`CostModel::sparse_exchange_time`], committing the winner only if it
//!   is strictly cheaper than the current assignment — the same
//!   never-worse contract `optimize_placement` gives against naive.
//!
//! Determinism: every decision input (merged histogram, current
//! assignment, cost model) is identical on all ranks, so all ranks pick
//! the identical action with no extra coordination; the migration itself
//! round-trips through the rank-agnostic in-memory checkpoint capture, so
//! the post-migration model is bitwise what a fresh run launched in the
//! new layout would hold.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_core::Pft;
use xmoe_tensor::{gather_rows, Tensor};
use xmoe_topology::{
    optimize_placement, CostModel, ExpertPlacement, PlacementCost, RoutingHistogram,
};

use crate::guard::{SpikeDetector, Verdict};

/// Which EP ranks hold which global expert: `holders[e]` is the ascending,
/// non-empty set of ranks carrying a full copy of expert `e`'s weights and
/// optimizer moments.
///
/// A source rank `s` routes expert `e`'s tokens to
/// `holders[e][s % holders[e].len()]` — a static stripe that splits a
/// replicated expert's traffic (and its expert GEMM) across the holders
/// without any per-token coordination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpertAssignment {
    holders: Vec<Vec<usize>>,
    n_ranks: usize,
}

impl ExpertAssignment {
    /// Balanced contiguous split: rank `r` holds experts
    /// `r·E/W .. (r+1)·E/W` (integer bounds). Divisible shapes reproduce
    /// the classic `E/W`-per-rank layout exactly; ragged shapes give every
    /// rank `⌊E/W⌋` or `⌈E/W⌉` experts with no empty tail (the PR 8
    /// `div_ceil` budget, spread instead of front-loaded).
    pub fn contiguous(n_experts: usize, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "assignment needs at least one rank");
        assert!(
            n_experts >= n_ranks,
            "cannot shard {n_experts} experts over {n_ranks} ranks: \
             every EP rank must host at least one expert"
        );
        let mut holders = vec![Vec::new(); n_experts];
        for r in 0..n_ranks {
            for e in (r * n_experts / n_ranks)..((r + 1) * n_experts / n_ranks) {
                holders[e].push(r);
            }
        }
        Self { holders, n_ranks }
    }

    /// Adopt a solved placement (each expert on exactly one rank).
    pub fn from_placement(p: &ExpertPlacement) -> Self {
        Self {
            holders: p.expert_to_rank.iter().map(|&r| vec![r]).collect(),
            n_ranks: p.n_ranks,
        }
    }

    /// Primary-holder view of this assignment (drops replicas), for
    /// interop with the single-holder placement APIs.
    pub fn to_placement(&self) -> ExpertPlacement {
        ExpertPlacement {
            expert_to_rank: self.holders.iter().map(|h| h[0]).collect(),
            n_ranks: self.n_ranks,
        }
    }

    pub fn n_experts(&self) -> usize {
        self.holders.len()
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Ranks holding expert `e`, ascending.
    pub fn holders(&self, e: usize) -> &[usize] {
        &self.holders[e]
    }

    /// Canonical owner of expert `e` (lowest-ranked holder) — the copy
    /// checkpoints and scatters read.
    pub fn primary(&self, e: usize) -> usize {
        self.holders[e][0]
    }

    /// The rank source `src` sends expert `e`'s tokens to.
    pub fn serving_rank(&self, e: usize, src: usize) -> usize {
        let h = &self.holders[e];
        h[src % h.len()]
    }

    /// Global experts hosted on `rank`, ascending — the order of the
    /// rank's local shard.
    pub fn experts_on(&self, rank: usize) -> Vec<usize> {
        (0..self.holders.len())
            .filter(|&e| self.holders[e].contains(&rank))
            .collect()
    }

    /// Experts with more than one holder, ascending.
    pub fn replicated_experts(&self) -> Vec<usize> {
        (0..self.holders.len())
            .filter(|&e| self.holders[e].len() > 1)
            .collect()
    }

    /// True for the classic layout `EpRoute` specializes: divisible shape,
    /// single holder, expert `e` on rank `e / (E/W)`.
    pub fn is_uniform_contiguous(&self) -> bool {
        let e = self.n_experts();
        if !e.is_multiple_of(self.n_ranks) {
            return false;
        }
        let per = e / self.n_ranks;
        self.holders
            .iter()
            .enumerate()
            .all(|(g, h)| h.len() == 1 && h[0] == g / per)
    }

    /// Move expert `e` to be held by `to` alone.
    pub fn migrate(&mut self, e: usize, to: usize) {
        assert!(to < self.n_ranks, "migration target out of range");
        self.holders[e] = vec![to];
    }

    /// Add `rank` as a holder of expert `e` (no-op if already holding).
    pub fn replicate(&mut self, e: usize, rank: usize) {
        assert!(rank < self.n_ranks, "replica target out of range");
        if !self.holders[e].contains(&rank) {
            self.holders[e].push(rank);
            self.holders[e].sort_unstable();
        }
    }

    /// Experts whose holder set differs from `other`'s — each one's
    /// weights + moments must move (or copy) to apply `other`.
    pub fn changed_experts(&self, other: &ExpertAssignment) -> Vec<usize> {
        assert_eq!(self.n_experts(), other.n_experts());
        (0..self.holders.len())
            .filter(|&e| self.holders[e] != other.holders[e])
            .collect()
    }
}

/// Copy rows `[start, end)` of a row-major tensor into a flat buffer.
fn rows_to_vec(t: &Tensor, start: usize, end: usize) -> Vec<f32> {
    let mut v = Vec::with_capacity((end - start) * t.cols());
    for r in start..end {
        v.extend_from_slice(t.row(r));
    }
    v
}

/// Concatenate per-peer row buffers into one tensor.
fn vecs_to_tensor(parts: Vec<Vec<f32>>, cols: usize) -> Tensor {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut data = Vec::with_capacity(total);
    for p in parts {
        data.extend_from_slice(&p);
    }
    Tensor::from_vec(total / cols.max(1), cols, data)
}

/// Dispatch/combine route for an arbitrary [`ExpertAssignment`]: the
/// general form of `EpRoute`, paying the same one metadata all-to-all at
/// build and one payload all-to-all per direction.
///
/// Senders emit each expert's PFT segment to that expert's serving rank,
/// segments ordered by ascending global expert id within each
/// destination; receivers permute the concatenated-by-source wire buffer
/// into expert-major order (local expert ascending, source ascending,
/// source PFT order). On a uniform-contiguous assignment both permutations
/// are identities and the route is bitwise-identical to `EpRoute`.
pub struct ElasticRoute {
    pub pft: Pft,
    /// PFT row → position in the send buffer (rows grouped by destination,
    /// ascending expert id within each group).
    send_perm: Vec<usize>,
    inv_send_perm: Vec<usize>,
    send_per_dst: Vec<usize>,
    recv_per_src: Vec<usize>,
    /// Rows landing on this rank per local expert (ascending global id).
    pub tokens_per_local_expert: Vec<usize>,
    /// Expert-major position → wire (concat-by-source) position.
    perm: Vec<usize>,
    inv_perm: Vec<usize>,
}

impl ElasticRoute {
    /// Exchange per-(destination, expert) counts and precompute both
    /// permutations. One `u64` all-to-all, priced like `EpRoute`'s
    /// metadata exchange (claim it with `clock.commit("dispatch_a2a_meta")`).
    pub fn build(
        pft: Pft,
        assignment: &ExpertAssignment,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Self, CommError> {
        let w = ep.size();
        let me = ep.rank();
        let e = assignment.n_experts();
        assert_eq!(assignment.n_ranks(), w, "assignment world != communicator");
        assert_eq!(pft.tokens_per_expert.len(), e, "PFT expert count mismatch");
        let locals: Vec<Vec<usize>> = (0..w).map(|r| assignment.experts_on(r)).collect();
        let mut pre = vec![0usize; e + 1];
        for (g, &c) in pft.tokens_per_expert.iter().enumerate() {
            pre[g + 1] = pre[g] + c;
        }
        // counts[d][j]: my tokens for d's j-th local expert that *I* route
        // to d (0 when my stripe of a replicated expert lands elsewhere).
        let tpe_send: Vec<Vec<u64>> = locals
            .iter()
            .enumerate()
            .map(|(d, local)| {
                local
                    .iter()
                    .map(|&g| {
                        if assignment.serving_rank(g, me) == d {
                            pft.tokens_per_expert[g] as u64
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        let tpe_recv = ep.all_to_all_v(tpe_send, clock)?;

        let mut send_perm = Vec::with_capacity(pft.len());
        let mut send_per_dst = vec![0usize; w];
        for (d, local) in locals.iter().enumerate() {
            let mark = send_perm.len();
            for &g in local {
                if assignment.serving_rank(g, me) == d {
                    send_perm.extend(pre[g]..pre[g + 1]);
                }
            }
            send_per_dst[d] = send_perm.len() - mark;
        }
        debug_assert_eq!(send_perm.len(), pft.len(), "every PFT row routes once");
        let mut inv_send_perm = vec![0usize; send_perm.len()];
        for (k, &p) in send_perm.iter().enumerate() {
            inv_send_perm[p] = k;
        }

        let e_local = locals[me].len();
        let recv_per_src: Vec<usize> = tpe_recv
            .iter()
            .map(|r| r.iter().map(|&c| c as usize).sum())
            .collect();
        let mut src_base = vec![0usize; w];
        for s in 1..w {
            src_base[s] = src_base[s - 1] + recv_per_src[s - 1];
        }
        let total: usize = recv_per_src.iter().sum();
        let mut tokens_per_local_expert = vec![0usize; e_local];
        for r in &tpe_recv {
            for (j, &c) in r.iter().enumerate() {
                tokens_per_local_expert[j] += c as usize;
            }
        }
        let mut perm = Vec::with_capacity(total);
        for j in 0..e_local {
            for (src, counts) in tpe_recv.iter().enumerate() {
                let before: usize = counts[..j].iter().map(|&c| c as usize).sum();
                let start = src_base[src] + before;
                perm.extend(start..start + counts[j] as usize);
            }
        }
        let mut inv_perm = vec![0usize; perm.len()];
        for (k, &p) in perm.iter().enumerate() {
            inv_perm[p] = k;
        }
        Ok(Self {
            pft,
            send_perm,
            inv_send_perm,
            send_per_dst,
            recv_per_src,
            tokens_per_local_expert,
            perm,
            inv_perm,
        })
    }

    /// Rows this rank's experts process after dispatch.
    pub fn recv_rows(&self) -> usize {
        self.perm.len()
    }

    /// Dispatch: PFT-ordered rows → expert-major rows on the serving
    /// ranks. Claim the pending collective with
    /// `clock.commit("dispatch_a2a")`.
    pub fn to_experts(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        assert_eq!(rows.rows(), self.pft.len(), "dispatch row count mismatch");
        let cols = rows.cols();
        let send_major = gather_rows(rows, &self.send_perm);
        let mut send = Vec::with_capacity(self.send_per_dst.len());
        let mut off = 0;
        for &cnt in &self.send_per_dst {
            send.push(rows_to_vec(&send_major, off, off + cnt));
            off += cnt;
        }
        let recv = ep.all_to_all_v(send, clock)?;
        let wire = vecs_to_tensor(recv, cols);
        Ok(gather_rows(&wire, &self.perm))
    }

    /// Combine: expert-major rows → PFT-ordered rows back on the source
    /// ranks. Claim with `clock.commit("combine_a2a")`.
    pub fn to_source(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        assert_eq!(rows.rows(), self.perm.len(), "combine row count mismatch");
        let cols = rows.cols();
        let wire = gather_rows(rows, &self.inv_perm);
        let mut send = Vec::with_capacity(self.recv_per_src.len());
        let mut off = 0;
        for &cnt in &self.recv_per_src {
            send.push(rows_to_vec(&wire, off, off + cnt));
            off += cnt;
        }
        let recv = ep.all_to_all_v(send, clock)?;
        let send_order = vecs_to_tensor(recv, cols);
        Ok(gather_rows(&send_order, &self.inv_send_perm))
    }
}

/// Price an assignment (replicas included) against a routing histogram —
/// [`xmoe_topology::placement_cost`] generalized to multi-holder experts.
/// Dispatch keeps the node-dedup discipline (one copy per destination
/// node, striped pilot slot); per-rank expert load follows the serving
/// stripe, so replicating a hot expert visibly splits both its receive
/// traffic and its GEMM load.
pub fn assignment_cost(
    asg: &ExpertAssignment,
    hist: &RoutingHistogram,
    cost: &CostModel,
    bytes_per_token: u64,
) -> PlacementCost {
    let topo = cost.topology();
    let n = asg.n_ranks();
    assert!(n <= topo.n_ranks(), "assignment exceeds topology");
    let scale = if hist.sampled_routed == 0 {
        0.0
    } else {
        hist.total_routed as f64 / hist.sampled_routed as f64
    };
    let gpn = topo.spec().gpus_per_node;
    let mut copies = vec![0u64; n * n];
    let mut rank_pairs = vec![0u64; n];
    let mut nodes: Vec<usize> = Vec::with_capacity(8);
    for r in &hist.routes {
        let src = r.src_rank as usize;
        nodes.clear();
        for &e in &r.experts {
            let dst_rank = asg.serving_rank(e as usize, src);
            rank_pairs[dst_rank] += 1;
            let node = topo.node_of(dst_rank);
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        for &node in &nodes {
            let base = node * gpn;
            let dst = base + (src % gpn).min(n - 1 - base);
            copies[src * n + dst] += 1;
        }
    }
    let mut off_node = 0u64;
    for src in 0..n {
        for dst in 0..n {
            if copies[src * n + dst] > 0 && !topo.same_node(src, dst) {
                off_node += copies[src * n + dst] * bytes_per_token;
            }
        }
    }
    let group: Vec<usize> = (0..n).collect();
    let dispatch_time = cost.sparse_exchange_time(&group, &|i, j| {
        (copies[i * n + j] as f64 * scale) as u64 * bytes_per_token
    });
    PlacementCost {
        off_node_bytes: (off_node as f64 * scale) as u64,
        dispatch_time,
        max_rank_load: rank_pairs
            .into_iter()
            .map(|p| (p as f64 * scale) as u64)
            .max()
            .unwrap_or(0),
    }
}

/// Knobs of the live-rebalance policy.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Skew trigger: evaluate candidates when the window's max-over-mean
    /// expert load reaches this (the CLI's `--rebalance <threshold>`).
    pub threshold: f64,
    /// Profiling window in steps; the histogram merges and the policy
    /// evaluates every `every` steps.
    pub every: u64,
    /// Dispatch payload bytes per routed token (hidden · 4 for f32).
    pub bytes_per_token: u64,
    /// Cap on committed rebalances per run (keeps long runs from
    /// thrashing; tests pin 1 so the post-migration trajectory is final).
    pub max_actions: usize,
    /// Per-rank budget for *extra* replica state
    /// ([`xmoe_core::memory::expert_replica_bytes`]); replication
    /// candidates that would exceed it are discarded.
    pub replica_budget_bytes: u64,
    /// Drift detector ([`SpikeDetector`]) parameters over the per-window
    /// skew series: a sudden skew spike triggers evaluation even below
    /// `threshold`.
    pub spike_factor: f64,
    pub spike_window: usize,
    pub spike_min_history: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            threshold: 1.5,
            every: 8,
            bytes_per_token: 64,
            max_actions: 1,
            replica_budget_bytes: u64::MAX,
            spike_factor: 2.0,
            spike_window: 8,
            spike_min_history: 4,
        }
    }
}

/// What one committed rebalance did, for the report/trace.
#[derive(Clone, Debug)]
pub struct RebalanceDecision {
    /// Step the new assignment takes effect at.
    pub step: u64,
    /// `"migrate"` or `"replicate"`.
    pub kind: &'static str,
    /// Experts whose holder set changed.
    pub moved_experts: Vec<usize>,
    /// Priced dispatch time under the old / new assignment.
    pub dispatch_before: f64,
    pub dispatch_after: f64,
    /// Weight + optimizer bytes the transfer moved (filled by the engine
    /// from the model dimensions).
    pub migration_bytes: u64,
}

/// Histogram-driven rebalance: skew detection plus priced candidate
/// selection with the never-worse acceptance rule.
pub struct RebalancePolicy {
    cfg: RebalanceConfig,
    detector: SpikeDetector,
    actions: usize,
}

impl RebalancePolicy {
    pub fn new(cfg: RebalanceConfig) -> Self {
        let detector =
            SpikeDetector::new(cfg.spike_factor, cfg.spike_window, cfg.spike_min_history);
        Self {
            cfg,
            detector,
            actions: 0,
        }
    }

    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// Close one profiling window: observe its skew, and if the detector
    /// trips (or the threshold is crossed) price the candidates and return
    /// the new assignment when one strictly beats the current one.
    ///
    /// Deterministic: given identical inputs every rank returns the
    /// identical decision, so callers need no extra agreement round.
    pub fn observe_window(
        &mut self,
        hist: &RoutingHistogram,
        current: &ExpertAssignment,
        cost: &CostModel,
        extra_replica_bytes: u64,
    ) -> Option<(ExpertAssignment, &'static str)> {
        let skew = hist.skew();
        let spiked = matches!(self.detector.observe(skew), Verdict::Spike { .. });
        if self.actions >= self.cfg.max_actions {
            return None;
        }
        if !spiked && skew < self.cfg.threshold {
            return None;
        }
        let bpt = self.cfg.bytes_per_token;
        let before = assignment_cost(current, hist, cost, bpt);

        // Candidate A: full migrate via the PR 7 solver (primary holders
        // only; replicas collapse onto their primaries first).
        let solved = optimize_placement(hist, cost, bpt);
        let migrate = ExpertAssignment::from_placement(&solved);

        // Candidate B: replicate the hottest expert onto the least-loaded
        // rank not yet holding it (ties to the lowest index on both sides).
        let replicate = self.replicate_candidate(hist, current, extra_replica_bytes);

        let mut best: Option<(ExpertAssignment, &'static str, PlacementCost)> = None;
        for (cand, kind) in [(Some(migrate), "migrate"), (replicate, "replicate")] {
            let Some(cand) = cand else { continue };
            if cand == *current {
                continue;
            }
            let after = assignment_cost(&cand, hist, cost, bpt);
            // Never-worse: strictly faster dispatch, no added off-node
            // traffic — the optimize_placement contract, held against the
            // *live* assignment rather than naive.
            if after.dispatch_time >= before.dispatch_time
                || after.off_node_bytes > before.off_node_bytes
            {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, _, b)) => after.dispatch_time < b.dispatch_time,
            };
            if better {
                best = Some((cand, kind, after));
            }
        }
        let (cand, kind, _) = best?;
        self.actions += 1;
        Some((cand, kind))
    }

    /// Build the replicate-hottest candidate, or `None` when every rank
    /// already holds the hot expert or the replica budget is exhausted.
    fn replicate_candidate(
        &self,
        hist: &RoutingHistogram,
        current: &ExpertAssignment,
        extra_replica_bytes: u64,
    ) -> Option<ExpertAssignment> {
        if extra_replica_bytes > self.cfg.replica_budget_bytes {
            return None;
        }
        let hot = (0..hist.n_experts).max_by_key(|&e| (hist.expert_load[e], usize::MAX - e))?;
        // Least-loaded rank by hosted (token, expert) pairs under the
        // serving stripe, among ranks not yet holding the hot expert.
        let n = current.n_ranks();
        let mut rank_pairs = vec![0u64; n];
        for r in &hist.routes {
            for &e in &r.experts {
                rank_pairs[current.serving_rank(e as usize, r.src_rank as usize)] += 1;
            }
        }
        let target = (0..n)
            .filter(|r| !current.holders(hot).contains(r))
            .min_by_key(|&r| (rank_pairs[r], r))?;
        let mut cand = current.clone();
        cand.replicate(hot, target);
        Some(cand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_matches_classic_layout_when_divisible() {
        let a = ExpertAssignment::contiguous(8, 4);
        assert!(a.is_uniform_contiguous());
        for e in 0..8 {
            assert_eq!(a.holders(e), &[e / 2]);
            assert_eq!(a.serving_rank(e, 3), e / 2);
        }
        assert_eq!(a.experts_on(2), vec![4, 5]);
    }

    #[test]
    fn contiguous_ragged_split_is_balanced_with_no_empty_rank() {
        let a = ExpertAssignment::contiguous(8, 3);
        assert!(!a.is_uniform_contiguous());
        let sizes: Vec<usize> = (0..3).map(|r| a.experts_on(r).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
        // Contiguity: each rank's experts are a consecutive range.
        for r in 0..3 {
            let ex = a.experts_on(r);
            assert!(ex.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn replication_stripes_sources_across_holders() {
        let mut a = ExpertAssignment::contiguous(4, 2);
        a.replicate(0, 1);
        assert_eq!(a.holders(0), &[0, 1]);
        assert_eq!(a.serving_rank(0, 0), 0);
        assert_eq!(a.serving_rank(0, 1), 1);
        assert_eq!(a.primary(0), 0);
        assert_eq!(a.replicated_experts(), vec![0]);
        // Both holders list expert 0 in their local shard.
        assert_eq!(a.experts_on(0), vec![0, 1]);
        assert_eq!(a.experts_on(1), vec![0, 2, 3]);
        assert_eq!(a.changed_experts(&ExpertAssignment::contiguous(4, 2)), [0]);
    }

    #[test]
    fn migrate_rewrites_the_holder() {
        let mut a = ExpertAssignment::contiguous(4, 2);
        a.migrate(3, 0);
        assert_eq!(a.holders(3), &[0]);
        assert!(!a.is_uniform_contiguous());
        assert_eq!(a.to_placement().rank_of(3), 0);
    }
}
