//! Training substrate for the loss-validation experiment (paper §5.6,
//! Fig 15).
//!
//! The paper verifies X-MoE's numerical correctness by training the same
//! MoE model under X-MoE and DeepSpeed-MoE and showing the loss curves
//! track each other, with X-MoE slightly lower because of its gentler
//! token-dropping policy (capacity-only, versus DeepSpeed's "drop on
//! negative routing logit regardless of capacity").
//!
//! This crate reproduces that experiment end to end in Rust:
//!
//! * [`data::MarkovCorpus`] — a synthetic corpus with learnable next-token
//!   structure (a random sparse Markov chain), replacing the paper's text
//!   corpus;
//! * [`layers`] — embedding, dense MLP block and softmax-cross-entropy
//!   head with hand-written backward passes;
//! * [`moe_layer::TrainableMoe`] — the full MoE layer forward/backward:
//!   router softmax + top-k, PFT construction with either
//!   [`xmoe_core::DropPolicy`], gather/dispatch, per-expert FFN, weighted
//!   scatter/combine, and exact gradients for every weight including the
//!   router (via the combine-weight path);
//! * [`adam::Adam`] — Adam with global-norm gradient clipping;
//! * [`model::MoeLm`] — the assembled language model and its training
//!   loop.
//!
//! Gradient correctness is enforced by finite-difference tests on every
//! parameter group.

// Backward passes index several parallel row-slices at once; explicit
// index loops are clearer than zipped iterator pyramids there.
#![allow(clippy::needless_range_loop)]

pub mod adam;
pub mod attention;
pub mod chaos;
pub mod checkpoint;
pub mod data;
pub mod dist;
pub mod elastic;
pub mod guard;
pub mod layers;
pub mod model;
pub mod moe_layer;
pub mod ssmb_train;
pub mod stages;

pub use adam::Adam;
pub use attention::Attention;
pub use chaos::{run_chaos_rank, step_batch, ChaosConfig, ChaosReport, JoinStats};
pub use checkpoint::{Checkpoint, CkptError};
pub use data::{HigherOrderCorpus, MarkovCorpus};
pub use dist::{DistMoe, DistMoeLm};
pub use elastic::{
    assignment_cost, ElasticRoute, ExpertAssignment, RebalanceConfig, RebalanceDecision,
    RebalancePolicy,
};
pub use guard::{
    Divergence, GuardConfig, GuardEvent, LossScale, LossScaleCfg, PolicyAction, PolicyCfg,
    PolicyEngine, SpikeDetector, Verdict,
};
pub use model::{build_moe_layers, MoeLm, TrainConfig, TrainStats};
pub use moe_layer::{MoeCtx, MoeTrainScratch, TrainableMoe};
pub use ssmb_train::SsmbMoe;
pub use stages::StagePartition;
