//! Distributed expert-parallel training: the full forward **and backward**
//! of the padding-free MoE layer across an EP group, with exactly the
//! paper's communication pattern — two uneven all-to-alls forward and two
//! mirrored ones backward (4 per layer per step, §4.3).
//!
//! The gradient transport reuses [`EpRoute`]: `to_experts`/`to_source`
//! form an adjoint pair (each is a bijective row relocation), so
//! activation gradients travel the forward route in reverse:
//!
//! ```text
//! forward:  dispatch_in --to_experts--> expert_input -> y --to_source--> combine_in
//! backward: d_combine   --to_experts--> d_y -> d_expert_in --to_source--> d_dispatch
//! ```
//!
//! Dense/router/embedding parameters are replicated across ranks and
//! synchronized by averaging gradients (ZeRO-0-style DP); expert weights
//! live on exactly one rank (EP = world) and their gradients are already
//! global because every rank's tokens were dispatched to them.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_core::gating::{DropPolicy, GatingOutput};
use xmoe_core::pft::Pft;
use xmoe_core::pipeline::padding_free::EpRoute;
use xmoe_core::pipeline::MoeLayerSpec;
use xmoe_tensor::{
    add_assign, gather_rows, matmul, matmul_transpose_b, scale_assign, scatter_rows_scaled,
    scatter_rows_unit, softmax_rows, topk_rows, Tensor,
};

use crate::adam::Adam;
use crate::attention::Attention;
use crate::checkpoint::Checkpoint;
use crate::elastic::{ElasticRoute, ExpertAssignment};
use crate::layers::{DenseMlp, Embedding, Head};
use crate::moe_layer::TrainableMoe;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// A trainable MoE layer whose experts are sharded across an EP group.
#[derive(Clone, Debug)]
pub struct DistMoe {
    /// Replicated router `[H, E]`.
    pub gate: Tensor,
    pub g_gate: Tensor,
    /// This rank's expert blocks `(w1 [H,F], w2 [F,H])`, one per entry of
    /// `local_experts`.
    pub shard: Vec<(Tensor, Tensor)>,
    pub g_shard: Vec<(Tensor, Tensor)>,
    /// Global ids of this rank's local experts, ascending — under the
    /// classic layout a contiguous range, under an elastic assignment any
    /// subset (including replicas of experts other ranks also hold).
    pub local_experts: Vec<usize>,
    /// The full expert→holders map this layer routes by.
    pub assignment: ExpertAssignment,
    /// This rank's dense index in the EP group.
    pub dense_rank: usize,
    /// Expert FFN dimensions, kept explicitly so empty shards (a rank
    /// holding no expert of this layer) stay well-formed.
    pub hidden: usize,
    pub ffn: usize,
    pub num_experts: usize,
    pub top_k: usize,
    pub capacity: usize,
    pub policy: DropPolicy,
}

/// The route a forward pass traveled: the specialized uniform-contiguous
/// [`EpRoute`] (overlap path) or the general [`ElasticRoute`]. Both
/// regroup rows expert-major in (local expert, source rank, source PFT
/// order), so the backward pass is agnostic to which one carried the
/// tokens.
pub enum RouteKind {
    Ep(EpRoute),
    Elastic(ElasticRoute),
}

impl RouteKind {
    fn pft(&self) -> &Pft {
        match self {
            RouteKind::Ep(r) => &r.pft,
            RouteKind::Elastic(r) => &r.pft,
        }
    }

    fn to_experts(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        match self {
            RouteKind::Ep(r) => r.to_experts(rows, ep, clock),
            RouteKind::Elastic(r) => r.to_experts(rows, ep, clock),
        }
    }

    fn to_source(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        match self {
            RouteKind::Ep(r) => r.to_source(rows, ep, clock),
            RouteKind::Elastic(r) => r.to_source(rows, ep, clock),
        }
    }
}

/// Saved forward state of one distributed MoE layer.
pub struct DistMoeCtx {
    x: Tensor,
    scores: Tensor,
    route: RouteKind,
    /// Expert-major saves on the *expert* side.
    expert_input: Tensor,
    h_pre: Tensor,
    h_act: Tensor,
    seg_offsets: Vec<usize>,
    /// Expert outputs returned to the *source* side, in PFT order.
    combine_in: Tensor,
}

impl DistMoeCtx {
    /// PFT of this layer's forward (global expert ids, source order).
    pub fn pft(&self) -> &Pft {
        self.route.pft()
    }
}

impl DistMoe {
    /// Shard a single-rank [`TrainableMoe`] across `world` ranks under the
    /// balanced contiguous assignment (rank `r` takes experts
    /// `[r·E/W, (r+1)·E/W)` — the classic layout when the shape divides,
    /// a ragged `{⌊E/W⌋, ⌈E/W⌉}`-per-rank split when it does not);
    /// everyone replicates the router. Used to check the distributed path
    /// against the single-rank one.
    pub fn from_trainable(full: &TrainableMoe, rank: usize, world: usize) -> Self {
        let assignment = ExpertAssignment::contiguous(full.num_experts(), world);
        Self::from_trainable_with_assignment(full, rank, assignment)
    }

    /// Shard a single-rank [`TrainableMoe`] under an arbitrary
    /// [`ExpertAssignment`]: this rank takes a full copy of every expert
    /// the assignment lists it as holding (replicas included).
    pub fn from_trainable_with_assignment(
        full: &TrainableMoe,
        rank: usize,
        assignment: ExpertAssignment,
    ) -> Self {
        let e = full.num_experts();
        assert_eq!(
            assignment.n_experts(),
            e,
            "assignment expert count mismatch"
        );
        assert!(rank < assignment.n_ranks(), "rank outside the assignment");
        let local_experts = assignment.experts_on(rank);
        let shard: Vec<(Tensor, Tensor)> = local_experts
            .iter()
            .map(|&g| full.experts[g].clone())
            .collect();
        let g_shard = shard
            .iter()
            .map(|(a, b)| {
                (
                    Tensor::zeros(a.rows(), a.cols()),
                    Tensor::zeros(b.rows(), b.cols()),
                )
            })
            .collect();
        let (hidden, ffn) = full.experts[0].0.shape();
        Self {
            gate: full.gate.clone(),
            g_gate: Tensor::zeros(full.gate.rows(), full.gate.cols()),
            shard,
            g_shard,
            local_experts,
            dense_rank: rank,
            assignment,
            hidden,
            ffn,
            num_experts: e,
            top_k: full.top_k,
            capacity: full.capacity,
            policy: full.policy,
        }
    }

    fn spec(&self) -> MoeLayerSpec {
        MoeLayerSpec::new(self.num_experts, self.capacity).with_policy(self.policy)
    }

    /// Distributed forward: `out = x + combine(experts(dispatch(x)))`.
    pub fn forward(
        &self,
        x: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<(Tensor, DistMoeCtx), CommError> {
        let hidden = x.cols();
        let logits = matmul(x, &self.gate);
        let mut scores = logits.clone();
        softmax_rows(&mut scores);
        let (top_experts, combine_weights) = topk_rows(&scores, self.top_k);
        let top_logits = top_experts
            .iter()
            .enumerate()
            .map(|(i, &e)| logits.get(i / self.top_k, e))
            .collect();
        let gating = GatingOutput {
            top_experts,
            combine_weights,
            top_logits,
            k: self.top_k,
            scores: scores.clone(),
        };
        let pft = Pft::construct(&gating, self.num_experts, self.capacity, self.policy);

        let dispatch_in = gather_rows(x, &pft.token_ids);
        // The general route serves any assignment; on the uniform layout it
        // is bitwise- and price-identical to the specialized `EpRoute`.
        let route = ElasticRoute::build(pft, &self.assignment, ep, clock)?;
        clock.commit("dispatch_a2a_meta");
        let expert_input = route.to_experts(&dispatch_in, ep, clock)?;
        clock.commit("dispatch_a2a");

        // Per-expert FFN over expert-major segments, saving intermediates.
        let f = self.ffn;
        let total = expert_input.rows();
        let mut h_pre = Tensor::zeros(total, f);
        let mut h_act = Tensor::zeros(total, f);
        let mut y = Tensor::zeros(total, hidden);
        let mut seg_offsets = Vec::with_capacity(self.shard.len() + 1);
        seg_offsets.push(0);
        let mut row = 0usize;
        for (e, &cnt) in route.tokens_per_local_expert.iter().enumerate() {
            if cnt > 0 {
                let seg = expert_input.slice_rows(row, row + cnt);
                let pre = matmul(&seg, &self.shard[e].0);
                let mut act = pre.clone();
                for v in act.as_mut_slice() {
                    *v *= sigmoid(*v);
                }
                let out = matmul(&act, &self.shard[e].1);
                h_pre.as_mut_slice()[row * f..(row + cnt) * f].copy_from_slice(pre.as_slice());
                h_act.as_mut_slice()[row * f..(row + cnt) * f].copy_from_slice(act.as_slice());
                y.as_mut_slice()[row * hidden..(row + cnt) * hidden]
                    .copy_from_slice(out.as_slice());
            }
            row += cnt;
            seg_offsets.push(row);
        }

        let combine_in = route.to_source(&y, ep, clock)?;
        clock.commit("combine_a2a");

        let mut out = x.clone();
        scatter_rows_scaled(
            &combine_in,
            &route.pft.token_ids,
            &route.pft.combine_weights,
            &mut out,
        );
        Ok((
            out,
            DistMoeCtx {
                x: x.clone(),
                scores,
                route: RouteKind::Elastic(route),
                expert_input,
                h_pre,
                h_act,
                seg_offsets,
                combine_in,
            },
        ))
    }

    /// Chunked-overlap distributed forward: bitwise-identical numerics to
    /// [`forward`](Self::forward), with the dispatch and combine all-to-alls
    /// split into `chunks` expert-major chunks pipelined against the
    /// per-expert FFNs via [`EpRoute::exchange_overlap`]. The train path
    /// charges no simulated compute for expert GEMMs (matching the serial
    /// forward), so the schedule — not the clock — is what changes here;
    /// the priced overlap win is measured in `xmoe-core`/`bench overlap`.
    pub fn forward_overlap(
        &self,
        x: &Tensor,
        chunks: usize,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<(Tensor, DistMoeCtx), CommError> {
        assert!(
            self.assignment.is_uniform_contiguous(),
            "the chunked-overlap path specializes the uniform contiguous \
             expert layout; elastic assignments take the serial path"
        );
        let hidden = x.cols();
        let logits = matmul(x, &self.gate);
        let mut scores = logits.clone();
        softmax_rows(&mut scores);
        let (top_experts, combine_weights) = topk_rows(&scores, self.top_k);
        let top_logits = top_experts
            .iter()
            .enumerate()
            .map(|(i, &e)| logits.get(i / self.top_k, e))
            .collect();
        let gating = GatingOutput {
            top_experts,
            combine_weights,
            top_logits,
            k: self.top_k,
            scores: scores.clone(),
        };
        let pft = Pft::construct(&gating, self.num_experts, self.capacity, self.policy);

        let dispatch_in = gather_rows(x, &pft.token_ids);
        let route = EpRoute::build(pft, &self.spec(), ep, clock)?;
        clock.commit("dispatch_a2a_meta");

        let f = self.ffn;
        let counts = route.tokens_per_local_expert.clone();
        let mut seg_offsets = Vec::with_capacity(self.shard.len() + 1);
        seg_offsets.push(0usize);
        for &cnt in &counts {
            seg_offsets.push(seg_offsets.last().unwrap() + cnt);
        }
        let total = *seg_offsets.last().unwrap();
        let mut expert_input = Tensor::zeros(total, hidden);
        let mut h_pre = Tensor::zeros(total, f);
        let mut h_act = Tensor::zeros(total, f);

        let combine_in = route.exchange_overlap(
            &dispatch_in,
            chunks,
            ("dispatch_a2a", "expert", "combine_a2a"),
            ep,
            clock,
            |_c, plan, chunk_in, _clock| {
                // Chunk c covers local experts [e0, e1); its rows are the
                // expert-major slice [seg_offsets[e0], seg_offsets[e1]) of
                // the full buffer, so saving them in place reproduces the
                // serial `expert_input`/`h_pre`/`h_act` exactly.
                let (e0, e1) = plan.experts;
                let row0 = seg_offsets[e0];
                expert_input.as_mut_slice()[row0 * hidden..(row0 + chunk_in.rows()) * hidden]
                    .copy_from_slice(chunk_in.as_slice());
                let mut y_chunk = Tensor::zeros(chunk_in.rows(), hidden);
                let mut row = 0usize;
                for e in e0..e1 {
                    let cnt = counts[e];
                    if cnt > 0 {
                        let seg = chunk_in.slice_rows(row, row + cnt);
                        let pre = matmul(&seg, &self.shard[e].0);
                        let mut act = pre.clone();
                        for v in act.as_mut_slice() {
                            *v *= sigmoid(*v);
                        }
                        let out = matmul(&act, &self.shard[e].1);
                        let g0 = row0 + row;
                        h_pre.as_mut_slice()[g0 * f..(g0 + cnt) * f]
                            .copy_from_slice(pre.as_slice());
                        h_act.as_mut_slice()[g0 * f..(g0 + cnt) * f]
                            .copy_from_slice(act.as_slice());
                        y_chunk.as_mut_slice()[row * hidden..(row + cnt) * hidden]
                            .copy_from_slice(out.as_slice());
                    }
                    row += cnt;
                }
                y_chunk
            },
        )?;

        let mut out = x.clone();
        scatter_rows_scaled(
            &combine_in,
            &route.pft.token_ids,
            &route.pft.combine_weights,
            &mut out,
        );
        Ok((
            out,
            DistMoeCtx {
                x: x.clone(),
                scores,
                route: RouteKind::Ep(route),
                expert_input,
                h_pre,
                h_act,
                seg_offsets,
                combine_in,
            },
        ))
    }

    /// Distributed backward: accumulates local grads, returns `d_x`.
    /// Mirrors the forward route with two more all-to-alls.
    pub fn backward(
        &mut self,
        ctx: &DistMoeCtx,
        d_out: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let hidden = ctx.x.cols();
        let pft = ctx.route.pft();
        let b = pft.len();
        let mut d_x = d_out.clone(); // residual

        // Source side: d_combine rows (PFT order) and combine-weight grads.
        let mut d_combine = gather_rows(d_out, &pft.token_ids);
        let mut d_w = vec![0.0f32; b];
        for i in 0..b {
            let w = ctx.route.pft().combine_weights[i];
            let y_row = ctx.combine_in.row(i);
            let dc = d_combine.row_mut(i);
            d_w[i] = xmoe_tensor::dot_and_scale(dc, y_row, w);
        }

        // Backward all-to-all #1: gradients to the expert side.
        let d_y = ctx.route.to_experts(&d_combine, ep, clock)?;
        clock.commit("bwd_combine_a2a");

        // Expert FFN backward over segments; expert grads stay local.
        let mut d_expert_in = Tensor::zeros(ctx.expert_input.rows(), hidden);
        for e in 0..self.shard.len() {
            let (start, end) = (ctx.seg_offsets[e], ctx.seg_offsets[e + 1]);
            if start == end {
                continue;
            }
            let seg_x = ctx.expert_input.slice_rows(start, end);
            let seg_pre = ctx.h_pre.slice_rows(start, end);
            let seg_act = ctx.h_act.slice_rows(start, end);
            let seg_dy = d_y.slice_rows(start, end);
            let dw2 = matmul(&seg_act.transpose(), &seg_dy);
            add_assign(&mut self.g_shard[e].1, &dw2);
            let mut d_h = matmul_transpose_b(&seg_dy, &self.shard[e].1);
            for (d, &pre) in d_h.as_mut_slice().iter_mut().zip(seg_pre.as_slice()) {
                *d *= silu_grad(pre);
            }
            let dw1 = matmul(&seg_x.transpose(), &d_h);
            add_assign(&mut self.g_shard[e].0, &dw1);
            let d_seg = matmul_transpose_b(&d_h, &self.shard[e].0);
            d_expert_in.as_mut_slice()[start * hidden..end * hidden]
                .copy_from_slice(d_seg.as_slice());
        }

        // Backward all-to-all #2: dispatch gradients back to sources.
        let d_dispatch = ctx.route.to_source(&d_expert_in, ep, clock)?;
        clock.commit("bwd_dispatch_a2a");
        let pft = ctx.route.pft();
        scatter_rows_unit(&d_dispatch, &pft.token_ids, &mut d_x);

        // Router backward (local; router is replicated).
        let e_count = self.num_experts;
        let mut d_scores = Tensor::zeros(ctx.x.rows(), e_count);
        for i in 0..b {
            let t = pft.token_ids[i];
            let e = pft.expert_ids[i];
            let v = d_scores.get(t, e);
            d_scores.set(t, e, v + d_w[i]);
        }
        let mut d_logits = Tensor::zeros(ctx.x.rows(), e_count);
        for t in 0..ctx.x.rows() {
            let s_row = ctx.scores.row(t);
            let ds_row = d_scores.row(t);
            let inner: f32 = s_row.iter().zip(ds_row).map(|(s, d)| s * d).sum();
            let dl = d_logits.row_mut(t);
            for j in 0..e_count {
                dl[j] = s_row[j] * (ds_row[j] - inner);
            }
        }
        let dg = matmul(&ctx.x.transpose(), &d_logits);
        add_assign(&mut self.g_gate, &dg);
        let d_x_gate = matmul_transpose_b(&d_logits, &self.gate);
        add_assign(&mut d_x, &d_x_gate);
        Ok(d_x)
    }

    /// Chunked-overlap distributed backward: bitwise-identical gradients to
    /// [`backward`](Self::backward). The backward chain has the same shape
    /// as the forward one — a dispatch-direction all-to-all (`d_combine` to
    /// the expert side), per-expert GEMMs, and a combine-direction
    /// all-to-all (`d_expert_in` back to sources) — so it pipelines through
    /// the same [`EpRoute::exchange_overlap`] primitive.
    pub fn backward_overlap(
        &mut self,
        ctx: &DistMoeCtx,
        d_out: &Tensor,
        chunks: usize,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let RouteKind::Ep(route) = &ctx.route else {
            panic!("backward_overlap requires a forward_overlap context (EpRoute)");
        };
        let hidden = ctx.x.cols();
        let b = route.pft.len();
        let mut d_x = d_out.clone(); // residual

        let mut d_combine = gather_rows(d_out, &route.pft.token_ids);
        let mut d_w = vec![0.0f32; b];
        for i in 0..b {
            let w = route.pft.combine_weights[i];
            let y_row = ctx.combine_in.row(i);
            let dc = d_combine.row_mut(i);
            d_w[i] = xmoe_tensor::dot_and_scale(dc, y_row, w);
        }

        let shard = &self.shard;
        let g_shard = &mut self.g_shard;
        let d_dispatch = route.exchange_overlap(
            &d_combine,
            chunks,
            ("bwd_combine_a2a", "bwd_expert", "bwd_dispatch_a2a"),
            ep,
            clock,
            |_c, plan, chunk_dy, _clock| {
                let (e0, e1) = plan.experts;
                let mut d_chunk = Tensor::zeros(chunk_dy.rows(), hidden);
                let mut row = 0usize;
                for e in e0..e1 {
                    let (start, end) = (ctx.seg_offsets[e], ctx.seg_offsets[e + 1]);
                    let cnt = end - start;
                    if cnt > 0 {
                        let seg_x = ctx.expert_input.slice_rows(start, end);
                        let seg_pre = ctx.h_pre.slice_rows(start, end);
                        let seg_act = ctx.h_act.slice_rows(start, end);
                        let seg_dy = chunk_dy.slice_rows(row, row + cnt);
                        let dw2 = matmul(&seg_act.transpose(), &seg_dy);
                        add_assign(&mut g_shard[e].1, &dw2);
                        let mut d_h = matmul_transpose_b(&seg_dy, &shard[e].1);
                        for (d, &pre) in d_h.as_mut_slice().iter_mut().zip(seg_pre.as_slice()) {
                            *d *= silu_grad(pre);
                        }
                        let dw1 = matmul(&seg_x.transpose(), &d_h);
                        add_assign(&mut g_shard[e].0, &dw1);
                        let d_seg = matmul_transpose_b(&d_h, &shard[e].0);
                        d_chunk.as_mut_slice()[row * hidden..(row + cnt) * hidden]
                            .copy_from_slice(d_seg.as_slice());
                    }
                    row += cnt;
                }
                d_chunk
            },
        )?;
        scatter_rows_unit(&d_dispatch, &route.pft.token_ids, &mut d_x);

        // Router backward (local; router is replicated) — identical to the
        // serial path.
        let e_count = self.num_experts;
        let mut d_scores = Tensor::zeros(ctx.x.rows(), e_count);
        for i in 0..b {
            let t = route.pft.token_ids[i];
            let e = route.pft.expert_ids[i];
            let v = d_scores.get(t, e);
            d_scores.set(t, e, v + d_w[i]);
        }
        let mut d_logits = Tensor::zeros(ctx.x.rows(), e_count);
        for t in 0..ctx.x.rows() {
            let s_row = ctx.scores.row(t);
            let ds_row = d_scores.row(t);
            let inner: f32 = s_row.iter().zip(ds_row).map(|(s, d)| s * d).sum();
            let dl = d_logits.row_mut(t);
            for j in 0..e_count {
                dl[j] = s_row[j] * (ds_row[j] - inner);
            }
        }
        let dg = matmul(&ctx.x.transpose(), &d_logits);
        add_assign(&mut self.g_gate, &dg);
        let d_x_gate = matmul_transpose_b(&d_logits, &self.gate);
        add_assign(&mut d_x, &d_x_gate);
        Ok(d_x)
    }

    pub fn zero_grads(&mut self) {
        for v in self.g_gate.as_mut_slice() {
            *v = 0.0;
        }
        for (a, b) in &mut self.g_shard {
            for v in a.as_mut_slice() {
                *v = 0.0;
            }
            for v in b.as_mut_slice() {
                *v = 0.0;
            }
        }
    }

    /// Checkpointed forward: compute the output but save only the layer
    /// input. The §4.3 trade-off made executable — the backward pass must
    /// recompute the forward, *including its two all-to-alls*, so a
    /// checkpointed MoE layer costs 6 all-to-alls per step instead of 4.
    pub fn forward_ckpt(
        &self,
        x: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<(Tensor, Tensor), CommError> {
        let (out, _ctx) = self.forward(x, ep, clock)?;
        // Discard the context; keep only the input.
        Ok((out, x.clone()))
    }

    /// Backward for a checkpointed layer: recompute forward from the saved
    /// input (2 extra all-to-alls, labelled `dispatch_a2a`/`combine_a2a`
    /// again), then run the normal backward (2 more).
    pub fn backward_ckpt(
        &mut self,
        saved_input: &Tensor,
        d_out: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let (_, ctx) = self.forward(saved_input, ep, clock)?;
        self.backward(&ctx, d_out, ep, clock)
    }
}

/// Mutable hook over an activation buffer — the chaos engine's `site=act`
/// injection point in [`DistMoeLm::forward_backward_hooked`].
pub type ActHook<'a> = &'a mut dyn FnMut(&mut [f32]);

/// A data+expert-parallel MoE language model: one rank's replica of the
/// dense stack plus its expert shards, with gradient synchronization over
/// the world communicator.
/// One distributed transformer block.
pub struct DistBlock {
    pub attn: Option<Attention>,
    pub mlp: DenseMlp,
    pub moe: DistMoe,
}

pub struct DistMoeLm {
    pub embed: Embedding,
    pub blocks: Vec<DistBlock>,
    pub head: Head,
    opt: Adam,
    world_size: usize,
    seq_len: usize,
    /// When set, every step appends each token's route (this rank's dense
    /// index + the chosen global experts) — the rebalance histogram feed.
    track_routes: bool,
    route_samples: Vec<(u32, Vec<u16>)>,
}

impl DistMoeLm {
    /// Shard a single-rank reference model (see
    /// [`crate::model::MoeLm`]-equivalent construction in tests) across
    /// `world` ranks under the balanced contiguous expert assignment. All
    /// replicated parameters start identical.
    pub fn new(
        cfg: &crate::model::TrainConfig,
        full_layers: &[TrainableMoe],
        rank: usize,
        world: usize,
    ) -> Self {
        let assignment = ExpertAssignment::contiguous(cfg.num_experts, world);
        Self::new_with_assignment(cfg, full_layers, rank, assignment)
    }

    /// [`Self::new`] under an arbitrary [`ExpertAssignment`] (the layout a
    /// rebalance decision produced, or a solved placement).
    pub fn new_with_assignment(
        cfg: &crate::model::TrainConfig,
        full_layers: &[TrainableMoe],
        rank: usize,
        assignment: ExpertAssignment,
    ) -> Self {
        let world = assignment.n_ranks();
        let blocks = full_layers
            .iter()
            .enumerate()
            .map(|(l, full)| {
                let s = cfg.seed.wrapping_add(l as u64 * 7001);
                DistBlock {
                    attn: cfg
                        .use_attention
                        .then(|| Attention::new(cfg.hidden, cfg.n_heads, s ^ 0xA77)),
                    mlp: DenseMlp::new(cfg.hidden, cfg.hidden * 2, s),
                    moe: DistMoe::from_trainable_with_assignment(full, rank, assignment.clone()),
                }
            })
            .collect();
        Self {
            embed: Embedding::new(cfg.vocab, cfg.hidden, cfg.seed),
            head: Head::new(cfg.hidden, cfg.vocab, cfg.seed ^ 0x4EAD),
            blocks,
            opt: Adam::new(cfg.lr),
            world_size: world,
            seq_len: cfg.seq_len,
            track_routes: false,
            route_samples: Vec::new(),
        }
    }

    /// The expert assignment every block routes by.
    pub fn assignment(&self) -> &ExpertAssignment {
        &self.blocks[0].moe.assignment
    }

    /// Enable/disable per-step route collection for the rebalance
    /// histogram (off by default; costs one pass over each block's PFT).
    pub fn set_route_tracking(&mut self, on: bool) {
        self.track_routes = on;
        if !on {
            self.route_samples.clear();
        }
    }

    /// Drain the routes collected since the last call: `(src dense rank,
    /// global experts chosen)` per routed token, in step order.
    pub fn take_route_samples(&mut self) -> Vec<(u32, Vec<u16>)> {
        std::mem::take(&mut self.route_samples)
    }

    /// Add `delta` to the router logit column of `expert` in every block —
    /// the deterministic skew injector benches and tests drive hot-expert
    /// scenarios with. The bias lives in the (replicated, checkpointed)
    /// gate weights, so trajectories stay comparable across restores.
    pub fn bias_router(&mut self, expert: usize, delta: f32) {
        for block in &mut self.blocks {
            let gate = &mut block.moe.gate;
            for r in 0..gate.rows() {
                let v = gate.get(r, expert);
                gate.set(r, expert, v + delta);
            }
        }
    }

    /// One training step over this rank's local batch, with gradient
    /// averaging across the world and a local Adam update (replicated
    /// parameters stay bitwise-identical across ranks because they see
    /// identical averaged gradients).
    ///
    /// Composed from the phase methods below in the canonical order; the
    /// guarded chaos step composes the same phases with detection and
    /// injection hooks in between, so both paths share one set of float
    /// operations and the unguarded trajectory is bitwise-unchanged.
    pub fn train_step(
        &mut self,
        batch: &[Vec<usize>],
        world: &Communicator,
        clock: &mut SimClock,
    ) -> Result<f64, CommError> {
        let local_loss = self.forward_backward(batch, world, clock)?;
        self.sync_grads(world, clock)?;
        self.apply_update();
        self.reduce_loss(local_loss, world, clock)
    }

    /// Phase 1: forward + backward over the local batch, accumulating
    /// gradients. Returns the local mean loss.
    pub fn forward_backward(
        &mut self,
        batch: &[Vec<usize>],
        world: &Communicator,
        clock: &mut SimClock,
    ) -> Result<f64, CommError> {
        self.forward_backward_hooked(batch, 1.0, None, world, clock)
    }

    /// Phase 1 with guard hooks: `loss_scale` multiplies the head gradient
    /// (a power of two keeps scaling bitwise-invertible), and `act_hook`
    /// — when present — runs over the pre-head activation buffer, which is
    /// where the chaos engine injects `site=act` corruption.
    pub fn forward_backward_hooked(
        &mut self,
        batch: &[Vec<usize>],
        loss_scale: f32,
        act_hook: Option<ActHook<'_>>,
        world: &Communicator,
        clock: &mut SimClock,
    ) -> Result<f64, CommError> {
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for seq in batch {
            for w in seq.windows(2) {
                inputs.push(w[0]);
                targets.push(w[1]);
            }
        }
        let mut x = self.embed.forward(&inputs);
        let mut ctxs = Vec::new();
        for block in &self.blocks {
            let attn_ctx = block.attn.as_ref().map(|a| {
                let (x1, c) = a.forward(&x, self.seq_len);
                x = x1;
                c
            });
            let (x1, c1) = block.mlp.forward(&x);
            let (x2, c2) = block.moe.forward(&x1, world, clock)?;
            ctxs.push((attn_ctx, c1, c2));
            x = x2;
        }
        if self.track_routes {
            // Regroup each block's expert-major PFT back into per-token
            // routes (expert ids come out ascending per token —
            // deterministic), tagged with this rank's dense index.
            let me = world.rank() as u32;
            for (_, _, c2) in &ctxs {
                let pft = c2.pft();
                let mut per_tok: Vec<Vec<u16>> = vec![Vec::new(); inputs.len()];
                for (i, &t) in pft.token_ids.iter().enumerate() {
                    per_tok[t].push(pft.expert_ids[i] as u16);
                }
                for experts in per_tok {
                    if !experts.is_empty() {
                        self.route_samples.push((me, experts));
                    }
                }
            }
        }
        if let Some(hook) = act_hook {
            hook(x.as_mut_slice());
        }
        // The scale enters inside the head backward, at `d_logits`, so the
        // head's own weight gradient carries it like every other gradient
        // (scaling the returned `d_x` here would leave `head.grad`
        // unscaled and the later exact unscale would shrink it).
        let (local_loss, mut d_x) = self.head.loss_and_backward_scaled(&x, &targets, loss_scale);
        for (block, (ca, c1, c2)) in self.blocks.iter_mut().zip(&ctxs).rev() {
            d_x = block.moe.backward(c2, &d_x, world, clock)?;
            d_x = block.mlp.backward(c1, &d_x);
            if let (Some(a), Some(c)) = (block.attn.as_mut(), ca.as_ref()) {
                d_x = a.backward(c, &d_x);
            }
        }
        self.embed.backward(&inputs, &d_x);
        Ok(local_loss)
    }

    /// Phase 2: gradient synchronization.
    ///
    /// Global loss is the average of per-rank means (equal token counts),
    /// so every gradient carries a 1/W factor; replicated parameters
    /// additionally all-reduce. Expert grads are already global (every
    /// rank's tokens were dispatched there); they only need the scaling.
    pub fn sync_grads(
        &mut self,
        world: &Communicator,
        clock: &mut SimClock,
    ) -> Result<(), CommError> {
        let inv = 1.0 / self.world_size as f32;
        fn reduce_avg(
            t: &mut Tensor,
            inv: f32,
            world: &Communicator,
            clock: &mut SimClock,
        ) -> Result<(), CommError> {
            scale_assign(t, inv);
            world.all_reduce_sum_f32(t.as_mut_slice(), clock)
        }
        reduce_avg(&mut self.embed.grad, inv, world, clock)?;
        reduce_avg(&mut self.head.grad, inv, world, clock)?;
        for block in &mut self.blocks {
            if let Some(a) = block.attn.as_mut() {
                reduce_avg(&mut a.gq, inv, world, clock)?;
                reduce_avg(&mut a.gk, inv, world, clock)?;
                reduce_avg(&mut a.gv, inv, world, clock)?;
                reduce_avg(&mut a.go, inv, world, clock)?;
                reduce_avg(&mut a.norm.g_gamma, inv, world, clock)?;
                reduce_avg(&mut a.norm.g_beta, inv, world, clock)?;
            }
            let mlp = &mut block.mlp;
            reduce_avg(&mut mlp.g1, inv, world, clock)?;
            reduce_avg(&mut mlp.g2, inv, world, clock)?;
            reduce_avg(&mut mlp.norm.g_gamma, inv, world, clock)?;
            reduce_avg(&mut mlp.norm.g_beta, inv, world, clock)?;
            let moe = &mut block.moe;
            reduce_avg(&mut moe.g_gate, inv, world, clock)?;
            // Replicated experts: each holder accumulated only its stripe
            // of the expert's tokens, so the partials must merge. Every
            // rank joins the reduce for every replicated expert (w1 then
            // w2, experts ascending — canonical group-index order;
            // non-holders contribute zeros), so all holders end with the
            // bitwise-identical merged gradient, identical Adam updates,
            // and replicas that never drift apart.
            for g in moe.assignment.replicated_experts() {
                let local = moe.local_experts.iter().position(|&x| x == g);
                for which in 0..2 {
                    let (rows, cols) = if which == 0 {
                        (moe.hidden, moe.ffn)
                    } else {
                        (moe.ffn, moe.hidden)
                    };
                    match local {
                        Some(i) => {
                            let t = if which == 0 {
                                &mut moe.g_shard[i].0
                            } else {
                                &mut moe.g_shard[i].1
                            };
                            world.all_reduce_sum_f32(t.as_mut_slice(), clock)?;
                        }
                        None => {
                            let mut zeros = vec![0.0f32; rows * cols];
                            world.all_reduce_sum_f32(&mut zeros, clock)?;
                        }
                    }
                }
            }
            for (g1, g2) in &mut moe.g_shard {
                scale_assign(g1, inv);
                scale_assign(g2, inv);
            }
        }
        clock.commit("grad_allreduce");
        Ok(())
    }

    /// Phase 3: local Adam update over the canonical parameter order, then
    /// zero every gradient for the next step.
    pub fn apply_update(&mut self) {
        let mut pairs: Vec<(&mut Tensor, &Tensor)> = Vec::new();
        pairs.push((&mut self.embed.weight, &self.embed.grad));
        for block in &mut self.blocks {
            if let Some(a) = block.attn.as_mut() {
                pairs.push((&mut a.wq, &a.gq));
                pairs.push((&mut a.wk, &a.gk));
                pairs.push((&mut a.wv, &a.gv));
                pairs.push((&mut a.wo, &a.go));
                pairs.push((&mut a.norm.gamma, &a.norm.g_gamma));
                pairs.push((&mut a.norm.beta, &a.norm.g_beta));
            }
            let mlp = &mut block.mlp;
            pairs.push((&mut mlp.w1, &mlp.g1));
            pairs.push((&mut mlp.w2, &mlp.g2));
            pairs.push((&mut mlp.norm.gamma, &mlp.norm.g_gamma));
            pairs.push((&mut mlp.norm.beta, &mlp.norm.g_beta));
            let moe = &mut block.moe;
            pairs.push((&mut moe.gate, &moe.g_gate));
            for ((w1, w2), (g1, g2)) in moe.shard.iter_mut().zip(moe.g_shard.iter()) {
                pairs.push((w1, g1));
                pairs.push((w2, g2));
            }
        }
        pairs.push((&mut self.head.weight, &self.head.grad));
        self.opt.step(pairs);
        self.zero_all_grads();
    }

    /// Zero every gradient buffer — also the whole of a skipped step's
    /// cleanup (discarding a poisoned gradient without touching params).
    pub fn zero_all_grads(&mut self) {
        for v in self.embed.grad.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.head.grad.as_mut_slice() {
            *v = 0.0;
        }
        for block in &mut self.blocks {
            if let Some(a) = block.attn.as_mut() {
                a.zero_grads();
            }
            block.mlp.zero_grads();
            block.moe.zero_grads();
        }
    }

    /// Average the local loss across ranks for the global curve.
    pub fn reduce_loss(
        &self,
        local_loss: f64,
        world: &Communicator,
        clock: &mut SimClock,
    ) -> Result<f64, CommError> {
        let mut l = vec![local_loss as f32];
        world.all_reduce_sum_f32(&mut l, clock)?;
        clock.commit("loss_allreduce");
        Ok((l[0] / self.world_size as f32) as f64)
    }

    /// Visit every gradient buffer under its canonical name, in the same
    /// replicated-first order `sync_grads` uses. Shard gradients are named
    /// by global expert id. Read-only — the guard's scan path.
    pub fn visit_grads(&self, f: &mut dyn FnMut(&str, &[f32])) {
        f("embed.weight", self.embed.grad.as_slice());
        f("head.weight", self.head.grad.as_slice());
        for (l, block) in self.blocks.iter().enumerate() {
            if let Some(a) = &block.attn {
                f(&format!("block{l}.attn.wq"), a.gq.as_slice());
                f(&format!("block{l}.attn.wk"), a.gk.as_slice());
                f(&format!("block{l}.attn.wv"), a.gv.as_slice());
                f(&format!("block{l}.attn.wo"), a.go.as_slice());
                f(&format!("block{l}.attn.gamma"), a.norm.g_gamma.as_slice());
                f(&format!("block{l}.attn.beta"), a.norm.g_beta.as_slice());
            }
            f(&format!("block{l}.mlp.w1"), block.mlp.g1.as_slice());
            f(&format!("block{l}.mlp.w2"), block.mlp.g2.as_slice());
            f(
                &format!("block{l}.mlp.gamma"),
                block.mlp.norm.g_gamma.as_slice(),
            );
            f(
                &format!("block{l}.mlp.beta"),
                block.mlp.norm.g_beta.as_slice(),
            );
            f(&format!("block{l}.moe.gate"), block.moe.g_gate.as_slice());
            for (i, (g1, g2)) in block.moe.g_shard.iter().enumerate() {
                let g = block.moe.local_experts[i];
                f(&format!("block{l}.moe.expert{g}.w1"), g1.as_slice());
                f(&format!("block{l}.moe.expert{g}.w2"), g2.as_slice());
            }
        }
    }

    /// Mutable variant of [`Self::visit_grads`] — the guard's injection
    /// and unscale path.
    pub fn visit_grads_mut(&mut self, f: &mut dyn FnMut(&str, &mut [f32])) {
        f("embed.weight", self.embed.grad.as_mut_slice());
        f("head.weight", self.head.grad.as_mut_slice());
        for (l, block) in self.blocks.iter_mut().enumerate() {
            if let Some(a) = block.attn.as_mut() {
                f(&format!("block{l}.attn.wq"), a.gq.as_mut_slice());
                f(&format!("block{l}.attn.wk"), a.gk.as_mut_slice());
                f(&format!("block{l}.attn.wv"), a.gv.as_mut_slice());
                f(&format!("block{l}.attn.wo"), a.go.as_mut_slice());
                f(
                    &format!("block{l}.attn.gamma"),
                    a.norm.g_gamma.as_mut_slice(),
                );
                f(&format!("block{l}.attn.beta"), a.norm.g_beta.as_mut_slice());
            }
            let mlp = &mut block.mlp;
            f(&format!("block{l}.mlp.w1"), mlp.g1.as_mut_slice());
            f(&format!("block{l}.mlp.w2"), mlp.g2.as_mut_slice());
            f(
                &format!("block{l}.mlp.gamma"),
                mlp.norm.g_gamma.as_mut_slice(),
            );
            f(
                &format!("block{l}.mlp.beta"),
                mlp.norm.g_beta.as_mut_slice(),
            );
            let moe = &mut block.moe;
            f(&format!("block{l}.moe.gate"), moe.g_gate.as_mut_slice());
            let locals = moe.local_experts.clone();
            for (i, (g1, g2)) in moe.g_shard.iter_mut().enumerate() {
                let g = locals[i];
                f(&format!("block{l}.moe.expert{g}.w1"), g1.as_mut_slice());
                f(&format!("block{l}.moe.expert{g}.w2"), g2.as_mut_slice());
            }
        }
    }

    /// Total f32 elements across every gradient buffer (replicated +
    /// local shard) — what the SDC injector reduces its element hash by.
    pub fn grad_elem_count(&self) -> usize {
        let mut n = 0usize;
        self.visit_grads(&mut |_, xs| n += xs.len());
        n
    }

    /// Is this gradient buffer replicated across ranks (all-reduced by
    /// `sync_grads`) rather than a local expert shard?
    pub fn is_replicated_grad(name: &str) -> bool {
        !name.contains(".moe.expert")
    }

    /// Snapshot the *canonical full model* into a [`Checkpoint`]: replicated
    /// parameters are taken locally (they are bitwise-identical on every
    /// rank), expert shards and their Adam moments are all-gathered so every
    /// rank ends up holding the complete expert set under global names.
    /// Because the result is rank-agnostic, a checkpoint captured at world
    /// size W restores onto any world size up to the expert count (ragged
    /// splits included) and onto any [`ExpertAssignment`] — the substrate
    /// of elastic recovery, rank join and live migration.
    ///
    /// `step` is the number of *completed* training steps; `rng_state` is
    /// the data-stream RNG state at that point (see
    /// [`crate::chaos`]). Collective time is charged under `checkpoint`.
    pub fn capture_checkpoint(
        &self,
        step: u64,
        rng_state: u64,
        world: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Checkpoint, CommError> {
        let (mm, vv) = self.opt.moments();
        let moment = |idx: usize, t: &Tensor, bufs: &[Vec<f32>]| -> Tensor {
            match bufs.get(idx) {
                Some(b) => Tensor::from_vec(t.rows(), t.cols(), b.clone()),
                // Adam initializes moment slots lazily; before the first
                // step they are implicitly zero.
                None => Tensor::zeros(t.rows(), t.cols()),
            }
        };
        let mut ckpt = Checkpoint::new(step, rng_state, self.opt.step_count());
        // Walk the exact Adam visitation order of `train_step`, tracking the
        // moment index; replicated params go straight in, expert slots are
        // filled from the gathered blobs below.
        let mut idx = 0usize;
        let push = |ckpt: &mut Checkpoint, idx: &mut usize, name: String, t: &Tensor| {
            ckpt.push(format!("adam.m.{name}"), moment(*idx, t, mm));
            ckpt.push(format!("adam.v.{name}"), moment(*idx, t, vv));
            ckpt.push(name, t.clone());
            *idx += 1;
        };
        push(
            &mut ckpt,
            &mut idx,
            "embed.weight".into(),
            &self.embed.weight,
        );
        for (l, block) in self.blocks.iter().enumerate() {
            if let Some(a) = &block.attn {
                push(&mut ckpt, &mut idx, format!("block{l}.attn.wq"), &a.wq);
                push(&mut ckpt, &mut idx, format!("block{l}.attn.wk"), &a.wk);
                push(&mut ckpt, &mut idx, format!("block{l}.attn.wv"), &a.wv);
                push(&mut ckpt, &mut idx, format!("block{l}.attn.wo"), &a.wo);
                push(
                    &mut ckpt,
                    &mut idx,
                    format!("block{l}.attn.gamma"),
                    &a.norm.gamma,
                );
                push(
                    &mut ckpt,
                    &mut idx,
                    format!("block{l}.attn.beta"),
                    &a.norm.beta,
                );
            }
            let mlp = &block.mlp;
            push(&mut ckpt, &mut idx, format!("block{l}.mlp.w1"), &mlp.w1);
            push(&mut ckpt, &mut idx, format!("block{l}.mlp.w2"), &mlp.w2);
            push(
                &mut ckpt,
                &mut idx,
                format!("block{l}.mlp.gamma"),
                &mlp.norm.gamma,
            );
            push(
                &mut ckpt,
                &mut idx,
                format!("block{l}.mlp.beta"),
                &mlp.norm.beta,
            );
            let moe = &block.moe;
            push(&mut ckpt, &mut idx, format!("block{l}.moe.gate"), &moe.gate);

            // Expert shards: each rank contributes, per local expert,
            // `w1 | m(w1) | v(w1) | w2 | m(w2) | v(w2)` as one flat blob.
            // The all-gather gives every rank the full expert set; global
            // expert g is read from its *primary* holder's blob (replicas
            // are bitwise-identical, so the primary copy is canonical),
            // at g's position in that holder's ascending local order.
            let per = moe.shard.len();
            let (h, f) = (moe.hidden, moe.ffn);
            let slot = 6 * h * f;
            let mut blob = Vec::with_capacity(per * slot);
            for (i, (w1, w2)) in moe.shard.iter().enumerate() {
                for t in [
                    w1.clone(),
                    moment(idx + 2 * i, w1, mm),
                    moment(idx + 2 * i, w1, vv),
                ] {
                    blob.extend_from_slice(t.as_slice());
                }
                for t in [
                    w2.clone(),
                    moment(idx + 2 * i + 1, w2, mm),
                    moment(idx + 2 * i + 1, w2, vv),
                ] {
                    blob.extend_from_slice(t.as_slice());
                }
            }
            idx += 2 * per;
            let blobs = world.all_gather(blob, clock)?;
            for g in 0..moe.num_experts {
                let owner = moe.assignment.primary(g);
                let s = moe
                    .assignment
                    .experts_on(owner)
                    .iter()
                    .position(|&x| x == g)
                    .expect("primary holder does not list its own expert");
                let base = s * slot;
                let chunk = |k: usize, rows: usize, cols: usize| -> Tensor {
                    let start = base + k * h * f;
                    Tensor::from_vec(rows, cols, blobs[owner][start..start + h * f].to_vec())
                };
                let name = format!("block{l}.moe.expert{g}");
                ckpt.push(format!("adam.m.{name}.w1"), chunk(1, h, f));
                ckpt.push(format!("adam.v.{name}.w1"), chunk(2, h, f));
                ckpt.push(format!("{name}.w1"), chunk(0, h, f));
                ckpt.push(format!("adam.m.{name}.w2"), chunk(4, f, h));
                ckpt.push(format!("adam.v.{name}.w2"), chunk(5, f, h));
                ckpt.push(format!("{name}.w2"), chunk(3, f, h));
            }
        }
        push(&mut ckpt, &mut idx, "head.weight".into(), &self.head.weight);

        // Charge the serialization as a bandwidth-bound write and claim the
        // gathers under one stage label.
        let bytes: usize = ckpt
            .entries()
            .iter()
            .map(|(n, t)| n.len() + 20 + t.len() * 4)
            .sum();
        let t_io = world.cost().mem_bound_time(bytes as f64);
        clock.charge("checkpoint", t_io);
        clock.commit("checkpoint");
        Ok(ckpt)
    }

    /// Rebuild a model at `(rank, world)` from a canonical [`Checkpoint`]:
    /// construct the skeleton, overwrite every parameter by name, slice
    /// this rank's contiguous expert share (balanced even when the world
    /// does not divide the expert count) out of the global expert set,
    /// and restore the Adam moments in this rank's visitation order.
    ///
    /// Restoring a 16-rank checkpoint at world size 8 is exactly the elastic
    /// recovery path: survivors each adopt twice the experts, with optimizer
    /// state intact, and the subsequent loss trajectory is bitwise identical
    /// to a fresh 8-rank run resumed from the same bytes.
    pub fn from_checkpoint(
        cfg: &crate::model::TrainConfig,
        ckpt: &Checkpoint,
        rank: usize,
        world: usize,
    ) -> Self {
        let assignment = ExpertAssignment::contiguous(cfg.num_experts, world);
        Self::from_checkpoint_with_assignment(cfg, ckpt, rank, assignment)
    }

    /// [`Self::from_checkpoint`] restoring into an arbitrary
    /// [`ExpertAssignment`] — the migration commit path: the canonical
    /// global-expert-id keying means any layout (ragged, migrated,
    /// replicated) loads from the same bytes.
    pub fn from_checkpoint_with_assignment(
        cfg: &crate::model::TrainConfig,
        ckpt: &Checkpoint,
        rank: usize,
        assignment: ExpertAssignment,
    ) -> Self {
        let full_layers = crate::model::build_moe_layers(cfg);
        let mut model = Self::new_with_assignment(cfg, &full_layers, rank, assignment);
        let mut m: Vec<Vec<f32>> = Vec::new();
        let mut v: Vec<Vec<f32>> = Vec::new();
        {
            let mut load = |name: String, dst: &mut Tensor| {
                let src = ckpt
                    .tensor(&name)
                    .unwrap_or_else(|| panic!("checkpoint missing entry {name}"));
                assert_eq!(
                    src.shape(),
                    dst.shape(),
                    "checkpoint entry {name} has the wrong shape"
                );
                dst.as_mut_slice().copy_from_slice(src.as_slice());
                let grab = |prefix: &str| -> Vec<f32> {
                    ckpt.tensor(&format!("{prefix}.{name}"))
                        .map(|t| t.as_slice().to_vec())
                        .unwrap_or_else(|| vec![0.0; src.len()])
                };
                m.push(grab("adam.m"));
                v.push(grab("adam.v"));
            };
            load("embed.weight".into(), &mut model.embed.weight);
            for (l, block) in model.blocks.iter_mut().enumerate() {
                if let Some(a) = block.attn.as_mut() {
                    load(format!("block{l}.attn.wq"), &mut a.wq);
                    load(format!("block{l}.attn.wk"), &mut a.wk);
                    load(format!("block{l}.attn.wv"), &mut a.wv);
                    load(format!("block{l}.attn.wo"), &mut a.wo);
                    load(format!("block{l}.attn.gamma"), &mut a.norm.gamma);
                    load(format!("block{l}.attn.beta"), &mut a.norm.beta);
                }
                let mlp = &mut block.mlp;
                load(format!("block{l}.mlp.w1"), &mut mlp.w1);
                load(format!("block{l}.mlp.w2"), &mut mlp.w2);
                load(format!("block{l}.mlp.gamma"), &mut mlp.norm.gamma);
                load(format!("block{l}.mlp.beta"), &mut mlp.norm.beta);
                let moe = &mut block.moe;
                load(format!("block{l}.moe.gate"), &mut moe.gate);
                let locals = moe.local_experts.clone();
                for (i, (w1, w2)) in moe.shard.iter_mut().enumerate() {
                    let g = locals[i];
                    load(format!("block{l}.moe.expert{g}.w1"), w1);
                    load(format!("block{l}.moe.expert{g}.w2"), w2);
                }
            }
            load("head.weight".into(), &mut model.head.weight);
        }
        model.opt.restore(ckpt.adam_step, m, v);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmoe_collectives::SimCluster;

    fn tiny_full(seed: u64) -> TrainableMoe {
        // 8 experts over H=8, F=6, top-2, ample capacity.
        TrainableMoe::new(8, 6, 8, 2, 100_000, DropPolicy::CapacityOnly, seed)
    }

    #[test]
    fn overlapped_forward_backward_is_bitwise_identical_to_serial() {
        let full = tiny_full(77);
        let world = 4;
        for chunks in [1usize, 2] {
            let results = SimCluster::frontier(world).run(|ctx| {
                let x = Tensor::rand_uniform(12, 8, 1.0, 810 + ctx.rank as u64);
                let d_out = Tensor::rand_uniform(12, 8, 1.0, 910 + ctx.rank as u64);

                let mut serial = DistMoe::from_trainable(&full, ctx.rank, world);
                let (out_s, ctx_s) = serial.forward(&x, &ctx.world, &mut ctx.clock).unwrap();
                let dx_s = serial
                    .backward(&ctx_s, &d_out, &ctx.world, &mut ctx.clock)
                    .unwrap();

                let mut over = DistMoe::from_trainable(&full, ctx.rank, world);
                let (out_o, ctx_o) = over
                    .forward_overlap(&x, chunks, &ctx.world, &mut ctx.clock)
                    .unwrap();
                let dx_o = over
                    .backward_overlap(&ctx_o, &d_out, chunks, &ctx.world, &mut ctx.clock)
                    .unwrap();

                let grads_equal = serial
                    .g_shard
                    .iter()
                    .zip(&over.g_shard)
                    .all(|((a1, a2), (b1, b2))| a1.allclose(b1, 0.0) && a2.allclose(b2, 0.0))
                    && serial.g_gate.allclose(&over.g_gate, 0.0);
                (
                    out_s.allclose(&out_o, 0.0),
                    dx_s.allclose(&dx_o, 0.0),
                    grads_equal,
                )
            });
            for (rank, (out_eq, dx_eq, grads_eq)) in results.iter().enumerate() {
                assert!(
                    out_eq,
                    "chunks {chunks} rank {rank}: forward outputs differ"
                );
                assert!(dx_eq, "chunks {chunks} rank {rank}: input grads differ");
                assert!(grads_eq, "chunks {chunks} rank {rank}: weight grads differ");
            }
        }
    }

    #[test]
    fn distributed_forward_matches_single_rank() {
        let full = tiny_full(61);
        let world = 4;
        let outs = SimCluster::frontier(world).run(|ctx| {
            let layer = DistMoe::from_trainable(&full, ctx.rank, world);
            let x = Tensor::rand_uniform(10, 8, 1.0, 700 + ctx.rank as u64);
            let (out, _) = layer.forward(&x, &ctx.world, &mut ctx.clock).unwrap();
            out
        });
        for rank in 0..world {
            let x = Tensor::rand_uniform(10, 8, 1.0, 700 + rank as u64);
            let (want, _) = full.forward(&x);
            assert!(
                outs[rank].allclose(&want, 1e-4),
                "rank {rank} fwd diff {}",
                outs[rank].max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn distributed_backward_matches_single_rank_gradients() {
        let full = tiny_full(71);
        let world = 4;
        // Each rank runs fwd+bwd on its own batch with its own upstream
        // gradient; the distributed per-expert grads must equal the sum of
        // single-rank per-batch grads (experts see every rank's tokens).
        let dist = SimCluster::frontier(world).run(|ctx| {
            let mut layer = DistMoe::from_trainable(&full, ctx.rank, world);
            let x = Tensor::rand_uniform(12, 8, 1.0, 800 + ctx.rank as u64);
            let d_out = Tensor::rand_uniform(12, 8, 1.0, 900 + ctx.rank as u64);
            let (_, ctx_f) = layer.forward(&x, &ctx.world, &mut ctx.clock).unwrap();
            let d_x = layer
                .backward(&ctx_f, &d_out, &ctx.world, &mut ctx.clock)
                .unwrap();
            (layer.g_shard.clone(), layer.g_gate.clone(), d_x)
        });

        // Single-rank reference: accumulate over the same four batches.
        let mut reference = full.clone();
        let mut ref_dx = Vec::new();
        for rank in 0..world {
            let x = Tensor::rand_uniform(12, 8, 1.0, 800 + rank as u64);
            let d_out = Tensor::rand_uniform(12, 8, 1.0, 900 + rank as u64);
            let (_, c) = reference.forward(&x);
            ref_dx.push(reference.backward(&c, &d_out));
        }

        // Expert grads: distributed rank r's shard e_local corresponds to
        // global expert r*2 + e_local.
        for rank in 0..world {
            let (g_shard, _, _) = &dist[rank];
            for (e_local, (g1, g2)) in g_shard.iter().enumerate() {
                let global = rank * 2 + e_local;
                assert!(
                    g1.allclose(&reference.g_experts[global].0, 1e-3),
                    "dW1 expert {global}: diff {}",
                    g1.max_abs_diff(&reference.g_experts[global].0)
                );
                assert!(
                    g2.allclose(&reference.g_experts[global].1, 1e-3),
                    "dW2 expert {global}: diff {}",
                    g2.max_abs_diff(&reference.g_experts[global].1)
                );
            }
        }
        // Router grads: distributed per-rank g_gate covers only the local
        // batch; the sum over ranks must equal the reference accumulation.
        let mut summed = Tensor::zeros(8, 8);
        for (_, g_gate, _) in &dist {
            add_assign(&mut summed, g_gate);
        }
        assert!(
            summed.allclose(&reference.g_gate, 1e-3),
            "router grad diff {}",
            summed.max_abs_diff(&reference.g_gate)
        );
        // Input gradients per rank match the per-batch reference.
        for rank in 0..world {
            assert!(
                dist[rank].2.allclose(&ref_dx[rank], 1e-3),
                "d_x rank {rank} diff {}",
                dist[rank].2.max_abs_diff(&ref_dx[rank])
            );
        }
    }

    #[test]
    fn checkpointed_layer_matches_and_costs_six_alltoalls() {
        // §4.3 executable: checkpointing reproduces identical gradients but
        // pays 6 all-to-alls per layer per step (2 fwd + 2 recompute +
        // 2 bwd) versus 4 without.
        let full = tiny_full(97);
        let world = 2;
        let results = SimCluster::frontier(world).run(|ctx| {
            let x = Tensor::rand_uniform(6, 8, 1.0, 970 + ctx.rank as u64);
            let d_out = Tensor::rand_uniform(6, 8, 1.0, 980 + ctx.rank as u64);
            // Plain path.
            let mut plain = DistMoe::from_trainable(&full, ctx.rank, world);
            let (out_a, c) = plain.forward(&x, &ctx.world, &mut ctx.clock).unwrap();
            let dx_a = plain
                .backward(&c, &d_out, &ctx.world, &mut ctx.clock)
                .unwrap();
            let plain_a2a = ctx.clock.bucket("dispatch_a2a")
                + ctx.clock.bucket("combine_a2a")
                + ctx.clock.bucket("bwd_dispatch_a2a")
                + ctx.clock.bucket("bwd_combine_a2a");
            ctx.clock.reset_buckets();
            // Checkpointed path.
            let mut ckpt = DistMoe::from_trainable(&full, ctx.rank, world);
            let (out_b, saved) = ckpt.forward_ckpt(&x, &ctx.world, &mut ctx.clock).unwrap();
            let dx_b = ckpt
                .backward_ckpt(&saved, &d_out, &ctx.world, &mut ctx.clock)
                .unwrap();
            let ckpt_a2a = ctx.clock.bucket("dispatch_a2a")
                + ctx.clock.bucket("combine_a2a")
                + ctx.clock.bucket("bwd_dispatch_a2a")
                + ctx.clock.bucket("bwd_combine_a2a");
            let grads_equal = plain
                .g_shard
                .iter()
                .zip(&ckpt.g_shard)
                .all(|((a1, a2), (b1, b2))| a1.allclose(b1, 1e-5) && a2.allclose(b2, 1e-5));
            (
                out_a.allclose(&out_b, 1e-6),
                dx_a.allclose(&dx_b, 1e-5),
                grads_equal,
                ckpt_a2a / plain_a2a,
            )
        });
        for (rank, (out_eq, dx_eq, g_eq, a2a_ratio)) in results.iter().enumerate() {
            assert!(out_eq, "rank {rank}: outputs differ");
            assert!(dx_eq, "rank {rank}: input grads differ");
            assert!(g_eq, "rank {rank}: expert grads differ");
            // 6 a2as vs 4: ratio ~1.5 in simulated time.
            assert!(
                (1.3..1.7).contains(a2a_ratio),
                "rank {rank}: a2a time ratio {a2a_ratio} (expected ~1.5)"
            );
        }
    }

    #[test]
    fn backward_charges_two_more_alltoalls() {
        let full = tiny_full(81);
        let world = 2;
        let buckets = SimCluster::frontier(world).run(|ctx| {
            let mut layer = DistMoe::from_trainable(&full, ctx.rank, world);
            let x = Tensor::rand_uniform(6, 8, 1.0, 810 + ctx.rank as u64);
            let (out, c) = layer.forward(&x, &ctx.world, &mut ctx.clock).unwrap();
            let _ = layer
                .backward(&c, &out, &ctx.world, &mut ctx.clock)
                .unwrap();
            ctx.clock.buckets().to_vec()
        });
        for b in &buckets {
            let names: Vec<&str> = b.iter().map(|(l, _)| l.as_str()).collect();
            for want in [
                "dispatch_a2a",
                "combine_a2a",
                "bwd_combine_a2a",
                "bwd_dispatch_a2a",
            ] {
                assert!(names.contains(&want), "missing {want} in {names:?}");
            }
        }
    }
}
