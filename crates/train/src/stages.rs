//! Stage-partitioned model: carve a training configuration's layer stack
//! into the `pp × v` contiguous virtual stages the 1F1B schedule
//! ([`xmoe_core::pipeline::run_1f1b`]) executes.
//!
//! The partition reuses the trainer's per-layer seeding convention
//! (`seed + l·7001`, see [`crate::model::build_moe_layers`]), so the same
//! `TrainConfig` produces identical layer weights whether it is built as
//! one unpipelined stack, as `pp` stages, or as `pp × v` interleaved
//! chunks — which is what makes the pipelined run bitwise-comparable to
//! the single-rank reference.

use xmoe_core::config::MoeModelConfig;
use xmoe_core::pipeline::{MoeStageChunk, PipelineError, ScheduleSpec};
use xmoe_tensor::Tensor;

use crate::model::TrainConfig;

/// A validated split of a model's layers over a 1F1B schedule.
pub struct StagePartition {
    pub spec: ScheduleSpec,
    /// Layers per virtual stage (`layers / (pp·v)`).
    pub layers_per_stage: usize,
    model: MoeModelConfig,
    seed: u64,
}

impl StagePartition {
    /// Partition `cfg`'s layers over `pp` ranks with `v` virtual chunks
    /// each and `m` microbatches. Fails if the layer stack does not split
    /// evenly into `pp·v` stages (a partial stage would break the uniform
    /// per-op time the schedule's bubble analysis assumes).
    pub fn new(cfg: &TrainConfig, pp: usize, v: usize, m: usize) -> Result<Self, PipelineError> {
        let spec = ScheduleSpec::new(pp, v, m)?;
        let stages = spec.num_virtual_stages();
        if cfg.layers == 0 || !cfg.layers.is_multiple_of(stages) {
            return Err(PipelineError::Unsupported(
                "layer count must split evenly into pp * virtual_chunks stages",
            ));
        }
        let model = MoeModelConfig::custom(
            "staged",
            cfg.seq_len,
            cfg.hidden,
            cfg.ffn,
            cfg.num_experts,
            cfg.top_k,
            cfg.layers,
        );
        Ok(Self {
            spec,
            layers_per_stage: cfg.layers / stages,
            model,
            seed: cfg.seed,
        })
    }

    /// Global layer ids of virtual stage `g`.
    pub fn stage_layers(&self, g: usize) -> std::ops::Range<usize> {
        g * self.layers_per_stage..(g + 1) * self.layers_per_stage
    }

    /// Build the `v` chunks pipeline rank `rank` owns (chunk `c` is
    /// virtual stage `c·pp + rank`).
    pub fn rank_chunks(&self, rank: usize) -> Vec<MoeStageChunk> {
        (0..self.spec.virtual_chunks)
            .map(|c| {
                let g = self.spec.virtual_stage(rank, c);
                MoeStageChunk::new(
                    &self.model,
                    self.stage_layers(g).start,
                    self.layers_per_stage,
                    self.seed,
                )
            })
            .collect()
    }

    /// Every virtual stage in order — the unpipelined reference stack.
    pub fn reference_stages(&self) -> Vec<MoeStageChunk> {
        (0..self.spec.num_virtual_stages())
            .map(|g| {
                MoeStageChunk::new(
                    &self.model,
                    self.stage_layers(g).start,
                    self.layers_per_stage,
                    self.seed,
                )
            })
            .collect()
    }

    /// Deterministic microbatch inputs: `m` activations of
    /// `[batch · seq_len, hidden]` derived from the config seed.
    pub fn microbatch_inputs(&self, cfg: &TrainConfig) -> Vec<Tensor> {
        let rows = cfg.batch * cfg.seq_len;
        (0..self.spec.microbatches)
            .map(|i| Tensor::rand_uniform(rows, cfg.hidden, 1.0, cfg.seed ^ (0x5EED + i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmoe_collectives::SimCluster;
    use xmoe_core::gating::DropPolicy;
    use xmoe_core::pipeline::{reference_forward, run_1f1b, StageChunk};

    fn cfg() -> TrainConfig {
        let mut c = TrainConfig::fig15(DropPolicy::CapacityOnly);
        c.layers = 4;
        c.batch = 2;
        c.seq_len = 8;
        c
    }

    #[test]
    fn partition_validates_layer_divisibility() {
        let c = cfg();
        assert!(StagePartition::new(&c, 2, 1, 4).is_ok());
        assert!(StagePartition::new(&c, 2, 2, 4).is_ok());
        assert!(
            StagePartition::new(&c, 3, 1, 4).is_err(),
            "4 layers / 3 stages"
        );
        assert!(
            StagePartition::new(&c, 2, 2, 3).is_err(),
            "interleaved m % pp"
        );
    }

    #[test]
    fn stage_layers_tile_the_stack() {
        let part = StagePartition::new(&cfg(), 2, 2, 4).unwrap();
        let covered: Vec<usize> = (0..4).flat_map(|g| part.stage_layers(g)).collect();
        assert_eq!(covered, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pipelined_partition_matches_reference_bitwise() {
        let c = cfg();
        let part = StagePartition::new(&c, 2, 1, 4).unwrap();
        let inputs = part.microbatch_inputs(&c);
        let stages = part.reference_stages();
        let refs: Vec<&dyn StageChunk> = stages.iter().map(|s| s as &dyn StageChunk).collect();
        let want = reference_forward(&refs, &inputs);
        let got = {
            let (part, inputs) = (&part, &inputs);
            SimCluster::frontier(2).run(move |ctx| {
                let chunks = part.rank_chunks(ctx.rank);
                let refs: Vec<&dyn StageChunk> =
                    chunks.iter().map(|c| c as &dyn StageChunk).collect();
                run_1f1b(&part.spec, &refs, inputs, &ctx.world, &mut ctx.clock).unwrap()
            })
        };
        assert_eq!(got[1].len(), 4);
        for (g, w) in got[1].iter().zip(&want) {
            assert_eq!(g.as_slice(), w.as_slice());
        }
    }
}
