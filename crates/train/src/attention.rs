//! Multi-head causal self-attention with a hand-written backward pass.
//!
//! The paper's transformer blocks are attention + MoE; this module
//! completes the training stack's dense block. The implementation handles
//! a batch of independent sequences packed row-wise (`batch * seq_len`
//! rows): attention is block-diagonal over sequences with a causal mask
//! inside each.

use xmoe_tensor::{add_assign, matmul, matmul_transpose_b, Tensor};

use crate::layers::{LayerNorm, LayerNormCtx};

/// Pre-norm residual multi-head causal attention:
/// `y = x + Attn(LN(x)) Wo`.
#[derive(Clone, Debug)]
pub struct Attention {
    pub norm: LayerNorm,
    pub wq: Tensor,
    pub wk: Tensor,
    pub wv: Tensor,
    pub wo: Tensor,
    pub gq: Tensor,
    pub gk: Tensor,
    pub gv: Tensor,
    pub go: Tensor,
    pub n_heads: usize,
}

/// Saved forward state.
pub struct AttentionCtx {
    ln: LayerNormCtx,
    x_norm: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Per (sequence, head): the post-softmax probability matrix.
    probs: Vec<Tensor>,
    /// Concatenated head outputs before the output projection.
    attn_out: Tensor,
    seq_len: usize,
}

impl Attention {
    pub fn new(hidden: usize, n_heads: usize, seed: u64) -> Self {
        assert!(
            hidden.is_multiple_of(n_heads),
            "heads must divide the hidden dim"
        );
        let w = |s: u64| Tensor::rand_init(hidden, hidden, hidden, s);
        Self {
            norm: LayerNorm::new(hidden),
            wq: w(seed),
            wk: w(seed ^ 0x1111),
            wv: w(seed ^ 0x2222),
            wo: w(seed ^ 0x3333),
            gq: Tensor::zeros(hidden, hidden),
            gk: Tensor::zeros(hidden, hidden),
            gv: Tensor::zeros(hidden, hidden),
            go: Tensor::zeros(hidden, hidden),
            n_heads,
        }
    }

    /// Forward over `x` = `batch * seq_len` packed rows.
    pub fn forward(&self, x: &Tensor, seq_len: usize) -> (Tensor, AttentionCtx) {
        let (n, hidden) = x.shape();
        assert_eq!(n % seq_len, 0, "rows must be a whole number of sequences");
        let batch = n / seq_len;
        let hd = hidden / self.n_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        let (x_norm, ln) = self.norm.forward(x);
        let q = matmul(&x_norm, &self.wq);
        let k = matmul(&x_norm, &self.wk);
        let v = matmul(&x_norm, &self.wv);

        let mut attn_out = Tensor::zeros(n, hidden);
        let mut probs = Vec::with_capacity(batch * self.n_heads);
        for b in 0..batch {
            let base = b * seq_len;
            for h in 0..self.n_heads {
                let col0 = h * hd;
                // scores[i][j] = <q_i, k_j> * scale for j <= i.
                let mut p = Tensor::zeros(seq_len, seq_len);
                for i in 0..seq_len {
                    let qi = &q.row(base + i)[col0..col0 + hd];
                    let row = p.row_mut(i);
                    let mut max = f32::NEG_INFINITY;
                    for j in 0..=i {
                        let kj = &k.row(base + j)[col0..col0 + hd];
                        let s: f32 = qi.iter().zip(kj).map(|(a, b)| a * b).sum::<f32>() * scale;
                        row[j] = s;
                        max = max.max(s);
                    }
                    // Causal softmax over j <= i.
                    let mut sum = 0.0;
                    for j in 0..=i {
                        row[j] = (row[j] - max).exp();
                        sum += row[j];
                    }
                    let inv = 1.0 / sum;
                    for j in 0..=i {
                        row[j] *= inv;
                    }
                }
                // attn_out rows = P @ V_head.
                for i in 0..seq_len {
                    let prow = p.row(i);
                    let out_row = attn_out.row_mut(base + i);
                    for j in 0..=i {
                        let vj = &v.row(base + j)[col0..col0 + hd];
                        let w = prow[j];
                        for (o, vv) in out_row[col0..col0 + hd].iter_mut().zip(vj) {
                            *o += w * vv;
                        }
                    }
                }
                probs.push(p);
            }
        }
        let mut y = matmul(&attn_out, &self.wo);
        add_assign(&mut y, x); // residual
        (
            y,
            AttentionCtx {
                ln,
                x_norm,
                q,
                k,
                v,
                probs,
                attn_out,
                seq_len,
            },
        )
    }

    /// Backward: accumulates all projection grads, returns `d_x`.
    pub fn backward(&mut self, ctx: &AttentionCtx, d_y: &Tensor) -> Tensor {
        let (n, hidden) = d_y.shape();
        let seq_len = ctx.seq_len;
        let batch = n / seq_len;
        let hd = hidden / self.n_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        // Output projection.
        let dwo = matmul(&ctx.attn_out.transpose(), d_y);
        add_assign(&mut self.go, &dwo);
        let d_attn = matmul_transpose_b(d_y, &self.wo);

        let mut d_q = Tensor::zeros(n, hidden);
        let mut d_k = Tensor::zeros(n, hidden);
        let mut d_v = Tensor::zeros(n, hidden);
        for b in 0..batch {
            let base = b * seq_len;
            for h in 0..self.n_heads {
                let col0 = h * hd;
                let p = &ctx.probs[b * self.n_heads + h];
                // d_v[j] += sum_i p[i][j] * d_attn[i]; d_p[i][j] = <d_attn[i], v[j]>.
                let mut d_p = Tensor::zeros(seq_len, seq_len);
                for i in 0..seq_len {
                    let da = &d_attn.row(base + i)[col0..col0 + hd];
                    let prow = p.row(i);
                    let dprow = d_p.row_mut(i);
                    for j in 0..=i {
                        let vj = &ctx.v.row(base + j)[col0..col0 + hd];
                        dprow[j] = da.iter().zip(vj).map(|(a, b)| a * b).sum();
                    }
                    for j in 0..=i {
                        let w = prow[j];
                        let dv = &mut d_v.row_mut(base + j)[col0..col0 + hd];
                        for (d, a) in dv.iter_mut().zip(da) {
                            *d += w * a;
                        }
                    }
                }
                // Softmax backward per row: d_s = p * (d_p - sum(d_p * p)).
                for i in 0..seq_len {
                    let prow = p.row(i);
                    let dprow = d_p.row(i);
                    let inner: f32 = (0..=i).map(|j| prow[j] * dprow[j]).sum();
                    // d_q[i] += sum_j d_s[i][j] * scale * k[j];
                    // d_k[j] += d_s[i][j] * scale * q[i].
                    let qi: Vec<f32> = ctx.q.row(base + i)[col0..col0 + hd].to_vec();
                    let dq = &mut d_q.row_mut(base + i)[col0..col0 + hd];
                    for j in 0..=i {
                        let ds = prow[j] * (dprow[j] - inner) * scale;
                        if ds == 0.0 {
                            continue;
                        }
                        let kj = &ctx.k.row(base + j)[col0..col0 + hd];
                        for (d, kv) in dq.iter_mut().zip(kj) {
                            *d += ds * kv;
                        }
                        let dk = &mut d_k.row_mut(base + j)[col0..col0 + hd];
                        for (d, qv) in dk.iter_mut().zip(&qi) {
                            *d += ds * qv;
                        }
                    }
                }
            }
        }

        // Projection weight grads and the gradient into the norm.
        let xn_t = ctx.x_norm.transpose();
        add_assign(&mut self.gq, &matmul(&xn_t, &d_q));
        add_assign(&mut self.gk, &matmul(&xn_t, &d_k));
        add_assign(&mut self.gv, &matmul(&xn_t, &d_v));
        let mut d_norm = matmul_transpose_b(&d_q, &self.wq);
        add_assign(&mut d_norm, &matmul_transpose_b(&d_k, &self.wk));
        add_assign(&mut d_norm, &matmul_transpose_b(&d_v, &self.wv));
        let mut d_x = self.norm.backward(&ctx.ln, &d_norm);
        add_assign(&mut d_x, d_y); // residual
        d_x
    }

    pub fn zero_grads(&mut self) {
        for t in [&mut self.gq, &mut self.gk, &mut self.gv, &mut self.go] {
            for v in t.as_mut_slice() {
                *v = 0.0;
            }
        }
        for v in self.norm.g_gamma.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.norm.g_beta.as_mut_slice() {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_residual_path() {
        let attn = Attention::new(8, 2, 1);
        let x = Tensor::rand_uniform(12, 8, 1.0, 2); // 2 sequences of 6
        let (y, _) = attn.forward(&x, 6);
        assert_eq!(y.shape(), (12, 8));
        assert!(!y.allclose(&x, 1e-6), "attention must contribute");
    }

    #[test]
    fn causality_first_token_sees_only_itself() {
        // Changing a later token must not affect an earlier output.
        let attn = Attention::new(8, 2, 3);
        let x1 = Tensor::rand_uniform(6, 8, 1.0, 4);
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2.set(5, c, -x1.get(5, c)); // perturb the last token
        }
        let (y1, _) = attn.forward(&x1, 6);
        let (y2, _) = attn.forward(&x2, 6);
        for t in 0..5 {
            for c in 0..8 {
                assert!(
                    (y1.get(t, c) - y2.get(t, c)).abs() < 1e-6,
                    "token {t} leaked future information"
                );
            }
        }
        // The perturbed position itself must change.
        assert!((y1.get(5, 0) - y2.get(5, 0)).abs() > 1e-6);
    }

    #[test]
    fn sequences_are_independent() {
        // Two packed sequences: editing sequence 1 leaves sequence 0's
        // outputs untouched.
        let attn = Attention::new(8, 2, 5);
        let x1 = Tensor::rand_uniform(8, 8, 1.0, 6); // 2 sequences of 4
        let mut x2 = x1.clone();
        for t in 4..8 {
            for c in 0..8 {
                x2.set(t, c, 0.5 - x1.get(t, c));
            }
        }
        let (y1, _) = attn.forward(&x1, 4);
        let (y2, _) = attn.forward(&x2, 4);
        assert!(y1.slice_rows(0, 4).allclose(&y2.slice_rows(0, 4), 1e-6));
        assert!(!y1.slice_rows(4, 8).allclose(&y2.slice_rows(4, 8), 1e-4));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let (s, hidden, heads) = (5usize, 6usize, 2usize);
        let x = Tensor::rand_uniform(s, hidden, 0.7, 7);
        let probe = Tensor::rand_uniform(s, hidden, 1.0, 8);
        let base = Attention::new(hidden, heads, 9);
        let loss_of = |a: &Attention, x: &Tensor| -> f64 {
            let (y, _) = a.forward(x, s);
            y.as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&v, &p)| (v * p) as f64)
                .sum()
        };
        let mut attn = base.clone();
        let (_, ctx) = attn.forward(&x, s);
        let d_x = attn.backward(&ctx, &probe);

        let eps = 1e-3f32;
        let rel_ok = |fd: f64, an: f64| (fd - an).abs() < 2e-2 * (1.0 + an.abs().max(fd.abs()));
        // One entry from each projection.
        type Get = fn(&Attention) -> &Tensor;
        type GetMut = fn(&mut Attention) -> &mut Tensor;
        let checks: [(&str, Get, GetMut, Get); 4] = [
            ("wq", |a| &a.wq, |a| &mut a.wq, |a| &a.gq),
            ("wk", |a| &a.wk, |a| &mut a.wk, |a| &a.gk),
            ("wv", |a| &a.wv, |a| &mut a.wv, |a| &a.gv),
            ("wo", |a| &a.wo, |a| &mut a.wo, |a| &a.go),
        ];
        for (name, get, get_mut, grad) in checks {
            for &(r, c) in &[(0usize, 0usize), (3, 5)] {
                let w0 = get(&base).get(r, c);
                let fd = {
                    let mut up = base.clone();
                    get_mut(&mut up).set(r, c, w0 + eps);
                    let mut dn = base.clone();
                    get_mut(&mut dn).set(r, c, w0 - eps);
                    (loss_of(&up, &x) - loss_of(&dn, &x)) / (2.0 * eps as f64)
                };
                let an = grad(&attn).get(r, c) as f64;
                assert!(rel_ok(fd, an), "d{name}[{r},{c}] fd {fd} an {an}");
            }
        }
        for &(r, c) in &[(0usize, 1usize), (2, 4), (4, 0)] {
            let v0 = x.get(r, c);
            let fd = {
                let mut up = x.clone();
                up.set(r, c, v0 + eps);
                let mut dn = x.clone();
                dn.set(r, c, v0 - eps);
                (loss_of(&base, &up) - loss_of(&base, &dn)) / (2.0 * eps as f64)
            };
            let an = d_x.get(r, c) as f64;
            assert!(rel_ok(fd, an), "dX[{r},{c}] fd {fd} an {an}");
        }
    }

    #[test]
    fn zero_grads_clears() {
        let mut attn = Attention::new(8, 2, 11);
        let x = Tensor::rand_uniform(4, 8, 1.0, 12);
        let (y, ctx) = attn.forward(&x, 4);
        let _ = attn.backward(&ctx, &y);
        assert!(attn.gq.norm() > 0.0);
        attn.zero_grads();
        assert_eq!(
            attn.gq.norm() + attn.gk.norm() + attn.gv.norm() + attn.go.norm(),
            0.0
        );
    }
}
