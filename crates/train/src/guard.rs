//! Numerical guardrails against silent data corruption (SDC).
//!
//! Fail-stop faults (PR 2's chaos engine) announce themselves; bit flips
//! and low-precision blow-ups do not. This module is the *detect* and
//! *decide* half of the silent-fault defense:
//!
//! * [`bf16_round`] — simulated-bf16 device arithmetic over f32 master
//!   weights (round-to-nearest-even to an 8-bit mantissa), so precision
//!   cliffs like the paper's §5.4.1 fp32-combine workaround are
//!   reproducible in the simulator;
//! * [`LossScale`] — the classic dynamic loss-scale state machine:
//!   overflow halves the scale, `growth_interval` clean steps double it.
//!   Scales are powers of two, so scaling and unscaling gradients is
//!   bitwise-exact absent overflow and the guarded path stays
//!   reproducible;
//! * [`SpikeDetector`] — windowed relative-spike + non-finite scan over
//!   any scalar health statistic (loss, grad norm);
//! * [`PolicyEngine`] — the escalation ladder `skip_step` →
//!   `backoff_loss_scale` → `rollback_to_checkpoint` for repeated trips;
//! * [`GuardEvent`] — the timeline entry every detection/decision emits.
//!
//! Everything here is pure integer/float state machines — no clocks, no
//! randomness — so every decision is bitwise-deterministic given the same
//! inputs, and chaos runs remain replayable.

use std::fmt;

/// Round an f32 to the nearest bf16-representable value (round to nearest,
/// ties to even), returned as f32. NaN and ±inf pass through; values whose
/// magnitude exceeds bf16's max finite value round to ±inf, exactly like a
/// bf16 cast on device.
pub fn bf16_round(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    f32::from_bits(rounded & 0xFFFF_0000)
}

/// In-place bf16 rounding of a whole buffer (the simulated device-memory
/// gradient path).
pub fn bf16_round_slice(xs: &mut [f32]) {
    for v in xs {
        *v = bf16_round(*v);
    }
}

/// Number of non-finite (NaN or ±inf) values in a buffer.
pub fn count_non_finite(xs: &[f32]) -> usize {
    xs.iter().filter(|v| !v.is_finite()).count()
}

/// Sum of squares of a buffer in f64 (the global-grad-norm accumulator;
/// f64 so the reduction order within one buffer is still exact enough to
/// be reproducible across identical replays).
pub fn sq_norm(xs: &[f32]) -> f64 {
    xs.iter().map(|&v| (v as f64) * (v as f64)).sum()
}

/// Multiplier that brings a gradient of norm `norm` inside `max_norm`:
/// `1.0` when already inside, `max_norm / norm` otherwise. Non-finite or
/// zero norms clip to 0.0 — the caller should have tripped a policy
/// already, but a deterministic answer beats a NaN cascade.
pub fn clip_factor(norm: f64, max_norm: f64) -> f32 {
    if !norm.is_finite() {
        return 0.0;
    }
    if norm <= max_norm || norm == 0.0 || max_norm <= 0.0 {
        1.0
    } else {
        (max_norm / norm) as f32
    }
}

/// A recoverable divergence report — the error path that replaces the old
/// `assert!(loss.is_finite())` aborts. Guard policies consume these; they
/// trip a recovery action instead of killing the process.
#[derive(Clone, Debug, PartialEq)]
pub enum Divergence {
    /// The scalar training loss went NaN/inf at `step`.
    NonFiniteLoss { step: u64 },
    /// `count` non-finite values appeared in the named buffer.
    NonFiniteValues { site: &'static str, count: usize },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::NonFiniteLoss { step } => {
                write!(f, "loss diverged (non-finite) at step {step}")
            }
            Divergence::NonFiniteValues { site, count } => {
                write!(f, "{count} non-finite values in {site}")
            }
        }
    }
}

/// Check a buffer for non-finite values, reporting the site on failure.
pub fn check_finite(site: &'static str, xs: &[f32]) -> Result<(), Divergence> {
    let count = count_non_finite(xs);
    if count == 0 {
        Ok(())
    } else {
        Err(Divergence::NonFiniteValues { site, count })
    }
}

/// Check a scalar loss for divergence at `step`.
pub fn check_loss(step: u64, loss: f64) -> Result<(), Divergence> {
    if loss.is_finite() {
        Ok(())
    } else {
        Err(Divergence::NonFiniteLoss { step })
    }
}

/// Dynamic loss-scale configuration. All scales are powers of two so that
/// scaling gradients is exponent-only arithmetic — bitwise-exact to undo.
#[derive(Clone, Copy, Debug)]
pub struct LossScaleCfg {
    /// Initial scale (must be a power of two).
    pub init: f32,
    /// Consecutive clean steps before the scale doubles.
    pub growth_interval: u32,
    /// Floor the backoff cannot cross.
    pub min: f32,
    /// Ceiling growth cannot cross.
    pub max: f32,
}

impl Default for LossScaleCfg {
    fn default() -> Self {
        Self {
            init: 1.0,
            growth_interval: 64,
            min: 1.0 / 65536.0,
            max: 65536.0,
        }
    }
}

/// The loss-scale state machine: overflow → halve, `growth_interval`
/// clean steps → double.
#[derive(Clone, Copy, Debug)]
pub struct LossScale {
    cfg: LossScaleCfg,
    scale: f32,
    clean: u32,
    /// Total backoffs taken (overflows observed).
    pub backoffs: u64,
    /// Total growths taken.
    pub growths: u64,
}

impl LossScale {
    pub fn new(cfg: LossScaleCfg) -> Self {
        assert!(
            cfg.init > 0.0 && cfg.init.log2().fract() == 0.0,
            "loss scale must be a positive power of two"
        );
        Self {
            cfg,
            scale: cfg.init,
            clean: 0,
            backoffs: 0,
            growths: 0,
        }
    }

    /// The current multiplier applied to the loss (and hence gradients).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Exact inverse of the current scale (power of two, so `1/s` is
    /// representable and `g * s * (1/s) == g` bitwise absent overflow).
    pub fn inv_scale(&self) -> f32 {
        1.0 / self.scale
    }

    /// An overflow (or any guard trip demanding gentler scaling) halves
    /// the scale and restarts the growth counter.
    pub fn on_overflow(&mut self) {
        self.scale = (self.scale * 0.5).max(self.cfg.min);
        self.clean = 0;
        self.backoffs += 1;
    }

    /// A clean step advances the growth counter; after `growth_interval`
    /// consecutive clean steps the scale doubles.
    pub fn on_clean(&mut self) {
        self.clean += 1;
        if self.clean >= self.cfg.growth_interval {
            self.clean = 0;
            if self.scale < self.cfg.max {
                self.scale *= 2.0;
                self.growths += 1;
            }
        }
    }
}

/// What a [`SpikeDetector::observe`] call concluded about one sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    Clean,
    /// The sample is NaN or ±inf.
    NonFinite,
    /// The sample exceeds `factor` × the windowed median; `ratio` is
    /// sample / median.
    Spike {
        ratio: f64,
    },
}

/// Windowed relative-spike detector over a scalar health statistic.
/// Anomalous samples (non-finite or spiking) are *not* admitted into the
/// window, so one corruption cannot poison the baseline used to judge the
/// next.
#[derive(Clone, Debug)]
pub struct SpikeDetector {
    window: usize,
    factor: f64,
    min_history: usize,
    hist: Vec<f64>,
}

impl SpikeDetector {
    /// `factor` — how many × the windowed median counts as a spike;
    /// `window` — samples of history kept; `min_history` — samples
    /// required before spike judgments start (non-finite is always
    /// reported).
    pub fn new(factor: f64, window: usize, min_history: usize) -> Self {
        assert!(factor > 1.0 && window >= 1 && min_history >= 1);
        Self {
            window,
            factor,
            min_history,
            hist: Vec::new(),
        }
    }

    fn median(&self) -> f64 {
        let mut v = self.hist.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("window holds finite values only"));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    }

    /// Judge one sample; clean samples enter the window.
    pub fn observe(&mut self, v: f64) -> Verdict {
        if !v.is_finite() {
            return Verdict::NonFinite;
        }
        if self.hist.len() >= self.min_history {
            let med = self.median();
            if med > 0.0 && v > self.factor * med {
                return Verdict::Spike { ratio: v / med };
            }
        }
        self.hist.push(v);
        if self.hist.len() > self.window {
            self.hist.remove(0);
        }
        Verdict::Clean
    }
}

/// A recovery decision, in escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyAction {
    /// Discard this step's gradients; parameters untouched.
    SkipStep,
    /// Skip *and* halve the loss scale.
    BackoffLossScale,
    /// Restore the last good checkpoint and replay.
    RollbackToCheckpoint,
}

impl PolicyAction {
    pub fn name(self) -> &'static str {
        match self {
            PolicyAction::SkipStep => "skip_step",
            PolicyAction::BackoffLossScale => "backoff_loss_scale",
            PolicyAction::RollbackToCheckpoint => "rollback_to_checkpoint",
        }
    }
}

/// Escalation ladder configuration: the first `skip_trips` trips skip the
/// step, the next `backoff_trips` also back off the loss scale, anything
/// beyond rolls back to the last good checkpoint. `clean_reset`
/// consecutive clean steps de-escalate back to the bottom of the ladder.
#[derive(Clone, Copy, Debug)]
pub struct PolicyCfg {
    pub skip_trips: u32,
    pub backoff_trips: u32,
    pub clean_reset: u32,
}

impl Default for PolicyCfg {
    fn default() -> Self {
        Self {
            skip_trips: 1,
            backoff_trips: 1,
            clean_reset: 3,
        }
    }
}

/// The policy engine: counts recent trips and walks the escalation ladder.
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyEngine {
    cfg: PolicyCfg,
    trips: u32,
    clean_run: u32,
    /// Lifetime trip count (the false-positive accounting reads this).
    pub total_trips: u64,
}

impl PolicyEngine {
    pub fn new(cfg: PolicyCfg) -> Self {
        Self {
            cfg,
            ..Default::default()
        }
    }

    /// Record a trip and pick the action for it.
    pub fn decide(&mut self) -> PolicyAction {
        self.trips += 1;
        self.clean_run = 0;
        self.total_trips += 1;
        if self.trips <= self.cfg.skip_trips {
            PolicyAction::SkipStep
        } else if self.trips <= self.cfg.skip_trips + self.cfg.backoff_trips {
            PolicyAction::BackoffLossScale
        } else {
            // The rollback resolves the incident; the ladder restarts.
            self.trips = 0;
            PolicyAction::RollbackToCheckpoint
        }
    }

    /// Record a clean step; enough of them de-escalate the ladder.
    pub fn on_clean(&mut self) {
        self.clean_run += 1;
        if self.clean_run >= self.cfg.clean_reset {
            self.trips = 0;
        }
    }
}

/// One entry of the guard timeline: what tripped, where, and what the
/// policy did about it.
#[derive(Clone, Debug)]
pub struct GuardEvent {
    pub step: u64,
    /// Which site tripped: `grad`, `loss`, `act`, `ckpt`. Always one of
    /// those four tokens — timeline consumers filter and group on this.
    pub site: String,
    /// Which detector fired: `nonfinite`, `spike`, `crc`, `overflow`.
    pub detector: String,
    /// Policy response (a [`PolicyAction::name`] or `fallback_prev_ckpt`).
    pub action: String,
    /// The statistic that tripped (count for scans, ratio for spikes).
    pub value: f64,
    /// Free-form context (e.g. the CRC decode error naming the corrupt
    /// section); empty when there is nothing to add. Never part of the
    /// `site`/`detector`/`action` schema.
    pub detail: String,
}

impl GuardEvent {
    /// One formatted timeline line (the CLI prints these).
    pub fn line(&self) -> String {
        let mut s = format!(
            "step {:>4}  site {:<5} detector {:<9} action {:<22} value {:.3e}",
            self.step, self.site, self.detector, self.action, self.value
        );
        if !self.detail.is_empty() {
            s.push_str("  # ");
            s.push_str(&self.detail);
        }
        s
    }
}

/// Knobs of the guarded training step, consumed by the chaos runner.
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// Master switch; `false` reproduces the unguarded step exactly.
    pub enabled: bool,
    pub loss_scale: LossScaleCfg,
    /// Round synced gradients to bf16 before unscaling — the simulated
    /// low-precision device path.
    pub bf16_grads: bool,
    /// Relative-spike threshold on the global grad norm.
    pub spike_factor: f64,
    /// Spike-detector window length.
    pub spike_window: usize,
    /// Samples required before spike judgments begin.
    pub spike_min_history: usize,
    /// Global grad-norm clip threshold, applied to the *unscaled*
    /// gradients of every clean step via [`clip_factor`] (charged as
    /// `guard:clip` when it actually rescales). `0.0` disables clipping,
    /// keeping the clean trajectory bitwise-identical to an unguarded run.
    pub max_grad_norm: f64,
    pub policy: PolicyCfg,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            loss_scale: LossScaleCfg::default(),
            bf16_grads: false,
            spike_factor: 25.0,
            spike_window: 8,
            spike_min_history: 3,
            max_grad_norm: 0.0,
            policy: PolicyCfg::default(),
        }
    }
}

/// Flip bit `bit` (0 = LSB) of element `elem` in a float buffer — the
/// injection primitive for `site=act` / `site=grad` SDC events. No-op on
/// an empty buffer.
pub fn flip_bit_f32(xs: &mut [f32], elem: usize, bit: u32) {
    if xs.is_empty() {
        return;
    }
    let i = elem % xs.len();
    xs[i] = f32::from_bits(xs[i].to_bits() ^ (1u32 << (bit % 32)));
}

/// Flip bit `bit % 8` of byte `elem % len` — the `site=ckpt` injection
/// primitive.
pub fn flip_bit_bytes(xs: &mut [u8], elem: usize, bit: u32) {
    if xs.is_empty() {
        return;
    }
    let i = elem % xs.len();
    xs[i] ^= 1u8 << (bit % 8);
}

/// Seeded additive noise in `[-amp, amp]` over a buffer (the `noise:` SDC
/// event). Uses the same splitmix64 stream family as the data pipeline,
/// keyed only by `seed`, so replays corrupt identically.
pub fn apply_noise(xs: &mut [f32], seed: u64, amp: f64) {
    let mut state = seed;
    for v in xs {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map to [-1, 1) with 53-bit resolution, then scale.
        let u = (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
        *v += (u * amp) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_round_properties() {
        // Idempotent; exact on powers of two; relative error <= 2^-8.
        for &x in &[1.0f32, -3.5, 0.12345, 1e20, -7e-12, 65504.0] {
            let r = bf16_round(x);
            assert_eq!(bf16_round(r), r, "not idempotent at {x}");
            assert!(((x - r) / x).abs() <= 1.0 / 256.0, "error too big at {x}");
        }
        for p in -20..20 {
            let x = (2.0f32).powi(p);
            assert_eq!(bf16_round(x), x);
            assert_eq!(bf16_round(-x), -x);
        }
        assert_eq!(bf16_round(0.0), 0.0);
        assert_eq!(bf16_round(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(bf16_round(f32::NAN).is_nan());
        // f32::MAX overflows bf16's range, exactly like a device cast.
        assert_eq!(bf16_round(f32::MAX), f32::INFINITY);
        // Round-to-nearest-even: 1 + 2^-8 is exactly halfway between
        // bf16(1.0) (mantissa 0x00, even) and 1 + 2^-7 (mantissa 0x01,
        // odd) — the even side wins. 1 + 3*2^-8 is halfway between odd
        // 0x01 and even 0x02 — again the even side wins, this time up.
        assert_eq!(bf16_round(f32::from_bits(0x3F80_8000)), 1.0);
        assert_eq!(bf16_round(f32::from_bits(0x3F81_8000)), 1.0 + 2.0 / 128.0);
    }

    #[test]
    fn loss_scale_state_machine() {
        let mut ls = LossScale::new(LossScaleCfg {
            init: 8.0,
            growth_interval: 3,
            min: 1.0,
            max: 16.0,
        });
        assert_eq!(ls.scale(), 8.0);
        ls.on_overflow();
        assert_eq!(ls.scale(), 4.0);
        // Growth needs 3 *consecutive* clean steps.
        ls.on_clean();
        ls.on_clean();
        ls.on_overflow();
        assert_eq!(ls.scale(), 2.0);
        for _ in 0..3 {
            ls.on_clean();
        }
        assert_eq!(ls.scale(), 4.0);
        for _ in 0..6 {
            ls.on_clean();
        }
        assert_eq!(ls.scale(), 16.0);
        // Capped at max.
        for _ in 0..3 {
            ls.on_clean();
        }
        assert_eq!(ls.scale(), 16.0);
        // Floored at min.
        for _ in 0..10 {
            ls.on_overflow();
        }
        assert_eq!(ls.scale(), 1.0);
        assert_eq!(ls.backoffs, 12);
        assert_eq!(ls.growths, 3);
        // Scaling by the inverse is bitwise-exact.
        let g = 0.123456f32;
        assert_eq!(
            g * 8.0 * LossScale::new(LossScaleCfg::default()).inv_scale() * 0.125,
            g * 8.0 * 0.125
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn loss_scale_rejects_non_power_of_two() {
        let _ = LossScale::new(LossScaleCfg {
            init: 3.0,
            ..Default::default()
        });
    }

    #[test]
    fn spike_detector_flags_spikes_not_trends() {
        let mut d = SpikeDetector::new(10.0, 8, 3);
        // Warm-up: no spike verdicts before min_history.
        assert_eq!(d.observe(1.0), Verdict::Clean);
        assert_eq!(d.observe(1.1), Verdict::Clean);
        assert_eq!(d.observe(0.9), Verdict::Clean);
        // 50x the median: spike, and NOT admitted to the window.
        match d.observe(50.0) {
            Verdict::Spike { ratio } => assert!(ratio > 10.0),
            v => panic!("expected spike, got {v:?}"),
        }
        // The poisoned sample did not shift the baseline.
        assert_eq!(d.observe(1.05), Verdict::Clean);
        // Gradual growth is tolerated.
        let mut d2 = SpikeDetector::new(10.0, 4, 3);
        let mut v = 1.0;
        for _ in 0..20 {
            assert_eq!(d2.observe(v), Verdict::Clean);
            v *= 2.0;
        }
        assert_eq!(d.observe(f64::NAN), Verdict::NonFinite);
        assert_eq!(d.observe(f64::INFINITY), Verdict::NonFinite);
    }

    #[test]
    fn policy_ladder_escalates_and_deescalates() {
        let mut p = PolicyEngine::new(PolicyCfg {
            skip_trips: 1,
            backoff_trips: 1,
            clean_reset: 2,
        });
        assert_eq!(p.decide(), PolicyAction::SkipStep);
        assert_eq!(p.decide(), PolicyAction::BackoffLossScale);
        assert_eq!(p.decide(), PolicyAction::RollbackToCheckpoint);
        // Rollback restarts the ladder.
        assert_eq!(p.decide(), PolicyAction::SkipStep);
        // Clean steps de-escalate.
        p.on_clean();
        p.on_clean();
        assert_eq!(p.decide(), PolicyAction::SkipStep);
        assert_eq!(p.total_trips, 5);
    }

    #[test]
    fn clip_and_norm_helpers() {
        let xs = [3.0f32, 4.0];
        assert!((sq_norm(&xs) - 25.0).abs() < 1e-12);
        assert_eq!(clip_factor(5.0, 10.0), 1.0);
        assert_eq!(clip_factor(0.0, 1.0), 1.0);
        let f = clip_factor(5.0, 1.0);
        assert!((f - 0.2).abs() < 1e-7);
        assert_eq!(clip_factor(f64::NAN, 1.0), 0.0);
        assert_eq!(clip_factor(f64::INFINITY, 1.0), 0.0);
        assert_eq!(count_non_finite(&[1.0, f32::NAN, f32::INFINITY, 2.0]), 2);
        assert!(check_finite("grad", &[1.0, 2.0]).is_ok());
        let err = check_finite("grad", &[f32::NAN]).unwrap_err();
        assert_eq!(
            err,
            Divergence::NonFiniteValues {
                site: "grad",
                count: 1
            }
        );
        assert!(format!("{err}").contains("grad"));
        assert!(check_loss(3, 1.5).is_ok());
        assert_eq!(
            check_loss(3, f64::NAN).unwrap_err(),
            Divergence::NonFiniteLoss { step: 3 }
        );
    }

    #[test]
    fn injection_primitives_are_exact_involutions() {
        let mut xs = vec![1.0f32, 2.0, 3.0];
        let orig = xs.clone();
        flip_bit_f32(&mut xs, 1, 30);
        assert_ne!(xs[1], orig[1]);
        assert_eq!(xs[0], orig[0]);
        flip_bit_f32(&mut xs, 1, 30);
        assert_eq!(xs, orig);
        // Index wraps, empty is a no-op.
        flip_bit_f32(&mut xs, 7, 0);
        assert_ne!(xs[1], orig[1]);
        flip_bit_f32(&mut [], 0, 0);
        let mut bs = vec![0u8; 4];
        flip_bit_bytes(&mut bs, 6, 9);
        assert_eq!(bs, [0, 0, 2, 0]);
        flip_bit_bytes(&mut bs, 6, 9);
        assert_eq!(bs, [0u8; 4]);
    }

    #[test]
    fn noise_is_bounded_and_reproducible() {
        let mut a = vec![0.0f32; 256];
        let mut b = vec![0.0f32; 256];
        apply_noise(&mut a, 77, 0.05);
        apply_noise(&mut b, 77, 0.05);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 0.05 + 1e-9));
        assert!(a.iter().any(|v| *v != 0.0));
        let mut c = vec![0.0f32; 256];
        apply_noise(&mut c, 78, 0.05);
        assert_ne!(a, c);
    }

    #[test]
    fn guard_event_line_is_readable() {
        let mut e = GuardEvent {
            step: 5,
            site: "grad".into(),
            detector: "nonfinite".into(),
            action: "skip_step".into(),
            value: 3.0,
            detail: String::new(),
        };
        let line = e.line();
        assert!(line.contains("step    5"));
        assert!(line.contains("grad"));
        assert!(line.contains("nonfinite"));
        assert!(line.contains("skip_step"));
        assert!(!line.contains('#'), "no detail marker when detail is empty");
        e.detail = "section block0.moe.gate failed CRC".into();
        assert!(e.line().contains("# section block0.moe.gate failed CRC"));
    }
}
