//! The trainable MoE layer: forward and exact hand-written backward.
//!
//! Forward is the padding-free pipeline of `xmoe-core` (gating → PFT →
//! gather → per-expert FFN → weighted scatter) with a residual connection.
//! Backward propagates through every path, including the router: the
//! combine weight `w_i = scores[t, e_i]` carries gradient
//! `d_w_i = <d_out[t], y_i>` back into the gating softmax, which is the
//! standard top-k MoE router gradient (dropped assignments receive none).

use xmoe_core::gating::{
    clamp_logits, row_logsumexp, row_logsumexp_into, z_loss_value, DropPolicy, GatingOutput,
    RouterGuard,
};
use xmoe_core::pft::{Pft, PftScratch};
use xmoe_tensor::{
    add_assign, add_assign_slice, gather_rows, gather_rows_into, gemm_grouped,
    gemm_grouped_transpose_a, gemm_grouped_transpose_b, matmul, matmul_into, matmul_slices,
    matmul_transpose_b, matmul_transpose_b_slices, scatter_rows_unit, softmax_rows, topk_rows,
    topk_rows_into, Tensor, Workspace,
};

/// A trainable MoE layer (all experts local — the loss-validation
/// experiment runs single-process, mirroring the paper's 16-GPU run whose
/// *numerics* are data-parallel-invariant).
#[derive(Clone, Debug)]
pub struct TrainableMoe {
    /// Router projection `[H, E]`.
    pub gate: Tensor,
    pub g_gate: Tensor,
    /// Expert weights `(w1 [H,F], w2 [F,H])`.
    pub experts: Vec<(Tensor, Tensor)>,
    pub g_experts: Vec<(Tensor, Tensor)>,
    pub top_k: usize,
    pub capacity: usize,
    pub policy: DropPolicy,
    /// Switch-Transformer-style load-balancing auxiliary loss coefficient
    /// (`0.0` disables it): `L_aux = alpha * E * sum_e f_e * P_e`, where
    /// `f_e` is the fraction of routed assignments expert `e` received and
    /// `P_e` the mean gate probability it was given. Gradient flows through
    /// `P_e` only (`f_e` is piecewise constant), the standard treatment.
    pub aux_alpha: f32,
    /// Router numerical-health guards: logit clamping + ST-MoE z-loss.
    /// Defaults are inert (`0.0`/`0.0`), so existing numerics are
    /// bit-for-bit unchanged unless a guard is explicitly enabled.
    pub router_guard: RouterGuard,
}

/// Saved forward state.
#[derive(Default)]
pub struct MoeCtx {
    x: Tensor,
    scores: Tensor,
    pft: Pft,
    dispatch_in: Tensor,
    h_pre: Tensor,
    h_act: Tensor,
    y: Tensor,
    /// Row ranges per expert within the dispatch buffers.
    seg_offsets: Vec<usize>,
    /// Per-token router z = logsumexp(logits); populated only when the
    /// z-loss guard is active.
    lse: Vec<f32>,
    /// How many logits the clamp guard limited this forward.
    logits_clamped: usize,
}

impl MoeCtx {
    /// Routed assignments dropped during this forward.
    pub fn dropped(&self) -> usize {
        self.pft.dropped
    }

    /// Retained routed assignments.
    pub fn routed(&self) -> usize {
        self.pft.len()
    }

    /// Per-expert retained token counts of this forward.
    pub fn tokens_per_expert(&self) -> &[usize] {
        &self.pft.tokens_per_expert
    }

    /// Logits limited by the clamp guard during this forward (0 when the
    /// guard is off or nothing was out of range) — a router-health signal.
    pub fn logits_clamped(&self) -> usize {
        self.logits_clamped
    }
}

/// Reusable scratch for the pooled training step: the workspace arena plus
/// every persistent staging buffer [`TrainableMoe::forward_pooled`] and
/// [`TrainableMoe::backward_scaled_pooled`] need. One instance per layer
/// per rank; after warm-up every lease is served from warm memory and a
/// steady-state step performs no transient heap allocation.
#[derive(Default)]
pub struct MoeTrainScratch {
    /// Arena leasing step-lifetime tensors. The tensors the pooled methods
    /// *return* (forward output, input gradient) are leased from here too —
    /// recycle them once consumed to keep the steady state allocation-free.
    pub ws: Workspace,
    /// Saved forward state, rebuilt in place each step.
    pub ctx: MoeCtx,
    logits: Tensor,
    order: Vec<usize>,
    gating: GatingOutput,
    pft_scratch: PftScratch,
    d_w: Vec<f32>,
    aux_f: Vec<f32>,
    xt: Tensor,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

impl TrainableMoe {
    pub fn new(
        hidden: usize,
        ffn: usize,
        num_experts: usize,
        top_k: usize,
        capacity: usize,
        policy: DropPolicy,
        seed: u64,
    ) -> Self {
        let experts: Vec<(Tensor, Tensor)> = (0..num_experts)
            .map(|e| {
                let s = seed.wrapping_add(e as u64 * 101);
                (
                    Tensor::rand_init(hidden, ffn, hidden, s),
                    Tensor::rand_init(ffn, hidden, ffn, s ^ 0xF0F0),
                )
            })
            .collect();
        let g_experts = experts
            .iter()
            .map(|(a, b)| {
                (
                    Tensor::zeros(a.rows(), a.cols()),
                    Tensor::zeros(b.rows(), b.cols()),
                )
            })
            .collect();
        Self {
            gate: Tensor::rand_init(hidden, num_experts, hidden, seed ^ 0x51DE),
            g_gate: Tensor::zeros(hidden, num_experts),
            experts,
            g_experts,
            top_k,
            capacity,
            policy,
            aux_alpha: 0.0,
            router_guard: RouterGuard::default(),
        }
    }

    /// Enable the load-balancing auxiliary loss.
    pub fn with_aux(mut self, alpha: f32) -> Self {
        self.aux_alpha = alpha;
        self
    }

    /// Enable router health guards (logit clamp + z-loss).
    pub fn with_router_guard(mut self, guard: RouterGuard) -> Self {
        self.router_guard = guard;
        self
    }

    /// Per-expert assignment fractions `f_e` of the last forward.
    fn load_fractions(ctx: &MoeCtx) -> Vec<f32> {
        let total: usize = ctx.pft.tokens_per_expert.iter().sum();
        let denom = total.max(1) as f32;
        ctx.pft
            .tokens_per_expert
            .iter()
            .map(|&c| c as f32 / denom)
            .collect()
    }

    /// Value of the auxiliary loss for a saved forward context.
    pub fn aux_loss(&self, ctx: &MoeCtx) -> f64 {
        if self.aux_alpha == 0.0 {
            return 0.0;
        }
        let e_count = self.num_experts();
        let s = ctx.x.rows().max(1);
        let f = Self::load_fractions(ctx);
        let mut acc = 0.0f64;
        for e in 0..e_count {
            let mut p_mean = 0.0f64;
            for t in 0..ctx.x.rows() {
                p_mean += ctx.scores.get(t, e) as f64;
            }
            p_mean /= s as f64;
            acc += f[e] as f64 * p_mean;
        }
        self.aux_alpha as f64 * e_count as f64 * acc
    }

    /// Value of the z-loss term for a saved forward context (0 when the
    /// guard is off).
    pub fn z_loss(&self, ctx: &MoeCtx) -> f64 {
        if self.router_guard.z_loss_coef == 0.0 {
            return 0.0;
        }
        self.router_guard.z_loss_coef as f64 * z_loss_value(&ctx.lse)
    }

    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// Fraction of routed assignments dropped in the most recent forward —
    /// the quantity §5.6 attributes the loss gap to.
    pub fn last_drop_fraction(ctx: &MoeCtx, top_k: usize) -> f64 {
        let total = ctx.x.rows() * top_k;
        if total == 0 {
            return 0.0;
        }
        ctx.pft.dropped as f64 / total as f64
    }

    /// Forward: `out = x + combine(experts(dispatch(x)))`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, MoeCtx) {
        let mut logits = matmul(x, &self.gate);
        let logits_clamped = clamp_logits(&mut logits, self.router_guard.logit_clamp);
        let lse = if self.router_guard.z_loss_coef != 0.0 {
            row_logsumexp(&logits)
        } else {
            Vec::new()
        };
        let mut scores = logits.clone();
        softmax_rows(&mut scores);
        let (top_experts, combine_weights) = topk_rows(&scores, self.top_k);
        let top_logits = top_experts
            .iter()
            .enumerate()
            .map(|(i, &e)| logits.get(i / self.top_k, e))
            .collect();
        let gating = GatingOutput {
            top_experts,
            combine_weights,
            top_logits,
            k: self.top_k,
            scores: scores.clone(),
        };
        let pft = Pft::construct(&gating, self.num_experts(), self.capacity, self.policy);

        let dispatch_in = gather_rows(x, &pft.token_ids);
        let b = pft.len();
        let f = self.experts[0].0.cols();
        let h = x.cols();
        let mut h_pre = Tensor::zeros(b, f);
        let mut h_act = Tensor::zeros(b, f);
        let mut y = Tensor::zeros(b, h);
        // Grouped expert FFN: all segments in two pooled GEMM batches
        // (bitwise identical to the former per-expert matmul loop — see
        // xmoe_tensor::par). Every dispatch row belongs to exactly one
        // segment, so whole-buffer elementwise passes equal per-segment ones.
        gemm_grouped(
            dispatch_in.as_slice(),
            &pft.tokens_per_expert,
            h,
            |e| self.experts[e].0.as_slice(),
            f,
            h_pre.as_mut_slice(),
        );
        h_act.as_mut_slice().copy_from_slice(h_pre.as_slice());
        for v in h_act.as_mut_slice() {
            *v *= sigmoid(*v);
        }
        gemm_grouped(
            h_act.as_slice(),
            &pft.tokens_per_expert,
            f,
            |e| self.experts[e].1.as_slice(),
            h,
            y.as_mut_slice(),
        );
        let mut seg_offsets = Vec::with_capacity(self.num_experts() + 1);
        seg_offsets.push(0);
        let mut row = 0usize;
        for &cnt in &pft.tokens_per_expert {
            row += cnt;
            seg_offsets.push(row);
        }

        let mut out = x.clone();
        xmoe_tensor::scatter_rows_scaled(&y, &pft.token_ids, &pft.combine_weights, &mut out);
        (
            out,
            MoeCtx {
                x: x.clone(),
                scores,
                pft,
                dispatch_in,
                h_pre,
                h_act,
                y,
                seg_offsets,
                lse,
                logits_clamped,
            },
        )
    }

    /// Backward: accumulates `g_gate` / `g_experts`, returns `d_x`.
    pub fn backward(&mut self, ctx: &MoeCtx, d_out: &Tensor) -> Tensor {
        self.backward_scaled(ctx, d_out, 1.0)
    }

    /// Backward under a dynamic loss scale: `d_out` already carries
    /// `loss_scale` (the caller multiplied the head gradient), so the
    /// locally-generated aux and z-loss gradients are multiplied by the
    /// same scale here — every term of the router gradient shares one
    /// scale, and unscaling restores the exact unscaled mix. Power-of-two
    /// scales keep this bitwise-invertible.
    pub fn backward_scaled(&mut self, ctx: &MoeCtx, d_out: &Tensor, loss_scale: f32) -> Tensor {
        let h = ctx.x.cols();
        let b = ctx.pft.len();
        let mut d_x = d_out.clone(); // residual path

        // d_y[i] = w_i * d_out[t_i]; d_w_i = <d_out[t_i], y[i]>.
        let mut d_y = gather_rows(d_out, &ctx.pft.token_ids);
        let mut d_w = vec![0.0f32; b];
        for i in 0..b {
            let w = ctx.pft.combine_weights[i];
            let y_row = ctx.y.row(i);
            let dy_row = d_y.row_mut(i);
            d_w[i] = xmoe_tensor::dot_and_scale(dy_row, y_row, w);
        }

        // Grouped FFN backward over all expert segments at once: three
        // grouped GEMM batches plus the SiLU elementwise pass, bitwise
        // identical to the former sequential per-expert loop (the
        // transpose-A kernel reproduces `matmul(seg.transpose(), dy)`'s
        // accumulation order without materialising the transpose). Weight
        // gradients stage into per-expert blocks of `dw*_all`, then
        // accumulate into `g_experts` expert by expert — `add_assign_slice`
        // is bitwise identical to the scalar add the old loop used.
        let counts = &ctx.pft.tokens_per_expert;
        let f = self.experts[0].0.cols();
        let e_count = self.num_experts();
        // dW2_e = act_e^T dy_e.
        let mut dw2_all = Tensor::zeros(e_count * f, h);
        gemm_grouped_transpose_a(
            ctx.h_act.as_slice(),
            counts,
            f,
            d_y.as_slice(),
            h,
            dw2_all.as_mut_slice(),
        );
        // d_act = dy W2^T; through SiLU.
        let mut d_h = Tensor::zeros(b, f);
        gemm_grouped_transpose_b(
            d_y.as_slice(),
            counts,
            h,
            |e| self.experts[e].1.as_slice(),
            f,
            d_h.as_mut_slice(),
        );
        for (d, &pre) in d_h.as_mut_slice().iter_mut().zip(ctx.h_pre.as_slice()) {
            *d *= silu_grad(pre);
        }
        // dW1_e = x_e^T d_h_e.
        let mut dw1_all = Tensor::zeros(e_count * h, f);
        gemm_grouped_transpose_a(
            ctx.dispatch_in.as_slice(),
            counts,
            h,
            d_h.as_slice(),
            f,
            dw1_all.as_mut_slice(),
        );
        // d_seg = d_h W1^T.
        let mut d_dispatch = Tensor::zeros(b, h);
        gemm_grouped_transpose_b(
            d_h.as_slice(),
            counts,
            f,
            |e| self.experts[e].0.as_slice(),
            h,
            d_dispatch.as_mut_slice(),
        );
        for (e, &cnt) in counts.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            add_assign_slice(
                self.g_experts[e].1.as_mut_slice(),
                &dw2_all.as_slice()[e * f * h..(e + 1) * f * h],
            );
            add_assign_slice(
                self.g_experts[e].0.as_mut_slice(),
                &dw1_all.as_slice()[e * h * f..(e + 1) * h * f],
            );
        }
        // Scatter dispatch grads back to token positions (gather transpose).
        scatter_rows_unit(&d_dispatch, &ctx.pft.token_ids, &mut d_x);

        // Router backward: d_scores at retained (t, e) entries, then softmax.
        let e_count = self.num_experts();
        let mut d_scores = Tensor::zeros(ctx.x.rows(), e_count);
        for i in 0..b {
            let t = ctx.pft.token_ids[i];
            let e = ctx.pft.expert_ids[i];
            let v = d_scores.get(t, e);
            d_scores.set(t, e, v + d_w[i]);
        }
        // Auxiliary load-balancing loss: dL/dscores[t, e] = alpha*E*f_e/S,
        // multiplied by the loss scale so it matches the main-loss term.
        if self.aux_alpha != 0.0 {
            let f = Self::load_fractions(ctx);
            let s_inv = 1.0 / ctx.x.rows().max(1) as f32;
            let coef = self.aux_alpha * e_count as f32 * s_inv * loss_scale;
            for t in 0..ctx.x.rows() {
                let row = d_scores.row_mut(t);
                for e in 0..e_count {
                    row[e] += coef * f[e];
                }
            }
        }
        let mut d_logits = Tensor::zeros(ctx.x.rows(), e_count);
        for t in 0..ctx.x.rows() {
            let s_row = ctx.scores.row(t);
            let ds_row = d_scores.row(t);
            let inner: f32 = s_row.iter().zip(ds_row).map(|(s, d)| s * d).sum();
            let dl_row = d_logits.row_mut(t);
            for j in 0..e_count {
                dl_row[j] = s_row[j] * (ds_row[j] - inner);
            }
        }
        // z-loss gradient goes straight onto the logits (z is a direct
        // function of them): dL_z/dl[t,j] = coef * (2/S) * z_t * scores[t,j],
        // again carrying the loss scale of the main term.
        if self.router_guard.z_loss_coef != 0.0 {
            let coef =
                self.router_guard.z_loss_coef * 2.0 * loss_scale / ctx.x.rows().max(1) as f32;
            for t in 0..ctx.x.rows() {
                let z = ctx.lse[t];
                let s_row = ctx.scores.row(t);
                let dl_row = d_logits.row_mut(t);
                for j in 0..e_count {
                    dl_row[j] += coef * z * s_row[j];
                }
            }
        }
        let dg = matmul(&ctx.x.transpose(), &d_logits);
        add_assign(&mut self.g_gate, &dg);
        let d_x_gate = matmul_transpose_b(&d_logits, &self.gate);
        add_assign(&mut d_x, &d_x_gate);
        d_x
    }

    /// [`Self::forward`] with every step-lifetime buffer reused from `st`.
    /// Bitwise identical to the owned path (same kernels over the same
    /// slices, zero-filled lease targets). The saved forward state lands in
    /// `st.ctx`; the returned output is leased from `st.ws` — recycle it
    /// once consumed.
    pub fn forward_pooled(&self, x: &Tensor, st: &mut MoeTrainScratch) -> Tensor {
        let e_count = self.num_experts();
        let h = x.cols();
        st.logits.resize(x.rows(), e_count);
        matmul_into(x, &self.gate, &mut st.logits);
        st.ctx.logits_clamped = clamp_logits(&mut st.logits, self.router_guard.logit_clamp);
        if self.router_guard.z_loss_coef != 0.0 {
            row_logsumexp_into(&st.logits, &mut st.ctx.lse);
        } else {
            st.ctx.lse.clear();
        }
        st.ctx.scores.resize(x.rows(), e_count);
        st.ctx
            .scores
            .as_mut_slice()
            .copy_from_slice(st.logits.as_slice());
        softmax_rows(&mut st.ctx.scores);
        topk_rows_into(
            &st.ctx.scores,
            self.top_k,
            &mut st.gating.top_experts,
            &mut st.gating.combine_weights,
            &mut st.order,
        );
        let logits = &st.logits;
        let k = self.top_k;
        st.gating.top_logits.clear();
        st.gating.top_logits.extend(
            st.gating
                .top_experts
                .iter()
                .enumerate()
                .map(|(i, &e)| logits.get(i / k, e)),
        );
        st.gating.k = k;
        st.gating.scores.resize(x.rows(), e_count);
        st.gating
            .scores
            .as_mut_slice()
            .copy_from_slice(st.ctx.scores.as_slice());
        Pft::construct_into(
            &st.gating,
            e_count,
            self.capacity,
            self.policy,
            &mut st.pft_scratch,
            &mut st.ctx.pft,
        );

        gather_rows_into(x, &st.ctx.pft.token_ids, &mut st.ctx.dispatch_in);
        let b = st.ctx.pft.len();
        let f = self.experts[0].0.cols();
        st.ctx.h_pre.resize(b, f);
        st.ctx.h_act.resize(b, f);
        st.ctx.y.resize(b, h);
        // Grouped expert FFN on the resized (zero-filled) staging buffers —
        // the accumulating grouped GEMM equals the owned path's fresh
        // matmuls bitwise.
        gemm_grouped(
            st.ctx.dispatch_in.as_slice(),
            &st.ctx.pft.tokens_per_expert,
            h,
            |e| self.experts[e].0.as_slice(),
            f,
            st.ctx.h_pre.as_mut_slice(),
        );
        st.ctx
            .h_act
            .as_mut_slice()
            .copy_from_slice(st.ctx.h_pre.as_slice());
        for v in st.ctx.h_act.as_mut_slice() {
            *v *= sigmoid(*v);
        }
        gemm_grouped(
            st.ctx.h_act.as_slice(),
            &st.ctx.pft.tokens_per_expert,
            f,
            |e| self.experts[e].1.as_slice(),
            h,
            st.ctx.y.as_mut_slice(),
        );
        st.ctx.seg_offsets.clear();
        st.ctx.seg_offsets.push(0);
        let mut row = 0usize;
        for &cnt in &st.ctx.pft.tokens_per_expert {
            row += cnt;
            st.ctx.seg_offsets.push(row);
        }

        st.ctx.x.resize(x.rows(), h);
        st.ctx.x.as_mut_slice().copy_from_slice(x.as_slice());
        let mut out = st.ws.take(x.rows(), h);
        out.as_mut_slice().copy_from_slice(x.as_slice());
        xmoe_tensor::scatter_rows_scaled(
            &st.ctx.y,
            &st.ctx.pft.token_ids,
            &st.ctx.pft.combine_weights,
            &mut out,
        );
        out
    }

    /// Pooled [`Self::backward`]: consumes the forward state saved in
    /// `st.ctx` by [`Self::forward_pooled`].
    pub fn backward_pooled(&mut self, st: &mut MoeTrainScratch, d_out: &Tensor) -> Tensor {
        self.backward_scaled_pooled(st, d_out, 1.0)
    }

    /// Pooled [`Self::backward_scaled`], bitwise identical to it. Gradient
    /// accumulation stages every GEMM into a zero-filled leased temp and
    /// `add_assign`s it (accumulating directly into `g_*` would reassociate
    /// the float sums). The returned input gradient is leased from `st.ws`.
    pub fn backward_scaled_pooled(
        &mut self,
        st: &mut MoeTrainScratch,
        d_out: &Tensor,
        loss_scale: f32,
    ) -> Tensor {
        let h = st.ctx.x.cols();
        let b = st.ctx.pft.len();
        let mut d_x = st.ws.take(d_out.rows(), d_out.cols());
        d_x.as_mut_slice().copy_from_slice(d_out.as_slice()); // residual path

        // d_y[i] = w_i * d_out[t_i]; d_w_i = <d_out[t_i], y[i]>.
        let mut d_y = st.ws.take(0, 0);
        gather_rows_into(d_out, &st.ctx.pft.token_ids, &mut d_y);
        st.d_w.clear();
        st.d_w.resize(b, 0.0);
        for i in 0..b {
            let w = st.ctx.pft.combine_weights[i];
            let y_row = st.ctx.y.row(i);
            let dy_row = d_y.row_mut(i);
            st.d_w[i] = xmoe_tensor::dot_and_scale(dy_row, y_row, w);
        }

        // Grouped FFN backward — the pooled twin of the owned path, with the
        // staging buffers leased from the workspace arena. No transpose is
        // ever materialised (the grouped transpose-A kernel reads A
        // column-wise in the exact accumulation order of the old
        // transpose-then-matmul), which also retires the former `t_seg`
        // per-segment transpose scratch.
        let f = self.experts[0].0.cols();
        let e_count = self.num_experts();
        // Disjoint field borrows: segment table from the saved context,
        // leases from the arena.
        let (ws, ctx) = (&mut st.ws, &st.ctx);
        let counts = &ctx.pft.tokens_per_expert;
        // dW2_e = act_e^T dy_e.
        let mut dw2_all = ws.take(e_count * f, h);
        gemm_grouped_transpose_a(
            ctx.h_act.as_slice(),
            counts,
            f,
            d_y.as_slice(),
            h,
            dw2_all.as_mut_slice(),
        );
        // d_act = dy W2^T; through SiLU.
        let mut d_h = ws.take(b, f);
        gemm_grouped_transpose_b(
            d_y.as_slice(),
            counts,
            h,
            |e| self.experts[e].1.as_slice(),
            f,
            d_h.as_mut_slice(),
        );
        for (d, &pre) in d_h.as_mut_slice().iter_mut().zip(ctx.h_pre.as_slice()) {
            *d *= silu_grad(pre);
        }
        // dW1_e = x_e^T d_h_e.
        let mut dw1_all = ws.take(e_count * h, f);
        gemm_grouped_transpose_a(
            ctx.dispatch_in.as_slice(),
            counts,
            h,
            d_h.as_slice(),
            f,
            dw1_all.as_mut_slice(),
        );
        // d_seg = d_h W1^T, written straight into the dispatch-grad buffer
        // (the kernel overwrites, so this equals the owned path).
        let mut d_dispatch = ws.take(b, h);
        gemm_grouped_transpose_b(
            d_h.as_slice(),
            counts,
            f,
            |e| self.experts[e].0.as_slice(),
            h,
            d_dispatch.as_mut_slice(),
        );
        ws.recycle(d_h);
        for (e, &cnt) in counts.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            add_assign_slice(
                self.g_experts[e].1.as_mut_slice(),
                &dw2_all.as_slice()[e * f * h..(e + 1) * f * h],
            );
            add_assign_slice(
                self.g_experts[e].0.as_mut_slice(),
                &dw1_all.as_slice()[e * h * f..(e + 1) * h * f],
            );
        }
        ws.recycle(dw2_all);
        ws.recycle(dw1_all);
        ws.recycle(d_y);
        // Scatter dispatch grads back to token positions (gather transpose).
        scatter_rows_unit(&d_dispatch, &st.ctx.pft.token_ids, &mut d_x);
        st.ws.recycle(d_dispatch);

        // Router backward: d_scores at retained (t, e) entries, then softmax.
        let e_count = self.num_experts();
        let s_rows = st.ctx.x.rows();
        let mut d_scores = st.ws.take(s_rows, e_count);
        for i in 0..b {
            let t = st.ctx.pft.token_ids[i];
            let e = st.ctx.pft.expert_ids[i];
            let v = d_scores.get(t, e);
            d_scores.set(t, e, v + st.d_w[i]);
        }
        if self.aux_alpha != 0.0 {
            let total: usize = st.ctx.pft.tokens_per_expert.iter().sum();
            let denom = total.max(1) as f32;
            st.aux_f.clear();
            st.aux_f.extend(
                st.ctx
                    .pft
                    .tokens_per_expert
                    .iter()
                    .map(|&c| c as f32 / denom),
            );
            let s_inv = 1.0 / s_rows.max(1) as f32;
            let coef = self.aux_alpha * e_count as f32 * s_inv * loss_scale;
            for t in 0..s_rows {
                let row = d_scores.row_mut(t);
                for e in 0..e_count {
                    row[e] += coef * st.aux_f[e];
                }
            }
        }
        let mut d_logits = st.ws.take(s_rows, e_count);
        for t in 0..s_rows {
            let s_row = st.ctx.scores.row(t);
            let ds_row = d_scores.row(t);
            let inner: f32 = s_row.iter().zip(ds_row).map(|(s, d)| s * d).sum();
            let dl_row = d_logits.row_mut(t);
            for j in 0..e_count {
                dl_row[j] = s_row[j] * (ds_row[j] - inner);
            }
        }
        if self.router_guard.z_loss_coef != 0.0 {
            let coef = self.router_guard.z_loss_coef * 2.0 * loss_scale / s_rows.max(1) as f32;
            for t in 0..s_rows {
                let z = st.ctx.lse[t];
                let s_row = st.ctx.scores.row(t);
                let dl_row = d_logits.row_mut(t);
                for j in 0..e_count {
                    dl_row[j] += coef * z * s_row[j];
                }
            }
        }
        st.ws.recycle(d_scores);
        st.ctx.x.transpose_into(&mut st.xt);
        let mut dg = st.ws.take(h, e_count);
        matmul_slices(
            st.xt.as_slice(),
            h,
            s_rows,
            d_logits.as_slice(),
            e_count,
            dg.as_mut_slice(),
        );
        add_assign(&mut self.g_gate, &dg);
        st.ws.recycle(dg);
        let mut d_x_gate = st.ws.take(s_rows, h);
        matmul_transpose_b_slices(
            d_logits.as_slice(),
            s_rows,
            e_count,
            self.gate.as_slice(),
            h,
            d_x_gate.as_mut_slice(),
        );
        add_assign(&mut d_x, &d_x_gate);
        st.ws.recycle(d_x_gate);
        st.ws.recycle(d_logits);
        d_x
    }

    /// Zero all gradients.
    pub fn zero_grads(&mut self) {
        for v in self.g_gate.as_mut_slice() {
            *v = 0.0;
        }
        for (g1, g2) in &mut self.g_experts {
            for v in g1.as_mut_slice() {
                *v = 0.0;
            }
            for v in g2.as_mut_slice() {
                *v = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: DropPolicy, capacity: usize, seed: u64) -> TrainableMoe {
        TrainableMoe::new(6, 5, 4, 2, capacity, policy, seed)
    }

    /// Scalar probe loss: fixed random projection of the output.
    fn probe_loss(layer: &TrainableMoe, x: &Tensor, probe: &Tensor) -> f64 {
        let (out, _) = layer.forward(x);
        out.as_slice()
            .iter()
            .zip(probe.as_slice())
            .map(|(&o, &p)| (o * p) as f64)
            .sum()
    }

    #[test]
    fn forward_shapes_and_residual() {
        let layer = tiny(DropPolicy::CapacityOnly, 100, 1);
        let x = Tensor::rand_uniform(7, 6, 1.0, 2);
        let (out, ctx) = layer.forward(&x);
        assert_eq!(out.shape(), (7, 6));
        assert_eq!(ctx.pft.len(), 7 * 2);
        // With zeroed expert w2, output would equal x; with real weights it
        // must differ (the MoE contributes).
        assert!(!out.allclose(&x, 1e-6));
    }

    #[test]
    fn expert_gradients_match_finite_difference_under_topk() {
        // Expert weights do not influence routing, so their gradients are
        // exactly differentiable even with k < E.
        let base = tiny(DropPolicy::CapacityOnly, 100, 11);
        let x = Tensor::rand_uniform(5, 6, 1.0, 12);
        let probe = Tensor::rand_uniform(5, 6, 1.0, 13);
        let mut layer = base.clone();
        let (_, ctx) = layer.forward(&x);
        let _ = layer.backward(&ctx, &probe);

        let eps = 1e-2f32;
        let rel_ok = |fd: f64, an: f64| (fd - an).abs() < 3e-2 * (1.0 + an.abs().max(fd.abs()));
        for &(e, r, c) in &[(0usize, 0usize, 0usize), (1, 2, 3), (3, 5, 1)] {
            let w0 = base.experts[e].0.get(r, c);
            let fd = {
                let mut up = base.clone();
                up.experts[e].0.set(r, c, w0 + eps);
                let mut dn = base.clone();
                dn.experts[e].0.set(r, c, w0 - eps);
                (probe_loss(&up, &x, &probe) - probe_loss(&dn, &x, &probe)) / (2.0 * eps as f64)
            };
            let an = layer.g_experts[e].0.get(r, c) as f64;
            assert!(rel_ok(fd, an), "dW1[{e}][{r},{c}] fd {fd} an {an}");
        }
        for &(e, r, c) in &[(0usize, 1usize, 2usize), (2, 4, 5)] {
            let w0 = base.experts[e].1.get(r, c);
            let fd = {
                let mut up = base.clone();
                up.experts[e].1.set(r, c, w0 + eps);
                let mut dn = base.clone();
                dn.experts[e].1.set(r, c, w0 - eps);
                (probe_loss(&up, &x, &probe) - probe_loss(&dn, &x, &probe)) / (2.0 * eps as f64)
            };
            let an = layer.g_experts[e].1.get(r, c) as f64;
            assert!(rel_ok(fd, an), "dW2[{e}][{r},{c}] fd {fd} an {an}");
        }
    }

    #[test]
    fn router_and_input_gradients_match_fd_with_full_k() {
        // With k = E every expert is selected, so there is no selection
        // boundary and the router/input gradients are exact.
        let mut base = tiny(DropPolicy::CapacityOnly, 100, 51);
        base.top_k = base.num_experts();
        let x = Tensor::rand_uniform(5, 6, 1.0, 52);
        let probe = Tensor::rand_uniform(5, 6, 1.0, 53);
        let mut layer = base.clone();
        let (_, ctx) = layer.forward(&x);
        let d_x = layer.backward(&ctx, &probe);

        let eps = 1e-2f32;
        let rel_ok = |fd: f64, an: f64| (fd - an).abs() < 3e-2 * (1.0 + an.abs().max(fd.abs()));
        for &(r, c) in &[(0usize, 0usize), (3, 2), (5, 3)] {
            let w0 = base.gate.get(r, c);
            let fd = {
                let mut up = base.clone();
                up.gate.set(r, c, w0 + eps);
                let mut dn = base.clone();
                dn.gate.set(r, c, w0 - eps);
                (probe_loss(&up, &x, &probe) - probe_loss(&dn, &x, &probe)) / (2.0 * eps as f64)
            };
            let an = layer.g_gate.get(r, c) as f64;
            assert!(rel_ok(fd, an), "dGate[{r},{c}] fd {fd} an {an}");
        }
        for &(r, c) in &[(0usize, 0usize), (2, 4)] {
            let v0 = x.get(r, c);
            let fd = {
                let mut up = x.clone();
                up.set(r, c, v0 + eps);
                let mut dn = x.clone();
                dn.set(r, c, v0 - eps);
                (probe_loss(&base, &up, &probe) - probe_loss(&base, &dn, &probe))
                    / (2.0 * eps as f64)
            };
            let an = d_x.get(r, c) as f64;
            assert!(rel_ok(fd, an), "dX[{r},{c}] fd {fd} an {an}");
        }
    }

    #[test]
    fn z_loss_gradient_matches_fd_with_full_k() {
        // Total loss = probe projection + z-loss; with k = E the router
        // gradient is exact, so FD over gate weights must match backward
        // including the z term.
        let mut base = tiny(DropPolicy::CapacityOnly, 100, 61);
        base.top_k = base.num_experts();
        let base = base.with_router_guard(RouterGuard {
            logit_clamp: 0.0,
            z_loss_coef: 0.1,
        });
        let x = Tensor::rand_uniform(5, 6, 1.0, 62);
        let probe = Tensor::rand_uniform(5, 6, 1.0, 63);
        let total_loss = |layer: &TrainableMoe| -> f64 {
            let (out, ctx) = layer.forward(&x);
            let p: f64 = out
                .as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&o, &q)| (o * q) as f64)
                .sum();
            p + layer.z_loss(&ctx)
        };
        let mut layer = base.clone();
        let (_, ctx) = layer.forward(&x);
        assert!(layer.z_loss(&ctx) > 0.0);
        let _ = layer.backward(&ctx, &probe);

        let eps = 1e-2f32;
        let rel_ok = |fd: f64, an: f64| (fd - an).abs() < 3e-2 * (1.0 + an.abs().max(fd.abs()));
        for &(r, c) in &[(0usize, 0usize), (3, 2), (5, 3)] {
            let w0 = base.gate.get(r, c);
            let fd = {
                let mut up = base.clone();
                up.gate.set(r, c, w0 + eps);
                let mut dn = base.clone();
                dn.gate.set(r, c, w0 - eps);
                (total_loss(&up) - total_loss(&dn)) / (2.0 * eps as f64)
            };
            let an = layer.g_gate.get(r, c) as f64;
            assert!(rel_ok(fd, an), "dGate[{r},{c}] fd {fd} an {an}");
        }
    }

    #[test]
    fn scaled_backward_scales_aux_and_z_terms_with_the_main_loss() {
        // Under a dynamic loss scale every router-gradient term — main
        // loss (via d_out), aux load-balancing loss, and z-loss — must
        // carry the same scale, or unscaling would change the effective
        // aux/z weighting by 1/scale. Power-of-two scaling commutes
        // bitwise with every float op in backward, so the scaled run must
        // equal scale × the unscaled run exactly.
        let scale = 4.0f32;
        let base = tiny(DropPolicy::CapacityOnly, 100, 81)
            .with_aux(0.05)
            .with_router_guard(RouterGuard {
                logit_clamp: 0.0,
                z_loss_coef: 0.1,
            });
        let x = Tensor::rand_uniform(5, 6, 1.0, 82);
        let probe = Tensor::rand_uniform(5, 6, 1.0, 83);
        let mut probe_scaled = probe.clone();
        for v in probe_scaled.as_mut_slice() {
            *v *= scale;
        }

        let mut plain = base.clone();
        let (_, ctx) = plain.forward(&x);
        let d_x = plain.backward(&ctx, &probe);

        let mut scaled = base.clone();
        let (_, ctx_s) = scaled.forward(&x);
        let d_x_s = scaled.backward_scaled(&ctx_s, &probe_scaled, scale);

        let eq = |a: &Tensor, b: &Tensor| {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(&p, &s)| (p * scale).to_bits() == s.to_bits())
        };
        assert!(eq(&plain.g_gate, &scaled.g_gate), "router grad not scaled");
        for (e, ((p1, p2), (s1, s2))) in plain.g_experts.iter().zip(&scaled.g_experts).enumerate() {
            assert!(eq(p1, s1) && eq(p2, s2), "expert {e} grads not scaled");
        }
        assert!(eq(&d_x, &d_x_s), "input grad not scaled");
    }

    #[test]
    fn logit_clamp_bounds_scores_and_reports_hits() {
        let mut hot = tiny(DropPolicy::CapacityOnly, 100, 71);
        // Blow up the router projection so raw logits leave [-1, 1].
        for v in hot.gate.as_mut_slice() {
            *v *= 100.0;
        }
        let x = Tensor::rand_uniform(6, 6, 1.0, 72);
        let unguarded = hot.clone();
        let (_, ctx_raw) = unguarded.forward(&x);
        assert_eq!(ctx_raw.logits_clamped(), 0);
        let guarded = hot.with_router_guard(RouterGuard {
            logit_clamp: 1.0,
            z_loss_coef: 0.0,
        });
        let (out, ctx) = guarded.forward(&x);
        assert!(ctx.logits_clamped() > 0);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        // With all logits in [-1, 1] no softmax score can exceed
        // e^2 / (E - 1 + e^2) < 1; the router can no longer saturate.
        let e = ctx.scores.cols() as f32;
        let cap = (2.0f32).exp() / (e - 1.0 + (2.0f32).exp());
        for t in 0..ctx.scores.rows() {
            for j in 0..ctx.scores.cols() {
                assert!(ctx.scores.get(t, j) <= cap + 1e-6);
            }
        }
    }

    #[test]
    fn dropped_tokens_receive_no_expert_gradient() {
        // Capacity 1: most assignments drop; gradients must remain finite
        // and the drop fraction visible.
        let layer = tiny(DropPolicy::CapacityOnly, 1, 21);
        let x = Tensor::rand_uniform(8, 6, 1.0, 22);
        let (out, ctx) = layer.forward(&x);
        assert!(ctx.pft.dropped > 0);
        let frac = TrainableMoe::last_drop_fraction(&ctx, 2);
        assert!(frac > 0.0 && frac < 1.0);
        let mut l2 = layer.clone();
        let d = Tensor::full(out.rows(), out.cols(), 1.0);
        let d_x = l2.backward(&ctx, &d);
        // The guard's non-finite scan is the recoverable path production
        // runs use (a Divergence trips a policy instead of aborting); a
        // clean backward must report no anomaly through it.
        assert_eq!(crate::guard::check_finite("d_x", d_x.as_slice()), Ok(()));
    }

    #[test]
    fn negative_logit_policy_drops_more() {
        let x = Tensor::rand_uniform(16, 6, 1.0, 31);
        let cap = 100;
        let (_, ctx_x) = tiny(DropPolicy::CapacityOnly, cap, 30).forward(&x);
        let (_, ctx_d) = tiny(DropPolicy::CapacityAndNegativeLogit, cap, 30).forward(&x);
        assert!(ctx_d.pft.dropped >= ctx_x.pft.dropped);
        assert!(ctx_d.pft.len() <= ctx_x.pft.len());
    }

    #[test]
    fn pooled_step_is_bitwise_identical_to_owned() {
        // Aux loss, both router guards, capacity drops, and a loss scale
        // all on at once: the pooled step must still reproduce the owned
        // step bit for bit, and after warm-up the arena must serve every
        // lease from its free lists.
        let base = tiny(DropPolicy::CapacityOnly, 4, 91)
            .with_aux(0.05)
            .with_router_guard(RouterGuard {
                logit_clamp: 1.0,
                z_loss_coef: 0.1,
            });
        let mut owned = base.clone();
        let mut pooled = base.clone();
        let mut st = MoeTrainScratch::default();
        let scale = 2.0f32;
        for step in 0..4u64 {
            let x = Tensor::rand_uniform(9, 6, 1.0, 900 + step);
            let probe = Tensor::rand_uniform(9, 6, 1.0, 950 + step);
            let (out_o, ctx) = owned.forward(&x);
            let d_o = owned.backward_scaled(&ctx, &probe, scale);
            let out_p = pooled.forward_pooled(&x, &mut st);
            let d_p = pooled.backward_scaled_pooled(&mut st, &probe, scale);
            assert!(out_o.allclose(&out_p, 0.0), "step {step}: forward diverged");
            assert!(d_o.allclose(&d_p, 0.0), "step {step}: d_x diverged");
            assert_eq!(ctx.dropped(), st.ctx.dropped(), "step {step}: drops");
            st.ws.recycle(out_p);
            st.ws.recycle(d_p);
        }
        assert!(
            owned.g_gate.allclose(&pooled.g_gate, 0.0),
            "g_gate diverged"
        );
        for (e, ((a1, a2), (b1, b2))) in owned.g_experts.iter().zip(&pooled.g_experts).enumerate() {
            assert!(
                a1.allclose(b1, 0.0) && a2.allclose(b2, 0.0),
                "expert {e} grads diverged"
            );
        }
        let before = st.ws.stats().pool_misses;
        let x = Tensor::rand_uniform(9, 6, 1.0, 990);
        let probe = Tensor::rand_uniform(9, 6, 1.0, 991);
        let out = pooled.forward_pooled(&x, &mut st);
        let d = pooled.backward_scaled_pooled(&mut st, &probe, scale);
        st.ws.recycle(out);
        st.ws.recycle(d);
        assert_eq!(
            st.ws.stats().pool_misses,
            before,
            "warm step missed the pool"
        );
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut layer = tiny(DropPolicy::CapacityOnly, 100, 41);
        let x = Tensor::rand_uniform(4, 6, 1.0, 42);
        let (out, ctx) = layer.forward(&x);
        let d = Tensor::full(out.rows(), out.cols(), 1.0);
        let _ = layer.backward(&ctx, &d);
        assert!(layer.g_gate.norm() > 0.0);
        layer.zero_grads();
        assert_eq!(layer.g_gate.norm(), 0.0);
        assert!(layer
            .g_experts
            .iter()
            .all(|(a, b)| a.norm() == 0.0 && b.norm() == 0.0));
    }
}
