//! MoE gating: the top-k softmax router (paper Listing 1, `gating`), plus
//! the token-drop policy distinction of §5.6.
//!
//! §5.6 traces the small loss-curve gap between DeepSpeed-MoE and X-MoE to
//! token dropping: DeepSpeed-MoE drops a (token, expert) assignment whenever
//! its routing score is negative, *regardless* of capacity, while X-MoE only
//! drops on capacity overflow. [`DropPolicy`] encodes both behaviours so the
//! loss-validation experiment (Fig 15) can reproduce the gap.

use xmoe_tensor::{matmul, matmul_into, softmax_rows, topk_rows, topk_rows_into, Tensor};

/// When is a routed (token, expert) pair eligible to be dropped before
/// capacity is even considered?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// X-MoE: drop only on expert-capacity overflow.
    CapacityOnly,
    /// DeepSpeed-MoE: additionally drop pairs whose *raw gate logit* is
    /// negative, independent of capacity (§5.6).
    CapacityAndNegativeLogit,
}

/// Output of the gating function for a local batch of `S` tokens.
///
/// The per-token arrays are stored *flat* — length `S*k`, token `t`'s slot
/// `j` at index `t*k + j` — so one gating call costs a constant number of
/// allocations instead of the `2S+` a `Vec<Vec<_>>` layout incurs, and the
/// buffers can be leased from a `Workspace`.
#[derive(Clone, Debug)]
pub struct GatingOutput {
    /// Flat `[S*k]` expert indices, per token by descending score.
    pub top_experts: Vec<usize>,
    /// Flat `[S*k]` softmax scores of the selected experts.
    pub combine_weights: Vec<f32>,
    /// Flat `[S*k]` raw (pre-softmax) logits of the selected experts —
    /// consumed by [`DropPolicy::CapacityAndNegativeLogit`].
    pub top_logits: Vec<f32>,
    /// Routing factor `k` (stride of the flat arrays).
    pub k: usize,
    /// Full `[S, E]` softmax scores (the training backward needs them).
    pub scores: Tensor,
}

impl GatingOutput {
    /// Number of tokens gated.
    pub fn tokens(&self) -> usize {
        self.scores.rows()
    }

    /// Routing factor `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Token `t`'s selected experts (`k` of them, by descending score).
    pub fn experts_of(&self, t: usize) -> &[usize] {
        &self.top_experts[t * self.k..(t + 1) * self.k]
    }

    /// Token `t`'s combine weights, aligned with [`Self::experts_of`].
    pub fn weights_of(&self, t: usize) -> &[f32] {
        &self.combine_weights[t * self.k..(t + 1) * self.k]
    }
}

impl Default for GatingOutput {
    /// An empty gating output, ready to be filled by [`Router::gate_into`].
    fn default() -> Self {
        Self {
            top_experts: Vec::new(),
            combine_weights: Vec::new(),
            top_logits: Vec::new(),
            k: 0,
            scores: Tensor::zeros(0, 0),
        }
    }
}

/// Reusable scratch for [`Router::gate_into`]: the logits tensor and the
/// top-k selection order. Grow-only, like every pooled scratch.
#[derive(Debug, Default)]
pub struct GateScratch {
    logits: Tensor,
    order: Vec<usize>,
}

/// The learned router of one MoE layer: a single `[H, E]` projection.
#[derive(Clone, Debug)]
pub struct Router {
    /// Gate projection `H x E`.
    pub weight: Tensor,
    /// Experts activated per token.
    pub top_k: usize,
}

impl Router {
    /// Randomly initialized router.
    pub fn new(hidden: usize, num_experts: usize, top_k: usize, seed: u64) -> Self {
        assert!(
            top_k >= 1 && top_k <= num_experts,
            "top_k {top_k} out of range"
        );
        Self {
            weight: Tensor::rand_init(hidden, num_experts, hidden, seed),
            top_k,
        }
    }

    /// Router with explicit weights (tests, training).
    pub fn from_weight(weight: Tensor, top_k: usize) -> Self {
        Self { weight, top_k }
    }

    pub fn num_experts(&self) -> usize {
        self.weight.cols()
    }

    /// Run gating over `tokens` (`[S, H]`): compute logits, softmax, select
    /// top-k experts per token (Listing 1 lines 1–8).
    pub fn gate(&self, tokens: &Tensor) -> GatingOutput {
        assert_eq!(
            tokens.cols(),
            self.weight.rows(),
            "token hidden dim mismatch"
        );
        let logits = matmul(tokens, &self.weight);
        let mut scores = logits.clone();
        softmax_rows(&mut scores);
        let k = self.top_k;
        let (top_experts, combine_weights) = topk_rows(&scores, k);
        let top_logits = top_experts
            .iter()
            .enumerate()
            .map(|(i, &e)| logits.get(i / k, e))
            .collect();
        GatingOutput {
            top_experts,
            combine_weights,
            top_logits,
            k,
            scores,
        }
    }

    /// [`Router::gate`] on caller-owned buffers: logits land in the scratch
    /// tensor, scores/top-k arrays in the reused `out`. Results are identical
    /// to the owned variant; with warm buffers the call performs no heap
    /// allocation.
    pub fn gate_into(&self, tokens: &Tensor, scratch: &mut GateScratch, out: &mut GatingOutput) {
        assert_eq!(
            tokens.cols(),
            self.weight.rows(),
            "token hidden dim mismatch"
        );
        let logits = &mut scratch.logits;
        logits.resize(tokens.rows(), self.weight.cols());
        matmul_into(tokens, &self.weight, logits);
        out.scores.resize(tokens.rows(), self.weight.cols());
        out.scores.as_mut_slice().copy_from_slice(logits.as_slice());
        softmax_rows(&mut out.scores);
        let k = self.top_k;
        topk_rows_into(
            &out.scores,
            k,
            &mut out.top_experts,
            &mut out.combine_weights,
            &mut scratch.order,
        );
        out.top_logits.clear();
        out.top_logits.extend(
            out.top_experts
                .iter()
                .enumerate()
                .map(|(i, &e)| logits.get(i / k, e)),
        );
        out.k = k;
    }
}

/// Router numerical-health guards. Large-scale MoE reports (Megatron Core
/// MoE, ST-MoE) single out router logit blow-up as a first-order stability
/// hazard: softmax saturates, one expert captures everything, and the
/// z = logsumexp of the logits drifts until bf16 overflows. Two standard
/// countermeasures, both exact and deterministic:
/// * clamp logits into `[-limit, limit]` before the softmax;
/// * penalize `z` with the ST-MoE z-loss `L_z = (1/S) * sum_t z_t^2`.
#[derive(Clone, Copy, Debug)]
pub struct RouterGuard {
    /// Symmetric logit clamp bound (`0.0` disables clamping).
    pub logit_clamp: f32,
    /// Coefficient of the z-loss term (`0.0` disables it).
    pub z_loss_coef: f32,
}

impl Default for RouterGuard {
    fn default() -> Self {
        Self {
            logit_clamp: 0.0,
            z_loss_coef: 0.0,
        }
    }
}

impl RouterGuard {
    /// Is either guard active?
    pub fn enabled(&self) -> bool {
        self.logit_clamp != 0.0 || self.z_loss_coef != 0.0
    }
}

/// Clamp every logit into `[-limit, limit]`; returns how many were clamped
/// (a health signal the guard timeline can surface). `limit <= 0` is a
/// no-op. Non-finite logits are left for the non-finite scan to report.
pub fn clamp_logits(logits: &mut Tensor, limit: f32) -> usize {
    if limit <= 0.0 {
        return 0;
    }
    let mut clamped = 0usize;
    for v in logits.as_mut_slice() {
        if *v > limit {
            *v = limit;
            clamped += 1;
        } else if *v < -limit {
            *v = -limit;
            clamped += 1;
        }
    }
    clamped
}

/// Numerically stable per-row `log(sum(exp(logits)))` — the router's
/// z-statistic. The max is subtracted before exponentiation so finite
/// logits always produce a finite z.
pub fn row_logsumexp(logits: &Tensor) -> Vec<f32> {
    let mut out = Vec::new();
    row_logsumexp_into(logits, &mut out);
    out
}

/// [`row_logsumexp`] into a caller-owned buffer (cleared first) — the
/// warm-buffer variant used by pooled training steps.
pub fn row_logsumexp_into(logits: &Tensor, out: &mut Vec<f32>) {
    out.clear();
    out.extend((0..logits.rows()).map(|t| {
        let row = logits.row(t);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        m + sum.ln()
    }));
}

/// Value of the z-loss for the given per-row z statistics:
/// `(1/S) * sum_t z_t^2`. The gradient with respect to logit `(t, j)` is
/// `(2/S) * z_t * softmax(t, j)` — callers add it straight onto
/// `d_logits`, bypassing the softmax backward, since z is a direct
/// function of the logits.
pub fn z_loss_value(lse: &[f32]) -> f64 {
    if lse.is_empty() {
        return 0.0;
    }
    lse.iter().map(|&z| (z as f64) * (z as f64)).sum::<f64>() / lse.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_selects_k_distinct_experts_per_token() {
        let router = Router::new(16, 8, 3, 42);
        let tokens = Tensor::rand_uniform(10, 16, 1.0, 7);
        let g = router.gate(&tokens);
        assert_eq!(g.tokens(), 10);
        assert_eq!(g.k(), 3);
        assert_eq!(g.top_experts.len(), 30);
        for t in 0..g.tokens() {
            let mut e = g.experts_of(t).to_vec();
            e.sort_unstable();
            e.dedup();
            assert_eq!(e.len(), 3, "duplicate expert selected");
        }
    }

    #[test]
    fn combine_weights_are_descending_softmax_scores() {
        let router = Router::new(8, 6, 4, 1);
        let tokens = Tensor::rand_uniform(5, 8, 1.0, 2);
        let g = router.gate(&tokens);
        for t in 0..g.tokens() {
            let w = g.weights_of(t);
            for i in 1..w.len() {
                assert!(w[i - 1] >= w[i], "weights not descending");
            }
            for (j, &e) in g.experts_of(t).iter().enumerate() {
                assert_eq!(g.scores.get(t, e), w[j]);
            }
            // Scores are softmax outputs: positive, <= 1.
            assert!(w.iter().all(|&x| x > 0.0 && x <= 1.0));
        }
    }

    #[test]
    fn forced_routing_with_identity_like_gate() {
        // A gate that strongly prefers expert = argmax of the first two dims.
        let mut w = Tensor::zeros(4, 2);
        w.set(0, 0, 10.0);
        w.set(1, 1, 10.0);
        let router = Router::from_weight(w, 1);
        let tokens = Tensor::from_vec(2, 4, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let g = router.gate(&tokens);
        assert_eq!(g.experts_of(0)[0], 0);
        assert_eq!(g.experts_of(1)[0], 1);
    }

    #[test]
    fn top_logits_are_pre_softmax() {
        let router = Router::new(8, 4, 2, 3);
        let tokens = Tensor::rand_uniform(4, 8, 1.0, 4);
        let g = router.gate(&tokens);
        let logits = matmul(&tokens, &router.weight);
        for t in 0..4 {
            for j in 0..2 {
                assert_eq!(g.top_logits[t * 2 + j], logits.get(t, g.experts_of(t)[j]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn rejects_topk_larger_than_expert_count() {
        let _ = Router::new(8, 4, 5, 1);
    }

    #[test]
    fn gate_into_matches_owned_gate_bitwise() {
        let router = Router::new(16, 8, 3, 42);
        let mut scratch = GateScratch::default();
        let mut pooled = GatingOutput::default();
        // Reuse across differently-sized batches: results must stay equal.
        for (s, seed) in [(10usize, 7u64), (4, 8), (25, 9)] {
            let tokens = Tensor::rand_uniform(s, 16, 1.0, seed);
            let owned = router.gate(&tokens);
            router.gate_into(&tokens, &mut scratch, &mut pooled);
            assert_eq!(pooled.top_experts, owned.top_experts);
            assert_eq!(pooled.combine_weights, owned.combine_weights);
            assert_eq!(pooled.top_logits, owned.top_logits);
            assert_eq!(pooled.k, owned.k);
            assert!(pooled.scores.allclose(&owned.scores, 0.0));
        }
    }

    #[test]
    fn clamp_limits_logits_and_counts_hits() {
        let mut t = Tensor::from_vec(2, 3, vec![-9.0, 0.5, 9.0, 2.0, -2.0, 30.0]);
        let n = clamp_logits(&mut t, 2.0);
        assert_eq!(n, 3);
        assert_eq!(t.as_slice(), &[-2.0, 0.5, 2.0, 2.0, -2.0, 2.0]);
        // limit 0 disables.
        let mut u = Tensor::from_vec(1, 2, vec![100.0, -100.0]);
        assert_eq!(clamp_logits(&mut u, 0.0), 0);
        assert_eq!(u.as_slice(), &[100.0, -100.0]);
    }

    #[test]
    fn logsumexp_is_stable_and_exact_on_known_rows() {
        // Row of equal logits c: lse = c + ln(E).
        let t = Tensor::from_vec(
            2,
            4,
            vec![1.0; 4].into_iter().chain(vec![500.0; 4]).collect(),
        );
        let lse = row_logsumexp(&t);
        assert!((lse[0] - (1.0 + 4.0f32.ln())).abs() < 1e-6);
        // Huge logits stay finite thanks to max subtraction.
        assert!(lse[1].is_finite());
        assert!((lse[1] - (500.0 + 4.0f32.ln())).abs() < 1e-3);
        let z = z_loss_value(&lse);
        assert!(z.is_finite() && z > 0.0);
        assert_eq!(z_loss_value(&[]), 0.0);
    }

    #[test]
    fn router_guard_defaults_are_inert() {
        let g = RouterGuard::default();
        assert!(!g.enabled());
        assert!(RouterGuard {
            logit_clamp: 8.0,
            z_loss_coef: 0.0
        }
        .enabled());
    }
}
