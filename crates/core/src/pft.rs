//! PFT — the Padding-Free Token buffer (paper §4.1.1, Listing 1,
//! Appendix B.2).
//!
//! Instead of fixed-capacity zero-padded expert buffers (`[E, C, H]`) driven
//! by a dense `[S, E, C]` dispatch mask, a PFT stores only the routed token
//! entries plus four small **ERI-arrays** (Expert Routing Information):
//!
//! * `token_ids[i]` — which input token occupies position `i` of the
//!   dispatch matrix;
//! * `expert_ids[i]` — which expert entry `i` is routed to (ascending, so
//!   every expert's segment is contiguous);
//! * `tokens_per_expert[e]` — segment length per expert;
//! * `combine_weights[i]` — the gating score the combine stage scales
//!   entry `i`'s expert output by.
//!
//! Construction follows Listing 1: flatten the `[S, k]` assignments, rank
//! all entries by combine weight, keep at most `capacity` per expert
//! (dropping the lowest-scored overflow), then emit expert-sorted
//! ERI-arrays. The [`DropPolicy`] pre-filter reproduces DeepSpeed-MoE's
//! negative-logit dropping for the §5.6 comparison.

use crate::gating::{DropPolicy, GatingOutput};
use xmoe_tensor::argsort_desc_into;

/// Reusable scratch for [`Pft::construct_into`]: the flattened assignment
/// arrays, ranking order and counting-sort tables. All buffers are grow-only,
/// so a scratch reused across steps makes PFT construction allocation-free
/// after warm-up.
#[derive(Debug, Default)]
pub struct PftScratch {
    flat_tokens: Vec<usize>,
    flat_experts: Vec<usize>,
    flat_weights: Vec<f32>,
    order: Vec<usize>,
    rank_in_expert: Vec<usize>,
    retained: Vec<bool>,
    offsets: Vec<usize>,
    cursor: Vec<usize>,
}

/// The ERI-arrays of one local batch (the token buffer `x` travels
/// separately through the pipeline stages).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Pft {
    /// `[B]` original token index of each routed entry.
    pub token_ids: Vec<usize>,
    /// `[B]` destination expert of each entry; non-decreasing.
    pub expert_ids: Vec<usize>,
    /// `[E]` entries routed to each expert.
    pub tokens_per_expert: Vec<usize>,
    /// `[B]` gating score each entry's expert output is scaled by.
    pub combine_weights: Vec<f32>,
    /// Routed (token, expert) pairs dropped during construction.
    pub dropped: usize,
}

impl Pft {
    /// Number of retained routed entries `B`.
    pub fn len(&self) -> usize {
        self.token_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.token_ids.is_empty()
    }

    /// Construct the PFT from gating output (Listing 1,
    /// `PFT_construction`).
    ///
    /// `capacity` is `max_token_count`, the per-expert retention limit;
    /// entries are ranked globally by combine weight so overflow drops the
    /// lowest-confidence assignments. `policy` optionally applies
    /// DeepSpeed-MoE's negative-logit pre-drop.
    ///
    /// ```
    /// use xmoe_core::gating::{DropPolicy, Router};
    /// use xmoe_core::pft::Pft;
    /// use xmoe_tensor::Tensor;
    ///
    /// let router = Router::new(16, 8, 2, 42);
    /// let tokens = Tensor::rand_uniform(10, 16, 1.0, 7);
    /// let gating = router.gate(&tokens);
    /// let pft = Pft::construct(&gating, 8, 100, DropPolicy::CapacityOnly);
    /// assert_eq!(pft.len(), 10 * 2);          // no drops at this capacity
    /// assert_eq!(pft.tokens_per_expert.len(), 8);
    /// pft.validate(10);                        // structural invariants hold
    /// ```
    pub fn construct(
        gating: &GatingOutput,
        num_experts: usize,
        capacity: usize,
        policy: DropPolicy,
    ) -> Pft {
        let mut out = Pft {
            token_ids: Vec::new(),
            expert_ids: Vec::new(),
            tokens_per_expert: Vec::new(),
            combine_weights: Vec::new(),
            dropped: 0,
        };
        let mut scratch = PftScratch::default();
        Self::construct_into(
            gating,
            num_experts,
            capacity,
            policy,
            &mut scratch,
            &mut out,
        );
        out
    }

    /// [`Pft::construct`] writing into a reused `out` and `scratch` — the
    /// same algorithm on caller-owned grow-only buffers, producing results
    /// identical to the owned variant. With warm buffers the call performs no
    /// heap allocation.
    pub fn construct_into(
        gating: &GatingOutput,
        num_experts: usize,
        capacity: usize,
        policy: DropPolicy,
        scratch: &mut PftScratch,
        out: &mut Pft,
    ) {
        let s = gating.tokens();
        let k = gating.k();

        // Step 1: flatten the [S, k] assignments (Listing 1 lines 20-21),
        // applying the policy pre-filter.
        let flat_tokens = &mut scratch.flat_tokens;
        let flat_experts = &mut scratch.flat_experts;
        let flat_weights = &mut scratch.flat_weights;
        flat_tokens.clear();
        flat_experts.clear();
        flat_weights.clear();
        let mut prefiltered = 0usize;
        for t in 0..s {
            for j in 0..k {
                if policy == DropPolicy::CapacityAndNegativeLogit
                    && gating.top_logits[t * k + j] < 0.0
                {
                    prefiltered += 1;
                    continue;
                }
                flat_tokens.push(t);
                flat_experts.push(gating.top_experts[t * k + j]);
                flat_weights.push(gating.combine_weights[t * k + j]);
            }
        }

        // Step 2: rank by combine weight and keep the top `capacity` per
        // expert (lines 24-33). The descending argsort's index tie-break
        // makes the retained set deterministic under ties.
        argsort_desc_into(flat_weights, &mut scratch.order);
        let rank_in_expert = &mut scratch.rank_in_expert;
        rank_in_expert.clear();
        rank_in_expert.resize(num_experts, 0);
        let retained = &mut scratch.retained;
        retained.clear();
        retained.resize(flat_tokens.len(), false);
        let mut dropped = prefiltered;
        for &i in &scratch.order {
            let e = flat_experts[i];
            assert!(e < num_experts, "expert id {e} out of range {num_experts}");
            if rank_in_expert[e] < capacity {
                rank_in_expert[e] += 1;
                retained[i] = true;
            } else {
                dropped += 1;
            }
        }

        // Step 3: emit ERI-arrays grouped by expert, preserving token order
        // within each expert segment (lines 34-40). Grouping by expert makes
        // each EP destination's slice of the dispatch buffer contiguous.
        let b: usize = rank_in_expert.iter().sum();
        // Bucket by expert with a counting pass (O(B + E), no comparison sort).
        let offsets = &mut scratch.offsets;
        offsets.clear();
        offsets.resize(num_experts + 1, 0);
        for (i, &keep) in retained.iter().enumerate() {
            if keep {
                offsets[flat_experts[i] + 1] += 1;
            }
        }
        for e in 0..num_experts {
            offsets[e + 1] += offsets[e];
        }
        let token_ids = &mut out.token_ids;
        let expert_ids = &mut out.expert_ids;
        let combine_weights = &mut out.combine_weights;
        token_ids.clear();
        token_ids.resize(b, 0);
        expert_ids.clear();
        expert_ids.resize(b, 0);
        combine_weights.clear();
        combine_weights.resize(b, 0.0);
        let cursor = &mut scratch.cursor;
        cursor.clear();
        cursor.extend_from_slice(offsets);
        for i in 0..flat_tokens.len() {
            if !retained[i] {
                continue;
            }
            let e = flat_experts[i];
            let pos = cursor[e];
            cursor[e] += 1;
            token_ids[pos] = flat_tokens[i];
            expert_ids[pos] = e;
            combine_weights[pos] = flat_weights[i];
        }
        out.tokens_per_expert.clear();
        out.tokens_per_expert
            .extend((0..num_experts).map(|e| offsets[e + 1] - offsets[e]));
        out.dropped = dropped;
    }

    /// Entries destined for each of `n_parts` equal expert shards
    /// (`E % n_parts == 0`): returns per-shard counts, i.e. the all-to-all-v
    /// send counts of the dispatch stage.
    pub fn counts_per_shard(&self, n_parts: usize) -> Vec<usize> {
        let e = self.tokens_per_expert.len();
        assert_eq!(
            e % n_parts,
            0,
            "experts {e} not divisible into {n_parts} shards"
        );
        let per = e / n_parts;
        self.tokens_per_expert
            .chunks(per)
            .map(|c| c.iter().sum())
            .collect()
    }

    /// Internal consistency checks (used by tests and debug assertions).
    pub fn validate(&self, num_tokens: usize) {
        assert_eq!(self.token_ids.len(), self.expert_ids.len());
        assert_eq!(self.token_ids.len(), self.combine_weights.len());
        let total: usize = self.tokens_per_expert.iter().sum();
        assert_eq!(
            total,
            self.token_ids.len(),
            "tokens_per_expert sum mismatch"
        );
        // expert_ids non-decreasing and consistent with tokens_per_expert.
        let mut idx = 0;
        for (e, &cnt) in self.tokens_per_expert.iter().enumerate() {
            for _ in 0..cnt {
                assert_eq!(
                    self.expert_ids[idx], e,
                    "expert segment out of order at {idx}"
                );
                idx += 1;
            }
        }
        assert!(
            self.token_ids.iter().all(|&t| t < num_tokens),
            "token id out of range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::Router;
    use xmoe_tensor::Tensor;

    fn gate(s: usize, h: usize, e: usize, k: usize, seed: u64) -> GatingOutput {
        let router = Router::new(h, e, k, seed);
        let tokens = Tensor::rand_uniform(s, h, 1.0, seed + 1000);
        router.gate(&tokens)
    }

    #[test]
    fn no_drops_with_ample_capacity() {
        let g = gate(32, 16, 8, 3, 1);
        let pft = Pft::construct(&g, 8, 1_000, DropPolicy::CapacityOnly);
        pft.validate(32);
        assert_eq!(pft.len(), 32 * 3);
        assert_eq!(pft.dropped, 0);
    }

    #[test]
    fn expert_segments_are_contiguous_and_sorted() {
        let g = gate(64, 16, 8, 4, 2);
        let pft = Pft::construct(&g, 8, 1_000, DropPolicy::CapacityOnly);
        pft.validate(64);
        for w in pft.expert_ids.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn capacity_limits_each_expert() {
        let g = gate(128, 16, 4, 2, 3);
        let cap = 10;
        let pft = Pft::construct(&g, 4, cap, DropPolicy::CapacityOnly);
        pft.validate(128);
        assert!(pft.tokens_per_expert.iter().all(|&c| c <= cap));
        assert_eq!(pft.len() + pft.dropped, 128 * 2);
    }

    #[test]
    fn overflow_keeps_highest_weight_entries() {
        // Force every token to expert 0 with distinct weights.
        let g = GatingOutput {
            top_experts: vec![0, 0, 0, 0],
            combine_weights: vec![0.1, 0.9, 0.5, 0.7],
            top_logits: vec![1.0; 4],
            k: 1,
            scores: Tensor::zeros(4, 1),
        };
        let pft = Pft::construct(&g, 1, 2, DropPolicy::CapacityOnly);
        assert_eq!(pft.len(), 2);
        // Tokens 1 (0.9) and 3 (0.7) survive; segment preserves token order.
        assert_eq!(pft.token_ids, vec![1, 3]);
        assert_eq!(pft.combine_weights, vec![0.9, 0.7]);
        assert_eq!(pft.dropped, 2);
    }

    #[test]
    fn negative_logit_policy_prefilters() {
        let g = GatingOutput {
            top_experts: vec![0, 1, 1, 0],
            combine_weights: vec![0.6, 0.4, 0.8, 0.2],
            top_logits: vec![1.0, -0.5, 0.3, -0.1],
            k: 2,
            scores: Tensor::zeros(2, 2),
        };
        let xmoe = Pft::construct(&g, 2, 100, DropPolicy::CapacityOnly);
        let dsmoe = Pft::construct(&g, 2, 100, DropPolicy::CapacityAndNegativeLogit);
        assert_eq!(xmoe.len(), 4);
        assert_eq!(dsmoe.len(), 2, "negative-logit entries must be dropped");
        assert_eq!(dsmoe.dropped, 2);
        // X-MoE retains strictly more tokens (the §5.6 observation).
        assert!(xmoe.len() > dsmoe.len());
    }

    #[test]
    fn counts_per_shard_partition_totals() {
        let g = gate(50, 16, 8, 2, 5);
        let pft = Pft::construct(&g, 8, 1_000, DropPolicy::CapacityOnly);
        let counts = pft.counts_per_shard(4);
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), pft.len());
        // Shard 0 covers experts 0..2.
        assert_eq!(
            counts[0],
            pft.tokens_per_expert[0] + pft.tokens_per_expert[1]
        );
    }

    #[test]
    fn construction_is_deterministic() {
        let g = gate(40, 16, 8, 3, 9);
        let a = Pft::construct(&g, 8, 7, DropPolicy::CapacityOnly);
        let b = Pft::construct(&g, 8, 7, DropPolicy::CapacityOnly);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_yields_empty_pft() {
        let g = GatingOutput {
            top_experts: vec![],
            combine_weights: vec![],
            top_logits: vec![],
            k: 2,
            scores: Tensor::zeros(0, 4),
        };
        let pft = Pft::construct(&g, 4, 10, DropPolicy::CapacityOnly);
        assert!(pft.is_empty());
        assert_eq!(pft.tokens_per_expert, vec![0; 4]);
    }

    #[test]
    fn construct_into_matches_owned_across_reuse() {
        let mut scratch = PftScratch::default();
        let mut pooled = Pft {
            token_ids: Vec::new(),
            expert_ids: Vec::new(),
            tokens_per_expert: Vec::new(),
            combine_weights: Vec::new(),
            dropped: 0,
        };
        // Reuse the same scratch + output across differently-shaped batches
        // and both drop policies: results must equal the owned constructor.
        for (seed, cap, policy) in [
            (11, 1_000, DropPolicy::CapacityOnly),
            (12, 5, DropPolicy::CapacityOnly),
            (13, 7, DropPolicy::CapacityAndNegativeLogit),
            (11, 3, DropPolicy::CapacityAndNegativeLogit),
        ] {
            let g = gate(40, 16, 8, 3, seed);
            Pft::construct_into(&g, 8, cap, policy, &mut scratch, &mut pooled);
            assert_eq!(pooled, Pft::construct(&g, 8, cap, policy));
        }
    }
}
