//! X-MoE core: the paper's contribution and its baselines.
//!
//! Modules map one-to-one onto the paper's design sections:
//!
//! * [`config`] — model/parallelism configurations, including the Table 3
//!   evaluation presets and the size-equivalent conventional vs
//!   expert-specialized model pairs of §3.2.
//! * [`gating`] — top-k softmax router with the two token-drop policies
//!   distinguished in §5.6 (capacity-only for X-MoE, negative-logit +
//!   capacity for DeepSpeed-MoE).
//! * [`pft`] — the Padding-Free Token buffer and its construction routine
//!   (Listing 1 / Appendix B.2).
//! * [`expert`] — fine-grained expert FFNs and per-rank expert shards.
//! * [`pipeline`] — the padding-free MoE layer (§4.1) and the dense
//!   zero-padded GShard/DeepSpeed-MoE baseline (Appendix B.1), both in
//!   single-rank and distributed (expert-parallel) forms.
//! * [`rbd`] — hierarchical Redundancy-Bypassing Dispatch (§4.2).
//! * [`ssmb`] — hybrid parallelism with sequence-sharded MoE blocks (§4.3).
//! * [`layer`] — the ergonomic [`MoeLayer`] bundle (router + experts +
//!   spec) most callers start from.
//! * [`analysis`] — routing analytics: load balance, entropy,
//!   co-activation, realized expert combinations.
//! * [`memory`] — analytic activation/model-state memory accounting
//!   (§3.2, Table 2/4, Fig 3/13, Appendix C.2).
//! * [`perf`] — the analytic performance model behind the throughput and
//!   scaling experiments (Fig 9/10/11/12/14/20, Table 5).
//! * [`plan`] — the auto-mapping planner: enumerate legal (PP, TP, EP, DP)
//!   foldings, bound them with the memory model, price them with the cost
//!   model, keep the Pareto frontier.

pub mod analysis;
pub mod config;
pub mod expert;
pub mod gating;
pub mod layer;
pub mod memory;
pub mod perf;
pub mod pft;
pub mod pipeline;
pub mod plan;
pub mod rbd;
pub mod ssmb;

pub use config::{DType, MoeModelConfig, ParallelConfig};
pub use expert::{Expert, ExpertShard};
pub use gating::{DropPolicy, GatingOutput, Router, RouterGuard};
pub use layer::MoeLayer;
pub use pft::Pft;
