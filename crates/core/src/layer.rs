//! High-level MoE layer handle: bundles router, expert shard and layer
//! spec behind one constructor — the entry point a downstream user reaches
//! for first.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{DetRng, Tensor};

use crate::config::MoeModelConfig;
use crate::expert::ExpertShard;
use crate::gating::{DropPolicy, Router};
use crate::pipeline::{self, MoeLayerSpec};
use crate::rbd::{self, RbdComms};

/// One MoE layer instantiated from a [`MoeModelConfig`].
///
/// ```
/// use xmoe_core::config::MoeModelConfig;
/// use xmoe_core::layer::MoeLayer;
/// use xmoe_tensor::Tensor;
///
/// // A scaled-down DeepSeek-style layer: 16 experts, top-4.
/// let cfg = MoeModelConfig::custom("demo", 64, 32, 16, 16, 4, 1);
/// let layer = MoeLayer::single_rank(&cfg, 42);
/// let tokens = Tensor::rand_uniform(64, 32, 1.0, 7);
/// let out = layer.forward(&tokens);
/// assert_eq!(out.shape(), (64, 32));
/// ```
pub struct MoeLayer {
    pub router: Router,
    pub experts: ExpertShard,
    pub spec: MoeLayerSpec,
}

impl MoeLayer {
    /// All experts on one rank — the reference configuration.
    pub fn single_rank(cfg: &MoeModelConfig, seed: u64) -> Self {
        Self::for_rank(cfg, 0, 1, seed)
    }

    /// The shard of the layer owned by `rank` of an EP group of `world`
    /// ranks. All ranks derive identical router weights and consistent
    /// expert weights from `seed`.
    pub fn for_rank(cfg: &MoeModelConfig, rank: usize, world: usize, seed: u64) -> Self {
        let router = Router::new(cfg.hidden, cfg.num_experts, cfg.top_k, seed);
        let experts = ExpertShard::for_rank(
            rank,
            world,
            cfg.num_experts,
            cfg.hidden,
            cfg.ffn_hidden,
            seed ^ 0xE0,
        );
        let spec = MoeLayerSpec::new(cfg.num_experts, cfg.expert_capacity(cfg.seq_len))
            .with_policy(DropPolicy::CapacityOnly);
        Self {
            router,
            experts,
            spec,
        }
    }

    /// Override the per-expert capacity (e.g. for a different local batch).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.spec.capacity = capacity;
        self
    }

    /// Override the drop policy.
    pub fn with_policy(mut self, policy: DropPolicy) -> Self {
        self.spec = self.spec.with_policy(policy);
        self
    }

    /// Single-rank forward (requires the full expert set).
    pub fn forward(&self, tokens: &Tensor) -> Tensor {
        pipeline::padding_free::forward_single(tokens, &self.router, &self.experts, &self.spec)
    }

    /// Forward through any [`pipeline::Pipeline`] under an explicit
    /// execution context — pooling, transport and overlap are properties
    /// of the `ctx`, not of the entry point:
    ///
    /// ```
    /// use xmoe_core::config::MoeModelConfig;
    /// use xmoe_core::layer::MoeLayer;
    /// use xmoe_core::pipeline::{ExecCtx, PaddingFreePipeline};
    /// use xmoe_tensor::Tensor;
    ///
    /// let cfg = MoeModelConfig::custom("demo", 64, 32, 16, 16, 4, 1);
    /// let layer = MoeLayer::single_rank(&cfg, 42);
    /// let tokens = Tensor::rand_uniform(64, 32, 1.0, 7);
    /// let out = layer
    ///     .forward_with(&tokens, &PaddingFreePipeline, &mut ExecCtx::single())
    ///     .unwrap();
    /// assert_eq!(out.shape(), (64, 32));
    /// ```
    pub fn forward_with(
        &self,
        tokens: &Tensor,
        pipeline: &dyn pipeline::Pipeline,
        ctx: &mut pipeline::ExecCtx,
    ) -> Result<Tensor, pipeline::PipelineError> {
        pipeline.forward(tokens, &self.router, &self.experts, &self.spec, ctx)
    }

    /// Expert-parallel forward over `ep` with the plain uneven all-to-all.
    pub fn forward_ep(
        &self,
        tokens: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        pipeline::padding_free::forward_ep(
            tokens,
            &self.router,
            &self.experts,
            &self.spec,
            ep,
            clock,
        )
    }

    /// Expert-parallel forward with Redundancy-Bypassing Dispatch.
    pub fn forward_ep_rbd(
        &self,
        tokens: &Tensor,
        comms: &RbdComms,
        rng: &mut DetRng,
        clock: &mut SimClock,
    ) -> Result<Tensor, pipeline::PipelineError> {
        rbd::forward_ep_rbd(
            tokens,
            &self.router,
            &self.experts,
            &self.spec,
            comms,
            rng,
            clock,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmoe_collectives::SimCluster;

    fn demo_cfg() -> MoeModelConfig {
        MoeModelConfig::custom("demo", 32, 16, 8, 8, 3, 1)
    }

    #[test]
    fn single_rank_forward_shapes() {
        let cfg = demo_cfg();
        let layer = MoeLayer::single_rank(&cfg, 1);
        let tokens = Tensor::rand_uniform(32, 16, 1.0, 2);
        assert_eq!(layer.forward(&tokens).shape(), (32, 16));
    }

    #[test]
    fn sharded_layers_match_single_rank() {
        let cfg = demo_cfg();
        let reference = MoeLayer::single_rank(&cfg, 3).with_capacity(10_000);
        let tokens = Tensor::rand_uniform(32, 16, 1.0, 4);
        let want = reference.forward(&tokens);
        let got = {
            let cfg = &cfg;
            let tokens = &tokens;
            SimCluster::frontier(4).run(move |ctx| {
                let layer = MoeLayer::for_rank(cfg, ctx.rank, 4, 3).with_capacity(10_000);
                layer
                    .forward_ep(tokens, &ctx.world, &mut ctx.clock)
                    .unwrap()
            })
        };
        for g in &got {
            assert!(g.allclose(&want, 1e-4));
        }
    }

    #[test]
    fn rbd_variant_matches_plain() {
        let cfg = demo_cfg();
        let tokens = Tensor::rand_uniform(24, 16, 1.0, 6);
        let outs = {
            let cfg = &cfg;
            let tokens = &tokens;
            SimCluster::frontier(8).run(move |ctx| {
                let layer = MoeLayer::for_rank(cfg, ctx.rank, 8, 5).with_capacity(10_000);
                let plain = layer
                    .forward_ep(tokens, &ctx.world, &mut ctx.clock)
                    .unwrap();
                let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                let mut rng = DetRng::new(60 + ctx.rank as u64);
                let with_rbd = layer
                    .forward_ep_rbd(tokens, &comms, &mut rng, &mut ctx.clock)
                    .unwrap();
                plain.allclose(&with_rbd, 1e-4)
            })
        };
        assert!(outs.iter().all(|&ok| ok));
    }
}
