//! SSMB — hybrid parallelism with Sequence-Sharded MoE Blocks (paper §4.3,
//! Fig 8).
//!
//! Dense (attention) blocks run tensor parallelism, which **replicates the
//! full input sequence on every TP rank**. Entering the MoE block with those
//! replicas means the dominant activations (`A_dispatch`, `A_combine`) are
//! duplicated TP-fold. The SSMB insight: every MoE-block op (gating,
//! dispatch, expert FFN, combine) is token-wise, so each TP rank can keep
//! only its `S / TP` slice of the sequence, act as an EP rank over the
//! shard, and an all-gather after combine restores the replicated layout the
//! next TP block expects. Activation memory for the MoE block drops by the
//! TP degree; the only extra communication is one all-gather of `[S, H]`
//! per layer (and one in backward).

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::Tensor;

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pipeline::{padding_free, MoeLayerSpec};

/// The communicators of one SSMB-parallel worker.
pub struct SsmbComms {
    /// The EP group the MoE block runs over (all TP x DP workers).
    pub ep: Communicator,
    /// The TP group whose ranks hold replicas of the same sequence; the
    /// sequence is sharded across it and re-gathered at block exit.
    pub tp: Communicator,
}

impl SsmbComms {
    /// Collectively build from a world communicator: TP groups are
    /// consecutive ranks of size `tp`, the EP group is the whole world.
    pub fn create(
        world: &Communicator,
        tp: usize,
        clock: &mut SimClock,
    ) -> Result<Self, CommError> {
        assert!(
            tp >= 1 && world.size().is_multiple_of(tp),
            "TP must divide world size"
        );
        let tp_color = world.rank() / tp;
        let tp_comm = world.split(tp_color, clock)?;
        Ok(Self {
            ep: world.clone(),
            tp: tp_comm,
        })
    }
}

/// The `S / TP` slice of the replicated sequence this TP rank keeps inside
/// the MoE block (step ① of Fig 8: "drop a fraction of the tokens").
pub fn shard_range(seq_len: usize, tp_size: usize, tp_rank: usize) -> (usize, usize) {
    assert_eq!(seq_len % tp_size, 0, "sequence length must divide TP size");
    let per = seq_len / tp_size;
    (tp_rank * per, (tp_rank + 1) * per)
}

/// Forward one MoE block under SSMB.
///
/// `tokens` is the full replicated `[S, H]` sequence every TP rank holds
/// coming out of the dense block. Each rank keeps its shard, runs the
/// padding-free MoE pipeline as an EP rank over `comms.ep`, then all-gathers
/// the shard outputs over `comms.tp` to restore the full `[S, H]` sequence.
///
/// `capacity` inside `spec` applies per shard: the per-expert retention
/// budget scales with the local token count, consistent with how each DP
/// rank already applies capacity to its own local batch.
pub fn forward_ssmb(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &SsmbComms,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let (start, end) = shard_range(tokens.rows(), comms.tp.size(), comms.tp.rank());
    // ① drop the other TP ranks' token slices.
    let my_slice = tokens.slice_rows(start, end);
    // ② run the MoE block over the shard, with this worker as an EP rank.
    let local_out = padding_free::forward_ep(&my_slice, router, shard, spec, &comms.ep, clock)?;
    // ③ all-gather the shard outputs to restore the replicated sequence.
    let gathered = comms.tp.all_gather(local_out.into_vec(), clock)?;
    clock.commit("ssmb_allgather");
    let hidden = tokens.cols();
    Ok(crate::pipeline::vecs_to_tensor(gathered, hidden))
}

/// [`forward_ssmb`] with the MoE block's dispatch/combine exchanges
/// pipelined against the expert GEMMs in `chunks` expert-contiguous pieces
/// (see [`padding_free::forward_ep_overlap`]). Bitwise identical output;
/// the trailing all-gather stays serial (it is a layout restore, not part
/// of the dispatch–compute critical path).
#[allow(clippy::too_many_arguments)]
pub fn forward_ssmb_overlap(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &SsmbComms,
    chunks: usize,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let (start, end) = shard_range(tokens.rows(), comms.tp.size(), comms.tp.rank());
    let my_slice = tokens.slice_rows(start, end);
    let local_out =
        padding_free::forward_ep_overlap(&my_slice, router, shard, spec, chunks, &comms.ep, clock)?;
    let gathered = comms.tp.all_gather(local_out.into_vec(), clock)?;
    clock.commit("ssmb_allgather");
    let hidden = tokens.cols();
    Ok(crate::pipeline::vecs_to_tensor(gathered, hidden))
}

/// The complete X-MoE data path: SSMB sequence sharding composed with
/// Redundancy-Bypassing Dispatch — each TP rank keeps its `S/TP` shard,
/// dispatches it with pilot/replica routing over the hierarchical network,
/// and the trailing all-gather restores the replicated layout.
#[allow(clippy::too_many_arguments)]
pub fn forward_ssmb_rbd(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &SsmbComms,
    rbd: &crate::rbd::RbdComms,
    rng: &mut xmoe_tensor::DetRng,
    clock: &mut SimClock,
) -> Result<Tensor, crate::pipeline::PipelineError> {
    let (start, end) = shard_range(tokens.rows(), comms.tp.size(), comms.tp.rank());
    let my_slice = tokens.slice_rows(start, end);
    let local_out = crate::rbd::forward_ep_rbd(&my_slice, router, shard, spec, rbd, rng, clock)?;
    let gathered = comms.tp.all_gather(local_out.into_vec(), clock)?;
    clock.commit("ssmb_allgather");
    let hidden = tokens.cols();
    Ok(crate::pipeline::vecs_to_tensor(gathered, hidden))
}

/// Reference without sequence sharding (the "TED-style" MoE entry): every
/// TP rank redundantly processes the full replicated sequence.
pub fn forward_unsharded(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &SsmbComms,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    padding_free::forward_ep(tokens, router, shard, spec, &comms.ep, clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmoe_collectives::SimCluster;

    #[test]
    fn shard_ranges_partition_the_sequence() {
        assert_eq!(shard_range(8, 2, 0), (0, 4));
        assert_eq!(shard_range(8, 2, 1), (4, 8));
        assert_eq!(shard_range(12, 4, 2), (6, 9));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn shard_range_requires_divisibility() {
        let _ = shard_range(10, 4, 0);
    }

    #[test]
    fn ssmb_matches_unsharded_output() {
        // 4 ranks: TP=2, DP=2; every rank holds the same replicated
        // sequence per DP group. With ample capacity, sharding the sequence
        // must not change the MoE block output (token-wise ops).
        let (s, h, f, e, k) = (16, 12, 8, 8, 3);
        let router = Router::new(h, e, k, 61);
        let spec = MoeLayerSpec::new(e, 10_000);
        let world = 4;
        let tp = 2;
        let run = |use_ssmb: bool| {
            let router = &router;
            let spec = &spec;
            SimCluster::frontier(world).run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 62);
                // DP group = rank / tp; same sequence within a TP group.
                let dp_group = ctx.rank / tp;
                let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + dp_group as u64);
                let comms = SsmbComms::create(&ctx.world, tp, &mut ctx.clock).unwrap();
                if use_ssmb {
                    forward_ssmb(&tokens, router, &shard, spec, &comms, &mut ctx.clock).unwrap()
                } else {
                    forward_unsharded(&tokens, router, &shard, spec, &comms, &mut ctx.clock)
                        .unwrap()
                }
            })
        };
        let ssmb = run(true);
        let unsharded = run(false);
        for (r, (a, b)) in ssmb.iter().zip(&unsharded).enumerate() {
            assert!(
                a.allclose(b, 1e-4),
                "rank {r}: SSMB output diverges, max diff {}",
                a.max_abs_diff(b)
            );
        }
    }

    #[test]
    fn ssmb_output_is_replicated_within_tp_group() {
        let (s, h, f, e, k) = (8, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 71);
        let spec = MoeLayerSpec::new(e, 10_000);
        let out = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 72);
            let dp_group = ctx.rank / 2;
            let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + dp_group as u64);
            let comms = SsmbComms::create(&ctx.world, 2, &mut ctx.clock).unwrap();
            forward_ssmb(&tokens, &router, &shard, &spec, &comms, &mut ctx.clock).unwrap()
        });
        assert!(out[0].allclose(&out[1], 1e-6), "TP group 0 replicas differ");
        assert!(out[2].allclose(&out[3], 1e-6), "TP group 1 replicas differ");
    }

    #[test]
    fn ssmb_overlap_is_bitwise_identical() {
        let (s, h, f, e, k) = (16, 12, 8, 8, 3);
        let router = Router::new(h, e, k, 61);
        let spec = MoeLayerSpec::new(e, 10_000);
        let world = 4;
        let tp = 2;
        let run = |chunks: Option<usize>| {
            let router = &router;
            let spec = &spec;
            SimCluster::frontier(world).run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 62);
                let dp_group = ctx.rank / tp;
                let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + dp_group as u64);
                let comms = SsmbComms::create(&ctx.world, tp, &mut ctx.clock).unwrap();
                match chunks {
                    Some(c) => forward_ssmb_overlap(
                        &tokens,
                        router,
                        &shard,
                        spec,
                        &comms,
                        c,
                        &mut ctx.clock,
                    )
                    .unwrap(),
                    None => {
                        forward_ssmb(&tokens, router, &shard, spec, &comms, &mut ctx.clock).unwrap()
                    }
                }
            })
        };
        let serial = run(None);
        let overlapped = run(Some(2));
        for (r, (a, b)) in serial.iter().zip(&overlapped).enumerate() {
            assert!(
                a.allclose(b, 0.0),
                "rank {r}: SSMB overlap not bitwise identical, max diff {}",
                a.max_abs_diff(b)
            );
        }
    }

    #[test]
    fn ssmb_charges_the_allgather() {
        let (s, h, f, e, k) = (8, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 81);
        let spec = MoeLayerSpec::new(e, 10_000);
        let buckets = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 82);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 83);
            let comms = SsmbComms::create(&ctx.world, 2, &mut ctx.clock).unwrap();
            let _ = forward_ssmb(&tokens, &router, &shard, &spec, &comms, &mut ctx.clock).unwrap();
            ctx.clock.bucket("ssmb_allgather")
        });
        assert!(
            buckets.iter().all(|&t| t > 0.0),
            "all-gather must be charged: {buckets:?}"
        );
    }

    #[test]
    fn full_xmoe_path_ssmb_plus_rbd_matches_reference() {
        // The paper's complete system: 16 ranks (2 simulated nodes),
        // TP = 2 sequence sharding, RBD transport — output must equal the
        // plain SSMB forward (and hence the single-rank reference).
        let (s, h, f, e, k) = (16, 12, 8, 16, 5);
        let router = Router::new(h, e, k, 131);
        let spec = MoeLayerSpec::new(e, 10_000);
        let run = |use_rbd: bool| {
            let router = &router;
            let spec = &spec;
            SimCluster::frontier(16).run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, 16, e, h, f, 132);
                let dp_group = ctx.rank / 2;
                let tokens = Tensor::rand_uniform(s, h, 1.0, 700 + dp_group as u64);
                let comms = SsmbComms::create(&ctx.world, 2, &mut ctx.clock).unwrap();
                if use_rbd {
                    let rbd = crate::rbd::RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                    let mut rng = xmoe_tensor::DetRng::new(133 + ctx.rank as u64);
                    forward_ssmb_rbd(
                        &tokens,
                        router,
                        &shard,
                        spec,
                        &comms,
                        &rbd,
                        &mut rng,
                        &mut ctx.clock,
                    )
                    .unwrap()
                } else {
                    forward_ssmb(&tokens, router, &shard, spec, &comms, &mut ctx.clock).unwrap()
                }
            })
        };
        let with_rbd = run(true);
        let plain = run(false);
        for (r, (a, b)) in with_rbd.iter().zip(&plain).enumerate() {
            assert!(
                a.allclose(b, 1e-4),
                "rank {r}: SSMB+RBD diverges from SSMB, max diff {}",
                a.max_abs_diff(b)
            );
        }
    }

    #[test]
    fn tp1_ssmb_degenerates_to_plain_ep() {
        let (s, h, f, e, k) = (8, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 91);
        let spec = MoeLayerSpec::new(e, 10_000);
        let out = SimCluster::frontier(2).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 2, e, h, f, 92);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 93 + ctx.rank as u64);
            let comms = SsmbComms::create(&ctx.world, 1, &mut ctx.clock).unwrap();
            let ssmb =
                forward_ssmb(&tokens, &router, &shard, &spec, &comms, &mut ctx.clock).unwrap();
            let plain = padding_free::forward_ep(
                &tokens,
                &router,
                &shard,
                &spec,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap();
            ssmb.allclose(&plain, 1e-6)
        });
        assert!(out.iter().all(|&ok| ok));
    }
}
