//! Analytic memory accounting (paper §3.2, §4.3, Table 2/4, Fig 3/13,
//! Appendix C.2).
//!
//! The paper's trainability results (Fig 9, Table 5) are memory-accounting
//! outcomes: a configuration "trains" iff per-GPU model states + activations
//! fit in HBM. This module reproduces that accounting for each system:
//!
//! * **DeepSpeed-MoE** — dense `[S, E, C]` dispatch/combine masks (f32) plus
//!   zero-padded `[E, C, H]` buffers and padded intermediates;
//! * **DeepSpeed-TED** — same activations (TP does *not* reduce the MoE
//!   activations, §4.3), expert weights additionally sharded by TP;
//! * **Tutel** — no giant masks (sparse kernels) but padded buffers, a fused
//!   single intermediate, and the fp32 `A_combine` the paper observes on
//!   AMD GPUs (§5.4.1);
//! * **X-MoE** — PFT: only routed tokens, ERI-array metadata, optional SSMB
//!   sequence sharding dividing MoE activations by the TP degree.
//!
//! All byte quantities are exact formula evaluations; a single documented
//! allocator-slack constant covers fragmentation (the gap between the
//! paper's "theoretical" 1.125 GiB and measured 1.21 GiB in Table 4).

use crate::config::{MoeModelConfig, ParallelConfig};

/// Which training system's data layout to account for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoeSystem {
    DsMoe,
    DsTed,
    Tutel,
    XMoe,
}

impl MoeSystem {
    pub const ALL: [MoeSystem; 4] = [
        MoeSystem::DsMoe,
        MoeSystem::DsTed,
        MoeSystem::Tutel,
        MoeSystem::XMoe,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MoeSystem::DsMoe => "DeepSpeed-MoE",
            MoeSystem::DsTed => "DeepSpeed-TED",
            MoeSystem::Tutel => "Tutel",
            MoeSystem::XMoe => "X-MoE",
        }
    }
}

/// Allocator slack on top of exact tensor bytes for X-MoE's dynamically
/// sized PFT buffers (uneven per-step shapes fragment the caching
/// allocator). Calibrated from Table 4's measured 1.21 GiB vs theoretical
/// 1.125 GiB; the padded baselines allocate statically shaped buffers whose
/// measured values match the formulas directly (2.81 / 1.95 GiB).
pub const ALLOCATOR_SLACK: f64 = 1.075;

/// Per-system allocator slack (see [`ALLOCATOR_SLACK`]).
pub fn allocator_slack(sys: MoeSystem) -> f64 {
    match sys {
        MoeSystem::XMoe => ALLOCATOR_SLACK,
        _ => 1.0,
    }
}

/// Fixed per-GPU framework overhead (runtime, RCCL buffers, CUDA/HIP
/// context): a flat reserve subtracted from HBM.
pub const FRAMEWORK_OVERHEAD_BYTES: u64 = 1_500_000_000;

/// One GiB in bytes (Table 4 is reported in GiB).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Fraction of HBM a training job can actually use: the caching allocator's
/// fragmentation headroom, RCCL channel buffers and cudagraph/hipgraph pools
/// make the last ~6% unusable in practice. A configuration within this
/// margin of the device capacity OOMs intermittently on real systems — the
/// paper's Tutel-at-128-GPUs failure (Fig 10b) sits exactly in this band.
pub const USABLE_HBM_FRACTION: f64 = 0.94;

/// Per-MoE-layer activation breakdown in bytes (Table 2's four tensors plus
/// the baseline's mask/metadata overhead).
#[derive(Clone, Copy, Debug, Default)]
pub struct ActBreakdown {
    /// `A_dispatch` — dispatched expert inputs.
    pub dispatch: u64,
    /// `A_combine` — expert outputs awaiting combine.
    pub combine: u64,
    /// `A_interm` — intermediate activations between the expert FFN layers.
    pub interm: u64,
    /// Dispatch-mask / ERI-array metadata.
    pub mask_meta: u64,
}

impl ActBreakdown {
    pub fn total(&self) -> u64 {
        self.dispatch + self.combine + self.interm + self.mask_meta
    }
}

/// Activation memory of one MoE layer on one rank.
///
/// ```
/// use xmoe_core::config::MoeModelConfig;
/// use xmoe_core::memory::{moe_layer_activation, MoeSystem, GIB};
/// let cfg = MoeModelConfig::large();
/// let x = moe_layer_activation(&cfg, MoeSystem::XMoe, 4096, 1);
/// let ds = moe_layer_activation(&cfg, MoeSystem::DsMoe, 4096, 1);
/// // Table 4's ordering: the padded baseline needs over twice the memory.
/// assert!(ds.total() as f64 > 2.0 * x.total() as f64);
/// assert!((x.total() as f64 / GIB - 1.13).abs() < 0.05);
/// ```
///
/// * `tokens` — tokens entering the MoE block on this rank (micro-batch x
///   sequence length). Under SSMB pass the *full* token count and the
///   sharding divisor in `seq_shard`; padded systems always see the full
///   count (that is the §4.3 bottleneck).
/// * `seq_shard` — SSMB TP divisor (1 = no sequence sharding). Only X-MoE
///   honours it.
pub fn moe_layer_activation(
    cfg: &MoeModelConfig,
    sys: MoeSystem,
    tokens: usize,
    seq_shard: usize,
) -> ActBreakdown {
    let d = cfg.dtype.bytes();
    let h = cfg.hidden as u64;
    let f = cfg.ffn_hidden as u64;
    let k = cfg.top_k as u64;
    let c = cfg.expert_capacity(tokens) as u64;
    let e = cfg.num_experts as u64;
    let s = tokens as u64;
    match sys {
        MoeSystem::DsMoe | MoeSystem::DsTed => {
            // Padded slots across all experts: E * C (= c k S by construction).
            let padded = e * c;
            ActBreakdown {
                dispatch: padded * h * d,
                combine: padded * h * d,
                interm: 2 * padded * f * d,
                // Two dense [S, E, C] f32 masks: the one-hot dispatch mask
                // and the combine-weights mask (§3.1: these dominate,
                // > 70% of activation memory for expert-specialized MoEs).
                mask_meta: 2 * s * e * c * 4,
            }
        }
        MoeSystem::Tutel => {
            let padded = e * c;
            ActBreakdown {
                dispatch: padded * h * d,
                // Tutel's kernel forces fp32 on A_combine on AMD (§5.4.1).
                combine: padded * h * 4,
                // Fused expert FFN: a single intermediate buffer.
                interm: padded * f * d,
                // Sparse index metadata, not dense masks.
                mask_meta: padded * 8,
            }
        }
        MoeSystem::XMoe => {
            let local = s / seq_shard.max(1) as u64;
            // PFT stores only routed entries; balanced routing => B = k*S.
            let b = k * local;
            ActBreakdown {
                dispatch: b * h * d,
                combine: b * h * d,
                interm: 2 * b * f * d,
                // ERI-arrays: token_ids + expert_ids (8B) + weights (4B) +
                // per-expert counts.
                mask_meta: b * 20 + e * 8,
            }
        }
    }
}

/// Theoretical minimum (paper Table 4 "Theoretical"): the four Table 2
/// tensors at `B = k * S`, nothing else.
pub fn theoretical_activation(cfg: &MoeModelConfig, tokens: usize) -> u64 {
    let d = cfg.dtype.bytes();
    let b = cfg.top_k as u64 * tokens as u64;
    2 * b * cfg.hidden as u64 * d + 2 * b * cfg.ffn_hidden as u64 * d
}

/// Dense (attention) activation bytes per layer per rank. The standard
/// Megatron estimate is ~`S * H * (10 + fraction of attention map)` bytes at
/// bf16 with selective recompute; we use a flat `8 * S * H * dtype`, divided
/// by TP (Megatron TP shards most dense activations).
pub fn dense_activation_per_layer(cfg: &MoeModelConfig, tokens: usize, tp: usize) -> u64 {
    8 * tokens as u64 * cfg.hidden as u64 * cfg.dtype.bytes() / tp.max(1) as u64
}

/// Per-GPU model-state breakdown in bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct StateBreakdown {
    pub params: u64,
    pub grads: u64,
    pub optimizer: u64,
}

impl StateBreakdown {
    pub fn total(&self) -> u64 {
        self.params + self.grads + self.optimizer
    }
}

/// Mixed-precision optimizer bytes per parameter (fp32 master + Adam m/v).
const OPT_BYTES_PER_PARAM: u64 = 12;

/// Model states per GPU under the given system/parallel config.
///
/// Sharding rules:
/// * expert parameters: divided by EP, and additionally by TP under TED
///   (tensor-sliced experts); replicated over the expert-DP group
///   `world / (EP * expert_tp)`;
/// * dense parameters: divided by TP, replicated over `world / TP`;
/// * ZeRO-1 shards optimizer states over each parameter's DP group;
///   ZeRO-2 also shards gradients.
pub fn model_states_per_gpu(
    cfg: &MoeModelConfig,
    par: &ParallelConfig,
    sys: MoeSystem,
) -> StateBreakdown {
    let d = cfg.dtype.bytes();
    let expert_tp = if sys == MoeSystem::DsTed { par.tp } else { 1 };
    let expert_shard = (par.ep * expert_tp).min(par.world) as u64;
    let expert_params_total =
        cfg.num_layers as u64 * (cfg.expert_params_per_layer() + cfg.router_params_per_layer());
    let expert_params = expert_params_total / expert_shard;
    let expert_dp = (par.world as u64 / expert_shard).max(1);

    let dense_total = cfg.num_layers as u64 * cfg.dense_params_per_layer()
        + 2 * cfg.vocab as u64 * cfg.hidden as u64;
    let dense_params = dense_total / par.tp as u64;
    let dense_dp = (par.world / par.tp).max(1) as u64;

    let params = (expert_params + dense_params) * d;
    let grads = match par.zero_stage {
        0 | 1 => (expert_params + dense_params) * d,
        _ => (expert_params / expert_dp + dense_params / dense_dp) * d,
    };
    let optimizer = match par.zero_stage {
        0 => (expert_params + dense_params) * OPT_BYTES_PER_PARAM,
        _ => {
            expert_params * OPT_BYTES_PER_PARAM / expert_dp
                + dense_params * OPT_BYTES_PER_PARAM / dense_dp
        }
    };
    StateBreakdown {
        params,
        grads,
        optimizer,
    }
}

/// Complete per-GPU memory picture for one configuration.
#[derive(Clone, Copy, Debug)]
pub struct GpuMemory {
    pub states: StateBreakdown,
    /// All layers' MoE activations live at the forward-pass peak.
    pub moe_activations: u64,
    pub dense_activations: u64,
    pub overhead: u64,
}

impl GpuMemory {
    pub fn total(&self) -> u64 {
        self.states.total() + self.moe_activations + self.dense_activations + self.overhead
    }

    /// Does this configuration fit in `hbm_bytes` of device memory,
    /// accounting for the unusable allocator margin
    /// ([`USABLE_HBM_FRACTION`])?
    pub fn fits(&self, hbm_bytes: u64) -> bool {
        (self.total() as f64) <= hbm_bytes as f64 * USABLE_HBM_FRACTION
    }
}

/// Assemble the full per-GPU memory picture.
///
/// `tokens` is the per-rank MoE-block token count (micro-batch sequences x
/// sequence length). SSMB (X-MoE with `par.ssmb`) divides the MoE
/// activations by the TP degree.
pub fn total_per_gpu(cfg: &MoeModelConfig, par: &ParallelConfig, sys: MoeSystem) -> GpuMemory {
    let tokens = par.micro_batch * cfg.seq_len;
    let seq_shard = if sys == MoeSystem::XMoe && par.ssmb {
        par.tp
    } else {
        1
    };
    let per_layer = moe_layer_activation(cfg, sys, tokens, seq_shard).total() as f64;
    let moe_act = (per_layer * cfg.num_layers as f64 * allocator_slack(sys)) as u64;
    let dense_act = dense_activation_per_layer(cfg, tokens, par.tp) * cfg.num_layers as u64;
    GpuMemory {
        states: model_states_per_gpu(cfg, par, sys),
        moe_activations: moe_act,
        dense_activations: dense_act,
        overhead: FRAMEWORK_OVERHEAD_BYTES,
    }
}

/// Per-GPU memory picture of an X-MoE run under a heterogeneous 4D
/// [`ParallelMapping`](xmoe_topology::ParallelMapping): pipeline stages
/// shard the layer stack, attention states shard over its TP×DP fold,
/// expert states over the independent EP×TP×DP fold, and 1F1B keeps
/// `min(microbatches, pp)` microbatches of activations in flight on the
/// deepest rank.
///
/// `micro_batch` is sequences per microbatch per stage-rank. ZeRO-1 is
/// assumed (optimizer states sharded over each parameter's own DP group)
/// — the X-MoE default the planner searches under.
pub fn folded_per_gpu(
    cfg: &MoeModelConfig,
    mapping: &xmoe_topology::ParallelMapping,
    micro_batch: usize,
) -> GpuMemory {
    let d = cfg.dtype.bytes();
    let layers_per_rank = cfg.num_layers.div_ceil(mapping.pp) as u64;

    // Expert states shard over EP x TP of the MoE fold; dense states over
    // the attention fold's TP. The embedding term is charged in full (the
    // first/last stage's worst rank holds it).
    let expert_params = layers_per_rank
        * (cfg.expert_params_per_layer() + cfg.router_params_per_layer())
        / (mapping.moe.ep * mapping.moe.tp) as u64;
    let dense_params = layers_per_rank * cfg.dense_params_per_layer() / mapping.attn.tp as u64
        + 2 * cfg.vocab as u64 * cfg.hidden as u64 / mapping.attn.tp as u64;
    let expert_dp = mapping.moe.dp.max(1) as u64;
    let dense_dp = mapping.attn.dp.max(1) as u64;
    let states = StateBreakdown {
        params: (expert_params + dense_params) * d,
        // ZeRO-1: full grads, sharded optimizer.
        grads: (expert_params + dense_params) * d,
        optimizer: expert_params * OPT_BYTES_PER_PARAM / expert_dp
            + dense_params * OPT_BYTES_PER_PARAM / dense_dp,
    };

    // 1F1B in-flight activations: the first pipeline rank buffers up to
    // min(m, pp) microbatches of its layers' forward state.
    let tokens = micro_batch * cfg.seq_len;
    let in_flight = mapping.microbatches.min(mapping.pp).max(1) as u64;
    let per_layer =
        moe_layer_activation(cfg, MoeSystem::XMoe, tokens, mapping.moe.tp).total() as f64;
    let moe_act = (per_layer
        * (layers_per_rank * in_flight) as f64
        * allocator_slack(MoeSystem::XMoe)) as u64;
    let dense_act =
        dense_activation_per_layer(cfg, tokens, mapping.attn.tp) * layers_per_rank * in_flight;
    GpuMemory {
        states,
        moe_activations: moe_act,
        dense_activations: dense_act,
        overhead: FRAMEWORK_OVERHEAD_BYTES,
    }
}

/// Sweep EP (and TP for TED) choices the way the paper's methodology does
/// (§5.2) and report whether *any* swept configuration fits in HBM;
/// returns the best-fitting config if so.
pub fn best_trainable_config(
    cfg: &MoeModelConfig,
    world: usize,
    sys: MoeSystem,
    hbm_bytes: u64,
) -> Option<ParallelConfig> {
    // The paper's sweep (§5.2) is EP in {32, 64, 128, 256}; on clusters
    // smaller than 32 GPUs the EP size is the world size.
    let mut ep_choices: Vec<usize> = [32usize, 64, 128, 256]
        .into_iter()
        .filter(|&ep| ep <= world && ep <= cfg.num_experts && cfg.num_experts.is_multiple_of(ep))
        .collect();
    if ep_choices.is_empty() {
        ep_choices.push(world.min(cfg.num_experts));
    }
    let tp_choices: &[usize] = match sys {
        MoeSystem::DsTed => &[1, 2, 4, 8],
        MoeSystem::XMoe => &[1, 2, 4],
        _ => &[1],
    };
    let mut best: Option<(u64, ParallelConfig)> = None;
    for &ep in &ep_choices {
        for &tp in tp_choices {
            if tp * ep > world || !world.is_multiple_of(tp * ep) {
                continue;
            }
            for zero in [1u8, 2] {
                let par = ParallelConfig::new(world, ep)
                    .with_tp(tp)
                    .with_zero(zero)
                    .with_ssmb(sys == MoeSystem::XMoe);
                let mem = total_per_gpu(cfg, &par, sys);
                if mem.fits(hbm_bytes) {
                    let t = mem.total();
                    if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                        best = Some((t, par));
                    }
                }
            }
        }
    }
    best.map(|(_, p)| p)
}

// ---------------------------------------------------------------------
// Elastic rebalancing: what one extra expert replica pins on its host.
// ---------------------------------------------------------------------

/// Training-state bytes one extra replica of a single expert pins on its
/// host rank, across all layers: the two FFN matrices in f32 (4 B param +
/// 4 B grad) plus their Adam moments (8 B), i.e. 16 B per parameter. The
/// rebalance policy holds candidate replications against a per-rank budget
/// of this quantity — replication trades exactly this much memory for the
/// split of the hot expert's traffic.
pub fn expert_replica_bytes(hidden: usize, ffn: usize, layers: usize) -> u64 {
    let params = 2 * hidden as u64 * ffn as u64 * layers as u64;
    params * 16
}

// ---------------------------------------------------------------------
// SSMB vs TED trade-off (paper §4.3 and Appendix C.2, Fig 17)
// ---------------------------------------------------------------------

/// Activation bytes SSMB saves per device at TP degree `g` (Appendix C.2
/// Eq. 1): `4 c k S H (g-1)/g`.
pub fn ssmb_activation_saving(cfg: &MoeModelConfig, tokens: usize, g: usize) -> f64 {
    let gf = g as f64;
    4.0 * cfg.capacity_factor * cfg.top_k as f64 * tokens as f64 * cfg.hidden as f64 * (gf - 1.0)
        / gf
}

/// Minimum extra model-state bytes SSMB pays versus TED at TP degree `g`
/// (Appendix C.2 Eq. 2, with EP maximized): `8 H_FFN H (g-1)/g`.
pub fn ssmb_min_model_cost(cfg: &MoeModelConfig, g: usize) -> f64 {
    let gf = g as f64;
    8.0 * cfg.ffn_hidden as f64 * cfg.hidden as f64 * (gf - 1.0) / gf
}

/// Does SSMB save more memory than TED for this model at sequence length
/// `tokens`? Equivalent to the paper's criterion `r = k/H_FFN > 2/(c S)`.
pub fn ssmb_beats_ted(cfg: &MoeModelConfig, tokens: usize) -> bool {
    cfg.ssmb_ratio() > 2.0 / (cfg.capacity_factor * tokens as f64)
}

// ---------------------------------------------------------------------
// Inference-serving accounting: KV cache and per-rank admission budget.
// ---------------------------------------------------------------------

/// KV-cache bytes one token occupies for the whole model on one rank: a K
/// and a V vector of `hidden` per layer at the model dtype. (No GQA/MLA
/// compression modeled; attention heads are unsharded in serving.)
pub fn kv_bytes_per_token(cfg: &MoeModelConfig) -> u64 {
    2 * cfg.num_layers as u64 * cfg.hidden as u64 * cfg.dtype.bytes()
}

/// Model states per GPU for inference: parameters only — no gradients, no
/// optimizer. Experts are EP-sharded over `ep` ranks; dense weights are
/// replicated (serving runs TP=1 per replica in this simulation).
pub fn inference_states_per_gpu(cfg: &MoeModelConfig, ep: usize) -> u64 {
    let d = cfg.dtype.bytes();
    let expert_params =
        cfg.num_layers as u64 * (cfg.expert_params_per_layer() + cfg.router_params_per_layer());
    let dense_params = cfg.num_layers as u64 * cfg.dense_params_per_layer()
        + 2 * cfg.vocab as u64 * cfg.hidden as u64;
    (expert_params / ep.max(1) as u64 + dense_params) * d
}

/// Per-rank KV-cache budget for serving: usable HBM minus inference model
/// states, one layer's worth of forward activations for `batch_tokens`
/// in-flight tokens (forward-only, so layer activations are transient),
/// and the flat framework reserve. Saturates to zero when the model alone
/// exceeds the device.
pub fn serving_kv_budget(
    cfg: &MoeModelConfig,
    ep: usize,
    hbm_bytes: u64,
    batch_tokens: usize,
) -> u64 {
    let usable = hbm_bytes as f64 * USABLE_HBM_FRACTION;
    let states = inference_states_per_gpu(cfg, ep);
    let act = moe_layer_activation(cfg, MoeSystem::XMoe, batch_tokens, 1).total() as f64
        * allocator_slack(MoeSystem::XMoe);
    let budget = usable - states as f64 - act - FRAMEWORK_OVERHEAD_BYTES as f64;
    if budget <= 0.0 {
        0
    } else {
        budget as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn large() -> MoeModelConfig {
        MoeModelConfig::large()
    }

    #[test]
    fn table4_activation_memory_matches_paper() {
        // Paper Table 4 (Large, 256 GPUs, EP=64, per-MoE-layer, GiB):
        // DS-MoE 2.81, Tutel 1.95, X-MoE 1.21, theoretical 1.125.
        let cfg = large();
        let tokens = cfg.seq_len; // micro-batch 1
        let ds = moe_layer_activation(&cfg, MoeSystem::DsMoe, tokens, 1).total() as f64 / GIB;
        let tutel = moe_layer_activation(&cfg, MoeSystem::Tutel, tokens, 1).total() as f64 / GIB;
        let xmoe = moe_layer_activation(&cfg, MoeSystem::XMoe, tokens, 1).total() as f64
            * ALLOCATOR_SLACK
            / GIB;
        let theory = theoretical_activation(&cfg, tokens) as f64 / GIB;
        assert!((ds - 2.81).abs() < 0.25, "DS-MoE {ds:.3} GiB vs paper 2.81");
        assert!(
            (tutel - 1.95).abs() < 0.20,
            "Tutel {tutel:.3} GiB vs paper 1.95"
        );
        assert!(
            (xmoe - 1.21).abs() < 0.10,
            "X-MoE {xmoe:.3} GiB vs paper 1.21"
        );
        assert!(
            (theory - 1.125).abs() < 0.01,
            "theory {theory:.4} GiB vs paper 1.125"
        );
        // Ordering is the headline: DS > Tutel > X-MoE > theory.
        assert!(ds > tutel && tutel > xmoe && xmoe >= theory);
    }

    #[test]
    fn masks_dominate_baseline_activation_memory() {
        // §3.1: dispatch mask + intermediates consume > 70% of DS-MoE's
        // activation memory on DeepSeek-style configs... the mask share
        // alone must be large.
        let cfg = large();
        let a = moe_layer_activation(&cfg, MoeSystem::DsMoe, cfg.seq_len, 1);
        let mask_share = a.mask_meta as f64 / a.total() as f64;
        assert!(mask_share > 0.40, "mask share {mask_share}");
        // And X-MoE's metadata is negligible.
        let x = moe_layer_activation(&cfg, MoeSystem::XMoe, cfg.seq_len, 1);
        assert!((x.mask_meta as f64 / x.total() as f64) < 0.01);
    }

    #[test]
    fn bottleneck_shifts_from_interm_to_dispatch_combine() {
        // §3.2 Fig 3: in M_conv the FFN intermediates dominate; in the
        // size-equivalent M_spec the dispatch/combine tensors dominate.
        let conv = MoeModelConfig::conv_pair(4096, 16384, 16, 28);
        let spec = MoeModelConfig::spec_pair(4096, 16384, 16, 8, 28);
        let tokens = 2048;
        let ac = moe_layer_activation(&conv, MoeSystem::XMoe, tokens, 1);
        let as_ = moe_layer_activation(&spec, MoeSystem::XMoe, tokens, 1);
        assert!(
            ac.interm > ac.dispatch + ac.combine,
            "conv: interm should dominate"
        );
        assert!(
            as_.dispatch + as_.combine > as_.interm,
            "spec: dispatch/combine should dominate"
        );
        // Table 2: dispatch/combine grow ~m-fold; intermediates constant.
        let ratio = (as_.dispatch as f64) / (ac.dispatch as f64);
        assert!((ratio - 8.0).abs() < 0.2, "dispatch growth {ratio} vs m=8");
        let interm_ratio = as_.interm as f64 / ac.interm as f64;
        assert!(
            (interm_ratio - 1.0).abs() < 0.05,
            "interm ratio {interm_ratio}"
        );
    }

    #[test]
    fn ssmb_divides_moe_activations_by_tp() {
        let cfg = large();
        let base = moe_layer_activation(&cfg, MoeSystem::XMoe, 4096, 1);
        let sharded = moe_layer_activation(&cfg, MoeSystem::XMoe, 4096, 4);
        let r = base.dispatch as f64 / sharded.dispatch as f64;
        assert!((r - 4.0).abs() < 0.01, "SSMB sharding ratio {r}");
    }

    #[test]
    fn fig9_trainability_matrix_matches_paper() {
        // 256 Frontier GPUs, 64 GB HBM: Small trainable by all four; Medium
        // only TED / Tutel / X-MoE; Large only X-MoE (Fig 9).
        let hbm = 64_000_000_000u64;
        let fits = |cfg: &MoeModelConfig, sys| best_trainable_config(cfg, 256, sys, hbm).is_some();
        let small = MoeModelConfig::small();
        let medium = MoeModelConfig::medium();
        let lg = large();
        for sys in MoeSystem::ALL {
            assert!(fits(&small, sys), "{} must train Small", sys.name());
        }
        assert!(
            !fits(&medium, MoeSystem::DsMoe),
            "DS-MoE must OOM on Medium"
        );
        assert!(fits(&medium, MoeSystem::DsTed), "TED must train Medium");
        assert!(fits(&medium, MoeSystem::Tutel), "Tutel must train Medium");
        assert!(fits(&medium, MoeSystem::XMoe), "X-MoE must train Medium");
        for sys in [MoeSystem::DsMoe, MoeSystem::DsTed, MoeSystem::Tutel] {
            assert!(!fits(&lg, sys), "{} must OOM on Large", sys.name());
        }
        assert!(fits(&lg, MoeSystem::XMoe), "X-MoE must train Large");
    }

    #[test]
    fn super_model_trains_only_with_xmoe_at_1024() {
        // §5.2: X-MoE enables the 545B Super model on 1024 GPUs while all
        // prior systems OOM.
        let hbm = 64_000_000_000u64;
        let sup = MoeModelConfig::super_();
        for sys in [MoeSystem::DsMoe, MoeSystem::DsTed, MoeSystem::Tutel] {
            assert!(
                best_trainable_config(&sup, 1024, sys, hbm).is_none(),
                "{} must OOM on Super",
                sys.name()
            );
        }
        assert!(best_trainable_config(&sup, 1024, MoeSystem::XMoe, hbm).is_some());
    }

    #[test]
    fn table5_a100_trainability_matches_paper() {
        // 8x A100 40 GB (§5.5): Small OOMs DS-MoE and Tutel but trains on
        // X-MoE; Small-SR and Small-LR train on all three.
        let hbm = 40_000_000_000u64;
        let fits = |cfg: &MoeModelConfig, sys| best_trainable_config(cfg, 8, sys, hbm).is_some();
        let small = MoeModelConfig::small();
        assert!(
            !fits(&small, MoeSystem::DsMoe),
            "DS-MoE must OOM on Small@A100"
        );
        assert!(fits(&small, MoeSystem::XMoe), "X-MoE must train Small@A100");
        // Known deviation (EXPERIMENTS.md): the paper observed Tutel OOM on
        // Small@A100; our formula-level accounting places Tutel below the
        // 40 GB boundary but clearly above X-MoE — the direction and the
        // DS-MoE/X-MoE cells reproduce; the Tutel gap is Tutel-version
        // allocator behaviour we do not model.
        let tutel = total_per_gpu(
            &small,
            &ParallelConfig::new(8, 8).with_zero(2),
            MoeSystem::Tutel,
        )
        .total();
        let xmoe = total_per_gpu(
            &small,
            &ParallelConfig::new(8, 8).with_zero(2).with_ssmb(true),
            MoeSystem::XMoe,
        )
        .total();
        assert!(tutel > xmoe, "Tutel must need more memory than X-MoE");
        for cfg in [MoeModelConfig::small_sr(), MoeModelConfig::small_lr()] {
            for sys in [MoeSystem::DsMoe, MoeSystem::Tutel, MoeSystem::XMoe] {
                assert!(
                    fits(&cfg, sys),
                    "{} must train {}@A100",
                    sys.name(),
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn ssmb_memory_advantage_grows_with_tp() {
        // Fig 13: with SSMB on, total memory decreases as TP grows, and the
        // gap to the unsharded variant widens.
        let cfg = large();
        let mut prev_gap = 0i64;
        for tp in [2usize, 4] {
            let with = total_per_gpu(
                &cfg,
                &ParallelConfig::new(256, 64).with_tp(tp).with_ssmb(true),
                MoeSystem::XMoe,
            )
            .total() as i64;
            let without = total_per_gpu(
                &cfg,
                &ParallelConfig::new(256, 64).with_tp(tp).with_ssmb(false),
                MoeSystem::XMoe,
            )
            .total() as i64;
            let gap = without - with;
            assert!(gap > 0, "SSMB must save memory at TP={tp}");
            assert!(gap > prev_gap, "gap must grow with TP");
            prev_gap = gap;
        }
    }

    #[test]
    fn fig17_ssmb_vs_ted_regions() {
        // Appendix C.2 Fig 17: DeepSeek models prefer SSMB at all sequence
        // lengths; Mixtral prefers TED; Arctic flips with sequence length.
        for s in [2048usize, 4096, 8192] {
            assert!(
                ssmb_beats_ted(&MoeModelConfig::deepseek_moe(), s),
                "DeepSeek-MoE S={s}"
            );
            assert!(
                ssmb_beats_ted(&MoeModelConfig::deepseek_v3(), s),
                "DeepSeek-v3 S={s}"
            );
            assert!(
                !ssmb_beats_ted(&MoeModelConfig::mixtral_8x7b(), s),
                "Mixtral-8x7b S={s}"
            );
            assert!(
                !ssmb_beats_ted(&MoeModelConfig::mixtral_8x22b(), s),
                "Mixtral-8x22b S={s}"
            );
        }
        let arctic = MoeModelConfig::arctic();
        let short = ssmb_beats_ted(&arctic, 2048);
        let long = ssmb_beats_ted(&arctic, 8192);
        assert!(
            !short && long,
            "Arctic must flip with sequence length: {short} {long}"
        );
    }

    #[test]
    fn saving_and_cost_formulas_reduce_to_criterion() {
        let cfg = large();
        let tokens = 4096;
        for g in [2usize, 4, 8] {
            let saving = ssmb_activation_saving(&cfg, tokens, g);
            let cost = ssmb_min_model_cost(&cfg, g);
            assert_eq!(saving > cost, ssmb_beats_ted(&cfg, tokens), "g={g}");
        }
    }

    #[test]
    fn kv_bytes_scale_with_layers_and_hidden() {
        let cfg = large();
        let per_tok = kv_bytes_per_token(&cfg);
        assert_eq!(
            per_tok,
            2 * cfg.num_layers as u64 * cfg.hidden as u64 * cfg.dtype.bytes()
        );
        // A 4k-token request on Large must cost hundreds of MiB, not KiB —
        // KV is the serving bottleneck the admission controller manages.
        assert!(per_tok * 4096 > 100 * 1024 * 1024);
    }

    #[test]
    fn inference_states_are_params_only_and_ep_sharded() {
        let cfg = large();
        let train = model_states_per_gpu(&cfg, &ParallelConfig::new(64, 64), MoeSystem::XMoe);
        let infer = inference_states_per_gpu(&cfg, 64);
        assert_eq!(
            infer, train.params,
            "inference = training params, nothing else"
        );
        assert!(infer < train.total() / 3, "no grads/optimizer at inference");
        let wide = inference_states_per_gpu(&cfg, 8);
        assert!(
            wide > infer,
            "narrower EP holds more expert params per rank"
        );
    }

    #[test]
    fn serving_budget_is_positive_and_monotone() {
        let cfg = MoeModelConfig::small();
        let hbm = 64_000_000_000u64;
        let b = serving_kv_budget(&cfg, 8, hbm, 4096);
        assert!(b > 0, "Small must leave KV room on Frontier HBM");
        assert!(b < hbm, "budget is a remainder, not the device");
        assert!(
            serving_kv_budget(&cfg, 8, hbm, 16384) < b,
            "more in-flight tokens shrink the budget"
        );
        // A model bigger than the device saturates to zero instead of wrapping.
        assert_eq!(
            serving_kv_budget(&MoeModelConfig::super_(), 1, 8_000_000_000, 4096),
            0
        );
    }

    #[test]
    fn zero2_shards_gradients() {
        let cfg = large();
        let z1 = model_states_per_gpu(
            &cfg,
            &ParallelConfig::new(256, 64).with_zero(1),
            MoeSystem::XMoe,
        );
        let z2 = model_states_per_gpu(
            &cfg,
            &ParallelConfig::new(256, 64).with_zero(2),
            MoeSystem::XMoe,
        );
        assert_eq!(z1.params, z2.params);
        assert!(z2.grads < z1.grads);
        assert_eq!(z1.optimizer, z2.optimizer);
    }

    #[test]
    fn ted_shards_expert_params_by_tp() {
        let cfg = large();
        let p1 = ParallelConfig::new(256, 64).with_tp(1);
        let p4 = ParallelConfig::new(256, 64).with_tp(4);
        let ted1 = model_states_per_gpu(&cfg, &p1, MoeSystem::DsTed);
        let ted4 = model_states_per_gpu(&cfg, &p4, MoeSystem::DsTed);
        assert!(ted4.params < ted1.params);
        // X-MoE keeps experts EP-sharded only: TP reduces just dense params.
        let x1 = model_states_per_gpu(&cfg, &p1, MoeSystem::XMoe);
        let x4 = model_states_per_gpu(&cfg, &p4, MoeSystem::XMoe);
        assert!(x4.params < x1.params && x4.params > ted4.params);
    }
}
