//! Expert FFNs and per-rank expert shards.
//!
//! Each expert is the two-matrix FFN of the paper's MLP stage (`w1`, `w2` in
//! Listing 1 `mlp`), with a SiLU nonlinearity between — the DeepSeek-style
//! fine-grained expert. Under expert parallelism each rank owns a contiguous
//! block of `E / W` experts ([`ExpertShard`]).

use xmoe_tensor::{gemm_grouped, matmul, silu, Tensor, Workspace};

/// One expert FFN: `y = silu(x @ w1) @ w2`.
#[derive(Clone, Debug)]
pub struct Expert {
    /// `[H, H_FFN]`.
    pub w1: Tensor,
    /// `[H_FFN, H]`.
    pub w2: Tensor,
}

impl Expert {
    /// Randomly initialized expert.
    pub fn new(hidden: usize, ffn: usize, seed: u64) -> Self {
        Self {
            w1: Tensor::rand_init(hidden, ffn, hidden, seed),
            w2: Tensor::rand_init(ffn, hidden, ffn, seed ^ 0xFFFF_0000),
        }
    }

    /// Forward over a `[n, H]` token segment.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = matmul(x, &self.w1);
        silu(&mut h);
        matmul(&h, &self.w2)
    }
}

/// The contiguous block of experts owned by one EP rank.
#[derive(Clone, Debug)]
pub struct ExpertShard {
    /// Global index of the first owned expert.
    pub first_expert: usize,
    pub experts: Vec<Expert>,
}

impl ExpertShard {
    /// Deterministically initialize the shard for `rank` of `world` ranks,
    /// over `num_experts` total experts. All ranks derive the same expert
    /// weights from `seed`, so distributed runs can be checked against a
    /// single-rank reference holding all experts.
    pub fn for_rank(
        rank: usize,
        world: usize,
        num_experts: usize,
        hidden: usize,
        ffn: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            num_experts % world,
            0,
            "experts {num_experts} not divisible by world {world}"
        );
        let per = num_experts / world;
        let first_expert = rank * per;
        let experts = (first_expert..first_expert + per)
            .map(|e| Expert::new(hidden, ffn, seed.wrapping_add(e as u64 * 7919)))
            .collect();
        Self {
            first_expert,
            experts,
        }
    }

    /// All experts on a single rank (the reference configuration).
    pub fn full(num_experts: usize, hidden: usize, ffn: usize, seed: u64) -> Self {
        Self::for_rank(0, 1, num_experts, hidden, ffn, seed)
    }

    pub fn len(&self) -> usize {
        self.experts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    /// Does this shard own global expert `e`?
    pub fn owns(&self, e: usize) -> bool {
        e >= self.first_expert && e < self.first_expert + self.experts.len()
    }

    /// Grouped GEMM over per-expert segments (paper §B.4): `input` rows are
    /// grouped by local expert with lengths `tokens_per_local_expert`; each
    /// segment runs through its expert with no padding. The whole shard is
    /// two [`gemm_grouped`] batches (`x @ w1` for every expert, SiLU, then
    /// `h @ w2`) on the persistent worker pool, so E small segments fill the
    /// machine instead of running back-to-back — results stay bitwise
    /// identical to the sequential per-expert loop at any worker count.
    pub fn forward_segments(&self, input: &Tensor, tokens_per_local_expert: &[usize]) -> Tensor {
        assert_eq!(
            tokens_per_local_expert.len(),
            self.experts.len(),
            "segment count must equal local expert count"
        );
        let total: usize = tokens_per_local_expert.iter().sum();
        assert_eq!(total, input.rows(), "segment sum != input rows");
        let hidden = self.experts.first().map_or(0, |e| e.w1.rows());
        let ffn = self.experts.first().map_or(0, |e| e.w1.cols());
        let mut h = Tensor::zeros(total, ffn);
        let mut out = Tensor::zeros(total, hidden);
        self.forward_segments_into(input, tokens_per_local_expert, &mut h, &mut out);
        out
    }

    /// [`Self::forward_segments`] running on workspace leases: the activation
    /// scratch and the output come from `ws`, and the grouped GEMMs write
    /// straight into sub-ranges of the leased buffers instead of
    /// materialising per-segment tensors. Results are bitwise identical to
    /// the unpooled variant; the caller recycles the returned tensor.
    pub fn forward_segments_pooled(
        &self,
        input: &Tensor,
        tokens_per_local_expert: &[usize],
        ws: &mut Workspace,
    ) -> Tensor {
        assert_eq!(
            tokens_per_local_expert.len(),
            self.experts.len(),
            "segment count must equal local expert count"
        );
        let total: usize = tokens_per_local_expert.iter().sum();
        assert_eq!(total, input.rows(), "segment sum != input rows");
        let hidden = self.experts.first().map_or(0, |e| e.w1.rows());
        let ffn = self.experts.first().map_or(0, |e| e.w1.cols());
        let mut h = ws.take(total, ffn);
        let mut out = ws.take(total, hidden);
        self.forward_segments_into(input, tokens_per_local_expert, &mut h, &mut out);
        ws.recycle(h);
        out
    }

    /// Shared body of the owned/pooled segment forwards: two grouped GEMM
    /// batches with a SiLU between. `h` (`[total, ffn]`) and `out`
    /// (`[total, hidden]`) must arrive zero-filled ([`gemm_grouped`]
    /// accumulates).
    fn forward_segments_into(
        &self,
        input: &Tensor,
        tokens_per_local_expert: &[usize],
        h: &mut Tensor,
        out: &mut Tensor,
    ) {
        let hidden = self.experts.first().map_or(0, |e| e.w1.rows());
        let ffn = self.experts.first().map_or(0, |e| e.w1.cols());
        gemm_grouped(
            input.as_slice(),
            tokens_per_local_expert,
            hidden,
            |e| self.experts[e].w1.as_slice(),
            ffn,
            h.as_mut_slice(),
        );
        // Every row of `h` belongs to exactly one segment, so one pass over
        // the whole buffer equals the per-segment application.
        silu_slice(h.as_mut_slice());
        gemm_grouped(
            h.as_slice(),
            tokens_per_local_expert,
            ffn,
            |e| self.experts[e].w2.as_slice(),
            hidden,
            out.as_mut_slice(),
        );
    }
}

/// SiLU on a raw slice — the same elementwise map [`silu`] applies to a
/// tensor, usable on a sub-range of a pooled buffer.
fn silu_slice(xs: &mut [f32]) {
    for v in xs {
        *v *= 1.0 / (1.0 + (-*v).exp());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_forward_shapes() {
        let e = Expert::new(8, 16, 1);
        let x = Tensor::rand_uniform(5, 8, 1.0, 2);
        let y = e.forward(&x);
        assert_eq!(y.shape(), (5, 8));
    }

    #[test]
    fn expert_forward_is_deterministic_in_seed() {
        let x = Tensor::rand_uniform(3, 8, 1.0, 2);
        let y1 = Expert::new(8, 16, 7).forward(&x);
        let y2 = Expert::new(8, 16, 7).forward(&x);
        assert!(y1.allclose(&y2, 0.0));
    }

    #[test]
    fn sharded_experts_match_full_set() {
        // 8 experts over 4 ranks: rank r owns experts 2r, 2r+1 with weights
        // identical to the full single-rank shard.
        let full = ExpertShard::full(8, 8, 16, 99);
        for rank in 0..4 {
            let shard = ExpertShard::for_rank(rank, 4, 8, 8, 16, 99);
            assert_eq!(shard.first_expert, rank * 2);
            assert_eq!(shard.len(), 2);
            for (i, ex) in shard.experts.iter().enumerate() {
                let global = shard.first_expert + i;
                assert!(ex.w1.allclose(&full.experts[global].w1, 0.0));
                assert!(shard.owns(global));
            }
        }
    }

    #[test]
    fn forward_segments_matches_manual_loop() {
        let shard = ExpertShard::full(3, 8, 4, 5);
        let input = Tensor::rand_uniform(6, 8, 1.0, 6);
        let out = shard.forward_segments(&input, &[2, 0, 4]);
        let y0 = shard.experts[0].forward(&input.slice_rows(0, 2));
        let y2 = shard.experts[2].forward(&input.slice_rows(2, 6));
        assert!(out.slice_rows(0, 2).allclose(&y0, 1e-6));
        assert!(out.slice_rows(2, 6).allclose(&y2, 1e-6));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn shard_requires_divisible_expert_count() {
        let _ = ExpertShard::for_rank(0, 3, 8, 4, 4, 1);
    }

    #[test]
    fn forward_segments_handles_all_zero_segments() {
        // Every expert idle: a [0, H] input must produce a [0, H] output on
        // both the owned and pooled paths.
        let shard = ExpertShard::full(3, 8, 4, 5);
        let input = Tensor::zeros(0, 8);
        let out = shard.forward_segments(&input, &[0, 0, 0]);
        assert_eq!(out.shape(), (0, 8));
        let mut ws = Workspace::new();
        let pooled = shard.forward_segments_pooled(&input, &[0, 0, 0], &mut ws);
        assert_eq!(pooled.shape(), (0, 8));
        ws.recycle(pooled);
    }

    #[test]
    fn forward_segments_pooled_is_bitwise_identical() {
        let shard = ExpertShard::full(4, 12, 7, 15);
        let input = Tensor::rand_uniform(11, 12, 1.0, 16);
        let segs = [3usize, 0, 6, 2];
        let expected = shard.forward_segments(&input, &segs);
        let mut ws = Workspace::new();
        // Two rounds: second reuses warm (dirty) buffers.
        for _ in 0..2 {
            let pooled = shard.forward_segments_pooled(&input, &segs, &mut ws);
            assert!(pooled.allclose(&expected, 0.0), "pooled output diverged");
            ws.recycle(pooled);
        }
        assert_eq!(ws.stats().pool_misses, 2, "steady state allocates");
    }
}
