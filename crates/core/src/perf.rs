//! Analytic performance model (paper Figs 9–12, 14, 20, Table 5).
//!
//! The live threads-as-ranks runtime validates *correctness* and produces
//! breakdowns at reduced dimensions; this module prices the paper-scale
//! configurations (256–1024 GPUs, multi-billion-parameter models) that
//! cannot be executed numerically on a CPU. Communication is priced by the
//! same [`CostModel`] the live runtime charges, from the same byte formulas;
//! compute is priced by FLOP counts divided by effective throughput.
//!
//! ## Calibration constants
//!
//! The constants below are the model's only free parameters. They are set
//! once, against the paper's published absolute numbers (Table 5's A100
//! TFLOP/s, §5.2's 10.44 PFLOPS aggregate) and the quoted stage ratios
//! (Fig 11), then *everything else* — orderings, crossovers, scaling
//! shapes — is emergent. EXPERIMENTS.md records paper-vs-model for every
//! figure.

use xmoe_topology::{
    build_grid, ClusterTopology, CongestionModel, CostModel, MachineSpec, PlacementPolicy,
};

use crate::config::{MoeModelConfig, ParallelConfig};
use crate::memory::MoeSystem;

/// Fraction of `mem_bw` a fused, coalesced kernel achieves (X-MoE's
/// Triton-style gather/scatter and gating).
const EFF_FUSED_MEMBOUND: f64 = 0.65;
/// Fraction of `mem_bw` an unfused chain of framework ops achieves (the
/// baselines' mask construction and PyTorch-level dispatch).
const EFF_UNFUSED_MEMBOUND: f64 = 0.12;
/// Relative efficiency of the sequential (per-expert, uneven) GEMM versus
/// the machine's batched-GEMM efficiency — the "extra data transformations"
/// the paper observes for X-MoE's expert stage (§5.4.1).
const EFF_SEQ_GEMM: f64 = 0.80;
/// Efficiency derating for fine-grained expert GEMMs: DeepSeek-style
/// experts have small inner dimensions that no library runs at full tilt.
fn gemm_dim_derate(inner_dim: usize) -> f64 {
    // 0.45 of the spec efficiency at inner dims <= 1024, rising to 1.0 by 8192.
    let x = (inner_dim as f64 / 8192.0).min(1.0);
    0.45 + 0.55 * x
}
/// Fixed kernel-launch/synchronization overhead charged per layer per pass
/// (forward or backward); dominated by the many small kernels of an MoE
/// block.
pub const LAYER_OVERHEAD_S: f64 = 350e-6;
/// Dense-block elementwise traffic per token per layer, in units of
/// `H * dtype` (norms, residuals, activation functions, dropout masks).
const DENSE_ELEMWISE_FACTOR: f64 = 20.0;
/// Backward compute is ~2x forward for GEMM-dominated work.
pub const BWD_COMPUTE_FACTOR: f64 = 2.0;

/// Per-stage forward times of one MoE layer on one rank, in seconds
/// (labels match Fig 11).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    pub gating: f64,
    pub buffer_dispatch: f64,
    pub dispatch_a2a: f64,
    pub expert: f64,
    pub combine_a2a: f64,
    pub buffer_combine: f64,
}

impl StageTimes {
    pub fn total(&self) -> f64 {
        self.gating
            + self.buffer_dispatch
            + self.dispatch_a2a
            + self.expert
            + self.combine_a2a
            + self.buffer_combine
    }

    pub fn a2a(&self) -> f64 {
        self.dispatch_a2a + self.combine_a2a
    }

    /// (label, seconds) pairs in pipeline order.
    pub fn entries(&self) -> [(&'static str, f64); 6] {
        [
            ("gating", self.gating),
            ("buffer_dispatch", self.buffer_dispatch),
            ("dispatch_a2a", self.dispatch_a2a),
            ("expert", self.expert),
            ("combine_a2a", self.combine_a2a),
            ("buffer_combine", self.buffer_combine),
        ]
    }
}

/// Options modulating the modelled execution.
#[derive(Clone, Copy, Debug)]
pub struct PerfOpts {
    /// Redundancy-bypassing dispatch enabled (X-MoE only).
    pub rbd: bool,
    /// Activation checkpointing of the MoE block (the Fig 14 comparator):
    /// adds forward recomputation and two extra all-to-alls in backward.
    pub checkpointing: bool,
    /// Process placement for EP/DP groups (Appendix C).
    pub placement: PlacementPolicy,
}

impl Default for PerfOpts {
    fn default() -> Self {
        Self {
            rbd: false,
            checkpointing: false,
            placement: PlacementPolicy::EpFirst,
        }
    }
}

impl PerfOpts {
    /// X-MoE's defaults: RBD on, DP-first placement.
    pub fn xmoe() -> Self {
        Self {
            rbd: true,
            checkpointing: false,
            placement: PlacementPolicy::DpFirst,
        }
    }
}

/// A modelled training step.
#[derive(Clone, Copy, Debug)]
pub struct StepReport {
    /// Seconds per optimizer step.
    pub step_time: f64,
    /// Achieved model TFLOP/s per GPU (`6 * activated_params * tokens /
    /// (step_time * world)` — the standard reporting convention).
    pub tflops_per_gpu: f64,
    /// Aggregate PFLOP/s across the job.
    pub aggregate_pflops: f64,
    /// Forward MoE stage breakdown (one layer, one micro-batch).
    pub moe_stages: StageTimes,
    /// Per-step data-parallel gradient synchronization time.
    pub dp_sync: f64,
}

/// The analytic model, bound to one machine/cluster size.
pub struct PerfModel {
    cost: CostModel,
}

impl PerfModel {
    pub fn new(cost: CostModel) -> Self {
        Self { cost }
    }

    /// Frontier cluster of `world` GCDs with scale-appropriate congestion.
    pub fn frontier(world: usize) -> Self {
        Self::new(CostModel::new(ClusterTopology::new(
            MachineSpec::frontier(),
            world,
        )))
    }

    /// Frontier with congestion disabled (isolates algorithmic effects).
    pub fn frontier_clean(world: usize) -> Self {
        let topo = ClusterTopology::new(MachineSpec::frontier(), world);
        Self::new(CostModel::new(topo).with_congestion(CongestionModel::none()))
    }

    /// A single DGX-A100 node of `world` GPUs.
    pub fn dgx_a100(world: usize) -> Self {
        Self::new(CostModel::new(ClusterTopology::new(
            MachineSpec::dgx_a100(),
            world,
        )))
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn spec(&self) -> &MachineSpec {
        self.cost.topology().spec()
    }

    fn membound(&self, bytes: f64, eff: f64) -> f64 {
        bytes / (self.spec().mem_bw * eff)
    }

    fn gemm(&self, flops: f64, inner_dim: usize) -> f64 {
        flops / (self.spec().peak_flops * self.spec().gemm_efficiency * gemm_dim_derate(inner_dim))
    }

    /// The EP group (global ranks) rank 0 belongs to under the placement.
    fn ep_group(&self, par: &ParallelConfig, placement: PlacementPolicy) -> Vec<usize> {
        let grid = build_grid(par.world / par.tp.max(1), par.ep, placement);
        // Map leader index back to a global rank (TP innermost).
        grid.ep_groups[0].iter().map(|&l| l * par.tp).collect()
    }

    /// Forward stage times of one MoE layer (per micro-batch, per rank).
    pub fn moe_stage_times(
        &self,
        cfg: &MoeModelConfig,
        sys: MoeSystem,
        par: &ParallelConfig,
        opts: &PerfOpts,
    ) -> StageTimes {
        let d = cfg.dtype.bytes() as f64;
        let h = cfg.hidden as f64;
        let f = cfg.ffn_hidden as f64;
        let e = cfg.num_experts as f64;
        let k = cfg.top_k as f64;
        let full_tokens = (par.micro_batch * cfg.seq_len) as f64;
        // SSMB shards the MoE-block sequence across TP.
        let tokens = if sys == MoeSystem::XMoe && par.ssmb {
            full_tokens / par.tp as f64
        } else {
            full_tokens
        };
        let cap = cfg.expert_capacity((tokens as usize).max(1)) as f64;
        let routed = k * tokens; // X-MoE padding-free volume
        let padded = e * cap; // baseline padded volume (= c k S by construction)

        let group = self.ep_group(par, opts.placement);
        let w = group.len() as f64;

        let gate_flops = 2.0 * tokens * h * e;
        let mut st = StageTimes::default();
        match sys {
            MoeSystem::XMoe => {
                // Fused gating + PFT construction (sort + transposed cumsum).
                let pft_bytes = tokens * e * 4.0 + routed * 24.0 * 3.0;
                st.gating = self.gemm(gate_flops, cfg.hidden)
                    + self.membound(pft_bytes, EFF_FUSED_MEMBOUND);
                // Triton gather: read + write each routed row once.
                st.buffer_dispatch = self.membound(2.0 * routed * h * d, EFF_FUSED_MEMBOUND);
                let per_pair = (routed * h * d / w) as u64;
                let t_plain = self.cost.alltoallv_time(&group, &|_, _| per_pair);
                st.dispatch_a2a = if opts.rbd {
                    self.rbd_a2a_time(&group, tokens, cfg.top_k, (h * d) as u64)
                } else {
                    t_plain
                };
                st.combine_a2a = st.dispatch_a2a;
                // Sequential GEMM + input-assembly transforms.
                let flops = 4.0 * routed * h * f;
                st.expert = self.gemm(flops, cfg.ffn_hidden) / EFF_SEQ_GEMM
                    + self.membound(2.0 * routed * h * d, EFF_FUSED_MEMBOUND);
                st.buffer_combine = self.membound(2.0 * routed * h * d, EFF_FUSED_MEMBOUND);
            }
            MoeSystem::Tutel => {
                // Sparse-kernel gating (no giant mask) but framework-level.
                let gate_aux = tokens * e * 4.0 + routed * 24.0 * 3.0;
                st.gating = self.gemm(gate_flops, cfg.hidden)
                    + self.membound(gate_aux, EFF_FUSED_MEMBOUND * 0.8);
                // Tutel's kernel forces fp32 A_combine on AMD only (§5.4.1);
                // on CUDA it keeps the training dtype.
                let combine_bytes = if self.spec().vendor_moe_kernels {
                    d
                } else {
                    4.0
                };
                // Padded buffer fill (fast kernels, but padded volume).
                st.buffer_dispatch = self.membound(2.0 * padded * h * d, EFF_FUSED_MEMBOUND * 0.8);
                let per_pair = (padded * h * d / w) as u64;
                st.dispatch_a2a = self.cost.alltoallv_time(&group, &|_, _| per_pair);
                let per_pair_combine = (padded * h * combine_bytes / w) as u64;
                st.combine_a2a = self.cost.alltoallv_time(&group, &|_, _| per_pair_combine);
                let flops = 4.0 * padded * h * f;
                st.expert = self.gemm(flops, cfg.ffn_hidden);
                st.buffer_combine =
                    self.membound(2.0 * padded * h * combine_bytes, EFF_FUSED_MEMBOUND * 0.8);
            }
            MoeSystem::DsMoe | MoeSystem::DsTed => {
                // TED tensor-slices the experts (and the einsums feeding
                // them) across TP; plain DeepSpeed-MoE has TP = 1.
                let etp = if sys == MoeSystem::DsTed {
                    par.tp as f64
                } else {
                    1.0
                };
                // Dense [S, E, C] mask construction: one-hot, cumsum,
                // dropping. On CUDA these run through DeepSpeed's tuned
                // kernels; on ROCm they fall back to unfused framework ops
                // over the full mask volume (§3.1).
                let mask_bytes = tokens * e * cap * 4.0;
                let mask_eff = if self.spec().vendor_moe_kernels {
                    EFF_FUSED_MEMBOUND * 0.6
                } else {
                    EFF_UNFUSED_MEMBOUND
                };
                st.gating = self.gemm(gate_flops, cfg.hidden) + self.membound(mask_bytes, mask_eff);
                // Dispatch into expert buffers: einsum("sec,sm->ecm") — a
                // dense contraction over S on ROCm; CUDA builds ship a
                // sparse gather kernel that only moves the padded volume.
                let einsum_flops = 2.0 * tokens * padded * h / etp;
                st.buffer_dispatch = if self.spec().vendor_moe_kernels {
                    self.membound(2.0 * padded * h * d, EFF_FUSED_MEMBOUND * 0.6)
                } else {
                    self.gemm(einsum_flops, cfg.hidden)
                };
                // On ROCm the fp32 dispatch mask upcasts the einsum output,
                // so the exchanged buffers travel in fp32 — combined with
                // the capacity padding this is how the baseline's all-to-all
                // carries ~2.5x X-MoE's volume (Fig 11: 50.7% reduction).
                let d_comm = if self.spec().vendor_moe_kernels {
                    d
                } else {
                    4.0
                };
                let per_pair = (padded * h * d_comm / w) as u64;
                st.dispatch_a2a = self.cost.alltoallv_time(&group, &|_, _| per_pair);
                st.combine_a2a = st.dispatch_a2a;
                let mut expert = self.gemm(4.0 * padded * h * f / etp, cfg.ffn_hidden);
                if sys == MoeSystem::DsTed && par.tp > 1 {
                    // Row-parallel expert FFN: one all-reduce of the padded
                    // expert output per layer within the TP group.
                    let tp_group: Vec<usize> = (0..par.tp).collect();
                    expert += self.cost.allreduce_time(&tp_group, (padded * h * d) as u64);
                }
                st.expert = expert;
                st.buffer_combine = if self.spec().vendor_moe_kernels {
                    self.membound(2.0 * padded * h * d, EFF_FUSED_MEMBOUND * 0.6)
                } else {
                    self.gemm(einsum_flops, cfg.hidden)
                };
            }
        }
        st
    }

    /// Price the RBD two-stage dispatch: pilots inter-node, replicas
    /// intra-node (expected volumes under uniform routing).
    fn rbd_a2a_time(&self, group: &[usize], tokens: f64, k: usize, row_bytes: u64) -> f64 {
        let topo = self.cost.topology();
        let w = group.len();
        // Per destination node: expected pilots vs total copies.
        let per_pair = |i: usize, j: usize| -> u64 {
            let dst_node = topo.node_of(group[j]);
            let gn = group
                .iter()
                .filter(|&&r| topo.node_of(r) == dst_node)
                .count();
            let p = gn as f64 / w as f64;
            let copies_to_j = k as f64 * tokens / w as f64;
            if topo.same_node(group[i], group[j]) {
                // Plain share plus redistributed replicas (cheap links).
                let replicas_node =
                    k as f64 * tokens * p - tokens * (1.0 - (1.0 - p).powi(k as i32));
                let extra = replicas_node / (gn as f64 * gn as f64);
                ((copies_to_j + extra) * row_bytes as f64) as u64
            } else {
                // Pilots only (plus 16B metadata per original copy).
                let pilots_node = tokens * (1.0 - (1.0 - p).powi(k as i32));
                let pilots_to_j = pilots_node / gn as f64;
                (pilots_to_j * row_bytes as f64 + copies_to_j * 16.0) as u64
            }
        };
        self.cost.alltoallv_time(group, &per_pair)
    }

    /// Dense-block (attention) forward time per layer per micro-batch,
    /// including TP all-reduces. Public so the mapping planner can price
    /// the attention fold of a heterogeneous mapping separately from the
    /// MoE fold.
    pub fn dense_block_time(&self, cfg: &MoeModelConfig, par: &ParallelConfig) -> f64 {
        let tokens = (par.micro_batch * cfg.seq_len) as f64;
        let h = cfg.hidden as f64;
        let s = cfg.seq_len as f64;
        let d = cfg.dtype.bytes() as f64;
        // QKVO projections + attention matmuls, sharded by TP.
        let proj_flops = 8.0 * tokens * h * h / par.tp as f64;
        let attn_flops = 4.0 * tokens * s * h / par.tp as f64;
        let elemwise = DENSE_ELEMWISE_FACTOR * tokens * h * d;
        let mut t = self.gemm(proj_flops, cfg.hidden / par.tp)
            + self.gemm(attn_flops, cfg.seq_len)
            + self.membound(elemwise, EFF_FUSED_MEMBOUND);
        if par.tp > 1 {
            // Two all-reduces of the [tokens, H] activation per layer.
            let tp_group: Vec<usize> = (0..par.tp).collect(); // consecutive ranks
            t += 2.0 * self.cost.allreduce_time(&tp_group, (tokens * h * d) as u64);
        }
        t
    }

    /// Per-step data-parallel gradient synchronization (expert grads over
    /// the expert-DP group, dense grads over the dense-DP group), under the
    /// chosen placement.
    pub fn dp_sync_time(
        &self,
        cfg: &MoeModelConfig,
        par: &ParallelConfig,
        sys: MoeSystem,
        placement: PlacementPolicy,
    ) -> f64 {
        let d = cfg.dtype.bytes() as f64;
        let expert_tp = if sys == MoeSystem::DsTed { par.tp } else { 1 };
        let expert_shard = (par.ep * expert_tp).min(par.world);
        let expert_params = (cfg.num_layers as u64
            * (cfg.expert_params_per_layer() + cfg.router_params_per_layer()))
            / expert_shard as u64;
        let dense_params = (cfg.num_layers as u64 * cfg.dense_params_per_layer()
            + 2 * cfg.vocab as u64 * cfg.hidden as u64)
            / par.tp as u64;

        let leaders = par.world / par.tp.max(1);
        let grid = build_grid(leaders, par.ep.min(leaders), placement);
        let expert_dp_group: Vec<usize> = grid.dp_groups[0].iter().map(|&l| l * par.tp).collect();
        let dense_dp_group: Vec<usize> = (0..leaders).map(|l| l * par.tp).collect();

        // ZeRO >= 1: reduce-scatter grads + (overlapped) all-gather params.
        let t_exp = self
            .cost
            .reduce_scatter_time(&expert_dp_group, (expert_params as f64 * d) as u64)
            + self.cost.allgather_time(
                &expert_dp_group,
                (expert_params as f64 * d) as u64 / expert_dp_group.len().max(1) as u64,
            );
        let t_dense = self
            .cost
            .reduce_scatter_time(&dense_dp_group, (dense_params as f64 * d) as u64)
            + self.cost.allgather_time(
                &dense_dp_group,
                (dense_params as f64 * d) as u64 / dense_dp_group.len().max(1) as u64,
            );
        t_exp + t_dense
    }

    /// Model one full optimizer step.
    pub fn step(
        &self,
        cfg: &MoeModelConfig,
        par: &ParallelConfig,
        sys: MoeSystem,
        opts: &PerfOpts,
    ) -> StepReport {
        let moe = self.moe_stage_times(cfg, sys, par, opts);
        let dense = self.dense_block_time(cfg, par);
        let l = cfg.num_layers as f64;

        // Forward per micro-batch.
        let fwd = l * (moe.total() + dense + LAYER_OVERHEAD_S);
        // Backward: 2x compute, equal communication volume (grad a2a), plus
        // SSMB's extra all-gather pair is already inside moe for fwd; add
        // one for bwd implicitly via the a2a() term.
        let bwd = l
            * (BWD_COMPUTE_FACTOR
                * (moe.gating + moe.buffer_dispatch + moe.expert + moe.buffer_combine + dense)
                + moe.a2a()
                + LAYER_OVERHEAD_S);
        // Activation checkpointing (Fig 14): recompute forward in backward
        // and pay 2 extra all-to-alls per layer (§4.3).
        let ckpt_extra = if opts.checkpointing {
            l * (moe.total() + dense + moe.a2a())
        } else {
            0.0
        };

        // Sequences per micro-step: every TP group processes micro_batch
        // distinct sequences.
        let seq_per_micro = (par.world / par.tp) * par.micro_batch;
        let accum = (par.global_batch as f64 / seq_per_micro as f64).max(1.0);
        let dp_sync = self.dp_sync_time(cfg, par, sys, opts.placement);
        // Optimizer update: read/write fp32 master + m + v, sharded by DP.
        let opt_params = (cfg.total_params() / par.dp().max(1) as u64) as f64;
        let opt_time = self.membound(opt_params * 24.0, EFF_FUSED_MEMBOUND);

        let step_time = accum * (fwd + bwd + ckpt_extra) + dp_sync + opt_time;
        let tokens_per_step = (par.global_batch * cfg.seq_len) as f64;
        let model_flops = 6.0 * cfg.activated_params() as f64 * tokens_per_step;
        let tflops_per_gpu = model_flops / (step_time * par.world as f64) / 1e12;
        StepReport {
            step_time,
            tflops_per_gpu,
            aggregate_pflops: tflops_per_gpu * par.world as f64 / 1e3,
            moe_stages: moe,
            dp_sync,
        }
    }

    /// Run a step under both EP/DP placements (Appendix C) and keep the
    /// faster — X-MoE's topology-aware planning (§4.3). For small models
    /// EP-first (locality-aware all-to-all) wins; for parameter-heavy
    /// models DP-first (replica-aware gradient sync) wins.
    pub fn step_auto_placement(
        &self,
        cfg: &MoeModelConfig,
        par: &ParallelConfig,
        sys: MoeSystem,
        base: &PerfOpts,
    ) -> StepReport {
        let mut best: Option<StepReport> = None;
        for placement in [PlacementPolicy::EpFirst, PlacementPolicy::DpFirst] {
            let mut o = *base;
            o.placement = placement;
            let rep = self.step(cfg, par, sys, &o);
            if best.is_none_or(|b: StepReport| rep.step_time < b.step_time) {
                best = Some(rep);
            }
        }
        best.expect("at least one placement evaluated")
    }

    /// EP sizes swept by the paper's methodology (§5.2: {32, 64, 128, 256}),
    /// with the world size itself as the fallback on small clusters.
    fn ep_sweep(cfg: &MoeModelConfig, world: usize) -> Vec<usize> {
        let mut eps: Vec<usize> = [32usize, 64, 128, 256]
            .into_iter()
            .filter(|&ep| {
                ep <= world && ep <= cfg.num_experts && cfg.num_experts.is_multiple_of(ep)
            })
            .collect();
        if eps.is_empty() {
            eps.push(world.min(cfg.num_experts));
        }
        eps
    }

    /// Sweep parallel configurations the way §5.2 does, under the memory
    /// model; return the best achieved throughput (None = OOM everywhere).
    pub fn best_throughput(
        &self,
        cfg: &MoeModelConfig,
        world: usize,
        sys: MoeSystem,
        global_batch: usize,
    ) -> Option<StepReport> {
        let hbm = self.spec().hbm_bytes;
        let mut best: Option<StepReport> = None;
        let tp_choices: &[usize] = match sys {
            MoeSystem::DsTed => &[1, 2, 4, 8],
            MoeSystem::XMoe => &[1, 2, 4],
            _ => &[1],
        };
        for ep in Self::ep_sweep(cfg, world) {
            for &tp in tp_choices {
                if tp * ep > world || !world.is_multiple_of(tp * ep) {
                    continue;
                }
                if tp > 1 && !cfg.seq_len.is_multiple_of(tp) {
                    continue;
                }
                for zero in [1u8, 2] {
                    // Largest power-of-two micro-batch that fits (§5.1).
                    for mb_pow in (0..6).rev() {
                        let mb = 1usize << mb_pow;
                        if (world / tp) * mb > global_batch {
                            continue;
                        }
                        let par = ParallelConfig::new(world, ep)
                            .with_tp(tp)
                            .with_zero(zero)
                            .with_ssmb(sys == MoeSystem::XMoe)
                            .with_batch(mb, global_batch);
                        let mem = crate::memory::total_per_gpu(cfg, &par, sys);
                        if !mem.fits(hbm) {
                            continue;
                        }
                        let rep = if sys == MoeSystem::XMoe {
                            self.step_auto_placement(cfg, &par, sys, &PerfOpts::xmoe())
                        } else {
                            self.step(cfg, &par, sys, &PerfOpts::default())
                        };
                        if best.is_none_or(|b| rep.tflops_per_gpu > b.tflops_per_gpu) {
                            best = Some(rep);
                        }
                        break; // largest fitting micro-batch only
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rbd::expected_redundancy_uniform;

    #[test]
    fn xmoe_layer_faster_than_dsmoe_small_and_large() {
        // Fig 11: X-MoE reduces overall MoE layer time by ~62% on Small
        // (EP=8) and cuts the Large (EP=64) all-to-all roughly in half.
        let pm = PerfModel::frontier_clean(256);
        let small = MoeModelConfig::small();
        let par8 = ParallelConfig::new(256, 8);
        let ds = pm.moe_stage_times(&small, MoeSystem::DsMoe, &par8, &PerfOpts::default());
        let x = pm.moe_stage_times(&small, MoeSystem::XMoe, &par8, &PerfOpts::default());
        let reduction = 1.0 - x.total() / ds.total();
        assert!(
            (0.35..0.85).contains(&reduction),
            "Small layer-time reduction {reduction} (paper: 0.623)"
        );
        // Stage ratios: gating, buffer dispatch, buffer combine all much
        // faster in X-MoE (paper: 5.7x / 35.7x / 8.1x).
        assert!(
            ds.gating / x.gating > 3.0,
            "gating speedup {}",
            ds.gating / x.gating
        );
        assert!(
            ds.buffer_dispatch / x.buffer_dispatch > 8.0,
            "buffer dispatch speedup {}",
            ds.buffer_dispatch / x.buffer_dispatch
        );
        assert!(
            ds.buffer_combine / x.buffer_combine > 3.0,
            "buffer combine speedup {}",
            ds.buffer_combine / x.buffer_combine
        );

        let large = MoeModelConfig::large();
        let par64 = ParallelConfig::new(256, 64);
        let ds_l = pm.moe_stage_times(&large, MoeSystem::DsMoe, &par64, &PerfOpts::default());
        let x_l = pm.moe_stage_times(&large, MoeSystem::XMoe, &par64, &PerfOpts::default());
        let a2a_cut = 1.0 - x_l.a2a() / ds_l.a2a();
        assert!(
            (0.35..0.70).contains(&a2a_cut),
            "Large a2a cut {a2a_cut} (paper: 50.7%)"
        );
        assert!(x_l.total() < ds_l.total());
    }

    #[test]
    fn xmoe_expert_stage_slightly_slower_at_small_scale() {
        // §5.4.1: the sequential GEMM's transforms make X-MoE's expert stage
        // a bit slower than the padded batched GEMM at Small scale.
        let pm = PerfModel::frontier_clean(256);
        let small = MoeModelConfig::small();
        let par = ParallelConfig::new(256, 8);
        let ds = pm.moe_stage_times(&small, MoeSystem::DsMoe, &par, &PerfOpts::default());
        let x = pm.moe_stage_times(&small, MoeSystem::XMoe, &par, &PerfOpts::default());
        assert!(
            x.expert > 0.8 * ds.expert,
            "X-MoE expert {} vs DS {}",
            x.expert,
            ds.expert
        );
    }

    #[test]
    fn rbd_cuts_dispatch_a2a_on_multi_node_ep() {
        // Fig 12: 32 GPUs, EP=32 (4 Frontier nodes), Large layer:
        // redundancy ~54.8%, inter-node time cut ~52.5%, overall ~1.55x.
        let pm = PerfModel::frontier_clean(32);
        let large = MoeModelConfig::large();
        let par = ParallelConfig::new(32, 32);
        let plain = pm.moe_stage_times(&large, MoeSystem::XMoe, &par, &PerfOpts::default());
        let o = PerfOpts {
            rbd: true,
            ..PerfOpts::default()
        };
        let rbd = pm.moe_stage_times(&large, MoeSystem::XMoe, &par, &o);
        let speedup = plain.dispatch_a2a / rbd.dispatch_a2a;
        assert!(
            (1.2..2.2).contains(&speedup),
            "RBD dispatch speedup {speedup} (paper: 1.55x overall)"
        );
        let red = expected_redundancy_uniform(large.top_k, 4);
        assert!((red - 0.548).abs() < 0.05, "redundancy {red}");
    }

    #[test]
    fn medium_ordering_matches_fig9() {
        // Fig 9 Medium @256: X-MoE > Tutel > TED, with X-MoE ~1.42x Tutel
        // and ~5.15x TED; DS-MoE OOM.
        let pm = PerfModel::frontier_clean(256);
        let cfg = MoeModelConfig::medium();
        let x = pm
            .best_throughput(&cfg, 256, MoeSystem::XMoe, 1024)
            .expect("X-MoE trains Medium");
        let t = pm
            .best_throughput(&cfg, 256, MoeSystem::Tutel, 1024)
            .expect("Tutel trains Medium");
        let ted = pm
            .best_throughput(&cfg, 256, MoeSystem::DsTed, 1024)
            .expect("TED trains Medium");
        assert!(
            pm.best_throughput(&cfg, 256, MoeSystem::DsMoe, 1024)
                .is_none(),
            "DS-MoE must OOM"
        );
        let vs_tutel = x.tflops_per_gpu / t.tflops_per_gpu;
        let vs_ted = x.tflops_per_gpu / ted.tflops_per_gpu;
        assert!(vs_tutel > 1.05, "X-MoE vs Tutel {vs_tutel} (paper 1.42)");
        assert!(vs_ted > 1.8, "X-MoE vs TED {vs_ted} (paper 5.15)");
        assert!(vs_tutel < vs_ted, "TED must be the slower baseline");
    }

    #[test]
    fn super_model_aggregate_petaflops_in_range() {
        // §5.2: Super 545B on 1024 GPUs at ~10.44 aggregate PFLOP/s.
        let pm = PerfModel::frontier(1024);
        let cfg = MoeModelConfig::super_();
        let rep = pm
            .best_throughput(&cfg, 1024, MoeSystem::XMoe, 1024)
            .expect("X-MoE must train Super at 1024 GPUs");
        assert!(
            (4.0..25.0).contains(&rep.aggregate_pflops),
            "aggregate {} PFLOPs (paper: 10.44)",
            rep.aggregate_pflops
        );
    }

    #[test]
    fn weak_scaling_throughput_declines_gently() {
        // Fig 10a: Small model, EP=8, scaling 16 -> 256 GPUs with batch
        // growing proportionally; X-MoE stays above Tutel throughout.
        let cfg = MoeModelConfig::small();
        let mut last_x = f64::MAX;
        for (world, batch) in [(16usize, 256usize), (64, 1024), (256, 4096)] {
            let pm = PerfModel::frontier_clean(world);
            let par = ParallelConfig::new(world, 8)
                .with_batch(1, batch)
                .with_ssmb(true);
            let x = pm.step_auto_placement(&cfg, &par, MoeSystem::XMoe, &PerfOpts::xmoe());
            let t = pm.step(&cfg, &par, MoeSystem::Tutel, &PerfOpts::default());
            assert!(
                x.tflops_per_gpu > t.tflops_per_gpu,
                "world {world}: X-MoE {} <= Tutel {}",
                x.tflops_per_gpu,
                t.tflops_per_gpu
            );
            assert!(
                x.tflops_per_gpu <= last_x * 1.05,
                "weak scaling should not improve much"
            );
            last_x = x.tflops_per_gpu;
        }
    }

    #[test]
    fn strong_scaling_iteration_time_drops_then_flattens() {
        // Fig 10b: Medium, fixed global batch 2048, 128 -> 1024 GPUs.
        let cfg = MoeModelConfig::medium();
        let mut times = Vec::new();
        for world in [128usize, 256, 512, 1024] {
            let pm = PerfModel::frontier(world);
            let par = ParallelConfig::new(world, 64)
                .with_batch(1, 2048)
                .with_ssmb(true);
            times.push(
                pm.step(&cfg, &par, MoeSystem::XMoe, &PerfOpts::xmoe())
                    .step_time,
            );
        }
        assert!(times[1] < times[0], "256 GPUs must beat 128: {times:?}");
        // Beyond one rack congestion eats the gains: relative improvement
        // from 512 -> 1024 must be much smaller than 128 -> 256.
        let early_gain = times[0] / times[1];
        let late_gain = times[2] / times[3];
        assert!(late_gain < early_gain, "gains must flatten: {times:?}");
    }

    #[test]
    fn ssmb_beats_activation_checkpointing_at_matched_savings() {
        // Fig 14: under similar memory savings, SSMB yields higher
        // throughput than checkpointing (no recompute, no extra a2a).
        let pm = PerfModel::frontier_clean(256);
        let cfg = MoeModelConfig::large();
        let ssmb_par = ParallelConfig::new(256, 64)
            .with_tp(2)
            .with_ssmb(true)
            .with_batch(1, 1024);
        let ssmb = pm.step(&cfg, &ssmb_par, MoeSystem::XMoe, &PerfOpts::xmoe());
        let ckpt_par = ParallelConfig::new(256, 64)
            .with_tp(2)
            .with_ssmb(false)
            .with_batch(1, 1024);
        let mut o = PerfOpts::xmoe();
        o.checkpointing = true;
        let ckpt = pm.step(&cfg, &ckpt_par, MoeSystem::XMoe, &o);
        assert!(
            ssmb.tflops_per_gpu > ckpt.tflops_per_gpu,
            "SSMB {} vs checkpointing {}",
            ssmb.tflops_per_gpu,
            ckpt.tflops_per_gpu
        );
    }

    #[test]
    fn topk_scaling_advantage_grows_with_k() {
        // Fig 20 right: X-MoE's advantage over Tutel grows from ~1.1x at
        // k=4 to ~1.6x at k=16.
        let pm = PerfModel::frontier_clean(256);
        let mut prev = 0.0;
        for k in [4usize, 8, 16] {
            let mut cfg = MoeModelConfig::large();
            cfg.top_k = k;
            cfg.num_layers = 16;
            let par = ParallelConfig::new(256, 64)
                .with_batch(1, 1024)
                .with_ssmb(true);
            let x = pm.step(&cfg, &par, MoeSystem::XMoe, &PerfOpts::xmoe());
            let t = pm.step(&cfg, &par, MoeSystem::Tutel, &PerfOpts::default());
            let adv = x.tflops_per_gpu / t.tflops_per_gpu;
            assert!(
                adv > prev,
                "advantage must grow with k: k={k} adv={adv} prev={prev}"
            );
            prev = adv;
        }
        assert!(prev > 1.2, "advantage at k=16 should be sizable: {prev}");
    }

    #[test]
    fn vendor_kernels_close_the_baseline_gap_on_nvidia() {
        // §3.1's motivating observation, inverted: on CUDA the baselines
        // run tuned kernels, so DS-MoE's buffer stages sit within a small
        // factor of X-MoE's; on ROCm the einsum fallback makes them an
        // order of magnitude slower.
        let small = MoeModelConfig::small();
        let par = ParallelConfig::new(8, 8);
        let frontier = PerfModel::frontier_clean(8);
        let a100 = PerfModel::dgx_a100(8);
        let ratio = |pm: &PerfModel| {
            let ds = pm.moe_stage_times(&small, MoeSystem::DsMoe, &par, &PerfOpts::default());
            let x = pm.moe_stage_times(&small, MoeSystem::XMoe, &par, &PerfOpts::default());
            ds.buffer_dispatch / x.buffer_dispatch
        };
        let rocm_ratio = ratio(&frontier);
        let cuda_ratio = ratio(&a100);
        assert!(
            rocm_ratio > 4.0 * cuda_ratio,
            "ROCm fallback penalty {rocm_ratio:.1}x should dwarf CUDA {cuda_ratio:.1}x"
        );
        assert!(
            cuda_ratio < 6.0,
            "CUDA baselines must be competitive: {cuda_ratio:.1}x"
        );
    }

    #[test]
    fn ssmb_shrinks_moe_stage_volume_by_tp() {
        // With SSMB on, the per-rank MoE stage times scale with S/TP.
        let pm = PerfModel::frontier_clean(256);
        let cfg = MoeModelConfig::large();
        let base = pm.moe_stage_times(
            &cfg,
            MoeSystem::XMoe,
            &ParallelConfig::new(256, 64).with_tp(1).with_ssmb(true),
            &PerfOpts::default(),
        );
        let sharded = pm.moe_stage_times(
            &cfg,
            MoeSystem::XMoe,
            &ParallelConfig::new(256, 64).with_tp(4).with_ssmb(true),
            &PerfOpts::default(),
        );
        let r = base.expert / sharded.expert;
        assert!(
            (3.2..4.8).contains(&r),
            "expert stage should shrink ~4x: {r:.2}"
        );
        assert!(sharded.a2a() < base.a2a(), "a2a volume must shrink too");
    }

    #[test]
    fn a100_small_throughput_in_paper_range() {
        // Table 5: X-MoE trains Small on 8x A100 at 46.87 TFLOP/s; on the
        // reduced configs all three systems land between ~25 and ~65.
        let pm = PerfModel::dgx_a100(8);
        let small = MoeModelConfig::small();
        let x = pm
            .best_throughput(&small, 8, MoeSystem::XMoe, 1024)
            .expect("X-MoE fits");
        assert!(
            (20.0..90.0).contains(&x.tflops_per_gpu),
            "Small on A100: {} TFLOPs (paper 46.87)",
            x.tflops_per_gpu
        );
        let sr = MoeModelConfig::small_sr();
        for sys in [MoeSystem::DsMoe, MoeSystem::Tutel, MoeSystem::XMoe] {
            let rep = pm
                .best_throughput(&sr, 8, sys, 1024)
                .expect("all train Small-SR");
            assert!(
                (10.0..90.0).contains(&rep.tflops_per_gpu),
                "{:?} Small-SR {} TFLOPs",
                sys,
                rep.tflops_per_gpu
            );
        }
    }
}
