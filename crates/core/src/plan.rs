//! Auto-mapping planner: price every legal 4D folding and keep the Pareto
//! frontier.
//!
//! The paper fixes one mapping (EP×TP with SSMB inside the MoE block);
//! this module turns that into a *search*. For a model and cluster it
//! enumerates the legal (PP, TP, EP, DP) foldings
//! ([`xmoe_topology::enumerate_foldings`]), bounds each with the analytic
//! memory model ([`crate::memory::folded_per_gpu`]), prices the survivors
//! with the same [`CostModel`] terms the live runtime charges — dense
//! blocks under the attention fold, MoE blocks under the expert fold with
//! the dispatch priced by [`CostModel::sparse_exchange_time`], 1F1B
//! stage boundaries by [`xmoe_topology::stage_boundary_p2p_time`] — and
//! marks the (step time, memory) Pareto-optimal points.

use xmoe_topology::{
    enumerate_foldings, stage_boundary_p2p_time, CostModel, FoldSearchSpace, ParallelMapping,
};

use crate::config::{MoeModelConfig, ParallelConfig};
use crate::memory::{folded_per_gpu, GpuMemory, MoeSystem};
use crate::perf::{PerfModel, PerfOpts, StageTimes, BWD_COMPUTE_FACTOR, LAYER_OVERHEAD_S};

/// One priced candidate folding.
#[derive(Clone, Debug)]
pub struct MappingPlan {
    pub mapping: ParallelMapping,
    /// Modelled seconds per optimizer step (all microbatches + 1F1B ramps
    /// + gradient sync + optimizer).
    pub step_time: f64,
    /// Achieved model TFLOP/s per GPU at this step time.
    pub tflops_per_gpu: f64,
    /// Analytic 1F1B bubble fraction of this fold.
    pub bubble: f64,
    /// Per-microbatch MoE stage breakdown under the expert fold.
    pub moe_stages: StageTimes,
    /// Dense block time per layer per microbatch under the attention fold.
    pub dense_time: f64,
    /// One stage-boundary activation hop (paid twice per microbatch per
    /// boundary: forward activation + backward gradient).
    pub p2p_time: f64,
    /// Gradient synchronization per step.
    pub dp_sync: f64,
    /// Per-GPU memory picture.
    pub mem: GpuMemory,
    /// Fits in the machine's usable HBM.
    pub fits: bool,
    /// On the (step_time, memory) Pareto frontier among fitting plans.
    pub pareto: bool,
}

/// Price one mapping. Exposed for tests and the CLI `step --pp` path;
/// [`plan_mappings`] drives it over the whole enumeration.
pub fn price_mapping(
    perf: &PerfModel,
    cfg: &MoeModelConfig,
    mapping: &ParallelMapping,
    micro_batch: usize,
) -> MappingPlan {
    let cost: &CostModel = perf.cost();
    let world = cost.topology().n_ranks();
    let stage_ranks = world / mapping.pp;
    let layers_per_stage = (cfg.num_layers / mapping.pp).max(1) as f64;
    let d = cfg.dtype.bytes() as f64;
    let tokens = (micro_batch * cfg.seq_len) as f64;

    // Dense blocks run under the attention fold of one stage's ranks.
    let par_attn = ParallelConfig::new(stage_ranks, 1)
        .with_tp(mapping.attn.tp)
        .with_batch(
            micro_batch,
            mapping.microbatches * micro_batch * mapping.attn.dp,
        );
    let dense_time = perf.dense_block_time(cfg, &par_attn);

    // MoE blocks run under the expert fold with SSMB; replace the perf
    // model's dense-collective all-to-all price with the sparse exchange
    // over this mapping's actual EP group (balanced routing: each rank
    // ships its routed volume evenly to the other EP peers).
    let par_moe = ParallelConfig::new(stage_ranks, mapping.moe.ep)
        .with_tp(mapping.moe.tp)
        .with_ssmb(true)
        .with_batch(
            micro_batch,
            mapping.microbatches * micro_batch * mapping.moe.dp,
        );
    let mut moe = perf.moe_stage_times(cfg, MoeSystem::XMoe, &par_moe, &PerfOpts::xmoe());
    let ep_group = mapping.ep_group(world, 0, 0);
    if ep_group.len() > 1 {
        let routed = cfg.top_k as f64 * tokens / mapping.moe.tp as f64;
        let per_pair = (routed * cfg.hidden as f64 * d / ep_group.len() as f64) as u64;
        let a2a = cost.sparse_exchange_time(&ep_group, &|i, j| if i == j { 0 } else { per_pair });
        moe.dispatch_a2a = a2a;
        moe.combine_a2a = a2a;
    }

    // Stage-boundary activation hop: [tokens, H] once forward, once back.
    let act_bytes = (tokens * cfg.hidden as f64 * d) as u64;
    let p2p = stage_boundary_p2p_time(cost, mapping, act_bytes);

    // One microbatch through one pipeline rank's layers (all its virtual
    // chunks), forward + backward, including its boundary hops.
    let per_boundary = 2.0 * mapping.virtual_chunks as f64 * p2p;
    let t_fwd = layers_per_stage * (moe.total() + dense_time + LAYER_OVERHEAD_S) + per_boundary;
    let t_bwd = layers_per_stage
        * (BWD_COMPUTE_FACTOR
            * (moe.gating + moe.buffer_dispatch + moe.expert + moe.buffer_combine + dense_time)
            + moe.a2a()
            + LAYER_OVERHEAD_S)
        + per_boundary;
    let t_mb = t_fwd + t_bwd;

    // 1F1B makespan: m microbatches plus the (p-1)/v fill/drain ramp.
    let bubble_slots = (mapping.pp as f64 - 1.0) / mapping.virtual_chunks as f64;
    let pipeline_time = (mapping.microbatches as f64 + bubble_slots) * t_mb;

    // Gradient sync over one stage's share of the layer stack.
    let mut stage_cfg = cfg.clone();
    stage_cfg.num_layers = (cfg.num_layers / mapping.pp).max(1);
    let dp_sync = perf.dp_sync_time(
        &stage_cfg,
        &par_moe,
        MoeSystem::XMoe,
        PerfOpts::xmoe().placement,
    );
    // Optimizer update over this rank's ZeRO shard (fp32 master + m + v).
    let opt_params = (cfg.total_params()
        / mapping.pp as u64
        / (mapping.moe.ep * mapping.moe.tp) as u64
        / mapping.moe.dp.max(1) as u64) as f64;
    let opt_time = cost.mem_bound_time(opt_params * 24.0);

    let step_time = pipeline_time + dp_sync + opt_time;
    let tokens_per_step =
        (mapping.microbatches * micro_batch * cfg.seq_len * mapping.attn.dp) as f64;
    let model_flops = 6.0 * cfg.activated_params() as f64 * tokens_per_step;
    let tflops_per_gpu = model_flops / (step_time * world as f64) / 1e12;

    let mem = folded_per_gpu(cfg, mapping, micro_batch);
    let fits = mem.fits(cost.topology().spec().hbm_bytes);
    MappingPlan {
        mapping: *mapping,
        step_time,
        tflops_per_gpu,
        bubble: mapping.analytic_bubble(),
        moe_stages: moe,
        dense_time,
        p2p_time: p2p,
        dp_sync,
        mem,
        fits,
        pareto: false,
    }
}

/// Enumerate, price and rank every legal folding of `perf`'s cluster for
/// `cfg`. Plans come back sorted by step time with the (step time, total
/// memory) Pareto frontier of the *fitting* plans marked.
pub fn plan_mappings(
    perf: &PerfModel,
    cfg: &MoeModelConfig,
    micro_batch: usize,
    microbatches: usize,
) -> Vec<MappingPlan> {
    let world = perf.cost().topology().n_ranks();
    let space = FoldSearchSpace::new(world, cfg.num_experts, cfg.num_layers, microbatches);
    let mut plans: Vec<MappingPlan> = enumerate_foldings(&space)
        .iter()
        .map(|m| price_mapping(perf, cfg, m, micro_batch))
        .collect();
    plans.sort_by(|a, b| a.step_time.total_cmp(&b.step_time));
    // Pareto over (step_time, memory): a fitting plan is dominated if some
    // other fitting plan is no worse on both axes and better on one.
    for i in 0..plans.len() {
        if !plans[i].fits {
            continue;
        }
        let (t_i, m_i) = (plans[i].step_time, plans[i].mem.total());
        let dominated = plans.iter().enumerate().any(|(j, p)| {
            j != i
                && p.fits
                && p.step_time <= t_i
                && p.mem.total() <= m_i
                && (p.step_time < t_i || p.mem.total() < m_i)
        });
        plans[i].pareto = !dominated;
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MoeModelConfig {
        // Small-ish expert-specialized model: 32 experts, 8 layers.
        MoeModelConfig::custom("plan-demo", 2048, 1024, 704, 32, 4, 8)
    }

    #[test]
    fn planner_finds_a_rich_legal_frontier() {
        let perf = PerfModel::frontier_clean(16);
        let plans = plan_mappings(&perf, &model(), 1, 8);
        assert!(plans.len() >= 8, "only {} plans", plans.len());
        assert!(plans.iter().any(|p| p.mapping.pp > 1));
        let pareto: Vec<_> = plans.iter().filter(|p| p.pareto).collect();
        assert!(!pareto.is_empty());
        for p in &pareto {
            assert!(p.fits);
            assert!(p.step_time.is_finite() && p.step_time > 0.0);
            assert!(p.mem.total() > 0);
        }
        // The frontier is actually a frontier: sorted by time, memory must
        // be non-increasing.
        for w in pareto.windows(2) {
            assert!(w[0].step_time <= w[1].step_time);
            assert!(w[0].mem.total() >= w[1].mem.total());
        }
    }

    #[test]
    fn pipelining_reduces_memory_pressure() {
        let perf = PerfModel::frontier_clean(16);
        let cfg = model();
        let plans = plan_mappings(&perf, &cfg, 1, 8);
        let unsharded = |p: &&MappingPlan| {
            p.mapping.attn.tp == 1 && p.mapping.moe.ep == 1 && p.mapping.moe.tp == 1
        };
        let flat = plans
            .iter()
            .filter(unsharded)
            .find(|p| p.mapping.pp == 1)
            .unwrap();
        let piped = plans
            .iter()
            .filter(unsharded)
            .find(|p| p.mapping.pp == 4)
            .unwrap();
        // 4 stages hold a quarter of the layer stack each, so parameter
        // bytes must drop by at least half even with the full embedding
        // charged per stage. (Optimizer state does not follow: its ZeRO
        // shard divides by a 4x smaller DP group.)
        assert!(piped.mem.states.params < flat.mem.states.params / 2);
    }

    #[test]
    fn sparse_exchange_prices_the_moe_a2a() {
        let perf = PerfModel::frontier_clean(16);
        let cfg = model();
        let ep8 = ParallelMapping {
            pp: 1,
            virtual_chunks: 1,
            microbatches: 8,
            attn: xmoe_topology::AttnFold { tp: 1, dp: 16 },
            moe: xmoe_topology::MoeFold {
                ep: 8,
                tp: 1,
                dp: 2,
            },
        };
        let plan = price_mapping(&perf, &cfg, &ep8, 1);
        assert!(plan.moe_stages.dispatch_a2a > 0.0);
        // EP crossing more ranks must cost more than a node-local EP=2.
        let ep2 = ParallelMapping {
            moe: xmoe_topology::MoeFold {
                ep: 2,
                tp: 1,
                dp: 8,
            },
            ..ep8
        };
        let plan2 = price_mapping(&perf, &cfg, &ep2, 1);
        assert!(plan.moe_stages.dispatch_a2a > plan2.moe_stages.dispatch_a2a);
    }

    #[test]
    fn deeper_pipelines_have_bigger_bubbles_and_interleaving_shrinks_them() {
        let perf = PerfModel::frontier_clean(16);
        let plans = plan_mappings(&perf, &model(), 1, 8);
        let b = |pp: usize, v: usize| {
            plans
                .iter()
                .find(|p| p.mapping.pp == pp && p.mapping.virtual_chunks == v)
                .map(|p| p.bubble)
                .unwrap()
        };
        assert!(b(4, 1) > b(2, 1));
        assert!(b(4, 2) < b(4, 1));
        assert_eq!(b(1, 1), 0.0);
    }
}
