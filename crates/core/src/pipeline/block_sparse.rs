//! Megablocks-style block-sparse pipeline (paper §2, Related Work).
//!
//! Megablocks casts the MoE layer as block-sparse matrix multiplication
//! with no token dropping, but its kernels require each expert's token
//! segment padded **up to a multiple of the tile size** (e.g. 128 rows).
//! For conventional MoEs (few large experts) the per-expert remainder is
//! negligible; for expert-specialized MoEs with hundreds of small experts
//! the remainders add up — the paper: "incurring serious zero-paddings on
//! the emerging MoE workload".
//!
//! This module implements the block-padded execution (functionally
//! equivalent — zero rows contribute nothing) plus the padding-waste
//! accounting the `ablation_blocksparse` bench sweeps.

use xmoe_tensor::{gather_rows, scatter_rows_scaled, Tensor};

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pft::Pft;
use crate::pipeline::MoeLayerSpec;

/// Round `n` up to a multiple of `block`.
pub fn round_up(n: usize, block: usize) -> usize {
    assert!(block > 0);
    n.div_ceil(block) * block
}

/// Fraction of rows in the block-padded buffer that are padding, for the
/// given per-expert token counts.
pub fn block_padding_waste(tokens_per_expert: &[usize], block: usize) -> f64 {
    let real: usize = tokens_per_expert.iter().sum();
    let padded: usize = tokens_per_expert.iter().map(|&c| round_up(c, block)).sum();
    if padded == 0 {
        return 0.0;
    }
    1.0 - real as f64 / padded as f64
}

/// Expected block-padding waste under balanced routing: each expert gets
/// `tokens * k / E` rows; padding rounds each up to the tile size.
pub fn expected_block_waste(tokens: usize, k: usize, num_experts: usize, block: usize) -> f64 {
    let per_expert = (tokens * k) as f64 / num_experts as f64;
    let padded = round_up(per_expert.ceil() as usize, block) as f64;
    1.0 - per_expert / padded
}

/// Single-rank block-sparse forward: the PFT pipeline with each expert's
/// segment zero-padded to a tile multiple before the GEMM.
pub fn forward_single_block_sparse(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
    block: usize,
) -> Tensor {
    assert_eq!(experts.len(), spec.num_experts);
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let dispatch_in = gather_rows(tokens, &pft.token_ids);
    let hidden = tokens.cols();

    // Build the block-padded buffer: each expert's rows followed by zero
    // rows up to the tile boundary.
    let padded_counts: Vec<usize> = pft
        .tokens_per_expert
        .iter()
        .map(|&c| round_up(c, block))
        .collect();
    let padded_total: usize = padded_counts.iter().sum();
    let mut padded_buf = Tensor::zeros(padded_total, hidden);
    {
        let dst = padded_buf.as_mut_slice();
        let mut src_row = 0usize;
        let mut dst_row = 0usize;
        for (e, &cnt) in pft.tokens_per_expert.iter().enumerate() {
            if cnt > 0 {
                dst[dst_row * hidden..(dst_row + cnt) * hidden].copy_from_slice(
                    &dispatch_in.as_slice()[src_row * hidden..(src_row + cnt) * hidden],
                );
            }
            src_row += cnt;
            dst_row += padded_counts[e];
        }
    }

    // Block-sparse "GEMM": experts run over their padded tiles.
    let out_padded = experts.forward_segments(&padded_buf, &padded_counts);

    // Strip the padding back out and combine.
    let mut mlp_out = Tensor::zeros(pft.len(), hidden);
    {
        let dst = mlp_out.as_mut_slice();
        let mut src_row = 0usize;
        let mut dst_row = 0usize;
        for (e, &cnt) in pft.tokens_per_expert.iter().enumerate() {
            if cnt > 0 {
                dst[dst_row * hidden..(dst_row + cnt) * hidden].copy_from_slice(
                    &out_padded.as_slice()[src_row * hidden..(src_row + cnt) * hidden],
                );
            }
            src_row += padded_counts[e];
            dst_row += cnt;
        }
    }
    let mut out = Tensor::zeros(tokens.rows(), hidden);
    scatter_rows_scaled(&mlp_out, &pft.token_ids, &pft.combine_weights, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::padding_free;

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up(0, 128), 0);
        assert_eq!(round_up(1, 128), 128);
        assert_eq!(round_up(128, 128), 128);
        assert_eq!(round_up(129, 128), 256);
    }

    #[test]
    fn block_sparse_matches_padding_free() {
        let (s, h, f, e, k) = (64usize, 16usize, 8usize, 8usize, 3usize);
        let router = Router::new(h, e, k, 201);
        let experts = ExpertShard::full(e, h, f, 202);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 203);
        let spec = MoeLayerSpec::new(e, 10_000);
        let reference = padding_free::forward_single(&tokens, &router, &experts, &spec);
        for block in [1usize, 4, 16, 128] {
            let out = forward_single_block_sparse(&tokens, &router, &experts, &spec, block);
            assert!(
                out.allclose(&reference, 1e-4),
                "block {block}: max diff {}",
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn waste_zero_at_block_one() {
        assert_eq!(block_padding_waste(&[3, 7, 0, 12], 1), 0.0);
    }

    #[test]
    fn waste_counts_remainders() {
        // Counts 3 and 5 with block 4 -> padded 4 + 8 = 12 for 8 real rows.
        let w = block_padding_waste(&[3, 5], 4);
        assert!((w - (1.0 - 8.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn fine_grained_experts_waste_more() {
        // Same total routed volume spread over more, smaller experts:
        // remainder padding grows with the expert count (the paper's
        // argument against block-sparse kernels for DeepSeek-style MoEs).
        // A per-GPU micro-batch: 2048 tokens. Coarse experts get 512 rows
        // each (an exact tile multiple); fine-grained ones get 64 rows,
        // padded to a full 128-row tile.
        let tokens = 2048usize;
        let block = 128usize;
        let coarse = expected_block_waste(tokens, 2, 8, block); // Mixtral-ish
        let fine = expected_block_waste(tokens, 8, 256, block); // DeepSeek-ish
        assert!(
            fine > coarse + 0.2,
            "fine-grained waste {fine:.3} must far exceed coarse {coarse:.3}"
        );
    }
}
