//! Megablocks-style block-sparse pipeline (paper §2, Related Work).
//!
//! Megablocks casts the MoE layer as block-sparse matrix multiplication
//! with no token dropping, but its kernels require each expert's token
//! segment padded **up to a multiple of the tile size** (e.g. 128 rows).
//! For conventional MoEs (few large experts) the per-expert remainder is
//! negligible; for expert-specialized MoEs with hundreds of small experts
//! the remainders add up — the paper: "incurring serious zero-paddings on
//! the emerging MoE workload".
//!
//! This module implements the block-padded execution (functionally
//! equivalent — zero rows contribute nothing) plus the padding-waste
//! accounting the `ablation_blocksparse` bench sweeps.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{gather_rows, gather_rows_into, scatter_rows_scaled, Tensor};

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pft::Pft;
use crate::pipeline::padding_free::{EpRoute, PooledSingleState};
use crate::pipeline::MoeLayerSpec;

/// Round `n` up to a multiple of `block`.
pub fn round_up(n: usize, block: usize) -> usize {
    assert!(block > 0);
    n.div_ceil(block) * block
}

/// Fraction of rows in the block-padded buffer that are padding, for the
/// given per-expert token counts.
pub fn block_padding_waste(tokens_per_expert: &[usize], block: usize) -> f64 {
    let real: usize = tokens_per_expert.iter().sum();
    let padded: usize = tokens_per_expert.iter().map(|&c| round_up(c, block)).sum();
    if padded == 0 {
        return 0.0;
    }
    1.0 - real as f64 / padded as f64
}

/// Expected block-padding waste under balanced routing: each expert gets
/// `tokens * k / E` rows; padding rounds each up to the tile size.
pub fn expected_block_waste(tokens: usize, k: usize, num_experts: usize, block: usize) -> f64 {
    let per_expert = (tokens * k) as f64 / num_experts as f64;
    let padded = round_up(per_expert.ceil() as usize, block) as f64;
    1.0 - per_expert / padded
}

/// Single-rank block-sparse forward: the PFT pipeline with each expert's
/// segment zero-padded to a tile multiple before the GEMM.
///
/// One engine, two callers: this owned entry point runs the pooled
/// implementation against a throwaway state, so the two paths cannot
/// drift apart (the pooled variant is pinned bitwise identical).
pub fn forward_single_block_sparse(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
    block: usize,
) -> Tensor {
    let mut state = PooledSingleState::default();
    forward_single_block_sparse_pooled(tokens, router, experts, spec, block, &mut state)
}

/// [`forward_single_block_sparse`] on a [`PooledSingleState`]: pooled
/// gating, PFT construction, padded staging and segment GEMMs. Bitwise
/// identical to the unpooled variant (padding rows are zero either way);
/// allocation-free at steady state. The returned output is leased from
/// `state.ws` — recycle it there when done.
pub fn forward_single_block_sparse_pooled(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
    block: usize,
    state: &mut PooledSingleState,
) -> Tensor {
    assert_eq!(experts.len(), spec.num_experts);
    router.gate_into(tokens, &mut state.gate_scratch, &mut state.gating);
    Pft::construct_into(
        &state.gating,
        spec.num_experts,
        spec.capacity,
        spec.policy,
        &mut state.pft_scratch,
        &mut state.pft,
    );
    gather_rows_into(tokens, &state.pft.token_ids, &mut state.dispatch_in);
    let hidden = tokens.cols();

    let mut padded_counts = state.ws.take_idx(spec.num_experts);
    for (p, &c) in padded_counts.iter_mut().zip(&state.pft.tokens_per_expert) {
        *p = round_up(c, block);
    }
    let padded_total: usize = padded_counts.iter().sum();
    // take() zero-fills, so the pad rows are zero even on a reused buffer.
    let mut padded_buf = state.ws.take(padded_total, hidden);
    copy_segments(
        &state.dispatch_in,
        &state.pft.tokens_per_expert,
        &mut padded_buf,
        &padded_counts,
    );

    let out_padded = experts.forward_segments_pooled(&padded_buf, &padded_counts, &mut state.ws);

    let mut mlp_out = state.ws.take(state.pft.len(), hidden);
    copy_segments(
        &out_padded,
        &padded_counts,
        &mut mlp_out,
        &state.pft.tokens_per_expert,
    );
    let mut out = state.ws.take(tokens.rows(), hidden);
    scatter_rows_scaled(
        &mlp_out,
        &state.pft.token_ids,
        &state.pft.combine_weights,
        &mut out,
    );
    state.ws.recycle(mlp_out);
    state.ws.recycle(out_padded);
    state.ws.recycle(padded_buf);
    state.ws.recycle_idx(padded_counts);
    out
}

/// Copy `counts[e]` rows per expert from `src` into segments of
/// `dst_counts[e]` rows in a zeroed buffer (block padding), or back out
/// (stripping) when `dst_counts` is the unpadded side.
fn copy_segments(src: &Tensor, src_counts: &[usize], dst: &mut Tensor, dst_counts: &[usize]) {
    let hidden = src.cols();
    let d = dst.as_mut_slice();
    let (mut src_row, mut dst_row) = (0usize, 0usize);
    for e in 0..src_counts.len() {
        let real = src_counts[e].min(dst_counts[e]);
        if real > 0 {
            d[dst_row * hidden..(dst_row + real) * hidden]
                .copy_from_slice(&src.as_slice()[src_row * hidden..(src_row + real) * hidden]);
        }
        src_row += src_counts[e];
        dst_row += dst_counts[e];
    }
}

/// Distributed block-sparse MoE layer over an expert-parallel group: the
/// same uneven dispatch/combine as [`crate::pipeline::padding_free::forward_ep`],
/// but each local expert's segment is zero-padded to a multiple of the tile
/// size before the GEMM (and the padded rows' FLOPs are charged — the waste
/// the paper measures). Charges the six Fig 11 stage labels.
pub fn forward_ep_block_sparse(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    block: usize,
    ep: &Communicator,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let cost = ep.cost();
    let hidden = tokens.cols();

    // --- Gating + PFT construction -------------------------------------
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    let pft_bytes = (tokens.rows() * gating.k()) as f64 * 32.0;
    clock.charge(
        "gating",
        cost.compute_time(gate_flops) + cost.mem_bound_time(pft_bytes),
    );

    // --- Buffer dispatch ------------------------------------------------
    let dispatch_in = gather_rows(tokens, &pft.token_ids);
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );

    // --- Dispatch all-to-all (uneven) -----------------------------------
    let route = EpRoute::build(pft, spec, ep, clock)?;
    clock.commit("dispatch_a2a_meta");
    let expert_input = route.to_experts(&dispatch_in, ep, clock)?;
    clock.commit("dispatch_a2a");

    // --- Block-pad each local expert segment to the tile boundary -------
    let counts = &route.tokens_per_local_expert;
    let padded_counts: Vec<usize> = counts.iter().map(|&c| round_up(c, block)).collect();
    let padded_total: usize = padded_counts.iter().sum();
    let mut padded_buf = Tensor::zeros(padded_total, hidden);
    copy_segments(&expert_input, counts, &mut padded_buf, &padded_counts);
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (padded_total * hidden * 4) as f64),
    );

    // --- Expert computation over the padded tiles -----------------------
    let out_padded = shard.forward_segments(&padded_buf, &padded_counts);
    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    let expert_flops = 4.0 * padded_total as f64 * hidden as f64 * ffn as f64;
    clock.charge("expert", cost.compute_time(expert_flops));

    // --- Strip the padding ----------------------------------------------
    let mut mlp_out = Tensor::zeros(route.recv_total(), hidden);
    copy_segments(&out_padded, &padded_counts, &mut mlp_out, counts);
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (route.recv_total() * hidden * 4) as f64),
    );

    // --- Combine all-to-all (reverse route) -----------------------------
    let combine_in = route.to_source(&mlp_out, ep, clock)?;
    clock.commit("combine_a2a");

    // --- Buffer combine -------------------------------------------------
    let mut out = Tensor::zeros(tokens.rows(), hidden);
    scatter_rows_scaled(
        &combine_in,
        &route.pft.token_ids,
        &route.pft.combine_weights,
        &mut out,
    );
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (route.pft.len() * hidden * 4) as f64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::DropPolicy;
    use crate::pipeline::padding_free;
    use xmoe_collectives::SimCluster;

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up(0, 128), 0);
        assert_eq!(round_up(1, 128), 128);
        assert_eq!(round_up(128, 128), 128);
        assert_eq!(round_up(129, 128), 256);
    }

    #[test]
    fn block_sparse_matches_padding_free() {
        let (s, h, f, e, k) = (64usize, 16usize, 8usize, 8usize, 3usize);
        let router = Router::new(h, e, k, 201);
        let experts = ExpertShard::full(e, h, f, 202);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 203);
        let spec = MoeLayerSpec::new(e, 10_000);
        let reference = padding_free::forward_single(&tokens, &router, &experts, &spec);
        for block in [1usize, 4, 16, 128] {
            let out = forward_single_block_sparse(&tokens, &router, &experts, &spec, block);
            assert!(
                out.allclose(&reference, 1e-4),
                "block {block}: max diff {}",
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn pooled_block_sparse_is_bitwise_identical_across_steps() {
        let (s, h, f, e, k) = (32usize, 16usize, 8usize, 8usize, 3usize);
        let router = Router::new(h, e, k, 211);
        let experts = ExpertShard::full(e, h, f, 212);
        let spec = MoeLayerSpec::new(e, 9); // drops exercised
        let mut state = PooledSingleState::default();
        for block in [1usize, 4, 16] {
            for step in 0..2 {
                let tokens = Tensor::rand_uniform(s, h, 1.0, 220 + step);
                let expected =
                    forward_single_block_sparse(&tokens, &router, &experts, &spec, block);
                let out = forward_single_block_sparse_pooled(
                    &tokens, &router, &experts, &spec, block, &mut state,
                );
                assert!(
                    out.allclose(&expected, 0.0),
                    "block {block} step {step} diverged"
                );
                state.ws.recycle(out);
            }
        }
        let misses = state.ws.stats().pool_misses;
        assert!(misses <= 6, "arena kept allocating: {misses} misses");
    }

    #[test]
    fn waste_zero_at_block_one() {
        assert_eq!(block_padding_waste(&[3, 7, 0, 12], 1), 0.0);
    }

    #[test]
    fn waste_counts_remainders() {
        // Counts 3 and 5 with block 4 -> padded 4 + 8 = 12 for 8 real rows.
        let w = block_padding_waste(&[3, 5], 4);
        assert!((w - (1.0 - 8.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn distributed_block_sparse_matches_padding_free_ep() {
        let (s, h, f, e, k) = (24usize, 16usize, 8usize, 8usize, 3usize);
        let world = 4usize;
        let router = Router::new(h, e, k, 301);
        let sp = MoeLayerSpec::new(e, 10_000).with_policy(DropPolicy::CapacityOnly);
        let reference = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 302);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 303 + ctx.rank as u64);
            padding_free::forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock)
                .unwrap()
        });
        for block in [1usize, 4, 64] {
            let outs = SimCluster::frontier(world).run(|ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 302);
                let tokens = Tensor::rand_uniform(s, h, 1.0, 303 + ctx.rank as u64);
                forward_ep_block_sparse(
                    &tokens,
                    &router,
                    &shard,
                    &sp,
                    block,
                    &ctx.world,
                    &mut ctx.clock,
                )
                .unwrap()
            });
            for (r, (a, b)) in reference.iter().zip(&outs).enumerate() {
                assert!(
                    a.allclose(b, 1e-4),
                    "block {block} rank {r}: max diff {}",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn distributed_block_sparse_charges_stages_and_padded_flops() {
        let (s, h, f, e, k) = (16usize, 8usize, 4usize, 4usize, 2usize);
        let router = Router::new(h, e, k, 311);
        let sp = MoeLayerSpec::new(e, 1000).with_policy(DropPolicy::CapacityOnly);
        let run = |block: usize| {
            let router = &router;
            let sp = &sp;
            SimCluster::frontier(4).run(move |ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 312);
                let tokens = Tensor::rand_uniform(s, h, 1.0, 313);
                let _ = forward_ep_block_sparse(
                    &tokens,
                    router,
                    &shard,
                    sp,
                    block,
                    &ctx.world,
                    &mut ctx.clock,
                )
                .unwrap();
                (ctx.clock.bucket("expert"), ctx.clock.buckets().to_vec())
            })
        };
        let fine = run(1);
        let padded = run(128);
        for ((e1, labels), (e128, _)) in fine.iter().zip(&padded) {
            let names: Vec<&str> = labels.iter().map(|(l, _)| l.as_str()).collect();
            for want in [
                "gating",
                "buffer_dispatch",
                "dispatch_a2a",
                "expert",
                "combine_a2a",
                "buffer_combine",
            ] {
                assert!(names.contains(&want), "missing stage {want}: {names:?}");
            }
            // Padding to 128-row tiles must charge strictly more expert time.
            assert!(e128 > e1, "padded expert {e128} must exceed unpadded {e1}");
        }
    }

    #[test]
    fn fine_grained_experts_waste_more() {
        // Same total routed volume spread over more, smaller experts:
        // remainder padding grows with the expert count (the paper's
        // argument against block-sparse kernels for DeepSeek-style MoEs).
        // A per-GPU micro-batch: 2048 tokens. Coarse experts get 512 rows
        // each (an exact tile multiple); fine-grained ones get 64 rows,
        // padded to a full 128-row tile.
        let tokens = 2048usize;
        let block = 128usize;
        let coarse = expected_block_waste(tokens, 2, 8, block); // Mixtral-ish
        let fine = expected_block_waste(tokens, 8, 256, block); // DeepSeek-ish
        assert!(
            fine > coarse + 0.2,
            "fine-grained waste {fine:.3} must far exceed coarse {coarse:.3}"
        );
    }
}
