//! Pipeline-parallel 1F1B schedules over virtual stages.
//!
//! The PR-6 engine executes one MoE layer; this module strings *stage
//! chunks* (contiguous layer slices) across a pipeline-parallel group and
//! drives them with the Megatron-style one-forward-one-backward schedule,
//! in both its non-interleaved (`v = 1`) and interleaved (`v > 1` virtual
//! chunks per rank) forms.
//!
//! Virtual-stage layout: with `p` pipeline ranks and `v` chunks per rank,
//! virtual stage `g ∈ [0, p·v)` lives on rank `g % p` as its chunk
//! `g / p`. Activations flow `g → g+1` over tag-matched point-to-point
//! sends ([`Communicator::send_p2p`]); gradients flow back `g+1 → g`.
//! Sends are eager (buffered) and receives match on `(stage, microbatch,
//! direction)` tags through a [`P2pStash`], which is what makes the
//! interleaved schedule deadlock-free without a handshake protocol.
//!
//! Timing model: stage-internal compute runs single-rank (bit-identical to
//! the unpipelined reference by construction — the schedule only changes
//! *when* each chunk runs, never its inputs), and the executor charges the
//! analytic kernel time for each forward plus [`BWD_COMPUTE_FACTOR`]× that
//! for the matching backward. With uniform per-op time the measured bubble
//! fraction converges to the analytic `(p-1)/(v·m + p-1)`.

use xmoe_collectives::{Communicator, P2pStash, SimClock};
use xmoe_tensor::Tensor;

use crate::config::MoeModelConfig;
use crate::layer::MoeLayer;
use crate::pipeline::PipelineError;

/// Backward costs ~2x forward for the matmul-dominated blocks simulated
/// here (dgrad + wgrad) — the same constant the analytic perf model uses,
/// so measured and modelled schedules agree on the F:B ratio.
pub use crate::perf::BWD_COMPUTE_FACTOR;

/// Shape of a 1F1B run: `p` pipeline ranks, `v` virtual chunks per rank,
/// `m` microbatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleSpec {
    pub pp: usize,
    pub virtual_chunks: usize,
    pub microbatches: usize,
}

/// One slot in a rank's static op list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipeOp {
    /// Forward microbatch `mb` through local chunk `chunk`.
    Forward { chunk: usize, mb: usize },
    /// Backward microbatch `mb` through local chunk `chunk`.
    Backward { chunk: usize, mb: usize },
}

impl ScheduleSpec {
    pub fn new(
        pp: usize,
        virtual_chunks: usize,
        microbatches: usize,
    ) -> Result<Self, PipelineError> {
        if pp == 0 || virtual_chunks == 0 || microbatches == 0 {
            return Err(PipelineError::Unsupported(
                "schedule needs pp >= 1, virtual chunks >= 1 and microbatches >= 1",
            ));
        }
        if virtual_chunks > 1 && !microbatches.is_multiple_of(pp) {
            return Err(PipelineError::Unsupported(
                "interleaved 1F1B requires microbatches divisible by pp",
            ));
        }
        Ok(Self {
            pp,
            virtual_chunks,
            microbatches,
        })
    }

    /// Total virtual stages `p·v`.
    pub fn num_virtual_stages(&self) -> usize {
        self.pp * self.virtual_chunks
    }

    /// Rank owning virtual stage `g`.
    pub fn stage_rank(&self, g: usize) -> usize {
        g % self.pp
    }

    /// Local chunk index of virtual stage `g` on its owner.
    pub fn stage_chunk(&self, g: usize) -> usize {
        g / self.pp
    }

    /// Virtual stage of local `chunk` on `rank`.
    pub fn virtual_stage(&self, rank: usize, chunk: usize) -> usize {
        chunk * self.pp + rank
    }

    /// Analytic 1F1B bubble fraction `(p-1)/(v·m + p-1)`: interleaving
    /// shrinks the fill/drain ramps by `v` relative to the steady state.
    pub fn analytic_bubble(&self) -> f64 {
        let p = self.pp as f64;
        (p - 1.0) / (self.virtual_chunks as f64 * self.microbatches as f64 + p - 1.0)
    }

    /// The `k`-th forward issued by any rank under the interleaved
    /// schedule: walk chunk-major blocks of `p` microbatches.
    fn fwd_id(&self, k: usize) -> (usize, usize) {
        let (p, v) = (self.pp, self.virtual_chunks);
        let group = k % (p * v);
        (group / p, (k / (p * v)) * p + k % p)
    }

    /// The `k`-th backward: chunks drain in reverse order.
    fn bwd_id(&self, k: usize) -> (usize, usize) {
        let (p, v) = (self.pp, self.virtual_chunks);
        let group = k % (p * v);
        (v - 1 - group / p, (k / (p * v)) * p + k % p)
    }

    /// The static 1F1B op list for `rank`: warmup forwards, steady
    /// alternating F/B, cooldown backwards.
    pub fn rank_ops(&self, rank: usize) -> Vec<PipeOp> {
        assert!(rank < self.pp, "rank {rank} out of pipeline of {}", self.pp);
        let (p, v, m) = (self.pp, self.virtual_chunks, self.microbatches);
        let total = m * v;
        let warmup = if v == 1 {
            m.min(p - 1 - rank)
        } else if m == p {
            total
        } else {
            total.min((p - rank - 1) * 2 + (v - 1) * p)
        };
        let mut ops = Vec::with_capacity(2 * total);
        for k in 0..warmup {
            let (chunk, mb) = self.fwd_id(k);
            ops.push(PipeOp::Forward { chunk, mb });
        }
        for k in 0..total - warmup {
            let (chunk, mb) = self.fwd_id(warmup + k);
            ops.push(PipeOp::Forward { chunk, mb });
            let (chunk, mb) = self.bwd_id(k);
            ops.push(PipeOp::Backward { chunk, mb });
        }
        for k in total - warmup..total {
            let (chunk, mb) = self.bwd_id(k);
            ops.push(PipeOp::Backward { chunk, mb });
        }
        ops
    }
}

/// One virtual-stage chunk a rank can run: a deterministic single-rank
/// forward plus its analytic kernel cost.
pub trait StageChunk {
    /// Deterministic forward of one microbatch (must not depend on the
    /// schedule — that is what makes pipelining bitwise-safe).
    fn forward(&self, input: &Tensor) -> Tensor;
    /// Analytic forward flops for a microbatch of `tokens` rows.
    fn fwd_flops(&self, tokens: usize) -> f64;
    /// Hidden width of the activations crossing this chunk's boundaries.
    fn hidden(&self) -> usize;
}

/// A contiguous slice of MoE layers as a pipeline stage chunk.
pub struct MoeStageChunk {
    pub layers: Vec<MoeLayer>,
    hidden: usize,
    flops_per_token_layer: f64,
}

impl MoeStageChunk {
    /// Build global layers `[first, first + count)` of a model whose layer
    /// `l` is seeded `seed + l·7001` — the convention shared with the
    /// trainer, so any (pp, v) split of the same model produces identical
    /// per-stage weights.
    pub fn new(cfg: &MoeModelConfig, first_layer: usize, count: usize, seed: u64) -> Self {
        let layers = (first_layer..first_layer + count)
            .map(|l| MoeLayer::single_rank(cfg, seed.wrapping_add(l as u64 * 7001)))
            .collect();
        // Router gemm + top-k expert FFN (two matmuls each way).
        let flops_per_token_layer = 2.0 * (cfg.hidden * cfg.num_experts) as f64
            + cfg.top_k as f64 * 4.0 * (cfg.hidden * cfg.ffn_hidden) as f64;
        Self {
            layers,
            hidden: cfg.hidden,
            flops_per_token_layer,
        }
    }
}

impl StageChunk for MoeStageChunk {
    fn forward(&self, input: &Tensor) -> Tensor {
        let mut act = self.layers[0].forward(input);
        for layer in &self.layers[1..] {
            act = layer.forward(&act);
        }
        act
    }

    fn fwd_flops(&self, tokens: usize) -> f64 {
        self.layers.len() as f64 * tokens as f64 * self.flops_per_token_layer
    }

    fn hidden(&self) -> usize {
        self.hidden
    }
}

fn fwd_tag(stage: usize, mb: usize) -> u64 {
    ((stage as u64) << 32) | mb as u64
}

fn bwd_tag(stage: usize, mb: usize) -> u64 {
    (1 << 63) | ((stage as u64) << 32) | mb as u64
}

/// Execute this rank's 1F1B op list over the pipeline communicator.
///
/// `chunks[c]` is the rank's `c`-th virtual chunk (virtual stage
/// `c·p + rank`); `inputs` holds the `m` microbatch inputs and is read
/// only by the owner of virtual stage 0 (rank 0). Returns the last
/// stage's outputs in microbatch order — empty on every other rank.
///
/// Clock discipline (PR-1 span exactness): compute charges under
/// `pp_fwd`/`pp_bwd`, transfer time under `pp_send` on the sender, and
/// pipeline stalls surface as `sync_wait:pp_recv`, so
/// `Σ buckets == clock.now()` holds exactly on every rank.
pub fn run_1f1b(
    spec: &ScheduleSpec,
    chunks: &[&dyn StageChunk],
    inputs: &[Tensor],
    pp: &Communicator,
    clock: &mut SimClock,
) -> Result<Vec<Tensor>, PipelineError> {
    let rank = pp.rank();
    if pp.size() != spec.pp {
        return Err(PipelineError::Unsupported(
            "pipeline communicator size must equal spec.pp",
        ));
    }
    if chunks.len() != spec.virtual_chunks {
        return Err(PipelineError::Unsupported(
            "rank must hold exactly spec.virtual_chunks chunks",
        ));
    }
    if rank == 0 && inputs.len() != spec.microbatches {
        return Err(PipelineError::Unsupported(
            "rank 0 must hold one input per microbatch",
        ));
    }
    let (p, v, m) = (spec.pp, spec.virtual_chunks, spec.microbatches);
    let last = p * v - 1;
    let mut stash = P2pStash::new();
    // Forward compute time per (chunk, mb), consumed by the matching
    // backward; rows per (chunk, mb) for the gradient payload shape.
    let mut fwd_time = vec![vec![0.0f64; m]; v];
    let mut fwd_rows = vec![vec![0usize; m]; v];
    let mut outputs: Vec<Option<Tensor>> = (0..m).map(|_| None).collect();

    for op in spec.rank_ops(rank) {
        match op {
            PipeOp::Forward { chunk, mb } => {
                let g = spec.virtual_stage(rank, chunk);
                let hidden = chunks[chunk].hidden();
                let input = if g == 0 {
                    inputs[mb].clone()
                } else {
                    let src = spec.stage_rank(g - 1);
                    let data: Vec<f32> = pp.recv_p2p(src, fwd_tag(g, mb), &mut stash, clock)?;
                    clock.commit("pp_recv");
                    let rows = data.len() / hidden;
                    Tensor::from_vec(rows, hidden, data)
                };
                let rows = input.rows();
                let out = chunks[chunk].forward(&input);
                let t = pp.cost().compute_time(chunks[chunk].fwd_flops(rows));
                clock.charge("pp_fwd", t);
                fwd_time[chunk][mb] = t;
                fwd_rows[chunk][mb] = rows;
                if g == last {
                    outputs[mb] = Some(out);
                } else {
                    let dst = spec.stage_rank(g + 1);
                    pp.send_p2p(dst, fwd_tag(g + 1, mb), out.as_slice().to_vec(), clock)?;
                    clock.commit("pp_send");
                }
            }
            PipeOp::Backward { chunk, mb } => {
                let g = spec.virtual_stage(rank, chunk);
                let hidden = chunks[chunk].hidden();
                if g != last {
                    // Gradient of this stage's output, from the stage above.
                    let src = spec.stage_rank(g + 1);
                    let _grad: Vec<f32> = pp.recv_p2p(src, bwd_tag(g, mb), &mut stash, clock)?;
                    clock.commit("pp_recv");
                }
                clock.charge("pp_bwd", BWD_COMPUTE_FACTOR * fwd_time[chunk][mb]);
                if g != 0 {
                    // Analytic gradient payload: only its shape (and the
                    // bytes on the wire) matter to the simulation.
                    let dst = spec.stage_rank(g - 1);
                    let grad = vec![1.0f32; fwd_rows[chunk][mb] * hidden];
                    pp.send_p2p(dst, bwd_tag(g - 1, mb), grad, clock)?;
                    clock.commit("pp_send");
                }
            }
        }
    }
    debug_assert!(stash.is_empty(), "schedule left unmatched p2p messages");
    Ok(outputs.into_iter().flatten().collect())
}

/// The unpipelined reference: run every virtual stage of the model in
/// order on one rank, no clock. Bit-identical to what [`run_1f1b`]'s last
/// stage emits, because the schedule never changes any chunk's input.
pub fn reference_forward(stages: &[&dyn StageChunk], inputs: &[Tensor]) -> Vec<Tensor> {
    inputs
        .iter()
        .map(|input| {
            let mut act = input.clone();
            for stage in stages {
                act = stage.forward(&act);
            }
            act
        })
        .collect()
}

/// Work (non-wait, non-retry) time accounted on a clock. Call after the
/// final `commit` — pending entries are not included.
pub fn rank_work(clock: &SimClock) -> f64 {
    clock
        .buckets()
        .iter()
        .filter(|(label, _)| !label.starts_with("sync_wait:") && !label.starts_with("fault_retry:"))
        .map(|(_, t)| t)
        .sum()
}

/// Measured bubble fraction over per-rank `(clock.now(), work)` pairs:
/// the idle share of the `p · makespan` area.
pub fn bubble_fraction(totals: &[(f64, f64)]) -> f64 {
    let makespan = totals.iter().map(|(now, _)| *now).fold(0.0, f64::max);
    if makespan <= 0.0 {
        return 0.0;
    }
    let work: f64 = totals.iter().map(|(_, w)| *w).sum();
    1.0 - work / (totals.len() as f64 * makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmoe_collectives::SimCluster;
    use xmoe_topology::{ClusterTopology, CongestionModel, CostModel, MachineSpec};

    fn cfg() -> MoeModelConfig {
        MoeModelConfig::custom("sched-demo", 16, 16, 8, 8, 2, 4)
    }

    /// A Frontier-shaped cluster whose GEMMs are slow enough that the tiny
    /// test model's compute dominates p2p latency — the regime the analytic
    /// bubble form describes (real stages are milliseconds of compute per
    /// microsecond of activation transfer; the test model is not).
    fn slow_compute_cluster(n: usize) -> SimCluster {
        let mut spec = MachineSpec::frontier();
        spec.peak_flops = 1e8;
        spec.gemm_efficiency = 1.0;
        let topo = ClusterTopology::new(spec, n);
        SimCluster::new(CostModel::new(topo).with_congestion(CongestionModel::none()))
    }

    fn mb_inputs(m: usize, rows: usize, hidden: usize) -> Vec<Tensor> {
        (0..m)
            .map(|i| Tensor::rand_uniform(rows, hidden, 1.0, 100 + i as u64))
            .collect()
    }

    fn stage_chunks(cfg: &MoeModelConfig, spec: &ScheduleSpec, rank: usize) -> Vec<MoeStageChunk> {
        let layers_per_stage = cfg.num_layers / spec.num_virtual_stages();
        (0..spec.virtual_chunks)
            .map(|c| {
                let g = spec.virtual_stage(rank, c);
                MoeStageChunk::new(cfg, g * layers_per_stage, layers_per_stage, 9)
            })
            .collect()
    }

    fn run_fold(pp: usize, v: usize, m: usize) -> (Vec<Tensor>, Vec<(f64, f64)>) {
        let cfg = cfg();
        let spec = ScheduleSpec::new(pp, v, m).unwrap();
        let inputs = mb_inputs(m, 8, cfg.hidden);
        let out = {
            let (cfg, spec, inputs) = (&cfg, &spec, &inputs);
            slow_compute_cluster(pp).run(move |ctx| {
                let chunks = stage_chunks(cfg, spec, ctx.rank);
                let refs: Vec<&dyn StageChunk> =
                    chunks.iter().map(|c| c as &dyn StageChunk).collect();
                let outs = run_1f1b(spec, &refs, inputs, &ctx.world, &mut ctx.clock).unwrap();
                (outs, ctx.clock.now(), rank_work(&ctx.clock))
            })
        };
        let totals: Vec<(f64, f64)> = out.iter().map(|(_, now, work)| (*now, *work)).collect();
        let outputs = out.into_iter().map(|(o, ..)| o).next_back().unwrap();
        (outputs, totals)
    }

    fn reference(m: usize) -> Vec<Tensor> {
        let cfg = cfg();
        let inputs = mb_inputs(m, 8, cfg.hidden);
        let stages: Vec<MoeStageChunk> = (0..cfg.num_layers)
            .map(|l| MoeStageChunk::new(&cfg, l, 1, 9))
            .collect();
        let refs: Vec<&dyn StageChunk> = stages.iter().map(|c| c as &dyn StageChunk).collect();
        reference_forward(&refs, &inputs)
    }

    #[test]
    fn spec_rejects_degenerate_shapes() {
        assert!(ScheduleSpec::new(0, 1, 1).is_err());
        assert!(ScheduleSpec::new(2, 1, 0).is_err());
        assert!(
            ScheduleSpec::new(2, 2, 3).is_err(),
            "interleaved needs m % p == 0"
        );
        assert!(ScheduleSpec::new(2, 2, 4).is_ok());
    }

    #[test]
    fn rank_ops_cover_every_microbatch_once_each_way() {
        for (p, v, m) in [(1, 1, 3), (2, 1, 5), (4, 1, 8), (2, 2, 4), (4, 2, 8)] {
            let spec = ScheduleSpec::new(p, v, m).unwrap();
            for rank in 0..p {
                let ops = spec.rank_ops(rank);
                let fwd = ops
                    .iter()
                    .filter(|o| matches!(o, PipeOp::Forward { .. }))
                    .count();
                let bwd = ops.len() - fwd;
                assert_eq!(fwd, m * v, "({p},{v},{m}) rank {rank}");
                assert_eq!(bwd, m * v, "({p},{v},{m}) rank {rank}");
            }
        }
    }

    #[test]
    fn non_interleaved_matches_unpipelined_reference_bitwise() {
        let (got, _) = run_fold(2, 1, 4);
        let want = reference(4);
        assert_eq!(got.len(), 4);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_slice(), w.as_slice(), "bitwise equality required");
        }
    }

    #[test]
    fn interleaved_matches_unpipelined_reference_bitwise() {
        let (got, _) = run_fold(2, 2, 4);
        let want = reference(4);
        assert_eq!(got.len(), 4);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_slice(), w.as_slice(), "bitwise equality required");
        }
    }

    #[test]
    fn single_stage_pipeline_is_the_reference() {
        let (got, totals) = run_fold(1, 1, 3);
        let want = reference(3);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_slice(), w.as_slice());
        }
        // p = 1 has no ramp: bubble must be ~0.
        assert!(bubble_fraction(&totals) < 1e-9);
    }

    #[test]
    fn measured_bubble_tracks_analytic_form() {
        for (p, v, m) in [(2, 1, 8), (4, 1, 8), (2, 2, 8)] {
            let spec = ScheduleSpec::new(p, v, m).unwrap();
            let (_, totals) = run_fold(p, v, m);
            let measured = bubble_fraction(&totals);
            let analytic = spec.analytic_bubble();
            assert!(
                (measured - analytic).abs() <= 0.10 * analytic.max(0.05),
                "({p},{v},{m}): measured {measured:.4} vs analytic {analytic:.4}"
            );
        }
    }
}
