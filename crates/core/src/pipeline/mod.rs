//! The MoE layer pipelines.
//!
//! [`padding_free`] implements X-MoE's PFT pipeline (§4.1): gather →
//! uneven all-to-all → sequential GEMM → uneven all-to-all → weighted
//! scatter, with no zero padding anywhere.
//!
//! [`dense`] implements the GShard/DeepSpeed-MoE baseline (Appendix B.1):
//! a `[S, E, C]` dispatch mask, zero-padded `[E, C, H]` expert buffers, and
//! **even** all-to-alls that carry the padding.
//!
//! Both run single-rank (reference) and distributed over an expert-parallel
//! communicator; cross-pipeline equivalence is enforced by tests at the
//! workspace level.
//!
//! [`engine`] unifies all of them (plus [`block_sparse`] and the RBD path in
//! [`crate::rbd`]) behind one [`Pipeline`] trait: pooling, transport and
//! dispatch–compute overlap are properties of the [`ExecCtx`] a forward runs
//! under, not separate hand-cloned entry points.

pub mod block_sparse;
pub mod dense;
pub mod engine;
pub mod padding_free;
pub mod schedule;

pub use block_sparse::{
    block_padding_waste, forward_single_block_sparse, forward_single_block_sparse_pooled,
};
pub use dense::{build_dense_dispatch, DenseDispatch, DenseDropOrder};
pub use engine::{
    BlockSparsePipeline, CommCtx, DensePipeline, ExecCtx, PaddingFreePipeline, Pipeline,
    PipelineError, RbdPipeline,
};
pub use padding_free::{forward_ep, forward_single, forward_single_pooled, PooledSingleState};
pub use schedule::{
    bubble_fraction, rank_work, reference_forward, run_1f1b, MoeStageChunk, PipeOp, ScheduleSpec,
    StageChunk, BWD_COMPUTE_FACTOR,
};

use crate::gating::DropPolicy;

/// Static description of one MoE layer shared by both pipelines.
#[derive(Clone, Copy, Debug)]
pub struct MoeLayerSpec {
    /// Total routed experts `E`.
    pub num_experts: usize,
    /// Per-expert capacity `C` (see
    /// [`crate::MoeModelConfig::expert_capacity`]).
    pub capacity: usize,
    /// Token-drop policy (§5.6).
    pub policy: DropPolicy,
}

impl MoeLayerSpec {
    pub fn new(num_experts: usize, capacity: usize) -> Self {
        Self {
            num_experts,
            capacity,
            policy: DropPolicy::CapacityOnly,
        }
    }

    pub fn with_policy(mut self, policy: DropPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Copy rows `[start, end)` of a row-major tensor into a flat `Vec<f32>`
/// (the wire format of the simulated all-to-all).
pub(crate) fn rows_to_vec(t: &xmoe_tensor::Tensor, start: usize, end: usize) -> Vec<f32> {
    let h = t.cols();
    t.as_slice()[start * h..end * h].to_vec()
}

/// Rebuild a `[rows, hidden]` tensor from concatenated flat chunks.
pub(crate) fn vecs_to_tensor(chunks: Vec<Vec<f32>>, hidden: usize) -> xmoe_tensor::Tensor {
    let total: usize = chunks.iter().map(Vec::len).sum();
    debug_assert_eq!(total % hidden.max(1), 0);
    let mut data = Vec::with_capacity(total);
    for c in chunks {
        data.extend_from_slice(&c);
    }
    xmoe_tensor::Tensor::from_vec(total / hidden.max(1), hidden, data)
}
