//! X-MoE's padding-free MoE layer (paper §4.1, Listing 1).
//!
//! Stage labels charged to the [`SimClock`] match the Fig 11 breakdown:
//! `gating`, `buffer_dispatch`, `dispatch_a2a`, `expert`, `combine_a2a`,
//! `buffer_combine`.
//!
//! The uneven exchange is factored into a reusable [`EpRoute`]: built once
//! per batch from the PFT's per-expert counts, it can push any row payload
//! along the dispatch direction ([`EpRoute::to_experts`]) or back along the
//! combine direction ([`EpRoute::to_source`]). The training backward pass
//! reuses the same route in reverse — gradients travel the exact same two
//! all-to-alls mirrored (the paper's 4 all-to-alls per layer per step).

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{gather_rows, scatter_rows_scaled, Tensor};

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pft::Pft;
use crate::pipeline::{rows_to_vec, vecs_to_tensor, MoeLayerSpec};

/// Single-rank reference: all experts local, no communication.
///
/// `call` in Listing 1 minus the all-to-alls (a 1-rank EP group).
pub fn forward_single(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
) -> Tensor {
    assert_eq!(
        experts.len(),
        spec.num_experts,
        "single-rank forward needs the full expert set"
    );
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let dispatch_in = gather_rows(tokens, &pft.token_ids);
    let mlp_out = experts.forward_segments(&dispatch_in, &pft.tokens_per_expert);
    let mut out = Tensor::zeros(tokens.rows(), tokens.cols());
    scatter_rows_scaled(&mlp_out, &pft.token_ids, &pft.combine_weights, &mut out);
    out
}

/// The routing plan of one uneven EP exchange, reusable for forward
/// activations and backward gradients.
///
/// Wire layout: rows travel grouped by destination rank (the PFT is
/// expert-sorted, so per-destination slices are contiguous); on arrival
/// they are regrouped expert-major for the sequential GEMM via `perm`.
pub struct EpRoute {
    /// The PFT this route was built from (source-side ERI arrays).
    pub pft: Pft,
    /// Per-destination-rank entry counts on the send side.
    pub send_per_dst: Vec<usize>,
    /// Entry counts received from each source rank.
    pub recv_per_src: Vec<usize>,
    /// Entry counts per local expert after the expert-major regroup.
    pub tokens_per_local_expert: Vec<usize>,
    /// `perm[i]` = wire position of expert-major position `i`.
    perm: Vec<usize>,
    /// Inverse of `perm`.
    inv_perm: Vec<usize>,
}

impl EpRoute {
    /// Collectively build the route: exchanges `tokens_per_expert` so every
    /// destination knows its inbound segment sizes (Listing 1 line 44).
    pub fn build(
        pft: Pft,
        spec: &MoeLayerSpec,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<EpRoute, CommError> {
        let w = ep.size();
        assert_eq!(spec.num_experts % w, 0, "experts must divide EP size");
        let e_local = spec.num_experts / w;
        let tpe_send: Vec<Vec<u64>> = (0..w)
            .map(|dst| {
                pft.tokens_per_expert[dst * e_local..(dst + 1) * e_local]
                    .iter()
                    .map(|&c| c as u64)
                    .collect()
            })
            .collect();
        let tpe_recv = ep.all_to_all_v(tpe_send, clock)?;

        let send_per_dst = pft.counts_per_shard(w);
        let recv_per_src: Vec<usize> = tpe_recv
            .iter()
            .map(|r| r.iter().sum::<u64>() as usize)
            .collect();
        let mut src_base = vec![0usize; w];
        for s in 1..w {
            src_base[s] = src_base[s - 1] + recv_per_src[s - 1];
        }
        let mut tokens_per_local_expert = vec![0usize; e_local];
        for r in &tpe_recv {
            for (e, &c) in r.iter().enumerate() {
                tokens_per_local_expert[e] += c as usize;
            }
        }
        let total: usize = tokens_per_local_expert.iter().sum();
        // Wire order is (src, local_expert); the sequential GEMM needs
        // (local_expert, src).
        let mut perm = Vec::with_capacity(total);
        for e in 0..e_local {
            for (src, counts) in tpe_recv.iter().enumerate() {
                let before: usize = counts[..e].iter().map(|&c| c as usize).sum();
                let cnt = counts[e] as usize;
                let start = src_base[src] + before;
                perm.extend(start..start + cnt);
            }
        }
        let mut inv_perm = vec![0usize; total];
        for (expert_major, &wire) in perm.iter().enumerate() {
            inv_perm[wire] = expert_major;
        }
        Ok(EpRoute {
            pft,
            send_per_dst,
            recv_per_src,
            tokens_per_local_expert,
            perm,
            inv_perm,
        })
    }

    /// Rows received on this rank (the expert-side buffer length).
    pub fn recv_total(&self) -> usize {
        self.perm.len()
    }

    /// Push `rows` (PFT order, `[B, H]`) along the dispatch direction;
    /// returns the expert-major `[B_exp, H]` buffer on the receiving side.
    pub fn to_experts(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let hidden = rows.cols();
        debug_assert_eq!(rows.rows(), self.pft.len(), "payload must be in PFT order");
        let mut offset = 0usize;
        let send: Vec<Vec<f32>> = self
            .send_per_dst
            .iter()
            .map(|&cnt| {
                let v = rows_to_vec(rows, offset, offset + cnt);
                offset += cnt;
                v
            })
            .collect();
        let recv = ep.all_to_all_v(send, clock)?;
        let wire = vecs_to_tensor(recv, hidden);
        debug_assert_eq!(wire.rows(), self.recv_total());
        Ok(gather_rows(&wire, &self.perm))
    }

    /// Push `rows` (expert-major, `[B_exp, H]`) back to their source
    /// ranks; returns `[B, H]` in the sender's original PFT order.
    pub fn to_source(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let hidden = rows.cols();
        debug_assert_eq!(
            rows.rows(),
            self.recv_total(),
            "payload must be expert-major"
        );
        let wire_order = gather_rows(rows, &self.inv_perm);
        let mut send: Vec<Vec<f32>> = Vec::with_capacity(self.recv_per_src.len());
        let mut offset = 0usize;
        for &cnt in &self.recv_per_src {
            send.push(rows_to_vec(&wire_order, offset, offset + cnt));
            offset += cnt;
        }
        let recv = ep.all_to_all_v(send, clock)?;
        // Chunks arrive per destination in the order dispatch rows were
        // sent, so plain concatenation restores PFT order.
        Ok(vecs_to_tensor(recv, hidden))
    }
}

/// Distributed padding-free MoE layer over an expert-parallel group.
///
/// Every rank passes its local `[S, H]` token batch; experts are sharded
/// blockwise over the EP group (`shard`). Returns the local `[S, H]` output.
pub fn forward_ep(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    ep: &Communicator,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let cost = ep.cost().clone();
    let hidden = tokens.cols();

    // --- Gating + PFT construction -------------------------------------
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    let pft_bytes = (tokens.rows() * gating.k()) as f64 * 32.0;
    clock.charge(
        "gating",
        cost.compute_time(gate_flops) + cost.mem_bound_time(pft_bytes),
    );

    // --- Buffer dispatch: local gather into the dispatch matrix --------
    let dispatch_in = gather_rows(tokens, &pft.token_ids);
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );

    // --- Dispatch all-to-all (uneven, no padding) -----------------------
    // The count-exchange metadata all-to-all is charged separately from the
    // token payload so payload comparisons across pipelines stay apples to
    // apples.
    let route = EpRoute::build(pft, spec, ep, clock)?;
    clock.commit("dispatch_a2a_meta");
    let expert_input = route.to_experts(&dispatch_in, ep, clock)?;
    clock.commit("dispatch_a2a");

    // --- Expert computation: sequential GEMM ---------------------------
    let mlp_out = shard.forward_segments(&expert_input, &route.tokens_per_local_expert);
    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    let expert_flops = 4.0 * expert_input.rows() as f64 * hidden as f64 * ffn as f64;
    clock.charge("expert", cost.compute_time(expert_flops));

    // --- Combine all-to-all (reverse route) -----------------------------
    let combine_in = route.to_source(&mlp_out, ep, clock)?;
    clock.commit("combine_a2a");

    // --- Buffer combine: weighted scatter back to sequence order -------
    let mut out = Tensor::zeros(tokens.rows(), hidden);
    scatter_rows_scaled(
        &combine_in,
        &route.pft.token_ids,
        &route.pft.combine_weights,
        &mut out,
    );
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (route.pft.len() * hidden * 4) as f64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::DropPolicy;
    use xmoe_collectives::SimCluster;

    fn spec(e: usize, cap: usize) -> MoeLayerSpec {
        MoeLayerSpec::new(e, cap).with_policy(DropPolicy::CapacityOnly)
    }

    #[test]
    fn single_rank_output_is_weighted_expert_mix() {
        // One token, one expert, top-1: output must equal w * expert(x).
        let router = Router::new(8, 2, 1, 3);
        let experts = ExpertShard::full(2, 8, 16, 4);
        let tokens = Tensor::rand_uniform(1, 8, 1.0, 5);
        let out = forward_single(&tokens, &router, &experts, &spec(2, 100));
        let g = router.gate(&tokens);
        let e = g.top_experts[0][0];
        let w = g.combine_weights[0][0];
        let mut expected = experts.experts[e].forward(&tokens);
        xmoe_tensor::scale_assign(&mut expected, w);
        assert!(out.allclose(&expected, 1e-5));
    }

    #[test]
    fn distributed_matches_single_rank_reference() {
        let (s, h, f, e, k) = (24, 16, 8, 8, 3);
        let seed = 11;
        for world in [2usize, 4, 8] {
            let reference = {
                let router = Router::new(h, e, k, seed);
                let experts = ExpertShard::full(e, h, f, seed + 1);
                let sp = spec(e, 10_000);
                SimCluster::frontier(world).run(|ctx| {
                    // Every rank gets a *different* local batch.
                    let tokens = Tensor::rand_uniform(s, h, 1.0, 100 + ctx.rank as u64);
                    forward_single(&tokens, &router, &experts, &sp)
                })
            };
            let distributed = {
                let router = Router::new(h, e, k, seed);
                let sp = spec(e, 10_000);
                SimCluster::frontier(world).run(|ctx| {
                    let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, seed + 1);
                    let tokens = Tensor::rand_uniform(s, h, 1.0, 100 + ctx.rank as u64);
                    forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap()
                })
            };
            for (r, (a, b)) in reference.iter().zip(&distributed).enumerate() {
                assert!(
                    a.allclose(b, 1e-4),
                    "world {world} rank {r}: max diff {}",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn distributed_charges_all_pipeline_stages() {
        let (s, h, f, e, k) = (16, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 21);
        let sp = spec(e, 1000);
        let buckets = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 22);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 23);
            let _ = forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap();
            ctx.clock.buckets().to_vec()
        });
        for labels in &buckets {
            let names: Vec<&str> = labels.iter().map(|(l, _)| l.as_str()).collect();
            for want in [
                "gating",
                "buffer_dispatch",
                "dispatch_a2a",
                "expert",
                "combine_a2a",
                "buffer_combine",
            ] {
                assert!(names.contains(&want), "missing stage {want}: {names:?}");
            }
            assert!(labels.iter().all(|(_, t)| *t >= 0.0));
        }
    }

    #[test]
    fn capacity_drops_do_not_break_distributed_equivalence() {
        // Tight capacity: both paths must drop the same entries.
        let (s, h, f, e, k) = (32, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 31);
        let experts_full = ExpertShard::full(e, h, f, 32);
        let sp = spec(e, 5); // tight
        let tokens = Tensor::rand_uniform(s, h, 1.0, 33);
        let reference = forward_single(&tokens, &router, &experts_full, &sp);
        let distributed = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 32);
            forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap()
        });
        for d in &distributed {
            assert!(
                d.allclose(&reference, 1e-4),
                "max diff {}",
                d.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn route_roundtrip_restores_pft_order() {
        // to_experts followed by to_source must return every row to its
        // original position (the property backward relies on).
        let (s, h, e, k) = (20usize, 6usize, 8usize, 3usize);
        let router = Router::new(h, e, k, 41);
        let sp = spec(e, 1000);
        let ok = SimCluster::frontier(4).run(|ctx| {
            let tokens = Tensor::rand_uniform(s, h, 1.0, 200 + ctx.rank as u64);
            let gating = router.gate(&tokens);
            let pft = Pft::construct(&gating, e, sp.capacity, sp.policy);
            let payload = Tensor::rand_uniform(pft.len(), h, 1.0, 300 + ctx.rank as u64);
            let route = EpRoute::build(pft, &sp, &ctx.world, &mut ctx.clock).unwrap();
            let there = route
                .to_experts(&payload, &ctx.world, &mut ctx.clock)
                .unwrap();
            let back = route.to_source(&there, &ctx.world, &mut ctx.clock).unwrap();
            back.allclose(&payload, 0.0)
        });
        assert!(ok.iter().all(|&b| b), "route roundtrip failed: {ok:?}");
    }

    #[test]
    fn route_counts_are_consistent() {
        let (s, h, e, k) = (16usize, 6usize, 4usize, 2usize);
        let router = Router::new(h, e, k, 51);
        let sp = spec(e, 1000);
        let checks = SimCluster::frontier(4).run(|ctx| {
            let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + ctx.rank as u64);
            let gating = router.gate(&tokens);
            let pft = Pft::construct(&gating, e, sp.capacity, sp.policy);
            let b = pft.len();
            let route = EpRoute::build(pft, &sp, &ctx.world, &mut ctx.clock).unwrap();
            let send_total: usize = route.send_per_dst.iter().sum();
            let recv_total: usize = route.recv_per_src.iter().sum();
            let expert_total: usize = route.tokens_per_local_expert.iter().sum();
            (
                send_total == b,
                recv_total == route.recv_total(),
                expert_total == route.recv_total(),
            )
        });
        for (a, b, c) in checks {
            assert!(a && b && c);
        }
    }
}
