//! X-MoE's padding-free MoE layer (paper §4.1, Listing 1).
//!
//! Stage labels charged to the [`SimClock`] match the Fig 11 breakdown:
//! `gating`, `buffer_dispatch`, `dispatch_a2a`, `expert`, `combine_a2a`,
//! `buffer_combine`.
//!
//! The uneven exchange is factored into a reusable [`EpRoute`]: built once
//! per batch from the PFT's per-expert counts, it can push any row payload
//! along the dispatch direction ([`EpRoute::to_experts`]) or back along the
//! combine direction ([`EpRoute::to_source`]). The training backward pass
//! reuses the same route in reverse — gradients travel the exact same two
//! all-to-alls mirrored (the paper's 4 all-to-alls per layer per step).

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{gather_rows, gather_rows_into, scatter_rows_scaled, Tensor, Workspace};

use crate::expert::ExpertShard;
use crate::gating::{GateScratch, GatingOutput, Router};
use crate::pft::{Pft, PftScratch};
use crate::pipeline::{rows_to_vec, vecs_to_tensor, MoeLayerSpec};

/// Single-rank reference: all experts local, no communication.
///
/// `call` in Listing 1 minus the all-to-alls (a 1-rank EP group).
pub fn forward_single(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
) -> Tensor {
    // One engine, two callers: the owned variant is the pooled variant run
    // against a throwaway state (pooled gating and construction are
    // bitwise identical to their owned counterparts, pinned by tests).
    let mut state = PooledSingleState::default();
    forward_single_pooled(tokens, router, experts, spec, &mut state)
}

/// Persistent state for every pooled pipeline: the workspace arena plus
/// every buffer the pipelines reuse across steps. One instance per rank,
/// reused for the lifetime of the layer. The padding-free, block-sparse and
/// RBD paths all lease from the same state, so a rank running several
/// pipelines still converges to one arena high-water mark.
#[derive(Default)]
pub struct PooledSingleState {
    /// The arena backing transient leases (dispatch, MLP scratch, output).
    pub ws: Workspace,
    pub(crate) gate_scratch: GateScratch,
    pub(crate) gating: GatingOutput,
    pub(crate) pft_scratch: PftScratch,
    pub(crate) pft: Pft,
    pub(crate) dispatch_in: Tensor,
    /// RBD-specific plan/staging scratch (see [`crate::rbd`]).
    pub(crate) rbd: crate::rbd::RbdScratch,
}

/// [`forward_single`] with every intermediate buffer served from a
/// [`PooledSingleState`]: pooled gating, pooled PFT construction, pooled
/// dispatch staging and pooled segment GEMMs. Bitwise identical to the
/// unpooled variant; after the first (warm-up) call, steady-state calls
/// perform zero transient heap allocations. The returned output is leased
/// from `state.ws` — recycle it there when done.
pub fn forward_single_pooled(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
    state: &mut PooledSingleState,
) -> Tensor {
    assert_eq!(
        experts.len(),
        spec.num_experts,
        "single-rank forward needs the full expert set"
    );
    router.gate_into(tokens, &mut state.gate_scratch, &mut state.gating);
    Pft::construct_into(
        &state.gating,
        spec.num_experts,
        spec.capacity,
        spec.policy,
        &mut state.pft_scratch,
        &mut state.pft,
    );
    gather_rows_into(tokens, &state.pft.token_ids, &mut state.dispatch_in);
    let mlp_out = experts.forward_segments_pooled(
        &state.dispatch_in,
        &state.pft.tokens_per_expert,
        &mut state.ws,
    );
    let mut out = state.ws.take(tokens.rows(), tokens.cols());
    scatter_rows_scaled(
        &mlp_out,
        &state.pft.token_ids,
        &state.pft.combine_weights,
        &mut out,
    );
    state.ws.recycle(mlp_out);
    out
}

/// The routing plan of one uneven EP exchange, reusable for forward
/// activations and backward gradients.
///
/// Wire layout: rows travel grouped by destination rank (the PFT is
/// expert-sorted, so per-destination slices are contiguous); on arrival
/// they are regrouped expert-major for the sequential GEMM via `perm`.
pub struct EpRoute {
    /// The PFT this route was built from (source-side ERI arrays).
    pub pft: Pft,
    /// Per-destination-rank entry counts on the send side.
    pub send_per_dst: Vec<usize>,
    /// Entry counts received from each source rank.
    pub recv_per_src: Vec<usize>,
    /// Entry counts per local expert after the expert-major regroup.
    pub tokens_per_local_expert: Vec<usize>,
    /// `perm[i]` = wire position of expert-major position `i`.
    perm: Vec<usize>,
    /// Inverse of `perm`.
    inv_perm: Vec<usize>,
    /// `tpe_recv[src][e]` = rows inbound from `src` for local expert `e`
    /// (the raw count exchange), kept to derive per-chunk sub-routes.
    tpe_recv: Vec<Vec<u64>>,
}

/// One chunk of an [`EpRoute`]: the sub-route covering a contiguous range of
/// local experts, used to pipeline the uneven exchange against the expert
/// GEMMs. Concatenating the chunks' expert-major buffers in order
/// reconstructs the full route's expert-major buffer exactly.
pub struct ChunkPlan {
    /// Local-expert range `[e0, e1)` this chunk covers (on every rank —
    /// chunking is by expert index, which is uniform across ranks).
    pub experts: (usize, usize),
    /// Send rows `[start, end)` in PFT order, per destination rank (the
    /// PFT is expert-sorted, so each destination's chunk slice is
    /// contiguous).
    pub send_ranges: Vec<(usize, usize)>,
    /// Rows received from each source rank in this chunk.
    pub recv_per_src: Vec<usize>,
    /// Chunk-local wire→expert-major permutation.
    perm: Vec<usize>,
    /// Inverse of `perm`.
    inv_perm: Vec<usize>,
}

impl ChunkPlan {
    /// Rows on the expert side of this chunk.
    pub fn recv_total(&self) -> usize {
        self.perm.len()
    }
}

impl EpRoute {
    /// Collectively build the route: exchanges `tokens_per_expert` so every
    /// destination knows its inbound segment sizes (Listing 1 line 44).
    pub fn build(
        pft: Pft,
        spec: &MoeLayerSpec,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<EpRoute, CommError> {
        let w = ep.size();
        assert_eq!(spec.num_experts % w, 0, "experts must divide EP size");
        let e_local = spec.num_experts / w;
        let tpe_send: Vec<Vec<u64>> = (0..w)
            .map(|dst| {
                pft.tokens_per_expert[dst * e_local..(dst + 1) * e_local]
                    .iter()
                    .map(|&c| c as u64)
                    .collect()
            })
            .collect();
        let tpe_recv = ep.all_to_all_v(tpe_send, clock)?;

        let send_per_dst = pft.counts_per_shard(w);
        let recv_per_src: Vec<usize> = tpe_recv
            .iter()
            .map(|r| r.iter().sum::<u64>() as usize)
            .collect();
        let mut src_base = vec![0usize; w];
        for s in 1..w {
            src_base[s] = src_base[s - 1] + recv_per_src[s - 1];
        }
        let mut tokens_per_local_expert = vec![0usize; e_local];
        for r in &tpe_recv {
            for (e, &c) in r.iter().enumerate() {
                tokens_per_local_expert[e] += c as usize;
            }
        }
        let total: usize = tokens_per_local_expert.iter().sum();
        // Wire order is (src, local_expert); the sequential GEMM needs
        // (local_expert, src).
        let mut perm = Vec::with_capacity(total);
        for e in 0..e_local {
            for (src, counts) in tpe_recv.iter().enumerate() {
                let before: usize = counts[..e].iter().map(|&c| c as usize).sum();
                let cnt = counts[e] as usize;
                let start = src_base[src] + before;
                perm.extend(start..start + cnt);
            }
        }
        let mut inv_perm = vec![0usize; total];
        for (expert_major, &wire) in perm.iter().enumerate() {
            inv_perm[wire] = expert_major;
        }
        Ok(EpRoute {
            pft,
            send_per_dst,
            recv_per_src,
            tokens_per_local_expert,
            perm,
            inv_perm,
            tpe_recv,
        })
    }

    /// Split the route into (up to) `chunks` sub-routes over contiguous
    /// local-expert ranges, for the pipelined dispatch–compute overlap.
    ///
    /// The chunk boundaries are pure functions of uniform quantities
    /// (`chunks`, the local expert count), so every rank derives the same
    /// plan and the chunked collectives stay in SPMD order.
    pub fn chunk_plans(&self, chunks: usize) -> Vec<ChunkPlan> {
        let e_local = self.tokens_per_local_expert.len();
        let w = self.send_per_dst.len();
        let k = chunks.clamp(1, e_local.max(1));
        // Global prefix over the PFT's per-expert counts: the PFT is sorted
        // by global expert id, so rows destined for dst `d`'s local experts
        // [e0, e1) are exactly PFT rows [gpre[d*e_local+e0], gpre[d*e_local+e1]).
        let n_exp = self.pft.tokens_per_expert.len();
        let mut gpre = vec![0usize; n_exp + 1];
        for (e, &c) in self.pft.tokens_per_expert.iter().enumerate() {
            gpre[e + 1] = gpre[e] + c;
        }
        let mut plans = Vec::with_capacity(k);
        for c in 0..k {
            let e0 = c * e_local / k;
            let e1 = (c + 1) * e_local / k;
            let send_ranges: Vec<(usize, usize)> = (0..w)
                .map(|d| (gpre[d * e_local + e0], gpre[d * e_local + e1]))
                .collect();
            let recv_per_src: Vec<usize> = self
                .tpe_recv
                .iter()
                .map(|r| r[e0..e1].iter().sum::<u64>() as usize)
                .collect();
            let mut src_base = vec![0usize; w];
            for s in 1..w {
                src_base[s] = src_base[s - 1] + recv_per_src[s - 1];
            }
            let total: usize = recv_per_src.iter().sum();
            // Chunk wire order is (src, local_expert) like the full route;
            // regroup (local_expert, src) so chunk buffers concatenate into
            // the full expert-major order.
            let mut perm = Vec::with_capacity(total);
            for e in e0..e1 {
                for (src, counts) in self.tpe_recv.iter().enumerate() {
                    let before: usize = counts[e0..e].iter().map(|&c| c as usize).sum();
                    let cnt = counts[e] as usize;
                    let start = src_base[src] + before;
                    perm.extend(start..start + cnt);
                }
            }
            let mut inv_perm = vec![0usize; total];
            for (expert_major, &wire) in perm.iter().enumerate() {
                inv_perm[wire] = expert_major;
            }
            plans.push(ChunkPlan {
                experts: (e0, e1),
                send_ranges,
                recv_per_src,
                perm,
                inv_perm,
            });
        }
        plans
    }

    /// Rows received on this rank (the expert-side buffer length).
    pub fn recv_total(&self) -> usize {
        self.perm.len()
    }

    /// Pipelined `to_experts → compute → to_source`: the route is split into
    /// `chunks` expert-contiguous sub-routes, every dispatch chunk is issued
    /// up front (a NIC send queue), and chunk `i`'s expert compute runs on
    /// the `compute` overlap track while chunk `i+1`'s payload is still in
    /// flight on the `comm` track (paper §4.1's dispatch–compute overlap).
    ///
    /// Three tracks model a full-duplex NIC: dispatch chunks drain
    /// back-to-back on `comm` (inbound), expert GEMMs run on `compute`, and
    /// combine chunks drain on `comm_out` (outbound) — a combine transfer
    /// cannot start before its own GEMM finished (enforced per chunk via
    /// `advance_to_op`) but does not block dispatch chunks still in flight
    /// the other way.
    ///
    /// `labels = (dispatch, compute, combine)` name the stage buckets.
    /// `compute(c, plan, chunk_in, clock)` gets chunk `c`'s expert-major
    /// `[rows_c, H]` buffer, must return the same-shaped output, and charges
    /// its own compute time (any leftover pending time is committed under the
    /// compute label). Concatenating the chunk buffers in order reproduces
    /// the full route's expert-major buffer exactly, so the overlapped result
    /// is bitwise identical to the serial schedule — only the simulated
    /// timeline differs.
    pub fn exchange_overlap<F>(
        &self,
        rows: &Tensor,
        chunks: usize,
        labels: (&str, &str, &str),
        ep: &Communicator,
        clock: &mut SimClock,
        mut compute: F,
    ) -> Result<Tensor, CommError>
    where
        F: FnMut(usize, &ChunkPlan, &Tensor, &mut SimClock) -> Tensor,
    {
        let (dispatch_label, compute_label, combine_label) = labels;
        let hidden = rows.cols();
        debug_assert_eq!(rows.rows(), self.pft.len(), "payload must be in PFT order");
        let plans = self.chunk_plans(chunks);

        clock.begin_overlap("dispatch_compute");
        clock.set_track("comm");
        // Issue every dispatch chunk before waiting on any: the sends sit in
        // the FIFO per-(src,dst) channels like a NIC send queue, and the comm
        // track serializes their priced transfer times as the waits drain.
        // Issuing never blocks, so the interleaved schedule cannot deadlock.
        let mut dispatch_pending = Vec::with_capacity(plans.len());
        for plan in &plans {
            let send: Vec<Vec<f32>> = plan
                .send_ranges
                .iter()
                .map(|&(s0, s1)| rows_to_vec(rows, s0, s1))
                .collect();
            dispatch_pending.push(ep.issue_all_to_all_v(send, clock)?);
        }

        let mut out = Tensor::zeros(self.pft.len(), hidden);
        let mut combine_pending = Vec::with_capacity(plans.len());
        let mut gemm_done_at = Vec::with_capacity(plans.len());
        for (c, (plan, pending)) in plans.iter().zip(dispatch_pending).enumerate() {
            clock.set_track("comm");
            let recv = pending.wait(clock)?;
            clock.commit(dispatch_label);
            let arrived = clock.track_time("comm").expect("comm track exists");

            let wire = vecs_to_tensor(recv, hidden);
            debug_assert_eq!(wire.rows(), plan.recv_total());
            let chunk_in = gather_rows(&wire, &plan.perm);

            clock.set_track("compute");
            // Honest cross-track dependency: the GEMM cannot start before
            // its chunk has arrived.
            clock.advance_to_op(compute_label, arrived);
            let chunk_out = compute(c, plan, &chunk_in, clock);
            clock.commit(compute_label);
            assert_eq!(
                chunk_out.rows(),
                plan.recv_total(),
                "compute must map chunk rows 1:1"
            );
            let gemm_done = clock.track_time("compute").expect("compute track exists");
            gemm_done_at.push(gemm_done);

            // Issue the combine send from the compute track: injection is
            // free, and the message carries the `gemm_done` stamp so peers
            // cannot see chunk c's rows earlier than its GEMM finished.
            // Transfer time is priced on the outbound track in the drain
            // loop below.
            let wire_order = gather_rows(&chunk_out, &plan.inv_perm);
            let mut send = Vec::with_capacity(plan.recv_per_src.len());
            let mut offset = 0usize;
            for &cnt in &plan.recv_per_src {
                send.push(rows_to_vec(&wire_order, offset, offset + cnt));
                offset += cnt;
            }
            combine_pending.push(ep.issue_all_to_all_v(send, clock)?);
        }

        // Drain the combine exchanges in issue order on the outbound track;
        // each chunk's rows return to the PFT positions they were dispatched
        // from. The per-chunk `advance_to_op` pins the transfer start at the
        // chunk's own GEMM completion; `wait` then maxes in the peers'
        // injection stamps.
        clock.set_track("comm_out");
        for ((plan, pending), gemm_done) in plans.iter().zip(combine_pending).zip(gemm_done_at) {
            clock.advance_to_op(combine_label, gemm_done);
            let recv = pending.wait(clock)?;
            clock.commit(combine_label);
            for (src, data) in recv.into_iter().enumerate() {
                let (s0, s1) = plan.send_ranges[src];
                debug_assert_eq!(data.len(), (s1 - s0) * hidden);
                out.as_mut_slice()[s0 * hidden..s1 * hidden].copy_from_slice(&data);
            }
        }
        clock.end_overlap();
        Ok(out)
    }

    /// Push `rows` (PFT order, `[B, H]`) along the dispatch direction;
    /// returns the expert-major `[B_exp, H]` buffer on the receiving side.
    pub fn to_experts(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let hidden = rows.cols();
        debug_assert_eq!(rows.rows(), self.pft.len(), "payload must be in PFT order");
        let mut offset = 0usize;
        let send: Vec<Vec<f32>> = self
            .send_per_dst
            .iter()
            .map(|&cnt| {
                let v = rows_to_vec(rows, offset, offset + cnt);
                offset += cnt;
                v
            })
            .collect();
        let recv = ep.all_to_all_v(send, clock)?;
        let wire = vecs_to_tensor(recv, hidden);
        debug_assert_eq!(wire.rows(), self.recv_total());
        Ok(gather_rows(&wire, &self.perm))
    }

    /// Push `rows` (expert-major, `[B_exp, H]`) back to their source
    /// ranks; returns `[B, H]` in the sender's original PFT order.
    pub fn to_source(
        &self,
        rows: &Tensor,
        ep: &Communicator,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let hidden = rows.cols();
        debug_assert_eq!(
            rows.rows(),
            self.recv_total(),
            "payload must be expert-major"
        );
        let wire_order = gather_rows(rows, &self.inv_perm);
        let mut send: Vec<Vec<f32>> = Vec::with_capacity(self.recv_per_src.len());
        let mut offset = 0usize;
        for &cnt in &self.recv_per_src {
            send.push(rows_to_vec(&wire_order, offset, offset + cnt));
            offset += cnt;
        }
        let recv = ep.all_to_all_v(send, clock)?;
        // Chunks arrive per destination in the order dispatch rows were
        // sent, so plain concatenation restores PFT order.
        Ok(vecs_to_tensor(recv, hidden))
    }
}

/// Distributed padding-free MoE layer over an expert-parallel group.
///
/// Every rank passes its local `[S, H]` token batch; experts are sharded
/// blockwise over the EP group (`shard`). Returns the local `[S, H]` output.
pub fn forward_ep(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    ep: &Communicator,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let cost = ep.cost();
    let hidden = tokens.cols();

    // --- Gating + PFT construction -------------------------------------
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    let pft_bytes = (tokens.rows() * gating.k()) as f64 * 32.0;
    clock.charge(
        "gating",
        cost.compute_time(gate_flops) + cost.mem_bound_time(pft_bytes),
    );

    // --- Buffer dispatch: local gather into the dispatch matrix --------
    let dispatch_in = gather_rows(tokens, &pft.token_ids);
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );

    // --- Dispatch all-to-all (uneven, no padding) -----------------------
    // The count-exchange metadata all-to-all is charged separately from the
    // token payload so payload comparisons across pipelines stay apples to
    // apples.
    let route = EpRoute::build(pft, spec, ep, clock)?;
    clock.commit("dispatch_a2a_meta");
    let expert_input = route.to_experts(&dispatch_in, ep, clock)?;
    clock.commit("dispatch_a2a");

    // --- Expert computation: sequential GEMM ---------------------------
    let mlp_out = shard.forward_segments(&expert_input, &route.tokens_per_local_expert);
    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    let expert_flops = 4.0 * expert_input.rows() as f64 * hidden as f64 * ffn as f64;
    clock.charge("expert", cost.compute_time(expert_flops));

    // --- Combine all-to-all (reverse route) -----------------------------
    let combine_in = route.to_source(&mlp_out, ep, clock)?;
    clock.commit("combine_a2a");

    // --- Buffer combine: weighted scatter back to sequence order -------
    let mut out = Tensor::zeros(tokens.rows(), hidden);
    scatter_rows_scaled(
        &combine_in,
        &route.pft.token_ids,
        &route.pft.combine_weights,
        &mut out,
    );
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (route.pft.len() * hidden * 4) as f64),
    );
    Ok(out)
}

/// [`forward_ep`] with the dispatch/combine exchanges split into `chunks`
/// expert-contiguous pieces and pipelined against the expert GEMMs via
/// [`EpRoute::exchange_overlap`]. The output is bitwise identical to
/// [`forward_ep`]; only the simulated timeline differs — the `comm` and
/// `compute` tracks of the overlap region advance concurrently, so the
/// step's wall clock hides whichever side is shorter.
pub fn forward_ep_overlap(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    chunks: usize,
    ep: &Communicator,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let cost = ep.cost();
    let hidden = tokens.cols();

    // Serial prefix identical to `forward_ep`.
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    let pft_bytes = (tokens.rows() * gating.k()) as f64 * 32.0;
    clock.charge(
        "gating",
        cost.compute_time(gate_flops) + cost.mem_bound_time(pft_bytes),
    );

    let dispatch_in = gather_rows(tokens, &pft.token_ids);
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );

    let route = EpRoute::build(pft, spec, ep, clock)?;
    clock.commit("dispatch_a2a_meta");

    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    let e_local = route.tokens_per_local_expert.len();
    let combine_in = route.exchange_overlap(
        &dispatch_in,
        chunks,
        ("dispatch_a2a", "expert", "combine_a2a"),
        ep,
        clock,
        |_c, plan, chunk_in, clock| {
            // Per-expert forwards over [e0, e1): a full-length count vector
            // zeroed outside the chunk makes `forward_segments` walk exactly
            // the serial schedule's row slices for these experts.
            let (e0, e1) = plan.experts;
            let mut counts = vec![0usize; e_local];
            counts[e0..e1].copy_from_slice(&route.tokens_per_local_expert[e0..e1]);
            let chunk_out = shard.forward_segments(chunk_in, &counts);
            let flops = 4.0 * chunk_in.rows() as f64 * hidden as f64 * ffn as f64;
            clock.charge("expert", cost.compute_time(flops));
            chunk_out
        },
    )?;

    let mut out = Tensor::zeros(tokens.rows(), hidden);
    scatter_rows_scaled(
        &combine_in,
        &route.pft.token_ids,
        &route.pft.combine_weights,
        &mut out,
    );
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (route.pft.len() * hidden * 4) as f64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::DropPolicy;
    use xmoe_collectives::{SimCluster, Span};

    fn spec(e: usize, cap: usize) -> MoeLayerSpec {
        MoeLayerSpec::new(e, cap).with_policy(DropPolicy::CapacityOnly)
    }

    #[test]
    fn single_rank_output_is_weighted_expert_mix() {
        // One token, one expert, top-1: output must equal w * expert(x).
        let router = Router::new(8, 2, 1, 3);
        let experts = ExpertShard::full(2, 8, 16, 4);
        let tokens = Tensor::rand_uniform(1, 8, 1.0, 5);
        let out = forward_single(&tokens, &router, &experts, &spec(2, 100));
        let g = router.gate(&tokens);
        let e = g.top_experts[0];
        let w = g.combine_weights[0];
        let mut expected = experts.experts[e].forward(&tokens);
        xmoe_tensor::scale_assign(&mut expected, w);
        assert!(out.allclose(&expected, 1e-5));
    }

    #[test]
    fn pooled_single_rank_is_bitwise_identical_across_steps() {
        let (s, h, f, e, k) = (24, 16, 8, 8, 3);
        let router = Router::new(h, e, k, 31);
        let experts = ExpertShard::full(e, h, f, 32);
        let sp = spec(e, 7); // tight capacity: drops exercised too
        let mut state = PooledSingleState::default();
        for step in 0..4 {
            let tokens = Tensor::rand_uniform(s, h, 1.0, 100 + step);
            let expected = forward_single(&tokens, &router, &experts, &sp);
            let out = forward_single_pooled(&tokens, &router, &experts, &sp, &mut state);
            assert!(out.allclose(&expected, 0.0), "step {step} diverged");
            state.ws.recycle(out);
        }
        // Warm-up allocates two arena buffers (the recycled MLP scratch is
        // reused for the combine output); subsequent steps only reuse.
        assert_eq!(state.ws.stats().pool_misses, 2);
    }

    #[test]
    fn distributed_matches_single_rank_reference() {
        let (s, h, f, e, k) = (24, 16, 8, 8, 3);
        let seed = 11;
        for world in [2usize, 4, 8] {
            let reference = {
                let router = Router::new(h, e, k, seed);
                let experts = ExpertShard::full(e, h, f, seed + 1);
                let sp = spec(e, 10_000);
                SimCluster::frontier(world).run(|ctx| {
                    // Every rank gets a *different* local batch.
                    let tokens = Tensor::rand_uniform(s, h, 1.0, 100 + ctx.rank as u64);
                    forward_single(&tokens, &router, &experts, &sp)
                })
            };
            let distributed = {
                let router = Router::new(h, e, k, seed);
                let sp = spec(e, 10_000);
                SimCluster::frontier(world).run(|ctx| {
                    let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, seed + 1);
                    let tokens = Tensor::rand_uniform(s, h, 1.0, 100 + ctx.rank as u64);
                    forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap()
                })
            };
            for (r, (a, b)) in reference.iter().zip(&distributed).enumerate() {
                assert!(
                    a.allclose(b, 1e-4),
                    "world {world} rank {r}: max diff {}",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn distributed_charges_all_pipeline_stages() {
        let (s, h, f, e, k) = (16, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 21);
        let sp = spec(e, 1000);
        let buckets = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 22);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 23);
            let _ = forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap();
            ctx.clock.buckets().to_vec()
        });
        for labels in &buckets {
            let names: Vec<&str> = labels.iter().map(|(l, _)| l.as_str()).collect();
            for want in [
                "gating",
                "buffer_dispatch",
                "dispatch_a2a",
                "expert",
                "combine_a2a",
                "buffer_combine",
            ] {
                assert!(names.contains(&want), "missing stage {want}: {names:?}");
            }
            assert!(labels.iter().all(|(_, t)| *t >= 0.0));
        }
    }

    #[test]
    fn capacity_drops_do_not_break_distributed_equivalence() {
        // Tight capacity: both paths must drop the same entries.
        let (s, h, f, e, k) = (32, 8, 4, 4, 2);
        let router = Router::new(h, e, k, 31);
        let experts_full = ExpertShard::full(e, h, f, 32);
        let sp = spec(e, 5); // tight
        let tokens = Tensor::rand_uniform(s, h, 1.0, 33);
        let reference = forward_single(&tokens, &router, &experts_full, &sp);
        let distributed = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 32);
            forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap()
        });
        for d in &distributed {
            assert!(
                d.allclose(&reference, 1e-4),
                "max diff {}",
                d.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn route_roundtrip_restores_pft_order() {
        // to_experts followed by to_source must return every row to its
        // original position (the property backward relies on).
        let (s, h, e, k) = (20usize, 6usize, 8usize, 3usize);
        let router = Router::new(h, e, k, 41);
        let sp = spec(e, 1000);
        let ok = SimCluster::frontier(4).run(|ctx| {
            let tokens = Tensor::rand_uniform(s, h, 1.0, 200 + ctx.rank as u64);
            let gating = router.gate(&tokens);
            let pft = Pft::construct(&gating, e, sp.capacity, sp.policy);
            let payload = Tensor::rand_uniform(pft.len(), h, 1.0, 300 + ctx.rank as u64);
            let route = EpRoute::build(pft, &sp, &ctx.world, &mut ctx.clock).unwrap();
            let there = route
                .to_experts(&payload, &ctx.world, &mut ctx.clock)
                .unwrap();
            let back = route.to_source(&there, &ctx.world, &mut ctx.clock).unwrap();
            back.allclose(&payload, 0.0)
        });
        assert!(ok.iter().all(|&b| b), "route roundtrip failed: {ok:?}");
    }

    #[test]
    fn overlap_forward_is_bitwise_identical_to_serial() {
        let (s, h, f, e, k) = (24, 16, 8, 8, 3);
        for world in [2usize, 4] {
            let serial = {
                let router = Router::new(h, e, k, 61);
                let sp = spec(e, 10_000);
                SimCluster::frontier(world).run(|ctx| {
                    let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 62);
                    let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + ctx.rank as u64);
                    forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock).unwrap()
                })
            };
            for chunks in [1usize, 2, 4, 9] {
                let router = Router::new(h, e, k, 61);
                let sp = spec(e, 10_000);
                let overlapped = SimCluster::frontier(world).run(|ctx| {
                    let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 62);
                    let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + ctx.rank as u64);
                    forward_ep_overlap(
                        &tokens,
                        &router,
                        &shard,
                        &sp,
                        chunks,
                        &ctx.world,
                        &mut ctx.clock,
                    )
                    .unwrap()
                });
                for (r, (a, b)) in serial.iter().zip(&overlapped).enumerate() {
                    assert!(
                        a.allclose(b, 0.0),
                        "world {world} chunks {chunks} rank {r}: not bitwise identical \
                         (max diff {})",
                        a.max_abs_diff(b)
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_hides_time_and_tracks_stay_exact() {
        // The overlapped schedule must never be slower than its own serial
        // work sum, and the per-track spans must sum exactly.
        let (s, h, f, e, k) = (48, 16, 8, 8, 4);
        let router = Router::new(h, e, k, 71);
        let sp = spec(e, 10_000);
        let world = 4;
        let reports = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 72);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 600 + ctx.rank as u64);
            let _ =
                forward_ep_overlap(&tokens, &router, &shard, &sp, 4, &ctx.world, &mut ctx.clock)
                    .unwrap();
            ctx.clock.flush();
            let wall = ctx.clock.now();
            let work: f64 = ctx.clock.buckets().iter().map(|(_, t)| t).sum();
            let spans = ctx.clock.spans().to_vec();
            (wall, work, spans)
        });
        for (wall, work, spans) in reports {
            // Overlap hides time: total work strictly exceeds the wall
            // clock whenever both tracks did anything.
            assert!(work >= wall - 1e-12, "work {work} < wall {wall}");
            // Per-track exactness: within each track, spans are
            // back-to-back (sum == cursor advance over the track).
            for track in ["comm", "compute"] {
                let mut t: Vec<&Span> = spans
                    .iter()
                    .filter(|sp| sp.track.as_deref() == Some(track))
                    .collect();
                t.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
                for w in t.windows(2) {
                    assert!(
                        (w[0].start + w[0].dur - w[1].start).abs() < 1e-9,
                        "gap inside track {track}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_plans_partition_the_route() {
        let (s, h, e, k) = (32usize, 6usize, 8usize, 3usize);
        let router = Router::new(h, e, k, 81);
        let sp = spec(e, 1000);
        let world = 4;
        let ok = SimCluster::frontier(world).run(|ctx| {
            let tokens = Tensor::rand_uniform(s, h, 1.0, 700 + ctx.rank as u64);
            let gating = router.gate(&tokens);
            let pft = Pft::construct(&gating, e, sp.capacity, sp.policy);
            let route = EpRoute::build(pft, &sp, &ctx.world, &mut ctx.clock).unwrap();
            for chunks in [1usize, 2, 3, 100] {
                let plans = route.chunk_plans(chunks);
                // Expert ranges tile [0, e_local).
                let e_local = route.tokens_per_local_expert.len();
                assert_eq!(plans[0].experts.0, 0);
                assert_eq!(plans.last().unwrap().experts.1, e_local);
                for w in plans.windows(2) {
                    assert_eq!(w[0].experts.1, w[1].experts.0);
                }
                // Per-destination send ranges tile each destination's PFT
                // slice, and recv counts sum to the full route's.
                for d in 0..world {
                    for w in plans.windows(2) {
                        assert_eq!(w[0].send_ranges[d].1, w[1].send_ranges[d].0);
                    }
                }
                let sent: usize = plans
                    .iter()
                    .flat_map(|p| p.send_ranges.iter().map(|&(a, b)| b - a))
                    .sum();
                assert_eq!(sent, route.pft.len());
                for src in 0..world {
                    let recv: usize = plans.iter().map(|p| p.recv_per_src[src]).sum();
                    assert_eq!(recv, route.recv_per_src[src]);
                }
            }
            true
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn route_counts_are_consistent() {
        let (s, h, e, k) = (16usize, 6usize, 4usize, 2usize);
        let router = Router::new(h, e, k, 51);
        let sp = spec(e, 1000);
        let checks = SimCluster::frontier(4).run(|ctx| {
            let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + ctx.rank as u64);
            let gating = router.gate(&tokens);
            let pft = Pft::construct(&gating, e, sp.capacity, sp.policy);
            let b = pft.len();
            let route = EpRoute::build(pft, &sp, &ctx.world, &mut ctx.clock).unwrap();
            let send_total: usize = route.send_per_dst.iter().sum();
            let recv_total: usize = route.recv_per_src.iter().sum();
            let expert_total: usize = route.tokens_per_local_expert.iter().sum();
            (
                send_total == b,
                recv_total == route.recv_total(),
                expert_total == route.recv_total(),
            )
        });
        for (a, b, c) in checks {
            assert!(a && b && c);
        }
    }
}
