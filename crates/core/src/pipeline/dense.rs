//! The dense zero-padded baseline pipeline (GShard / DeepSpeed-MoE style,
//! paper §3.1 and Appendix B.1).
//!
//! Gating constructs a dispatch mask equivalent to `[S, E, C]`; the dispatch
//! stage fills fixed-capacity `[E, C, H]` expert buffers, zero-padding unused
//! slots; an **even** all-to-all exchanges the full padded buffers; experts
//! process `C` rows each (padding included); a second even all-to-all and a
//! masked combine produce the output. The padding is physically allocated
//! and communicated — exactly the inefficiency PFT removes.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{argsort_desc_by, Tensor};

use crate::expert::ExpertShard;
use crate::gating::{DropPolicy, GatingOutput, Router};
use crate::pipeline::MoeLayerSpec;

/// Which routed entries win buffer slots when an expert overflows capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenseDropOrder {
    /// GShard/DeepSpeed-MoE: first-come in token order.
    TokenOrder,
    /// Rank globally by combine weight — matches X-MoE's PFT retention, so
    /// the two pipelines become bit-comparable under overflow.
    WeightRanked,
}

/// The dense dispatch structure: padded buffers plus the (sparse view of
/// the) dispatch mask.
#[derive(Clone, Debug)]
pub struct DenseDispatch {
    /// `[E * C, H]` zero-padded expert input buffers (row `e * C + c`).
    pub buffers: Tensor,
    /// Mask entries `(token, expert, slot, weight)` — the nonzeros of the
    /// `[S, E, C]` dispatch mask.
    pub entries: Vec<(usize, usize, usize, f32)>,
    pub capacity: usize,
    pub dropped: usize,
}

/// Build the padded dispatch buffers from gating output (Appendix B.1).
pub fn build_dense_dispatch(
    tokens: &Tensor,
    gating: &GatingOutput,
    spec: &MoeLayerSpec,
    order: DenseDropOrder,
) -> DenseDispatch {
    let (e, c) = (spec.num_experts, spec.capacity);
    let s = gating.tokens();
    let k = gating.k();
    let mut buffers = Tensor::zeros(e * c, tokens.cols());
    let mut entries = Vec::with_capacity(s * k);
    let mut fill = vec![0usize; e];
    let mut dropped = 0usize;

    // Candidate (token, slot-in-k) pairs in the configured priority order.
    let mut cands: Vec<(usize, usize)> = Vec::with_capacity(s * k);
    for t in 0..s {
        for j in 0..k {
            cands.push((t, j));
        }
    }
    if order == DenseDropOrder::WeightRanked {
        let weights: Vec<f32> = cands
            .iter()
            .map(|&(t, j)| gating.combine_weights[t * k + j])
            .collect();
        let perm = argsort_desc_by(&weights);
        cands = perm.into_iter().map(|i| cands[i]).collect();
    }

    for (t, j) in cands {
        if spec.policy == DropPolicy::CapacityAndNegativeLogit && gating.top_logits[t * k + j] < 0.0
        {
            dropped += 1;
            continue;
        }
        let expert = gating.top_experts[t * k + j];
        if fill[expert] >= c {
            dropped += 1;
            continue;
        }
        let slot = fill[expert];
        fill[expert] += 1;
        buffers
            .row_mut(expert * c + slot)
            .copy_from_slice(tokens.row(t));
        entries.push((t, expert, slot, gating.combine_weights[t * k + j]));
    }

    DenseDispatch {
        buffers,
        entries,
        capacity: c,
        dropped,
    }
}

/// Single-rank dense baseline: all experts local.
pub fn forward_single_dense(
    tokens: &Tensor,
    router: &Router,
    experts: &ExpertShard,
    spec: &MoeLayerSpec,
    order: DenseDropOrder,
) -> Tensor {
    assert_eq!(experts.len(), spec.num_experts);
    let gating = router.gate(tokens);
    let d = build_dense_dispatch(tokens, &gating, spec, order);
    let c = d.capacity;
    // Experts process their full padded [C, H] slab.
    let per_expert = vec![c; spec.num_experts];
    let out_buffers = experts.forward_segments(&d.buffers, &per_expert);
    combine_dense(tokens.rows(), tokens.cols(), &out_buffers, &d.entries, c)
}

fn combine_dense(
    s: usize,
    hidden: usize,
    out_buffers: &Tensor,
    entries: &[(usize, usize, usize, f32)],
    capacity: usize,
) -> Tensor {
    let mut out = Tensor::zeros(s, hidden);
    for &(t, e, slot, w) in entries {
        let src = out_buffers.row(e * capacity + slot);
        let dst = out.row_mut(t);
        for (d, v) in dst.iter_mut().zip(src) {
            *d += w * v;
        }
    }
    out
}

/// Distributed dense baseline over an expert-parallel group: even
/// all-to-alls exchanging full padded slabs (padding included).
///
/// Stage labels match [`crate::pipeline::padding_free::forward_ep`] so the
/// Fig 11 breakdown can compare the two directly.
pub fn forward_ep_dense(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    order: DenseDropOrder,
    ep: &Communicator,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    let w = ep.size();
    assert_eq!(spec.num_experts % w, 0);
    let e_local = spec.num_experts / w;
    let c = spec.capacity;
    let hidden = tokens.cols();
    let cost = ep.cost();

    // --- Gating + dense mask construction ------------------------------
    let gating = router.gate(tokens);
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    // The [S, E, C] one-hot mask is materialized (f32): its construction
    // and the token-drop masking are memory-bound over S*E*C elements.
    let mask_bytes = (tokens.rows() * spec.num_experts * c * 4) as f64;
    clock.charge(
        "gating",
        cost.compute_time(gate_flops) + cost.mem_bound_time(2.0 * mask_bytes),
    );

    // --- Buffer dispatch: einsum("sec,sm->ecm") ------------------------
    let d = build_dense_dispatch(tokens, &gating, spec, order);
    // The einsum contracts over S densely: 2 * S * (E*C) * H flops.
    let einsum_flops = 2.0 * tokens.rows() as f64 * (spec.num_experts * c) as f64 * hidden as f64;
    clock.charge("buffer_dispatch", cost.compute_time(einsum_flops));

    // --- Even dispatch all-to-all (padding travels too) ----------------
    let send: Vec<Vec<f32>> = (0..w)
        .map(|dst| {
            crate::pipeline::rows_to_vec(&d.buffers, dst * e_local * c, (dst + 1) * e_local * c)
        })
        .collect();
    let recv = ep.all_to_all(send, clock)?;
    clock.commit("dispatch_a2a");

    // Arrange expert input: for local expert e, concatenate every source's
    // C-row slab (total W*C rows per expert).
    let mut expert_input = Tensor::zeros(w * e_local * c, hidden);
    {
        let dst_slice = expert_input.as_mut_slice();
        for e in 0..e_local {
            for (src, chunk) in recv.iter().enumerate() {
                let src_off = e * c * hidden;
                let dst_off = (e * w + src) * c * hidden;
                dst_slice[dst_off..dst_off + c * hidden]
                    .copy_from_slice(&chunk[src_off..src_off + c * hidden]);
            }
        }
    }

    // --- Expert computation over padded slabs --------------------------
    let per_expert = vec![w * c; e_local];
    let out_buffers = shard.forward_segments(&expert_input, &per_expert);
    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    let expert_flops = 4.0 * (w * e_local * c) as f64 * hidden as f64 * ffn as f64;
    clock.charge("expert", cost.compute_time(expert_flops));

    // --- Even combine all-to-all ----------------------------------------
    let send_back: Vec<Vec<f32>> = (0..w)
        .map(|src| {
            let mut v = Vec::with_capacity(e_local * c * hidden);
            for e in 0..e_local {
                let off = (e * w + src) * c * hidden;
                v.extend_from_slice(&out_buffers.as_slice()[off..off + c * hidden]);
            }
            v
        })
        .collect();
    let recv_back = ep.all_to_all(send_back, clock)?;
    clock.commit("combine_a2a");

    // Reassemble the [E*C, H] output buffer in global-expert order.
    let mut full_out = Tensor::zeros(spec.num_experts * c, hidden);
    {
        let dst_slice = full_out.as_mut_slice();
        for (owner, chunk) in recv_back.iter().enumerate() {
            let base = owner * e_local * c * hidden;
            dst_slice[base..base + chunk.len()].copy_from_slice(chunk);
        }
    }

    // --- Masked combine (einsum over the [S, E, C] weight mask) --------
    let out = combine_dense(tokens.rows(), hidden, &full_out, &d.entries, c);
    let combine_flops = 2.0 * tokens.rows() as f64 * (spec.num_experts * c) as f64 * hidden as f64;
    clock.charge("buffer_combine", cost.compute_time(combine_flops));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::padding_free;
    use xmoe_collectives::SimCluster;

    fn spec(e: usize, cap: usize) -> MoeLayerSpec {
        MoeLayerSpec::new(e, cap)
    }

    #[test]
    fn dense_buffers_contain_routed_tokens_and_padding() {
        let router = Router::new(8, 4, 2, 1);
        let tokens = Tensor::rand_uniform(6, 8, 1.0, 2);
        let gating = router.gate(&tokens);
        let sp = spec(4, 5);
        let d = build_dense_dispatch(&tokens, &gating, &sp, DenseDropOrder::TokenOrder);
        assert_eq!(d.buffers.shape(), (4 * 5, 8));
        assert_eq!(d.entries.len(), 12); // 6 tokens * k=2, no overflow
        for &(t, e, slot, _) in &d.entries {
            assert_eq!(d.buffers.row(e * 5 + slot), tokens.row(t));
        }
        // 20 slots, 12 filled: the rest must be zero padding.
        let filled: std::collections::HashSet<usize> =
            d.entries.iter().map(|&(_, e, s, _)| e * 5 + s).collect();
        for r in 0..20 {
            if !filled.contains(&r) {
                assert!(
                    d.buffers.row(r).iter().all(|&v| v == 0.0),
                    "slot {r} not padded"
                );
            }
        }
    }

    #[test]
    fn token_order_dropping_keeps_earlier_tokens() {
        let g = GatingOutput {
            top_experts: vec![0, 0, 0],
            combine_weights: vec![0.2, 0.9, 0.5],
            top_logits: vec![1.0; 3],
            k: 1,
            scores: Tensor::zeros(3, 1),
        };
        let tokens = Tensor::rand_uniform(3, 4, 1.0, 3);
        let sp = spec(1, 2);
        let d = build_dense_dispatch(&tokens, &g, &sp, DenseDropOrder::TokenOrder);
        let kept: Vec<usize> = d.entries.iter().map(|&(t, ..)| t).collect();
        assert_eq!(kept, vec![0, 1]); // token 2 dropped despite higher weight than 0
        assert_eq!(d.dropped, 1);
    }

    #[test]
    fn weight_ranked_dropping_matches_pft_retention() {
        let g = GatingOutput {
            top_experts: vec![0, 0, 0],
            combine_weights: vec![0.2, 0.9, 0.5],
            top_logits: vec![1.0; 3],
            k: 1,
            scores: Tensor::zeros(3, 1),
        };
        let tokens = Tensor::rand_uniform(3, 4, 1.0, 3);
        let sp = spec(1, 2);
        let d = build_dense_dispatch(&tokens, &g, &sp, DenseDropOrder::WeightRanked);
        let mut kept: Vec<usize> = d.entries.iter().map(|&(t, ..)| t).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![1, 2]); // highest weights win, like the PFT
    }

    #[test]
    fn dense_single_matches_padding_free_single_without_drops() {
        let (s, h, f, e, k) = (20, 12, 8, 4, 2);
        let router = Router::new(h, e, k, 7);
        let experts = ExpertShard::full(e, h, f, 8);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 9);
        let sp = spec(e, 1000);
        let dense =
            forward_single_dense(&tokens, &router, &experts, &sp, DenseDropOrder::TokenOrder);
        let pf = padding_free::forward_single(&tokens, &router, &experts, &sp);
        assert!(
            dense.allclose(&pf, 1e-4),
            "max diff {}",
            dense.max_abs_diff(&pf)
        );
    }

    #[test]
    fn dense_single_matches_padding_free_under_weight_ranked_drops() {
        let (s, h, f, e, k) = (40, 12, 8, 4, 2);
        let router = Router::new(h, e, k, 17);
        let experts = ExpertShard::full(e, h, f, 18);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 19);
        let sp = spec(e, 9); // tight capacity forces drops
        let dense = forward_single_dense(
            &tokens,
            &router,
            &experts,
            &sp,
            DenseDropOrder::WeightRanked,
        );
        let pf = padding_free::forward_single(&tokens, &router, &experts, &sp);
        assert!(
            dense.allclose(&pf, 1e-4),
            "max diff {}",
            dense.max_abs_diff(&pf)
        );
    }

    #[test]
    fn distributed_dense_matches_single_rank() {
        let (s, h, f, e, k) = (16, 8, 4, 8, 2);
        let router = Router::new(h, e, k, 27);
        let experts_full = ExpertShard::full(e, h, f, 28);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 29);
        let sp = spec(e, 6);
        let reference = forward_single_dense(
            &tokens,
            &router,
            &experts_full,
            &sp,
            DenseDropOrder::TokenOrder,
        );
        let out = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 28);
            forward_ep_dense(
                &tokens,
                &router,
                &shard,
                &sp,
                DenseDropOrder::TokenOrder,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap()
        });
        for d in &out {
            assert!(
                d.allclose(&reference, 1e-4),
                "max diff {}",
                d.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn dense_even_a2a_costs_more_than_padding_free_uneven() {
        // With capacity padding, the dense pipeline must move more bytes and
        // thus more simulated time in the dispatch all-to-all.
        let (s, h, f, e, k) = (16, 8, 4, 8, 2);
        let router = Router::new(h, e, k, 37);
        let sp = spec(e, 16); // generous capacity = lots of padding
        let tokens = Tensor::rand_uniform(s, h, 1.0, 39);
        let dense_t = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 38);
            let _ = forward_ep_dense(
                &tokens,
                &router,
                &shard,
                &sp,
                DenseDropOrder::TokenOrder,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap();
            ctx.clock.bucket("dispatch_a2a")
        });
        let pf_t = SimCluster::frontier(4).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, 4, e, h, f, 38);
            let _ =
                padding_free::forward_ep(&tokens, &router, &shard, &sp, &ctx.world, &mut ctx.clock)
                    .unwrap();
            ctx.clock.bucket("dispatch_a2a")
        });
        assert!(
            dense_t[0] > pf_t[0],
            "dense a2a {} should exceed padding-free {}",
            dense_t[0],
            pf_t[0]
        );
    }
}
