//! One execution engine for every MoE pipeline.
//!
//! The repo grew four forward families (dense, padding-free, block-sparse,
//! RBD), each hand-cloning its own `forward_*` / `forward_*_pooled` /
//! `forward_*_overlap` entry points. This module collapses the variants
//! behind a single [`Pipeline`] trait: *which algorithm* runs is the trait
//! impl, while *how* it runs — pooled or owned, single-rank or distributed,
//! serial or dispatch–compute overlapped — is a property of the execution
//! context ([`ExecCtx`]) it runs under.
//!
//! * `ctx.state = Some(..)` leases every staging buffer from the shared
//!   [`PooledSingleState`] arena (zero transient allocations at steady
//!   state); `None` runs the owned baseline (internally the same code
//!   against a throwaway state, so the two are bitwise identical).
//! * `ctx.comm` selects single-rank (`None`), expert-parallel
//!   ([`CommCtx::Ep`]) or hierarchical RBD ([`CommCtx::Hier`]) transport.
//! * `ctx.overlap_chunks = Some(k)` pipelines dispatch against compute for
//!   the pipelines that support it (padding-free and RBD); the others
//!   report [`PipelineError::Unsupported`] instead of silently ignoring it.
//!
//! Every path reachable through the trait is the *same code* as the named
//! entry points (`forward_single_pooled`, `forward_ep_rbd`, ...), so the
//! equivalence and trajectory tests pinning those functions pin the trait
//! surface too.

use std::fmt;

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{DetRng, Tensor};

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pipeline::dense::DenseDropOrder;
use crate::pipeline::{block_sparse, dense, padding_free, MoeLayerSpec, PooledSingleState};
use crate::rbd::{self, PilotPolicy, RbdComms};

/// Everything that can go wrong inside a pipeline forward.
///
/// Communication faults are wrapped (`?` on any collective converts via
/// `From`); the remaining variants are pipeline-level contract violations
/// that used to be panics or silent misconfigurations.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// A collective failed (dead rank, fault injection, ...).
    Comm(CommError),
    /// RBD pilot selection was handed an empty (token, node) replica group.
    EmptyPilotGroup,
    /// The execution context is missing a capability the pipeline needs
    /// (e.g. RBD without hierarchical comms or a pilot rng).
    MissingCtx(&'static str),
    /// The context requested a mode this pipeline does not implement
    /// (e.g. dispatch–compute overlap on the dense baseline).
    Unsupported(&'static str),
}

impl From<CommError> for PipelineError {
    fn from(e: CommError) -> Self {
        PipelineError::Comm(e)
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Comm(e) => write!(f, "communication failure: {e}"),
            PipelineError::EmptyPilotGroup => {
                write!(f, "pilot selection over an empty replica group")
            }
            PipelineError::MissingCtx(what) => write!(f, "missing execution context: {what}"),
            PipelineError::Unsupported(what) => write!(f, "unsupported execution mode: {what}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

/// The transport a distributed forward runs over.
pub enum CommCtx<'a> {
    /// A flat expert-parallel group (one uneven all-to-all each way).
    Ep(&'a Communicator),
    /// The hierarchical EP + node-local pair RBD dispatches over.
    Hier(&'a RbdComms),
}

impl CommCtx<'_> {
    /// The flat EP communicator view of this transport.
    pub fn ep(&self) -> &Communicator {
        match self {
            CommCtx::Ep(c) => c,
            CommCtx::Hier(h) => &h.ep,
        }
    }
}

/// The execution context a [`Pipeline`] runs under: pooling, transport,
/// clock, rng and overlap are *orthogonal properties of the run*, not baked
/// into per-variant entry points.
#[derive(Default)]
pub struct ExecCtx<'a> {
    /// Pooled state: `Some` leases staging from the shared arena, `None`
    /// runs owned (identical code against a throwaway state).
    pub state: Option<&'a mut PooledSingleState>,
    /// Transport: `None` = single-rank reference.
    pub comm: Option<CommCtx<'a>>,
    /// Simulated clock; required whenever `comm` is set.
    pub clock: Option<&'a mut SimClock>,
    /// Pilot-selection rng; required by RBD.
    pub rng: Option<&'a mut DetRng>,
    /// Dispatch–compute overlap chunking, where supported.
    pub overlap_chunks: Option<usize>,
}

impl<'a> ExecCtx<'a> {
    /// Single-rank, owned buffers.
    pub fn single() -> Self {
        Self::default()
    }

    /// Single-rank, pooled.
    pub fn pooled(state: &'a mut PooledSingleState) -> Self {
        Self {
            state: Some(state),
            ..Self::default()
        }
    }

    /// Distributed over a flat EP group.
    pub fn ep(comm: &'a Communicator, clock: &'a mut SimClock) -> Self {
        Self {
            comm: Some(CommCtx::Ep(comm)),
            clock: Some(clock),
            ..Self::default()
        }
    }

    /// Distributed over hierarchical (EP + node) comms.
    pub fn hier(comms: &'a RbdComms, clock: &'a mut SimClock) -> Self {
        Self {
            comm: Some(CommCtx::Hier(comms)),
            clock: Some(clock),
            ..Self::default()
        }
    }

    /// Attach a pooled state (builder style).
    pub fn with_state(mut self, state: &'a mut PooledSingleState) -> Self {
        self.state = Some(state);
        self
    }

    /// Attach a pilot rng (builder style).
    pub fn with_rng(mut self, rng: &'a mut DetRng) -> Self {
        self.rng = Some(rng);
        self
    }

    /// Request dispatch–compute overlap in `chunks` pieces (builder style).
    pub fn with_overlap(mut self, chunks: usize) -> Self {
        self.overlap_chunks = Some(chunks);
        self
    }
}

fn require_clock<'c>(
    clock: &'c mut Option<&mut SimClock>,
) -> Result<&'c mut SimClock, PipelineError> {
    clock.as_deref_mut().ok_or(PipelineError::MissingCtx(
        "distributed forward needs a clock",
    ))
}

/// A MoE forward algorithm, runnable under any [`ExecCtx`].
pub trait Pipeline {
    /// Stable short name (matches the CLI / benchmark record names).
    fn name(&self) -> &'static str;

    /// Run one forward pass of `tokens` under `ctx`.
    fn forward(
        &self,
        tokens: &Tensor,
        router: &Router,
        experts: &ExpertShard,
        spec: &MoeLayerSpec,
        ctx: &mut ExecCtx,
    ) -> Result<Tensor, PipelineError>;
}

/// The GShard-style dense baseline (`[S, E, C]` dispatch mask, padded
/// buffers, even all-to-alls). Deliberately allocation-heavy — it is the
/// thing the paper improves on — so it ignores `ctx.state`.
pub struct DensePipeline {
    pub order: DenseDropOrder,
}

impl Pipeline for DensePipeline {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(
        &self,
        tokens: &Tensor,
        router: &Router,
        experts: &ExpertShard,
        spec: &MoeLayerSpec,
        ctx: &mut ExecCtx,
    ) -> Result<Tensor, PipelineError> {
        if ctx.overlap_chunks.is_some() {
            return Err(PipelineError::Unsupported(
                "dense pipeline has no dispatch-compute overlap",
            ));
        }
        let ExecCtx { comm, clock, .. } = ctx;
        match comm {
            None => Ok(dense::forward_single_dense(
                tokens, router, experts, spec, self.order,
            )),
            Some(comm) => {
                let clock = require_clock(clock)?;
                Ok(dense::forward_ep_dense(
                    tokens,
                    router,
                    experts,
                    spec,
                    self.order,
                    comm.ep(),
                    clock,
                )?)
            }
        }
    }
}

/// X-MoE's padding-free pipeline (§4.1).
#[derive(Default)]
pub struct PaddingFreePipeline;

impl Pipeline for PaddingFreePipeline {
    fn name(&self) -> &'static str {
        "pft"
    }

    fn forward(
        &self,
        tokens: &Tensor,
        router: &Router,
        experts: &ExpertShard,
        spec: &MoeLayerSpec,
        ctx: &mut ExecCtx,
    ) -> Result<Tensor, PipelineError> {
        let ExecCtx {
            state,
            comm,
            clock,
            overlap_chunks,
            ..
        } = ctx;
        match comm {
            None => {
                if overlap_chunks.is_some() {
                    return Err(PipelineError::Unsupported(
                        "single-rank forward has no dispatch-compute overlap",
                    ));
                }
                Ok(match state.as_deref_mut() {
                    Some(state) => {
                        padding_free::forward_single_pooled(tokens, router, experts, spec, state)
                    }
                    None => padding_free::forward_single(tokens, router, experts, spec),
                })
            }
            Some(comm) => {
                let clock = require_clock(clock)?;
                Ok(match overlap_chunks {
                    None => {
                        padding_free::forward_ep(tokens, router, experts, spec, comm.ep(), clock)?
                    }
                    Some(chunks) => padding_free::forward_ep_overlap(
                        tokens,
                        router,
                        experts,
                        spec,
                        *chunks,
                        comm.ep(),
                        clock,
                    )?,
                })
            }
        }
    }
}

/// The block-sparse kernel baseline: padding-free routing with each expert
/// segment zero-padded to a tile multiple before the GEMM.
pub struct BlockSparsePipeline {
    pub block: usize,
}

impl Pipeline for BlockSparsePipeline {
    fn name(&self) -> &'static str {
        "blocksparse"
    }

    fn forward(
        &self,
        tokens: &Tensor,
        router: &Router,
        experts: &ExpertShard,
        spec: &MoeLayerSpec,
        ctx: &mut ExecCtx,
    ) -> Result<Tensor, PipelineError> {
        if ctx.overlap_chunks.is_some() {
            return Err(PipelineError::Unsupported(
                "block-sparse pipeline has no dispatch-compute overlap",
            ));
        }
        let ExecCtx {
            state, comm, clock, ..
        } = ctx;
        match comm {
            None => Ok(match state.as_deref_mut() {
                Some(state) => block_sparse::forward_single_block_sparse_pooled(
                    tokens, router, experts, spec, self.block, state,
                ),
                None => block_sparse::forward_single_block_sparse(
                    tokens, router, experts, spec, self.block,
                ),
            }),
            Some(comm) => {
                let clock = require_clock(clock)?;
                Ok(block_sparse::forward_ep_block_sparse(
                    tokens,
                    router,
                    experts,
                    spec,
                    self.block,
                    comm.ep(),
                    clock,
                )?)
            }
        }
    }
}

/// Hierarchical redundancy-bypassing dispatch (§4.2). Requires
/// [`CommCtx::Hier`] transport and a pilot rng; pooling and overlap come
/// from the context like everywhere else.
pub struct RbdPipeline {
    pub policy: PilotPolicy,
}

impl Pipeline for RbdPipeline {
    fn name(&self) -> &'static str {
        "rbd"
    }

    fn forward(
        &self,
        tokens: &Tensor,
        router: &Router,
        experts: &ExpertShard,
        spec: &MoeLayerSpec,
        ctx: &mut ExecCtx,
    ) -> Result<Tensor, PipelineError> {
        let comms = match &ctx.comm {
            Some(CommCtx::Hier(h)) => *h,
            Some(CommCtx::Ep(_)) => {
                return Err(PipelineError::MissingCtx(
                    "rbd needs hierarchical comms (CommCtx::Hier)",
                ))
            }
            None => {
                return Err(PipelineError::MissingCtx(
                    "rbd has no single-rank mode; provide CommCtx::Hier",
                ))
            }
        };
        let overlap = ctx.overlap_chunks;
        let ExecCtx {
            state, clock, rng, ..
        } = ctx;
        let clock = require_clock(clock)?;
        let rng = rng
            .as_deref_mut()
            .ok_or(PipelineError::MissingCtx("rbd needs a pilot rng"))?;
        match state.as_deref_mut() {
            Some(state) => rbd::forward_ep_rbd_impl(
                tokens,
                router,
                experts,
                spec,
                comms,
                rng,
                clock,
                self.policy,
                overlap,
                state,
            ),
            None => {
                let mut fresh = PooledSingleState::default();
                rbd::forward_ep_rbd_impl(
                    tokens,
                    router,
                    experts,
                    spec,
                    comms,
                    rng,
                    clock,
                    self.policy,
                    overlap,
                    &mut fresh,
                )
            }
        }
    }
}
