//! Hierarchical Redundancy-Bypassing Dispatch — RBD (paper §4.2, Fig 7).
//!
//! With large top-k routing, several of a token's k destination experts
//! often live on the **same node**. A plain all-to-all then ships identical
//! copies of the token across the slow inter-node links, once per expert.
//! RBD instead:
//!
//! * **S0 — pilot selection**: among a token's routed entries sharing one
//!   destination node, pick one at random as the *pilot*; the rest become
//!   *local replicas*. Random choice balances the all-to-all load (always
//!   picking the smallest expert id would skew it).
//! * **S1 — inter-node exchange**: only pilot rows (plus lightweight
//!   replica metadata) cross nodes, in one uneven all-to-all over the EP
//!   group. Arriving pilots are copied into replica rows for the other GPUs
//!   of the node.
//! * **S2 — intra-node exchange**: reconstructed replicas travel over the
//!   fast intra-node links; each rank merges pilots and replicas ordered by
//!   local expert and runs its experts padding-free.
//!
//! The combine stage reverses the route: expert outputs are weight-scaled,
//! replica outputs return intra-node to their pilot's holder and are summed
//! into the pilot's accumulator, and a single partial sum per (token, node)
//! crosses back inter-node. The final scatter adds per-node partials — the
//! same value as the plain pipeline's per-entry weighted sum.
//!
//! # Allocation discipline
//!
//! There is exactly **one** forward implementation, and it always runs
//! against a [`PooledSingleState`]: the plan arrays live in a grow-once
//! [`RbdScratch`], every staging row buffer and metadata stream is leased
//! from the state's [`Workspace`](xmoe_tensor::Workspace) flat-buffer API,
//! and the collectives reuse persistent send/recv shells via the `*_into`
//! variants. At steady state (recurring batch shapes) a pooled step
//! performs zero transient heap allocations; the owned entry points run the
//! same code against a throwaway state, so they are bitwise identical by
//! construction. The overlap schedule keeps per-chunk owned wire buffers
//! (issuing a chunk moves its payload) and is exempt from the zero-alloc
//! gate. The replica-merge and combine accumulations use the 8-lane
//! elementwise kernels ([`xmoe_tensor::axpy_slice`] and friends), which are
//! bitwise identical to the scalar loops they replace.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{add_assign_slice, axpy_slice, gather_rows_into, scaled_extend, DetRng, Tensor};

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pft::Pft;
use crate::pipeline::{MoeLayerSpec, PipelineError, PooledSingleState};

/// The two communicators RBD needs: the EP group and its node-local
/// subgroup, plus the precomputed position maps the hot path would
/// otherwise rebuild (and heap-allocate) every step. Create once and reuse
/// across layers/steps.
pub struct RbdComms {
    pub ep: Communicator,
    /// EP ranks co-resident on this rank's node.
    pub node: Communicator,
    /// Physical node index of each EP position.
    node_of_ep_pos: Vec<usize>,
    /// Node-communicator position of each EP position on *this* rank's
    /// node; `None` for positions living on other nodes.
    node_pos_of_ep_pos: Vec<Option<usize>>,
}

impl RbdComms {
    /// Collectively split the EP group by physical node.
    pub fn create(ep: &Communicator, clock: &mut SimClock) -> Result<Self, CommError> {
        let node_id = ep.cost().topology().node_of(ep.global_rank());
        let node_of_ep_pos: Vec<usize> = {
            let topo = ep.cost().topology();
            ep.group_ranks().iter().map(|&g| topo.node_of(g)).collect()
        };
        let node = ep.split(node_id, clock)?;
        let mut node_pos_of_ep_pos = vec![None; ep.size()];
        for (i, &g) in node.group_ranks().iter().enumerate() {
            if let Some(pos) = ep.group_ranks().iter().position(|&eg| eg == g) {
                node_pos_of_ep_pos[pos] = Some(i);
            }
        }
        Ok(Self {
            ep: ep.clone(),
            node,
            node_of_ep_pos,
            node_pos_of_ep_pos,
        })
    }
}

// ---------------------------------------------------------------------
// Redundancy analytics (paper Fig 4)
// ---------------------------------------------------------------------

/// Measured redundancy rate of a routed batch: the fraction of routed
/// entries whose token data need **not** cross to its destination node
/// because a co-routed entry (same token, same node) already carries it.
///
/// `rate = 1 - distinct(token, dst_node) / total_entries`.
pub fn redundancy_rate(pft: &Pft, expert_node: impl Fn(usize) -> usize) -> f64 {
    if pft.is_empty() {
        return 0.0;
    }
    let mut pairs: Vec<(usize, usize)> = pft
        .token_ids
        .iter()
        .zip(&pft.expert_ids)
        .map(|(&t, &e)| (t, expert_node(e)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    1.0 - pairs.len() as f64 / pft.len() as f64
}

/// Expected redundancy under uniform routing of k experts over `nodes`
/// equally loaded nodes: `1 - N (1 - (1 - 1/N)^k) / k`.
///
/// ```
/// use xmoe_core::rbd::expected_redundancy_uniform;
/// // The paper's Fig 4 peak: k=8 over 2 nodes is ~75.1% redundant.
/// let r = expected_redundancy_uniform(8, 2);
/// assert!((r - 0.751).abs() < 0.01);
/// ```
pub fn expected_redundancy_uniform(k: usize, nodes: usize) -> f64 {
    if nodes == 0 || k == 0 {
        return 0.0;
    }
    let n = nodes as f64;
    let distinct = n * (1.0 - (1.0 - 1.0 / n).powi(k as i32));
    (1.0 - distinct / k as f64).max(0.0)
}

// ---------------------------------------------------------------------
// Plan scratch
// ---------------------------------------------------------------------

/// Sentinel `peer` marking an expert-input row as a pilot (stays local on
/// the combine path) rather than a replica returned to a node peer.
const PILOT: usize = usize::MAX;

/// One selected pilot: the PFT entry it wraps, its destination EP rank and
/// its replica range in [`RbdScratch::replicas`].
#[derive(Clone, Copy, Debug, Default)]
struct PilotEntry {
    dst: usize,
    /// PFT entry index of the pilot (expert/token/weight live in the PFT).
    idx: usize,
    /// Replica range `[rep0, rep1)` in the flat replica array.
    rep0: usize,
    rep1: usize,
}

/// One expert-input row on the receiving side: where it came from and how
/// its output returns (`peer == PILOT` accumulates locally; otherwise the
/// weighted output travels intra-node back to `peer`).
#[derive(Clone, Copy, Debug)]
struct EntryRec {
    local_expert: usize,
    weight: f32,
    peer: usize,
    /// Source EP rank the pilot arrived from.
    src: usize,
    /// Pilot index within that source's chunk.
    idx: usize,
}

/// Grow-once plan and shell scratch for the RBD forward. Lives inside
/// [`PooledSingleState`]; every `Vec` here keeps its capacity across steps,
/// so after warm-up the planning phase is allocation-free. The inner
/// buffers of the send/recv shells are leased from (and recycled back to)
/// the state's workspace each step — the shells only hold the outer
/// `Vec<Vec<_>>` spines.
#[derive(Default)]
pub(crate) struct RbdScratch {
    /// `(token, dst_node, pft_idx)` sort keys for pilot grouping.
    keyed: Vec<(usize, usize, usize)>,
    pilots: Vec<PilotEntry>,
    /// Flat `(expert, weight_bits)` replica pairs referenced by range.
    replicas: Vec<(usize, u32)>,
    /// Pilot ranges per destination: dst `d` owns `pilots[dst_off[d]..dst_off[d+1]]`.
    dst_off: Vec<usize>,
    entries: Vec<EntryRec>,
    pilots_from_src: Vec<usize>,
    /// Flat-accumulator row offset per source rank (prefix of `pilots_from_src`).
    acc_off: Vec<usize>,
    // Persistent wire shells (outer spines only).
    rows_send: Vec<Vec<f32>>,
    meta_send: Vec<Vec<u64>>,
    rows_recv: Vec<Vec<f32>>,
    meta_recv: Vec<Vec<u64>>,
    rep_rows_send: Vec<Vec<f32>>,
    rep_meta_send: Vec<Vec<u64>>,
    rep_rows_recv: Vec<Vec<f32>>,
    rep_meta_recv: Vec<Vec<u64>>,
    crep_rows_send: Vec<Vec<f32>>,
    crep_meta_send: Vec<Vec<u64>>,
    crep_rows_recv: Vec<Vec<f32>>,
    crep_meta_recv: Vec<Vec<u64>>,
    back_send: Vec<Vec<f32>>,
    back_recv: Vec<Vec<f32>>,
}

/// Size a wire shell's outer spine (inner buffers untouched elsewhere).
fn ensure_shell<T>(shell: &mut Vec<Vec<T>>, n: usize) {
    if shell.len() != n {
        shell.clear();
        shell.resize_with(n, Vec::new);
    }
}

// ---------------------------------------------------------------------
// The RBD forward pass
// ---------------------------------------------------------------------

/// How the pilot is chosen within a (token, destination-node) group.
///
/// The paper uses [`PilotPolicy::Random`] and notes that "always routing
/// tokens to the smallest expert ID within a node will significantly
/// increase the alltoall latency" — the deterministic policy funnels every
/// pilot to one GPU per node, skewing the all-to-all chunk sizes. The
/// `ablation_pilot` bench quantifies this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PilotPolicy {
    /// Uniformly random group member (the paper's choice).
    Random,
    /// The group's smallest expert id (the strawman the paper warns about).
    SmallestExpertId,
}

/// Pick the pilot's PFT index from one `(token, node)` group of `keyed`
/// triples. An empty group is a routing-plan contract violation — reported
/// as [`PipelineError::EmptyPilotGroup`] instead of the panic the
/// `min().unwrap()` / `next_below(0)` paths used to hit.
fn select_pilot(
    group: &[(usize, usize, usize)],
    policy: PilotPolicy,
    rng: &mut DetRng,
) -> Result<usize, PipelineError> {
    if group.is_empty() {
        return Err(PipelineError::EmptyPilotGroup);
    }
    Ok(match policy {
        PilotPolicy::Random => group[rng.next_below(group.len())].2,
        // Entries are expert-sorted within the PFT, so the smallest
        // pft index in the group has the smallest expert id.
        PilotPolicy::SmallestExpertId => group.iter().map(|&(_, _, i)| i).min().unwrap_or_default(),
    })
}

/// Distributed padding-free MoE layer with RBD dispatch and combine.
///
/// Functionally identical to
/// [`crate::pipeline::padding_free::forward_ep`] (same gating, same PFT,
/// same experts); only the transport differs. `rng` drives pilot selection
/// under [`PilotPolicy::Random`]. Owned baseline: runs the unified pooled
/// implementation against a throwaway state (bitwise identical to
/// [`forward_ep_rbd_pooled`] under the same `rng` stream).
pub fn forward_ep_rbd(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
) -> Result<Tensor, PipelineError> {
    let mut state = PooledSingleState::default();
    forward_ep_rbd_impl(
        tokens,
        router,
        shard,
        spec,
        comms,
        rng,
        clock,
        PilotPolicy::Random,
        None,
        &mut state,
    )
}

/// [`forward_ep_rbd`] with the S1 inter-node pilot exchange split into
/// `chunks` contiguous source-rank groups and pipelined against replica
/// reconstruction: while group `c+1`'s pilot rows are in flight on the
/// `comm` track, group `c`'s replicas are reconstructed on the `compute`
/// track. Source groups are processed in ascending rank order, so the
/// staging buffer and entry list are built in exactly the serial order and
/// the output stays bitwise identical to [`forward_ep_rbd`].
#[allow(clippy::too_many_arguments)]
pub fn forward_ep_rbd_overlap(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    chunks: usize,
) -> Result<Tensor, PipelineError> {
    let mut state = PooledSingleState::default();
    forward_ep_rbd_impl(
        tokens,
        router,
        shard,
        spec,
        comms,
        rng,
        clock,
        PilotPolicy::Random,
        Some(chunks),
        &mut state,
    )
}

/// [`forward_ep_rbd`] with every staging buffer — dispatch rows, pilot and
/// replica wire payloads, metadata streams, merged expert input, MLP
/// scratch, combine accumulator and the output — leased from the per-rank
/// [`PooledSingleState`]. Bitwise identical to [`forward_ep_rbd`] under the
/// same `rng` stream; allocation-free at steady state. The returned output
/// tensor is itself leased: recycle it back into `state.ws` once consumed.
#[allow(clippy::too_many_arguments)]
pub fn forward_ep_rbd_pooled(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    state: &mut PooledSingleState,
) -> Result<Tensor, PipelineError> {
    forward_ep_rbd_impl(
        tokens,
        router,
        shard,
        spec,
        comms,
        rng,
        clock,
        PilotPolicy::Random,
        None,
        state,
    )
}

/// [`forward_ep_rbd`] with an explicit pilot-selection policy (ablation).
#[allow(clippy::too_many_arguments)]
pub fn forward_ep_rbd_with_policy(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    policy: PilotPolicy,
) -> Result<Tensor, PipelineError> {
    let mut state = PooledSingleState::default();
    forward_ep_rbd_impl(
        tokens, router, shard, spec, comms, rng, clock, policy, None, &mut state,
    )
}

/// The single RBD implementation every public entry point funnels into
/// (and the [`crate::pipeline::engine::RbdPipeline`] trait impl calls).
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_ep_rbd_impl(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    policy: PilotPolicy,
    overlap_chunks: Option<usize>,
    state: &mut PooledSingleState,
) -> Result<Tensor, PipelineError> {
    let ep = &comms.ep;
    let node = &comms.node;
    let w = ep.size();
    assert_eq!(spec.num_experts % w, 0, "experts must divide EP size");
    let e_local = spec.num_experts / w;
    let hidden = tokens.cols();
    let cost = ep.cost();
    let owner_of = |e: usize| e / e_local;
    let first_expert = shard.first_expert;

    let PooledSingleState {
        ws,
        gate_scratch,
        gating,
        pft_scratch,
        pft,
        dispatch_in,
        rbd: sc,
    } = state;
    let RbdScratch {
        keyed,
        pilots,
        replicas,
        dst_off,
        entries,
        pilots_from_src,
        acc_off,
        rows_send,
        meta_send,
        rows_recv,
        meta_recv,
        rep_rows_send,
        rep_meta_send,
        rep_rows_recv,
        rep_meta_recv,
        crep_rows_send,
        crep_meta_send,
        crep_rows_recv,
        crep_meta_recv,
        back_send,
        back_recv,
    } = sc;

    // --- Gating + PFT ---------------------------------------------------
    router.gate_into(tokens, gate_scratch, gating);
    Pft::construct_into(
        gating,
        spec.num_experts,
        spec.capacity,
        spec.policy,
        pft_scratch,
        pft,
    );
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    clock.charge("gating", cost.compute_time(gate_flops));

    gather_rows_into(tokens, &pft.token_ids, dispatch_in);
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );

    // --- S0: pilot selection --------------------------------------------
    // Group this rank's routed entries by (token, destination node); pick a
    // random pilot per group, attach the rest as replicas (a flat range in
    // `replicas` instead of a per-pilot Vec).
    keyed.clear();
    keyed.extend((0..pft.len()).map(|i| {
        (
            pft.token_ids[i],
            comms.node_of_ep_pos[owner_of(pft.expert_ids[i])],
            i,
        )
    }));
    keyed.sort_unstable();
    pilots.clear();
    replicas.clear();
    let mut g = 0;
    while g < keyed.len() {
        let (t, n, _) = keyed[g];
        let mut end = g + 1;
        while end < keyed.len() && keyed[end].0 == t && keyed[end].1 == n {
            end += 1;
        }
        let pilot = select_pilot(&keyed[g..end], policy, rng)?;
        let dst = owner_of(pft.expert_ids[pilot]);
        let rep0 = replicas.len();
        for &(_, _, i) in &keyed[g..end] {
            if i != pilot {
                replicas.push((pft.expert_ids[i], pft.combine_weights[i].to_bits()));
            }
        }
        pilots.push(PilotEntry {
            dst,
            idx: pilot,
            rep0,
            rep1: replicas.len(),
        });
        g = end;
    }
    // Deterministic per-destination order (by expert, then token): one
    // global in-place sort — the (dst, expert, token) keys are unique, so
    // every destination's slice comes out exactly as the old per-dst
    // stable sorts produced it, without per-dst index/reorder scratch.
    pilots.sort_unstable_by_key(|p| (p.dst, pft.expert_ids[p.idx], pft.token_ids[p.idx]));
    dst_off.clear();
    dst_off.resize(w + 1, 0);
    for p in pilots.iter() {
        dst_off[p.dst + 1] += 1;
    }
    let mut run = 0usize;
    for off in dst_off.iter_mut() {
        run += *off;
        *off = run;
    }
    clock.charge("rbd_plan", cost.mem_bound_time((pft.len() * 24) as f64));

    // --- S1: inter-node exchange of pilots + metadata -------------------
    // Wire format per pilot: expert, weight bits, n_rep, then (expert,
    // weight bits) per replica — all inline in one u64 stream per dst.
    ensure_shell(rows_send, w);
    ensure_shell(meta_send, w);
    ensure_shell(rows_recv, w);
    ensure_shell(meta_recv, w);
    for d in 0..w {
        let (p0, p1) = (dst_off[d], dst_off[d + 1]);
        let mut rows = ws.take_f32((p1 - p0) * hidden);
        let mut meta = ws.take_u64((p1 - p0) * 4);
        for p in &pilots[p0..p1] {
            rows.extend_from_slice(dispatch_in.row(p.idx));
            meta.push(pft.expert_ids[p.idx] as u64);
            meta.push(pft.combine_weights[p.idx].to_bits() as u64);
            meta.push((p.rep1 - p.rep0) as u64);
            for &(e, wbits) in &replicas[p.rep0..p.rep1] {
                meta.push(e as u64);
                meta.push(wbits as u64);
            }
        }
        rows_send[d] = rows;
        meta_send[d] = meta;
    }

    // --- S1.5 state: staging buffer + replica queues ---------------------
    let node_n = node.size();
    ensure_shell(rep_rows_send, node_n);
    ensure_shell(rep_meta_send, node_n);
    ensure_shell(rep_rows_recv, node_n);
    ensure_shell(rep_meta_recv, node_n);
    for peer in 0..node_n {
        rep_rows_send[peer] = ws.take_f32(0);
        rep_meta_send[peer] = ws.take_u64(0);
    }
    entries.clear();
    pilots_from_src.clear();
    pilots_from_src.resize(w, 0);
    let mut staging = ws.take_f32(0);
    let npos = &comms.node_pos_of_ep_pos;
    // Parse one source's pilots: append to the staging buffer, queue replica
    // copies for node peers, return the replica bytes moved. Sources must be
    // processed in ascending rank order — the staging/entry order (and hence
    // the bitwise result) depends on it.
    let mut process_src = |src: usize, rows: &[f32], meta: &[u64]| -> f64 {
        let mut replica_bytes = 0f64;
        let mut idx = 0usize; // pilot index within this source's chunk
        let mut i = 0usize;
        while i < meta.len() {
            let expert = meta[i] as usize;
            let weight = f32::from_bits(meta[i + 1] as u32);
            let n_rep = meta[i + 2] as usize;
            i += 3;
            let row_data = &rows[idx * hidden..(idx + 1) * hidden];
            assert!(
                expert >= first_expert && expert < first_expert + e_local,
                "pilot arrived at the wrong rank"
            );
            staging.extend_from_slice(row_data);
            entries.push(EntryRec {
                local_expert: expert - first_expert,
                weight,
                peer: PILOT,
                src,
                idx,
            });
            for _ in 0..n_rep {
                let rep_expert = meta[i] as usize;
                let rep_weight_bits = meta[i + 1];
                i += 2;
                let peer =
                    npos[owner_of(rep_expert)].expect("replica target must be on the pilot's node");
                rep_rows_send[peer].extend_from_slice(row_data);
                rep_meta_send[peer].extend_from_slice(&[
                    rep_expert as u64,
                    rep_weight_bits,
                    src as u64,
                    idx as u64,
                ]);
                replica_bytes += (hidden * 4) as f64;
            }
            idx += 1;
        }
        pilots_from_src[src] = idx;
        replica_bytes
    };

    match overlap_chunks {
        None => {
            ep.all_to_all_v_into(rows_send, rows_recv, clock)?;
            clock.commit("dispatch_a2a_inter");
            ep.all_to_all_v_into(meta_send, meta_recv, clock)?;
            clock.commit("dispatch_a2a_meta");
            let mut replica_bytes = 0f64;
            for src in 0..w {
                replica_bytes += process_src(src, &rows_recv[src], &meta_recv[src]);
            }
            clock.charge(
                "rbd_replica_reconstruct",
                cost.mem_bound_time(2.0 * replica_bytes),
            );
            for v in rows_recv.iter_mut() {
                ws.recycle_f32(std::mem::take(v));
            }
            for v in meta_recv.iter_mut() {
                ws.recycle_u64(std::mem::take(v));
            }
        }
        Some(chunks) => {
            // Chunk the S1 exchange by contiguous source-rank groups: chunk
            // `c` carries only group `c`'s payload (other ranks send empty
            // buffers), so group `c`'s replica reconstruction overlaps with
            // group `c+1`'s transfer. All chunks are issued before any wait
            // (a NIC send queue), which also rules out deadlock. The owned
            // per-chunk wire buffers keep this arm outside the zero-alloc
            // steady state.
            let k = chunks.clamp(1, w);
            let me = ep.rank();
            clock.begin_overlap("rbd_dispatch_compute");
            clock.set_track("comm");
            let mut pend = Vec::with_capacity(k);
            for c in 0..k {
                let (s0, s1) = (c * w / k, (c + 1) * w / k);
                let (r, m) = if (s0..s1).contains(&me) {
                    (
                        rows_send.iter_mut().map(std::mem::take).collect(),
                        meta_send.iter_mut().map(std::mem::take).collect(),
                    )
                } else {
                    (vec![Vec::new(); w], vec![Vec::new(); w])
                };
                let rows_p = ep.issue_all_to_all_v(r, clock)?;
                let meta_p = ep.issue_all_to_all_v(m, clock)?;
                pend.push(((s0, s1), rows_p, meta_p));
            }
            for ((s0, s1), rows_p, meta_p) in pend {
                clock.set_track("comm");
                let chunk_rows = rows_p.wait(clock)?;
                clock.commit("dispatch_a2a_inter");
                let chunk_meta = meta_p.wait(clock)?;
                clock.commit("dispatch_a2a_meta");
                let arrived = clock.track_time("comm").expect("comm track exists");
                clock.set_track("compute");
                clock.advance_to_op("rbd_replica_reconstruct", arrived);
                let mut replica_bytes = 0f64;
                for src in s0..s1 {
                    replica_bytes += process_src(src, &chunk_rows[src], &chunk_meta[src]);
                }
                clock.charge(
                    "rbd_replica_reconstruct",
                    cost.mem_bound_time(2.0 * replica_bytes),
                );
                for v in chunk_rows {
                    if v.capacity() > 0 {
                        ws.recycle_f32(v);
                    }
                }
                for v in chunk_meta {
                    if v.capacity() > 0 {
                        ws.recycle_u64(v);
                    }
                }
            }
            clock.end_overlap();
        }
    }

    // --- S2: intra-node exchange of replicas ------------------------------
    node.all_to_all_v_into(rep_rows_send, rep_rows_recv, clock)?;
    clock.commit("dispatch_a2a_intra");
    node.all_to_all_v_into(rep_meta_send, rep_meta_recv, clock)?;
    clock.commit("dispatch_a2a_meta_intra");
    for (peer, meta) in rep_meta_recv.iter().enumerate() {
        for (j, quad) in meta.chunks_exact(4).enumerate() {
            let rep_expert = quad[0] as usize;
            let weight = f32::from_bits(quad[1] as u32);
            let src = quad[2] as usize;
            let idx = quad[3] as usize;
            staging.extend_from_slice(&rep_rows_recv[peer][j * hidden..(j + 1) * hidden]);
            entries.push(EntryRec {
                local_expert: rep_expert - first_expert,
                weight,
                peer,
                src,
                idx,
            });
        }
    }
    for v in rep_rows_recv.iter_mut() {
        ws.recycle_f32(std::mem::take(v));
    }
    for v in rep_meta_recv.iter_mut() {
        ws.recycle_u64(std::mem::take(v));
    }
    let n_rows = entries.len();
    let staging = Tensor::from_vec(n_rows, hidden, staging);

    // --- Merge ordered by local expert; run experts padding-free ---------
    // Counting sort: stable by construction (equal experts keep arrival
    // order), identical to the old stable sort_by_key without its
    // temporary allocation. Entry row i is staging row i, so the sorted
    // entry order doubles as the gather permutation.
    let mut counts = ws.take_idx(e_local);
    for e in entries.iter() {
        counts[e.local_expert] += 1;
    }
    let mut cursor = ws.take_idx(e_local);
    let mut run = 0usize;
    for e in 0..e_local {
        cursor[e] = run;
        run += counts[e];
    }
    let mut order = ws.take_idx(n_rows);
    for (i, e) in entries.iter().enumerate() {
        order[cursor[e.local_expert]] = i;
        cursor[e.local_expert] += 1;
    }
    let mut expert_input = ws.take(0, 0);
    gather_rows_into(&staging, &order, &mut expert_input);
    ws.recycle(staging);
    let mlp_out = shard.forward_segments_pooled(&expert_input, &counts, ws);
    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    clock.charge(
        "expert",
        cost.compute_time(4.0 * expert_input.rows() as f64 * hidden as f64 * ffn as f64),
    );
    ws.recycle(expert_input);

    // --- Combine: reverse route -------------------------------------------
    // Scale outputs by their combine weights, then split by provenance.
    // One flat accumulator holds every source's pilot rows contiguously at
    // `acc_off[src]` (the old code allocated one tensor per source).
    acc_off.clear();
    acc_off.resize(w + 1, 0);
    let mut total_pilots = 0usize;
    for src in 0..w {
        acc_off[src] = total_pilots;
        total_pilots += pilots_from_src[src];
    }
    acc_off[w] = total_pilots;
    let mut acc = ws.take(total_pilots, hidden);
    ensure_shell(crep_rows_send, node_n);
    ensure_shell(crep_meta_send, node_n);
    ensure_shell(crep_rows_recv, node_n);
    ensure_shell(crep_meta_recv, node_n);
    for peer in 0..node_n {
        crep_rows_send[peer] = ws.take_f32(0);
        crep_meta_send[peer] = ws.take_u64(0);
    }
    for (pos, &ei) in order.iter().enumerate() {
        let e = &entries[ei];
        let out_row = mlp_out.row(pos);
        if e.peer == PILOT {
            axpy_slice(acc.row_mut(acc_off[e.src] + e.idx), e.weight, out_row);
        } else {
            scaled_extend(&mut crep_rows_send[e.peer], e.weight, out_row);
            crep_meta_send[e.peer].extend_from_slice(&[e.src as u64, e.idx as u64]);
        }
    }
    ws.recycle(mlp_out);
    node.all_to_all_v_into(crep_rows_send, crep_rows_recv, clock)?;
    clock.commit("combine_a2a_intra");
    node.all_to_all_v_into(crep_meta_send, crep_meta_recv, clock)?;
    clock.commit("combine_a2a_meta");
    for (peer, meta) in crep_meta_recv.iter().enumerate() {
        for (j, pair) in meta.chunks_exact(2).enumerate() {
            let (src, idx) = (pair[0] as usize, pair[1] as usize);
            let row = &crep_rows_recv[peer][j * hidden..(j + 1) * hidden];
            add_assign_slice(acc.row_mut(acc_off[src] + idx), row);
        }
    }
    for v in crep_rows_recv.iter_mut() {
        ws.recycle_f32(std::mem::take(v));
    }
    for v in crep_meta_recv.iter_mut() {
        ws.recycle_u64(std::mem::take(v));
    }

    // Inter-node return of per-(token, node) partial sums: each source's
    // accumulator block is contiguous, so staging is one slice copy.
    ensure_shell(back_send, w);
    ensure_shell(back_recv, w);
    for src in 0..w {
        let cnt = pilots_from_src[src];
        let mut v = ws.take_f32(cnt * hidden);
        v.extend_from_slice(&acc.as_slice()[acc_off[src] * hidden..(acc_off[src] + cnt) * hidden]);
        back_send[src] = v;
    }
    ws.recycle(acc);
    ep.all_to_all_v_into(back_send, back_recv, clock)?;
    clock.commit("combine_a2a_inter");

    // Scatter the partials (weights already applied) by the pilot order we
    // originally sent to each destination.
    // The output is leased: the caller recycles it once consumed.
    let mut out = ws.take(tokens.rows(), hidden);
    for dst in 0..w {
        let chunk = &back_recv[dst];
        let (p0, p1) = (dst_off[dst], dst_off[dst + 1]);
        debug_assert_eq!(chunk.len(), (p1 - p0) * hidden);
        for (j, p) in pilots[p0..p1].iter().enumerate() {
            let t = pft.token_ids[p.idx];
            add_assign_slice(out.row_mut(t), &chunk[j * hidden..(j + 1) * hidden]);
        }
    }
    for v in back_recv.iter_mut() {
        ws.recycle_f32(std::mem::take(v));
    }
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );
    ws.recycle_idx(order);
    ws.recycle_idx(cursor);
    ws.recycle_idx(counts);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::DropPolicy;
    use crate::pipeline::padding_free;
    use xmoe_collectives::SimCluster;

    #[test]
    fn expected_redundancy_matches_paper_points() {
        // Paper §5.4.2: 32 GPUs (4 Frontier nodes), k=8 -> 54.8% measured.
        let r4 = expected_redundancy_uniform(8, 4);
        assert!((r4 - 0.548).abs() < 0.03, "4 nodes k=8: {r4}");
        // Fig 4's peak ~75.1% corresponds to 2 nodes, k=8.
        let r2 = expected_redundancy_uniform(8, 2);
        assert!((r2 - 0.751).abs() < 0.01, "2 nodes k=8: {r2}");
        // Single node: everything but one copy is redundant.
        assert!((expected_redundancy_uniform(8, 1) - 0.875).abs() < 1e-9);
        // As many nodes as k: low redundancy.
        assert!(expected_redundancy_uniform(8, 64) < 0.06);
    }

    #[test]
    fn measured_redundancy_tracks_uniform_expectation() {
        // Router with uniform-ish logits over many tokens.
        let (s, h, e, k) = (512, 16, 32, 8);
        let router = Router::new(h, e, k, 5);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 6);
        let g = router.gate(&tokens);
        let pft = Pft::construct(&g, e, usize::MAX / 2, DropPolicy::CapacityOnly);
        // 32 experts over 4 nodes (8 experts per node).
        let rate = redundancy_rate(&pft, |ex| ex / 8);
        let expected = expected_redundancy_uniform(k, 4);
        assert!(
            (rate - expected).abs() < 0.12,
            "measured {rate} vs uniform expectation {expected}"
        );
    }

    #[test]
    fn redundancy_zero_when_k1() {
        let g = Router::new(8, 4, 1, 7).gate(&Tensor::rand_uniform(64, 8, 1.0, 8));
        let pft = Pft::construct(&g, 4, 1000, DropPolicy::CapacityOnly);
        assert_eq!(redundancy_rate(&pft, |e| e), 0.0);
    }

    #[test]
    fn empty_pilot_group_is_an_error_not_a_panic() {
        // Both policies used to panic on an empty group (`min().unwrap()` /
        // `next_below(0)`); now it is a typed PipelineError.
        let mut rng = DetRng::new(7);
        assert_eq!(
            select_pilot(&[], PilotPolicy::SmallestExpertId, &mut rng),
            Err(PipelineError::EmptyPilotGroup)
        );
        assert_eq!(
            select_pilot(&[], PilotPolicy::Random, &mut rng),
            Err(PipelineError::EmptyPilotGroup)
        );
        // Non-empty groups still select normally.
        let group = [(0usize, 0usize, 5usize), (0, 0, 2)];
        assert_eq!(
            select_pilot(&group, PilotPolicy::SmallestExpertId, &mut rng),
            Ok(2)
        );
    }

    #[test]
    fn zero_routed_tokens_forward_is_ok_under_both_policies() {
        // Capacity 0 drops every routed entry: no pilot groups exist at
        // all, and the forward must return zeros instead of panicking.
        let (world, s, e, k, h, f) = (4usize, 8usize, 8usize, 2usize, 12usize, 8usize);
        let router = Router::new(h, e, k, 99);
        let spec = MoeLayerSpec::new(e, 0);
        for policy in [PilotPolicy::Random, PilotPolicy::SmallestExpertId] {
            let outs = SimCluster::frontier(world).run(|ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 98);
                let tokens = Tensor::rand_uniform(s, h, 1.0, 900 + ctx.rank as u64);
                let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                let mut rng = DetRng::new(97 + ctx.rank as u64);
                forward_ep_rbd_with_policy(
                    &tokens,
                    &router,
                    &shard,
                    &spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                    policy,
                )
                .unwrap()
            });
            for (r, o) in outs.iter().enumerate() {
                assert_eq!(o.shape(), (s, h), "rank {r}");
                assert!(
                    o.as_slice().iter().all(|&v| v == 0.0),
                    "rank {r}: dropped-everything forward must be zero"
                );
            }
        }
    }

    fn rbd_vs_plain(world: usize, s: usize, e: usize, k: usize, cap: usize, seed: u64) {
        let (h, f) = (12, 8);
        let router = Router::new(h, e, k, seed);
        let spec = MoeLayerSpec::new(e, cap);
        let plain = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, seed + 1);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 200 + ctx.rank as u64);
            padding_free::forward_ep(&tokens, &router, &shard, &spec, &ctx.world, &mut ctx.clock)
                .unwrap()
        });
        let rbd = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, seed + 1);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 200 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(seed + ctx.rank as u64);
            forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        });
        for (r, (a, b)) in plain.iter().zip(&rbd).enumerate() {
            assert!(
                a.allclose(b, 1e-4),
                "world {world} rank {r}: RBD diverges from plain dispatch, max diff {}",
                a.max_abs_diff(b)
            );
        }
    }

    #[test]
    fn rbd_matches_plain_dispatch_multi_node() {
        // 16 ranks = 2 Frontier nodes; high k -> heavy redundancy exercised.
        rbd_vs_plain(16, 12, 16, 6, 10_000, 41);
    }

    #[test]
    fn rbd_matches_plain_dispatch_single_node() {
        rbd_vs_plain(4, 16, 8, 3, 10_000, 43);
    }

    #[test]
    fn rbd_matches_plain_with_capacity_drops() {
        rbd_vs_plain(8, 24, 8, 4, 6, 47);
    }

    #[test]
    fn rbd_overlap_is_bitwise_identical_to_serial() {
        let (world, s, e, k, h, f) = (16usize, 12usize, 16usize, 6usize, 12usize, 8usize);
        let router = Router::new(h, e, k, 91);
        let spec = MoeLayerSpec::new(e, 10_000);
        let serial = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 92);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(93 + ctx.rank as u64);
            forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        });
        for chunks in [1usize, 2, 4, 16] {
            let overlapped = SimCluster::frontier(world).run(|ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 92);
                let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + ctx.rank as u64);
                let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                let mut rng = DetRng::new(93 + ctx.rank as u64);
                forward_ep_rbd_overlap(
                    &tokens,
                    &router,
                    &shard,
                    &spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                    chunks,
                )
                .unwrap()
            });
            for (r, (a, b)) in serial.iter().zip(&overlapped).enumerate() {
                assert!(
                    a.allclose(b, 0.0),
                    "chunks {chunks} rank {r}: RBD overlap not bitwise identical \
                     (max diff {})",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn rbd_pooled_is_bitwise_identical_and_stops_missing() {
        let (world, s, e, k, h, f) = (8usize, 12usize, 16usize, 4usize, 12usize, 8usize);
        let router = Router::new(h, e, k, 71);
        let spec = MoeLayerSpec::new(e, 10_000);
        let baseline = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 72);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(73 + ctx.rank as u64);
            forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        });
        let pooled = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 72);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut state = PooledSingleState::default();
            let mut last = Tensor::zeros(0, 0);
            let mut warm_misses = 0;
            for step in 0..6 {
                // Fresh rng per step: identical pilot draws, so every step
                // must reproduce the baseline bitwise.
                let mut rng = DetRng::new(73 + ctx.rank as u64);
                let out = forward_ep_rbd_pooled(
                    &tokens,
                    &router,
                    &shard,
                    &spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                    &mut state,
                )
                .unwrap();
                state.ws.recycle(std::mem::replace(&mut last, out));
                if step == 2 {
                    warm_misses = state.ws.stats().pool_misses;
                }
            }
            let misses = state.ws.stats().pool_misses;
            (last, warm_misses, misses)
        });
        for (r, (a, (b, warm, end))) in baseline.iter().zip(&pooled).enumerate() {
            assert!(
                a.allclose(b, 0.0),
                "rank {r}: pooled RBD not bitwise identical (max diff {})",
                a.max_abs_diff(b)
            );
            // The free lists reach their fixed point during warm-up; every
            // later step is served entirely from recycled buffers.
            assert_eq!(
                warm, end,
                "rank {r}: pool misses kept growing after warm-up"
            );
        }
    }

    #[test]
    fn rbd_reduces_inter_node_dispatch_bytes() {
        // 2 nodes, k=6 over 16 experts: expected redundancy ~68%; RBD's
        // inter-node all-to-all must be much cheaper than the plain one.
        // Token buffers are sized so the all-to-alls are bandwidth-bound
        // (at tiny messages the startup latency hides the effect).
        let (world, s, e, k, h, f) = (16usize, 1024usize, 16usize, 6usize, 256usize, 8usize);
        let router = Router::new(h, e, k, 51);
        let spec = MoeLayerSpec::new(e, 10_000);
        let plain_t = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 52);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 300 + ctx.rank as u64);
            let _ = padding_free::forward_ep(
                &tokens,
                &router,
                &shard,
                &spec,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap();
            ctx.clock.bucket("dispatch_a2a") + ctx.clock.bucket("combine_a2a")
        });
        let rbd_t = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 52);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 300 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(53 + ctx.rank as u64);
            let _ = forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap();
            ctx.clock.bucket("dispatch_a2a_inter") + ctx.clock.bucket("combine_a2a_inter")
        });
        assert!(
            rbd_t[0] < 0.7 * plain_t[0],
            "RBD inter-node time {} should be well under plain {}",
            rbd_t[0],
            plain_t[0]
        );
    }
}
