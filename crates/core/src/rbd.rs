//! Hierarchical Redundancy-Bypassing Dispatch — RBD (paper §4.2, Fig 7).
//!
//! With large top-k routing, several of a token's k destination experts
//! often live on the **same node**. A plain all-to-all then ships identical
//! copies of the token across the slow inter-node links, once per expert.
//! RBD instead:
//!
//! * **S0 — pilot selection**: among a token's routed entries sharing one
//!   destination node, pick one at random as the *pilot*; the rest become
//!   *local replicas*. Random choice balances the all-to-all load (always
//!   picking the smallest expert id would skew it).
//! * **S1 — inter-node exchange**: only pilot rows (plus lightweight
//!   replica metadata) cross nodes, in one uneven all-to-all over the EP
//!   group. Arriving pilots are copied into replica rows for the other GPUs
//!   of the node.
//! * **S2 — intra-node exchange**: reconstructed replicas travel over the
//!   fast intra-node links; each rank merges pilots and replicas ordered by
//!   local expert and runs its experts padding-free.
//!
//! The combine stage reverses the route: expert outputs are weight-scaled,
//! replica outputs return intra-node to their pilot's holder and are summed
//! into the pilot's accumulator, and a single partial sum per (token, node)
//! crosses back inter-node. The final scatter adds per-node partials — the
//! same value as the plain pipeline's per-entry weighted sum.

use xmoe_collectives::{CommError, Communicator, SimClock};
use xmoe_tensor::{gather_rows, gather_rows_into, DetRng, Tensor, Workspace};

use crate::expert::ExpertShard;
use crate::gating::Router;
use crate::pft::Pft;
use crate::pipeline::MoeLayerSpec;

/// The two communicators RBD needs: the EP group and its node-local
/// subgroup. Create once and reuse across layers/steps.
pub struct RbdComms {
    pub ep: Communicator,
    /// EP ranks co-resident on this rank's node.
    pub node: Communicator,
}

impl RbdComms {
    /// Collectively split the EP group by physical node.
    pub fn create(ep: &Communicator, clock: &mut SimClock) -> Result<Self, CommError> {
        let node_id = ep.cost().topology().node_of(ep.global_rank());
        let node = ep.split(node_id, clock)?;
        Ok(Self {
            ep: ep.clone(),
            node,
        })
    }
}

// ---------------------------------------------------------------------
// Redundancy analytics (paper Fig 4)
// ---------------------------------------------------------------------

/// Measured redundancy rate of a routed batch: the fraction of routed
/// entries whose token data need **not** cross to its destination node
/// because a co-routed entry (same token, same node) already carries it.
///
/// `rate = 1 - distinct(token, dst_node) / total_entries`.
pub fn redundancy_rate(pft: &Pft, expert_node: impl Fn(usize) -> usize) -> f64 {
    if pft.is_empty() {
        return 0.0;
    }
    let mut pairs: Vec<(usize, usize)> = pft
        .token_ids
        .iter()
        .zip(&pft.expert_ids)
        .map(|(&t, &e)| (t, expert_node(e)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    1.0 - pairs.len() as f64 / pft.len() as f64
}

/// Expected redundancy under uniform routing of k experts over `nodes`
/// equally loaded nodes: `1 - N (1 - (1 - 1/N)^k) / k`.
///
/// ```
/// use xmoe_core::rbd::expected_redundancy_uniform;
/// // The paper's Fig 4 peak: k=8 over 2 nodes is ~75.1% redundant.
/// let r = expected_redundancy_uniform(8, 2);
/// assert!((r - 0.751).abs() < 0.01);
/// ```
pub fn expected_redundancy_uniform(k: usize, nodes: usize) -> f64 {
    if nodes == 0 || k == 0 {
        return 0.0;
    }
    let n = nodes as f64;
    let distinct = n * (1.0 - (1.0 - 1.0 / n).powi(k as i32));
    (1.0 - distinct / k as f64).max(0.0)
}

// ---------------------------------------------------------------------
// Wire formats
// ---------------------------------------------------------------------

/// Per-pilot metadata decoded from the S1 stream.
struct PilotRec {
    expert: usize,
    weight: f32,
    replicas: Vec<(usize, f32)>,
}

fn encode_pilots(recs: &[PilotRec]) -> Vec<u64> {
    let mut out = Vec::with_capacity(recs.len() * 4);
    for r in recs {
        out.push(r.expert as u64);
        out.push(r.weight.to_bits() as u64);
        out.push(r.replicas.len() as u64);
        for &(e, w) in &r.replicas {
            out.push(e as u64);
            out.push(w.to_bits() as u64);
        }
    }
    out
}

fn decode_pilots(stream: &[u64]) -> Vec<PilotRec> {
    let mut recs = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        let expert = stream[i] as usize;
        let weight = f32::from_bits(stream[i + 1] as u32);
        let n_rep = stream[i + 2] as usize;
        i += 3;
        let mut replicas = Vec::with_capacity(n_rep);
        for _ in 0..n_rep {
            replicas.push((stream[i] as usize, f32::from_bits(stream[i + 1] as u32)));
            i += 2;
        }
        recs.push(PilotRec {
            expert,
            weight,
            replicas,
        });
    }
    recs
}

/// Where an expert-input row came from (drives the combine return path).
#[derive(Clone, Copy, Debug)]
enum Prov {
    /// A pilot row: accumulate locally at `(src, idx)`.
    Pilot { src: usize, idx: usize },
    /// A replica row: return intra-node to `peer` (node-comm rank), which
    /// accumulates it into its pilot `(src, idx)`.
    Replica { peer: usize, src: usize, idx: usize },
}

// ---------------------------------------------------------------------
// The RBD forward pass
// ---------------------------------------------------------------------

/// How the pilot is chosen within a (token, destination-node) group.
///
/// The paper uses [`PilotPolicy::Random`] and notes that "always routing
/// tokens to the smallest expert ID within a node will significantly
/// increase the alltoall latency" — the deterministic policy funnels every
/// pilot to one GPU per node, skewing the all-to-all chunk sizes. The
/// `ablation_pilot` bench quantifies this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PilotPolicy {
    /// Uniformly random group member (the paper's choice).
    Random,
    /// The group's smallest expert id (the strawman the paper warns about).
    SmallestExpertId,
}

/// Distributed padding-free MoE layer with RBD dispatch and combine.
///
/// Functionally identical to
/// [`crate::pipeline::padding_free::forward_ep`] (same gating, same PFT,
/// same experts); only the transport differs. `rng` drives pilot selection
/// under [`PilotPolicy::Random`].
pub fn forward_ep_rbd(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
) -> Result<Tensor, CommError> {
    forward_ep_rbd_with_policy(
        tokens,
        router,
        shard,
        spec,
        comms,
        rng,
        clock,
        PilotPolicy::Random,
    )
}

/// [`forward_ep_rbd`] with the S1 inter-node pilot exchange split into
/// `chunks` contiguous source-rank groups and pipelined against replica
/// reconstruction: while group `c+1`'s pilot rows are in flight on the
/// `comm` track, group `c`'s replicas are reconstructed on the `compute`
/// track. Source groups are processed in ascending rank order, so the
/// staging buffer and entry list are built in exactly the serial order and
/// the output stays bitwise identical to [`forward_ep_rbd`].
#[allow(clippy::too_many_arguments)]
pub fn forward_ep_rbd_overlap(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    chunks: usize,
) -> Result<Tensor, CommError> {
    forward_ep_rbd_impl(
        tokens,
        router,
        shard,
        spec,
        comms,
        rng,
        clock,
        PilotPolicy::Random,
        Some(chunks),
        None,
    )
}

/// [`forward_ep_rbd`] with every staging tensor — dispatch buffer, merged
/// expert input, MLP scratch, and the combine output — leased from a
/// per-rank [`Workspace`] instead of freshly allocated. Bitwise identical
/// to [`forward_ep_rbd`] under the same `rng` stream. The returned output
/// tensor is itself leased: recycle it back into `ws` once consumed to
/// keep the steady state allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn forward_ep_rbd_pooled(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    ws: &mut Workspace,
) -> Result<Tensor, CommError> {
    forward_ep_rbd_impl(
        tokens,
        router,
        shard,
        spec,
        comms,
        rng,
        clock,
        PilotPolicy::Random,
        None,
        Some(ws),
    )
}

/// [`forward_ep_rbd`] with an explicit pilot-selection policy (ablation).
#[allow(clippy::too_many_arguments)]
pub fn forward_ep_rbd_with_policy(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    policy: PilotPolicy,
) -> Result<Tensor, CommError> {
    forward_ep_rbd_impl(
        tokens, router, shard, spec, comms, rng, clock, policy, None, None,
    )
}

#[allow(clippy::too_many_arguments)]
fn forward_ep_rbd_impl(
    tokens: &Tensor,
    router: &Router,
    shard: &ExpertShard,
    spec: &MoeLayerSpec,
    comms: &RbdComms,
    rng: &mut DetRng,
    clock: &mut SimClock,
    policy: PilotPolicy,
    overlap_chunks: Option<usize>,
    mut ws: Option<&mut Workspace>,
) -> Result<Tensor, CommError> {
    let ep = &comms.ep;
    let node = &comms.node;
    let w = ep.size();
    assert_eq!(spec.num_experts % w, 0, "experts must divide EP size");
    let e_local = spec.num_experts / w;
    let hidden = tokens.cols();
    let cost = ep.cost().clone();
    let topo = cost.topology().clone();

    // Map EP position -> node, and node-comm position of each node peer.
    let owner_of = |e: usize| e / e_local;
    let node_of_pos = |pos: usize| topo.node_of(ep.group_ranks()[pos]);
    let my_node_pos_of_global: std::collections::HashMap<usize, usize> = node
        .group_ranks()
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i))
        .collect();

    // --- Gating + PFT ---------------------------------------------------
    let gating = router.gate(tokens);
    let pft = Pft::construct(&gating, spec.num_experts, spec.capacity, spec.policy);
    let gate_flops = 2.0 * tokens.rows() as f64 * hidden as f64 * spec.num_experts as f64;
    clock.charge("gating", cost.compute_time(gate_flops));

    let dispatch_in = match ws.as_deref_mut() {
        Some(w) => {
            let mut t = w.take(0, 0);
            gather_rows_into(tokens, &pft.token_ids, &mut t);
            t
        }
        None => gather_rows(tokens, &pft.token_ids),
    };
    clock.charge(
        "buffer_dispatch",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );

    // --- S0: pilot selection --------------------------------------------
    // Group this rank's routed entries by (token, destination node); pick a
    // random pilot per group, attach the rest as replicas.
    let mut keyed: Vec<(usize, usize, usize)> = (0..pft.len())
        .map(|i| {
            (
                pft.token_ids[i],
                node_of_pos(owner_of(pft.expert_ids[i])),
                i,
            )
        })
        .collect();
    keyed.sort_unstable();
    let mut pilots_per_dst: Vec<Vec<usize>> = vec![Vec::new(); w]; // pft entry indices
    let mut pilot_recs_per_dst: Vec<Vec<PilotRec>> = (0..w).map(|_| Vec::new()).collect();
    let mut g = 0;
    while g < keyed.len() {
        let (t, n, _) = keyed[g];
        let mut end = g + 1;
        while end < keyed.len() && keyed[end].0 == t && keyed[end].1 == n {
            end += 1;
        }
        let group: Vec<usize> = keyed[g..end].iter().map(|&(_, _, i)| i).collect();
        let pilot = match policy {
            PilotPolicy::Random => group[rng.next_below(group.len())],
            // Entries are expert-sorted within the PFT, so the smallest
            // pft index in the group has the smallest expert id.
            PilotPolicy::SmallestExpertId => *group.iter().min().unwrap(),
        };
        let dst = owner_of(pft.expert_ids[pilot]);
        let replicas = group
            .iter()
            .filter(|&&i| i != pilot)
            .map(|&i| (pft.expert_ids[i], pft.combine_weights[i]))
            .collect();
        pilots_per_dst[dst].push(pilot);
        pilot_recs_per_dst[dst].push(PilotRec {
            expert: pft.expert_ids[pilot],
            weight: pft.combine_weights[pilot],
            replicas,
        });
        g = end;
    }
    // Deterministic per-destination order (by expert, then token).
    for d in 0..w {
        let mut order: Vec<usize> = (0..pilots_per_dst[d].len()).collect();
        order.sort_by_key(|&j| {
            let i = pilots_per_dst[d][j];
            (pft.expert_ids[i], pft.token_ids[i])
        });
        pilots_per_dst[d] = order.iter().map(|&j| pilots_per_dst[d][j]).collect();
        let mut recs = std::mem::take(&mut pilot_recs_per_dst[d]);
        let mut reordered = Vec::with_capacity(recs.len());
        for &j in &order {
            reordered.push(std::mem::replace(
                &mut recs[j],
                PilotRec {
                    expert: 0,
                    weight: 0.0,
                    replicas: Vec::new(),
                },
            ));
        }
        pilot_recs_per_dst[d] = reordered;
    }
    clock.charge("rbd_plan", cost.mem_bound_time((pft.len() * 24) as f64));

    // --- S1: inter-node exchange of pilots + metadata -------------------
    let rows_send: Vec<Vec<f32>> = pilots_per_dst
        .iter()
        .map(|idxs| {
            let mut v = Vec::with_capacity(idxs.len() * hidden);
            for &i in idxs {
                v.extend_from_slice(dispatch_in.row(i));
            }
            v
        })
        .collect();
    let meta_send: Vec<Vec<u64>> = pilot_recs_per_dst
        .iter()
        .map(|r| encode_pilots(r))
        .collect();
    if let Some(w) = ws.as_deref_mut() {
        w.recycle(dispatch_in);
    }
    // --- S1.5 state: staging buffer + replica queues ---------------------
    struct Entry {
        local_expert: usize,
        weight: f32,
        prov: Prov,
        row: usize, // row in the staging tensor
    }
    let mut staging: Vec<f32> = Vec::new();
    let mut entries: Vec<Entry> = Vec::new();
    let node_n = node.size();
    let mut rep_rows_send: Vec<Vec<f32>> = vec![Vec::new(); node_n];
    let mut rep_meta_send: Vec<Vec<u64>> = vec![Vec::new(); node_n];
    let mut pilots_from_src: Vec<usize> = vec![0; w];
    let mut staging_rows = 0usize;
    // Parse one source's pilots: append to the staging buffer, queue replica
    // copies for node peers, return the replica bytes moved. Sources must be
    // processed in ascending rank order — the staging/entry order (and hence
    // the bitwise result) depends on it.
    let mut process_src = |src: usize, rows: &[f32], meta: &[u64]| -> f64 {
        let recs = decode_pilots(meta);
        pilots_from_src[src] = recs.len();
        let mut replica_bytes = 0f64;
        for (idx, rec) in recs.iter().enumerate() {
            let row_data = &rows[idx * hidden..(idx + 1) * hidden];
            assert!(
                rec.expert >= shard.first_expert && rec.expert < shard.first_expert + e_local,
                "pilot arrived at the wrong rank"
            );
            staging.extend_from_slice(row_data);
            entries.push(Entry {
                local_expert: rec.expert - shard.first_expert,
                weight: rec.weight,
                prov: Prov::Pilot { src, idx },
                row: staging_rows,
            });
            staging_rows += 1;
            for &(rep_expert, rep_weight) in &rec.replicas {
                let peer_global = ep.group_ranks()[owner_of(rep_expert)];
                let peer = *my_node_pos_of_global
                    .get(&peer_global)
                    .expect("replica target must be on the pilot's node");
                rep_rows_send[peer].extend_from_slice(row_data);
                rep_meta_send[peer].extend_from_slice(&[
                    rep_expert as u64,
                    rep_weight.to_bits() as u64,
                    src as u64,
                    idx as u64,
                ]);
                replica_bytes += (hidden * 4) as f64;
            }
        }
        replica_bytes
    };

    match overlap_chunks {
        None => {
            let rows_recv = ep.all_to_all_v(rows_send, clock)?;
            clock.commit("dispatch_a2a_inter");
            let meta_recv = ep.all_to_all_v(meta_send, clock)?;
            clock.commit("dispatch_a2a_meta");
            let mut replica_bytes = 0f64;
            for src in 0..w {
                replica_bytes += process_src(src, &rows_recv[src], &meta_recv[src]);
            }
            clock.charge(
                "rbd_replica_reconstruct",
                cost.mem_bound_time(2.0 * replica_bytes),
            );
        }
        Some(chunks) => {
            // Chunk the S1 exchange by contiguous source-rank groups: chunk
            // `c` carries only group `c`'s payload (other ranks send empty
            // buffers), so group `c`'s replica reconstruction overlaps with
            // group `c+1`'s transfer. All chunks are issued before any wait
            // (a NIC send queue), which also rules out deadlock.
            let k = chunks.clamp(1, w);
            let me = ep.rank();
            let mut rows_send = rows_send;
            let mut meta_send = meta_send;
            clock.begin_overlap("rbd_dispatch_compute");
            clock.set_track("comm");
            let mut pend = Vec::with_capacity(k);
            for c in 0..k {
                let (s0, s1) = (c * w / k, (c + 1) * w / k);
                let (r, m) = if (s0..s1).contains(&me) {
                    (
                        std::mem::replace(&mut rows_send, vec![Vec::new(); w]),
                        std::mem::replace(&mut meta_send, vec![Vec::new(); w]),
                    )
                } else {
                    (vec![Vec::new(); w], vec![Vec::new(); w])
                };
                let rows_p = ep.issue_all_to_all_v(r, clock)?;
                let meta_p = ep.issue_all_to_all_v(m, clock)?;
                pend.push(((s0, s1), rows_p, meta_p));
            }
            for ((s0, s1), rows_p, meta_p) in pend {
                clock.set_track("comm");
                let rows_recv = rows_p.wait(clock)?;
                clock.commit("dispatch_a2a_inter");
                let meta_recv = meta_p.wait(clock)?;
                clock.commit("dispatch_a2a_meta");
                let arrived = clock.track_time("comm").expect("comm track exists");
                clock.set_track("compute");
                clock.advance_to_op("rbd_replica_reconstruct", arrived);
                let mut replica_bytes = 0f64;
                for src in s0..s1 {
                    replica_bytes += process_src(src, &rows_recv[src], &meta_recv[src]);
                }
                clock.charge(
                    "rbd_replica_reconstruct",
                    cost.mem_bound_time(2.0 * replica_bytes),
                );
            }
            clock.end_overlap();
        }
    }

    // --- S2: intra-node exchange of replicas ------------------------------
    let rep_rows_recv = node.all_to_all_v(rep_rows_send, clock)?;
    clock.commit("dispatch_a2a_intra");
    let rep_meta_recv = node.all_to_all_v(rep_meta_send, clock)?;
    clock.commit("dispatch_a2a_meta_intra");
    for (peer, meta) in rep_meta_recv.iter().enumerate() {
        for (j, quad) in meta.chunks_exact(4).enumerate() {
            let rep_expert = quad[0] as usize;
            let weight = f32::from_bits(quad[1] as u32);
            let src = quad[2] as usize;
            let idx = quad[3] as usize;
            staging.extend_from_slice(&rep_rows_recv[peer][j * hidden..(j + 1) * hidden]);
            entries.push(Entry {
                local_expert: rep_expert - shard.first_expert,
                weight,
                prov: Prov::Replica { peer, src, idx },
                row: staging_rows,
            });
            staging_rows += 1;
        }
    }
    let staging = Tensor::from_vec(staging_rows, hidden, staging);

    // --- Merge ordered by local expert; run experts padding-free ---------
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| entries[i].local_expert);
    let perm: Vec<usize> = order.iter().map(|&i| entries[i].row).collect();
    let expert_input = match ws.as_deref_mut() {
        Some(w) => {
            let mut t = w.take(0, 0);
            gather_rows_into(&staging, &perm, &mut t);
            t
        }
        None => gather_rows(&staging, &perm),
    };
    let mut tokens_per_local_expert = vec![0usize; e_local];
    for e in &entries {
        tokens_per_local_expert[e.local_expert] += 1;
    }
    let mlp_out = match ws.as_deref_mut() {
        Some(w) => shard.forward_segments_pooled(&expert_input, &tokens_per_local_expert, w),
        None => shard.forward_segments(&expert_input, &tokens_per_local_expert),
    };
    let ffn = shard.experts.first().map_or(0, |e| e.w1.cols());
    clock.charge(
        "expert",
        cost.compute_time(4.0 * expert_input.rows() as f64 * hidden as f64 * ffn as f64),
    );
    if let Some(w) = ws.as_deref_mut() {
        w.recycle(expert_input);
    }

    // --- Combine: reverse route -------------------------------------------
    // Scale outputs by their combine weights, then split by provenance.
    let mut acc: Vec<Tensor> = pilots_from_src
        .iter()
        .map(|&c| Tensor::zeros(c, hidden))
        .collect();
    let mut crep_rows_send: Vec<Vec<f32>> = vec![Vec::new(); node_n];
    let mut crep_meta_send: Vec<Vec<u64>> = vec![Vec::new(); node_n];
    for (pos, &ei) in order.iter().enumerate() {
        let e = &entries[ei];
        let out_row = mlp_out.row(pos);
        match e.prov {
            Prov::Pilot { src, idx } => {
                let dst = acc[src].row_mut(idx);
                for (d, v) in dst.iter_mut().zip(out_row) {
                    *d += e.weight * v;
                }
            }
            Prov::Replica { peer, src, idx } => {
                crep_rows_send[peer].extend(out_row.iter().map(|v| e.weight * v));
                crep_meta_send[peer].extend_from_slice(&[src as u64, idx as u64]);
            }
        }
    }
    if let Some(w) = ws.as_deref_mut() {
        w.recycle(mlp_out);
    }
    let crep_rows_recv = node.all_to_all_v(crep_rows_send, clock)?;
    clock.commit("combine_a2a_intra");
    let crep_meta_recv = node.all_to_all_v(crep_meta_send, clock)?;
    clock.commit("combine_a2a_meta");
    for (peer, meta) in crep_meta_recv.iter().enumerate() {
        for (j, pair) in meta.chunks_exact(2).enumerate() {
            let (src, idx) = (pair[0] as usize, pair[1] as usize);
            let row = &crep_rows_recv[peer][j * hidden..(j + 1) * hidden];
            let dst = acc[src].row_mut(idx);
            for (d, v) in dst.iter_mut().zip(row) {
                *d += v;
            }
        }
    }

    // Inter-node return of per-(token, node) partial sums.
    let back_send: Vec<Vec<f32>> = acc.iter().map(|t| t.as_slice().to_vec()).collect();
    let back_recv = ep.all_to_all_v(back_send, clock)?;
    clock.commit("combine_a2a_inter");

    // Scatter the partials (weights already applied) by the pilot order we
    // originally sent to each destination.
    // Leased when pooled: the caller recycles it once the output is consumed.
    let mut out = match ws {
        Some(w) => w.take(tokens.rows(), hidden),
        None => Tensor::zeros(tokens.rows(), hidden),
    };
    for (dst, idxs) in pilots_per_dst.iter().enumerate() {
        let chunk = &back_recv[dst];
        debug_assert_eq!(chunk.len(), idxs.len() * hidden);
        for (j, &pilot_idx) in idxs.iter().enumerate() {
            let t = pft.token_ids[pilot_idx];
            let row = &chunk[j * hidden..(j + 1) * hidden];
            let dst_row = out.row_mut(t);
            for (d, v) in dst_row.iter_mut().zip(row) {
                *d += v;
            }
        }
    }
    clock.charge(
        "buffer_combine",
        cost.mem_bound_time(2.0 * (pft.len() * hidden * 4) as f64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::DropPolicy;
    use crate::pipeline::padding_free;
    use xmoe_collectives::SimCluster;

    #[test]
    fn expected_redundancy_matches_paper_points() {
        // Paper §5.4.2: 32 GPUs (4 Frontier nodes), k=8 -> 54.8% measured.
        let r4 = expected_redundancy_uniform(8, 4);
        assert!((r4 - 0.548).abs() < 0.03, "4 nodes k=8: {r4}");
        // Fig 4's peak ~75.1% corresponds to 2 nodes, k=8.
        let r2 = expected_redundancy_uniform(8, 2);
        assert!((r2 - 0.751).abs() < 0.01, "2 nodes k=8: {r2}");
        // Single node: everything but one copy is redundant.
        assert!((expected_redundancy_uniform(8, 1) - 0.875).abs() < 1e-9);
        // As many nodes as k: low redundancy.
        assert!(expected_redundancy_uniform(8, 64) < 0.06);
    }

    #[test]
    fn measured_redundancy_tracks_uniform_expectation() {
        // Router with uniform-ish logits over many tokens.
        let (s, h, e, k) = (512, 16, 32, 8);
        let router = Router::new(h, e, k, 5);
        let tokens = Tensor::rand_uniform(s, h, 1.0, 6);
        let g = router.gate(&tokens);
        let pft = Pft::construct(&g, e, usize::MAX / 2, DropPolicy::CapacityOnly);
        // 32 experts over 4 nodes (8 experts per node).
        let rate = redundancy_rate(&pft, |ex| ex / 8);
        let expected = expected_redundancy_uniform(k, 4);
        assert!(
            (rate - expected).abs() < 0.12,
            "measured {rate} vs uniform expectation {expected}"
        );
    }

    #[test]
    fn redundancy_zero_when_k1() {
        let g = Router::new(8, 4, 1, 7).gate(&Tensor::rand_uniform(64, 8, 1.0, 8));
        let pft = Pft::construct(&g, 4, 1000, DropPolicy::CapacityOnly);
        assert_eq!(redundancy_rate(&pft, |e| e), 0.0);
    }

    #[test]
    fn pilot_meta_roundtrip() {
        let recs = vec![
            PilotRec {
                expert: 3,
                weight: 0.25,
                replicas: vec![(5, 0.5), (6, 0.125)],
            },
            PilotRec {
                expert: 9,
                weight: 1.0,
                replicas: vec![],
            },
        ];
        let dec = decode_pilots(&encode_pilots(&recs));
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].expert, 3);
        assert_eq!(dec[0].weight, 0.25);
        assert_eq!(dec[0].replicas, vec![(5, 0.5), (6, 0.125)]);
        assert_eq!(dec[1].expert, 9);
        assert!(dec[1].replicas.is_empty());
    }

    fn rbd_vs_plain(world: usize, s: usize, e: usize, k: usize, cap: usize, seed: u64) {
        let (h, f) = (12, 8);
        let router = Router::new(h, e, k, seed);
        let spec = MoeLayerSpec::new(e, cap);
        let plain = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, seed + 1);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 200 + ctx.rank as u64);
            padding_free::forward_ep(&tokens, &router, &shard, &spec, &ctx.world, &mut ctx.clock)
                .unwrap()
        });
        let rbd = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, seed + 1);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 200 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(seed + ctx.rank as u64);
            forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        });
        for (r, (a, b)) in plain.iter().zip(&rbd).enumerate() {
            assert!(
                a.allclose(b, 1e-4),
                "world {world} rank {r}: RBD diverges from plain dispatch, max diff {}",
                a.max_abs_diff(b)
            );
        }
    }

    #[test]
    fn rbd_matches_plain_dispatch_multi_node() {
        // 16 ranks = 2 Frontier nodes; high k -> heavy redundancy exercised.
        rbd_vs_plain(16, 12, 16, 6, 10_000, 41);
    }

    #[test]
    fn rbd_matches_plain_dispatch_single_node() {
        rbd_vs_plain(4, 16, 8, 3, 10_000, 43);
    }

    #[test]
    fn rbd_matches_plain_with_capacity_drops() {
        rbd_vs_plain(8, 24, 8, 4, 6, 47);
    }

    #[test]
    fn rbd_overlap_is_bitwise_identical_to_serial() {
        let (world, s, e, k, h, f) = (16usize, 12usize, 16usize, 6usize, 12usize, 8usize);
        let router = Router::new(h, e, k, 91);
        let spec = MoeLayerSpec::new(e, 10_000);
        let serial = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 92);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(93 + ctx.rank as u64);
            forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        });
        for chunks in [1usize, 2, 4, 16] {
            let overlapped = SimCluster::frontier(world).run(|ctx| {
                let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 92);
                let tokens = Tensor::rand_uniform(s, h, 1.0, 400 + ctx.rank as u64);
                let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
                let mut rng = DetRng::new(93 + ctx.rank as u64);
                forward_ep_rbd_overlap(
                    &tokens,
                    &router,
                    &shard,
                    &spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                    chunks,
                )
                .unwrap()
            });
            for (r, (a, b)) in serial.iter().zip(&overlapped).enumerate() {
                assert!(
                    a.allclose(b, 0.0),
                    "chunks {chunks} rank {r}: RBD overlap not bitwise identical \
                     (max diff {})",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn rbd_pooled_is_bitwise_identical_and_stops_missing() {
        let (world, s, e, k, h, f) = (8usize, 12usize, 16usize, 4usize, 12usize, 8usize);
        let router = Router::new(h, e, k, 71);
        let spec = MoeLayerSpec::new(e, 10_000);
        let baseline = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 72);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(73 + ctx.rank as u64);
            forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap()
        });
        let pooled = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 72);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 500 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut ws = Workspace::default();
            let mut last = Tensor::zeros(0, 0);
            for _ in 0..3 {
                // Fresh rng per step: identical pilot draws, so every step
                // must reproduce the baseline bitwise.
                let mut rng = DetRng::new(73 + ctx.rank as u64);
                let out = forward_ep_rbd_pooled(
                    &tokens,
                    &router,
                    &shard,
                    &spec,
                    &comms,
                    &mut rng,
                    &mut ctx.clock,
                    &mut ws,
                )
                .unwrap();
                ws.recycle(std::mem::replace(&mut last, out));
            }
            let misses = ws.stats().pool_misses;
            (last, misses)
        });
        for (r, (a, (b, misses))) in baseline.iter().zip(&pooled).enumerate() {
            assert!(
                a.allclose(b, 0.0),
                "rank {r}: pooled RBD not bitwise identical (max diff {})",
                a.max_abs_diff(b)
            );
            // Mid-step recycling lets later leases reuse earlier buffers, so
            // warm-up costs only 3 fresh allocations; every step after that
            // is served entirely from the free lists.
            assert_eq!(*misses, 3, "rank {r}: unexpected pool misses");
        }
    }

    #[test]
    fn rbd_reduces_inter_node_dispatch_bytes() {
        // 2 nodes, k=6 over 16 experts: expected redundancy ~68%; RBD's
        // inter-node all-to-all must be much cheaper than the plain one.
        // Token buffers are sized so the all-to-alls are bandwidth-bound
        // (at tiny messages the startup latency hides the effect).
        let (world, s, e, k, h, f) = (16usize, 1024usize, 16usize, 6usize, 256usize, 8usize);
        let router = Router::new(h, e, k, 51);
        let spec = MoeLayerSpec::new(e, 10_000);
        let plain_t = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 52);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 300 + ctx.rank as u64);
            let _ = padding_free::forward_ep(
                &tokens,
                &router,
                &shard,
                &spec,
                &ctx.world,
                &mut ctx.clock,
            )
            .unwrap();
            ctx.clock.bucket("dispatch_a2a") + ctx.clock.bucket("combine_a2a")
        });
        let rbd_t = SimCluster::frontier(world).run(|ctx| {
            let shard = ExpertShard::for_rank(ctx.rank, world, e, h, f, 52);
            let tokens = Tensor::rand_uniform(s, h, 1.0, 300 + ctx.rank as u64);
            let comms = RbdComms::create(&ctx.world, &mut ctx.clock).unwrap();
            let mut rng = DetRng::new(53 + ctx.rank as u64);
            let _ = forward_ep_rbd(
                &tokens,
                &router,
                &shard,
                &spec,
                &comms,
                &mut rng,
                &mut ctx.clock,
            )
            .unwrap();
            ctx.clock.bucket("dispatch_a2a_inter") + ctx.clock.bucket("combine_a2a_inter")
        });
        assert!(
            rbd_t[0] < 0.7 * plain_t[0],
            "RBD inter-node time {} should be well under plain {}",
            rbd_t[0],
            plain_t[0]
        );
    }
}
