//! Routing analytics: the observability layer over gating decisions.
//!
//! Everything the paper's motivation sections quantify about routing —
//! expert load distribution (§3.1's capacity mismatch), the dispatch
//! redundancy structure (§3.3), expert specialization (§2's argument for
//! fine-grained experts) — computed from live [`Pft`]s.

use crate::pft::Pft;

/// Summary statistics of one routed batch.
#[derive(Clone, Debug)]
pub struct RoutingReport {
    /// Retained routed entries.
    pub routed: usize,
    /// Dropped (capacity/policy) entries.
    pub dropped: usize,
    /// Per-expert retained counts.
    pub loads: Vec<usize>,
    /// max(load) / mean(load); 1.0 = perfectly balanced.
    pub load_imbalance: f64,
    /// Shannon entropy of the load distribution in nats; `ln(E)` =
    /// perfectly uniform.
    pub load_entropy: f64,
    /// Fraction of experts that received zero tokens.
    pub idle_fraction: f64,
    /// Mean retained combine weight (router confidence).
    pub mean_weight: f64,
}

/// Compute the routing report for a PFT.
pub fn routing_report(pft: &Pft) -> RoutingReport {
    let e = pft.tokens_per_expert.len().max(1);
    let routed = pft.len();
    let mean = routed as f64 / e as f64;
    let max = pft.tokens_per_expert.iter().copied().max().unwrap_or(0) as f64;
    let load_imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    let load_entropy = if routed > 0 {
        -pft.tokens_per_expert
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / routed as f64;
                p * p.ln()
            })
            .sum::<f64>()
    } else {
        0.0
    };
    let idle = pft.tokens_per_expert.iter().filter(|&&c| c == 0).count();
    let mean_weight = if routed > 0 {
        pft.combine_weights.iter().map(|&w| w as f64).sum::<f64>() / routed as f64
    } else {
        0.0
    };
    RoutingReport {
        routed,
        dropped: pft.dropped,
        loads: pft.tokens_per_expert.clone(),
        load_imbalance,
        load_entropy,
        idle_fraction: idle as f64 / e as f64,
        mean_weight,
    }
}

/// Expert co-activation counts: `co[a][b]` = number of tokens routed to
/// both experts `a` and `b` (a < b). High co-activation between two
/// experts suggests they have not specialized apart — the diagnostic
/// behind DeepSeek-MoE's fine-grained-expert argument (§2).
pub fn coactivation_counts(pft: &Pft) -> Vec<Vec<usize>> {
    let e = pft.tokens_per_expert.len();
    let mut co = vec![vec![0usize; e]; e];
    // Group entries by token (token_ids are not sorted; build a map).
    let mut per_token: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for (&t, &ex) in pft.token_ids.iter().zip(&pft.expert_ids) {
        per_token.entry(t).or_default().push(ex);
    }
    for experts in per_token.values() {
        for (i, &a) in experts.iter().enumerate() {
            for &b in &experts[i + 1..] {
                let (lo, hi) = (a.min(b), a.max(b));
                co[lo][hi] += 1;
            }
        }
    }
    co
}

/// Number of distinct expert combinations observed (per-token expert sets).
/// The paper's §2 argument: fine-grained experts expand the reachable
/// combination space combinatorially.
pub fn distinct_combinations(pft: &Pft) -> usize {
    let mut per_token: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for (&t, &ex) in pft.token_ids.iter().zip(&pft.expert_ids) {
        per_token.entry(t).or_default().push(ex);
    }
    let mut combos: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    for experts in per_token.values_mut() {
        experts.sort_unstable();
        combos.insert(experts.clone());
    }
    combos.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::{DropPolicy, Router};
    use xmoe_tensor::Tensor;

    fn pft_for(s: usize, e: usize, k: usize, seed: u64) -> Pft {
        let router = Router::new(16, e, k, seed);
        let tokens = Tensor::rand_uniform(s, 16, 1.0, seed + 1);
        Pft::construct(
            &router.gate(&tokens),
            e,
            usize::MAX / 2,
            DropPolicy::CapacityOnly,
        )
    }

    #[test]
    fn report_conserves_counts() {
        let pft = pft_for(64, 8, 3, 1);
        let r = routing_report(&pft);
        assert_eq!(r.routed, 64 * 3);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.loads.iter().sum::<usize>(), r.routed);
        assert!(r.load_imbalance >= 1.0);
        assert!(r.load_entropy <= (8f64).ln() + 1e-9);
        assert!((0.0..=1.0).contains(&r.idle_fraction));
        assert!(r.mean_weight > 0.0 && r.mean_weight <= 1.0);
    }

    #[test]
    fn uniform_loads_give_max_entropy_and_unit_imbalance() {
        // Hand-build a perfectly balanced PFT.
        let pft = Pft {
            token_ids: vec![0, 1, 2, 3],
            expert_ids: vec![0, 1, 2, 3],
            tokens_per_expert: vec![1, 1, 1, 1],
            combine_weights: vec![0.5; 4],
            dropped: 0,
        };
        let r = routing_report(&pft);
        assert!((r.load_imbalance - 1.0).abs() < 1e-12);
        assert!((r.load_entropy - (4f64).ln()).abs() < 1e-12);
        assert_eq!(r.idle_fraction, 0.0);
    }

    #[test]
    fn coactivation_is_symmetric_upper_triangle() {
        let pft = pft_for(32, 6, 3, 3);
        let co = coactivation_counts(&pft);
        // Each token with k=3 contributes C(3,2)=3 pairs.
        let total: usize = co.iter().flatten().sum();
        assert_eq!(total, 32 * 3);
        // Lower triangle and diagonal stay zero by construction.
        for (a, row) in co.iter().enumerate() {
            for &v in row.iter().take(a + 1) {
                assert_eq!(v, 0);
            }
        }
    }

    #[test]
    fn distinct_combinations_bounded_by_tokens_and_grows_with_granularity() {
        let coarse = pft_for(128, 4, 2, 5);
        let fine = pft_for(128, 32, 2, 5);
        let dc = distinct_combinations(&coarse);
        let df = distinct_combinations(&fine);
        assert!(dc <= 128 && df <= 128);
        // C(4,2)=6 possible coarse combos; fine-grained has C(32,2)=496.
        assert!(dc <= 6);
        assert!(
            df > dc,
            "finer experts must realize more combinations: {df} vs {dc}"
        );
    }
}
