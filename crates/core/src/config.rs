//! Model and parallelism configurations.
//!
//! [`MoeModelConfig`] carries the architectural parameters of one MoE model;
//! constructors provide the paper's Table 3 evaluation presets
//! (Small/Medium/Large/Super), the size-equivalent conventional vs
//! expert-specialized pairs of §3.2 (Table 1), and the public model configs
//! used by the SSMB-vs-TED analysis in Appendix C.2 (Fig 17).

/// Numeric storage type, used by the memory model (compute always runs f32).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    /// 2-byte bfloat16/fp16 — activations and parameters in mixed precision.
    Bf16,
    /// 4-byte float.
    F32,
}

impl DType {
    pub const fn bytes(self) -> u64 {
        match self {
            DType::Bf16 => 2,
            DType::F32 => 4,
        }
    }
}

/// Architecture of an expert-specialized (or conventional) MoE transformer.
#[derive(Clone, Debug)]
pub struct MoeModelConfig {
    /// Display name for experiment printouts.
    pub name: String,
    /// Training sequence length `S`.
    pub seq_len: usize,
    /// Model (hidden) dimension `H`.
    pub hidden: usize,
    /// Expert FFN intermediate dimension `H_FFN`.
    pub ffn_hidden: usize,
    /// Number of routed experts per MoE layer `E`.
    pub num_experts: usize,
    /// Experts activated per token `k`.
    pub top_k: usize,
    /// Number of transformer layers `L` (each with one MoE block).
    pub num_layers: usize,
    /// Vocabulary size (embedding/head accounting only).
    pub vocab: usize,
    /// GShard capacity factor `c` (paper uses 1.25 everywhere).
    pub capacity_factor: f64,
    /// Activation/parameter storage dtype.
    pub dtype: DType,
}

impl MoeModelConfig {
    /// A fully custom config (for tests and sweeps).
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &str,
        seq_len: usize,
        hidden: usize,
        ffn_hidden: usize,
        num_experts: usize,
        top_k: usize,
        num_layers: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            seq_len,
            hidden,
            ffn_hidden,
            num_experts,
            top_k,
            num_layers,
            vocab: 32_000,
            capacity_factor: 1.25,
            dtype: DType::Bf16,
        }
    }

    /// Table 3 "Small": 10.1 B parameters (DeepSeek-MoE-style).
    pub fn small() -> Self {
        Self::custom("Small", 2048, 2048, 1408, 64, 6, 28)
    }

    /// Table 3 "Medium": 55.2 B parameters (DeepSeek-v2-style).
    pub fn medium() -> Self {
        Self::custom("Medium", 4096, 5120, 1536, 128, 6, 28)
    }

    /// Table 3 "Large": 201.4 B parameters (DeepSeek-v3-width-style).
    ///
    /// ```
    /// let cfg = xmoe_core::config::MoeModelConfig::large();
    /// assert_eq!(cfg.num_experts, 256);
    /// assert_eq!(cfg.top_k, 8);
    /// // GShard capacity at the full sequence: ceil(1.25 * 4096 * 8 / 256).
    /// assert_eq!(cfg.expert_capacity(4096), 160);
    /// ```
    pub fn large() -> Self {
        Self::custom("Large", 4096, 7168, 2048, 256, 8, 28)
    }

    /// Table 3 "Super": 545.4 B parameters.
    pub fn super_() -> Self {
        Self::custom("Super", 4096, 7168, 2560, 256, 8, 61)
    }

    /// "Small-SR" (§5.5): sequence length reduced to 1024.
    pub fn small_sr() -> Self {
        let mut c = Self::small();
        c.name = "Small-SR".into();
        c.seq_len = 1024;
        c
    }

    /// "Small-LR" (§5.5): layers reduced to 14.
    pub fn small_lr() -> Self {
        let mut c = Self::small();
        c.name = "Small-LR".into();
        c.num_layers = 14;
        c
    }

    /// Size-equivalent conventional MoE `M_conv` of §3.2 Table 1: `e` experts
    /// of FFN width `h'`, top-1 routing.
    pub fn conv_pair(hidden: usize, ffn: usize, e: usize, layers: usize) -> Self {
        let mut c = Self::custom("M_conv", 2048, hidden, ffn, e, 1, layers);
        c.name = format!("M_conv(e={e})");
        c
    }

    /// Size-equivalent expert-specialized MoE `M_spec` of §3.2 Table 1:
    /// `e·m` experts of width `h'/m`, top-`m` routing. Same total and
    /// activated parameters as [`Self::conv_pair`].
    pub fn spec_pair(hidden: usize, ffn: usize, e: usize, m: usize, layers: usize) -> Self {
        assert!(
            ffn.is_multiple_of(m),
            "fine-grained factor must divide the FFN width"
        );
        let mut c = Self::custom("M_spec", 2048, hidden, ffn / m, e * m, m, layers);
        c.name = format!("M_spec(e={e},m={m})");
        c
    }

    // ---- Public model configs for the Fig 17 SSMB-vs-TED analysis ----

    /// Mixtral-8x7B: 8 experts, top-2, H=4096, H_FFN=14336.
    pub fn mixtral_8x7b() -> Self {
        Self::custom("Mixtral-8x7b", 4096, 4096, 14336, 8, 2, 32)
    }

    /// Mixtral-8x22B: 8 experts, top-2, H=6144, H_FFN=16384.
    pub fn mixtral_8x22b() -> Self {
        Self::custom("Mixtral-8x22b", 4096, 6144, 16384, 8, 2, 56)
    }

    /// DeepSeek-MoE (16B): 64 routed experts, top-6, H=2048, H_FFN=1408.
    pub fn deepseek_moe() -> Self {
        Self::custom("DeepSeek-MoE", 4096, 2048, 1408, 64, 6, 28)
    }

    /// DeepSeek-v3: 256 routed experts, top-8, H=7168, H_FFN=2048.
    pub fn deepseek_v3() -> Self {
        Self::custom("DeepSeek-v3", 4096, 7168, 2048, 256, 8, 61)
    }

    /// Snowflake Arctic: fine-grained experts (128) with small top-k (2).
    pub fn arctic() -> Self {
        Self::custom("Arctic", 4096, 7168, 4864, 128, 2, 35)
    }

    /// Expert capacity `C = ceil(c * S_local * k / E)` for a local batch of
    /// `tokens` tokens (GShard-style; the paper uses `c = 1.25` of the
    /// average perceived tokens per expert).
    pub fn expert_capacity(&self, tokens: usize) -> usize {
        ((self.capacity_factor * tokens as f64 * self.top_k as f64) / self.num_experts as f64)
            .ceil()
            .max(1.0) as usize
    }

    /// Parameters of one expert FFN: two weight matrices `H x H_FFN` and
    /// `H_FFN x H`.
    pub fn params_per_expert(&self) -> u64 {
        2 * self.hidden as u64 * self.ffn_hidden as u64
    }

    /// All expert parameters of one MoE layer.
    pub fn expert_params_per_layer(&self) -> u64 {
        self.num_experts as u64 * self.params_per_expert()
    }

    /// Router (gate) parameters of one layer: `H x E`.
    pub fn router_params_per_layer(&self) -> u64 {
        self.hidden as u64 * self.num_experts as u64
    }

    /// Dense (non-MoE) parameters of one layer: attention QKVO (`4 H^2`)
    /// plus a shared dense MLP of width `4H` would double-count the MoE —
    /// DeepSeek-style blocks replace the FFN with the MoE, so the dense part
    /// is attention only (plus norms, negligible).
    pub fn dense_params_per_layer(&self) -> u64 {
        4 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// Total model parameters (embeddings + per-layer dense + experts +
    /// router). Matches Table 3 within ~2% (the paper also counts norms,
    /// biases and MTP heads we fold into the vocab term).
    pub fn total_params(&self) -> u64 {
        let per_layer = self.dense_params_per_layer()
            + self.expert_params_per_layer()
            + self.router_params_per_layer();
        self.num_layers as u64 * per_layer + 2 * self.vocab as u64 * self.hidden as u64
    }

    /// Parameters activated per token: dense + router + k experts.
    pub fn activated_params(&self) -> u64 {
        let per_layer = self.dense_params_per_layer()
            + self.router_params_per_layer()
            + self.top_k as u64 * self.params_per_expert();
        self.num_layers as u64 * per_layer + 2 * self.vocab as u64 * self.hidden as u64
    }

    /// The SSMB-vs-TED advantage ratio `r = k / H_FFN` (Appendix C.2).
    pub fn ssmb_ratio(&self) -> f64 {
        self.top_k as f64 / self.ffn_hidden as f64
    }
}

/// How the cluster is carved into parallel groups for one training run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// World size (total GPUs).
    pub world: usize,
    /// Expert-parallel group size.
    pub ep: usize,
    /// Tensor-parallel group size for dense blocks (1 = off).
    pub tp: usize,
    /// ZeRO stage for data parallelism (0, 1 or 2).
    pub zero_stage: u8,
    /// Sequence-sharded MoE blocks (X-MoE §4.3) enabled.
    pub ssmb: bool,
    /// Micro-batch size (sequences per GPU per micro-step).
    pub micro_batch: usize,
    /// Global batch size in sequences.
    pub global_batch: usize,
}

impl ParallelConfig {
    pub fn new(world: usize, ep: usize) -> Self {
        Self {
            world,
            ep,
            tp: 1,
            zero_stage: 1,
            ssmb: false,
            micro_batch: 1,
            global_batch: 1024,
        }
    }

    pub fn with_tp(mut self, tp: usize) -> Self {
        self.tp = tp;
        self
    }

    pub fn with_ssmb(mut self, on: bool) -> Self {
        self.ssmb = on;
        self
    }

    pub fn with_zero(mut self, stage: u8) -> Self {
        self.zero_stage = stage;
        self
    }

    pub fn with_batch(mut self, micro: usize, global: usize) -> Self {
        self.micro_batch = micro;
        self.global_batch = global;
        self
    }

    /// Data-parallel degree: `world / (tp * ep)` when EP nests inside DP
    /// (clamped at 1 for pure-EP layouts where `ep == world`).
    pub fn dp(&self) -> usize {
        (self.world / (self.tp * self.ep)).max(1)
    }

    /// DP degree for non-expert (dense) parameters: `world / tp`.
    pub fn dense_dp(&self) -> usize {
        (self.world / self.tp).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_param_counts_match_paper() {
        // Paper Table 3: 10.1B / 55.2B / 201.4B / 545.4B.
        let cases = [
            (MoeModelConfig::small(), 10.1e9),
            (MoeModelConfig::medium(), 55.2e9),
            (MoeModelConfig::large(), 201.4e9),
            (MoeModelConfig::super_(), 545.4e9),
        ];
        // Our accounting replaces *every* layer's FFN with the MoE, while
        // DeepSeek-style models keep the first layer(s) dense and use shared
        // experts — a consistent ~8% overshoot. Shape, not identity.
        for (cfg, expected) in cases {
            let got = cfg.total_params() as f64;
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 0.10,
                "{}: {got:.3e} vs paper {expected:.3e} (rel {rel:.3})",
                cfg.name
            );
        }
    }

    #[test]
    fn table3_activated_param_counts_match_paper() {
        // Paper Table 3: 1.3B / 5.2B / 11.5B / 28.7B activated.
        let cases = [
            (MoeModelConfig::small(), 1.3e9),
            (MoeModelConfig::medium(), 5.2e9),
            (MoeModelConfig::large(), 11.5e9),
            (MoeModelConfig::super_(), 28.7e9),
        ];
        // Same accounting caveat as total_params; the smallest model shows
        // the largest relative deviation because its dense share is biggest.
        for (cfg, expected) in cases {
            let got = cfg.activated_params() as f64;
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 0.25,
                "{}: {got:.3e} vs paper {expected:.3e} (rel {rel:.3})",
                cfg.name
            );
        }
    }

    #[test]
    fn conv_spec_pairs_are_size_equivalent() {
        // Table 1: same total and activated parameters.
        let conv = MoeModelConfig::conv_pair(4096, 16384, 16, 28);
        let spec = MoeModelConfig::spec_pair(4096, 16384, 16, 8, 28);
        // Expert and dense parameters are identical; only the router grows
        // m-fold (H x E vs H x E*m), a < 0.1% difference.
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
        assert!(rel(conv.total_params(), spec.total_params()) < 5e-3);
        assert!(rel(conv.activated_params(), spec.activated_params()) < 5e-3);
        assert_eq!(
            conv.expert_params_per_layer(),
            spec.expert_params_per_layer()
        );
        assert_eq!(spec.num_experts, 128);
        assert_eq!(spec.top_k, 8);
        assert_eq!(spec.ffn_hidden, 2048);
    }

    #[test]
    fn expert_capacity_matches_gshard_formula() {
        let cfg = MoeModelConfig::large(); // E=256, k=8, c=1.25
                                           // C = ceil(1.25 * 4096 * 8 / 256) = 160.
        assert_eq!(cfg.expert_capacity(4096), 160);
        // Tiny batches still get capacity >= 1.
        assert_eq!(cfg.expert_capacity(1), 1);
    }

    #[test]
    fn parallel_config_derives_dp() {
        let p = ParallelConfig::new(256, 64).with_tp(2);
        assert_eq!(p.dp(), 2);
        assert_eq!(p.dense_dp(), 128);
        let pure_ep = ParallelConfig::new(64, 64);
        assert_eq!(pure_ep.dp(), 1);
    }

    #[test]
    fn ssmb_ratio_orders_models_as_fig17() {
        // DeepSeek models (fine-grained, large k) must have much larger
        // r = k / H_FFN than Mixtral (coarse experts, small k).
        let ds = MoeModelConfig::deepseek_v3().ssmb_ratio();
        let mx = MoeModelConfig::mixtral_8x7b().ssmb_ratio();
        let arctic = MoeModelConfig::arctic().ssmb_ratio();
        assert!(ds > 20.0 * mx, "DeepSeek r={ds}, Mixtral r={mx}");
        assert!(
            arctic > mx && arctic < ds,
            "Arctic must sit between: {mx} {arctic} {ds}"
        );
    }

    #[test]
    fn dtype_bytes() {
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
    }
}
