//! Experiment harness support: table formatting and paper-vs-measured
//! shape checks shared by the per-figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); `reproduce_all` runs the
//! full set. Binaries print the same rows/series the paper reports plus a
//! `[shape]` line per headline claim: the reproduction targets *shape*
//! (who wins, by roughly what factor, where crossovers fall), not absolute
//! hardware numbers.

/// Render a text table with a header row.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        fmt_row(row);
    }
}

/// Report a shape check: a claim from the paper and whether the model
/// reproduces it.
pub fn shape_check(claim: &str, ok: bool, detail: &str) {
    let status = if ok { "PASS" } else { "DEVIATION" };
    println!("[shape] {status}: {claim} ({detail})");
}

/// Format seconds as engineering-readable.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Format bytes as GiB with two decimals.
pub fn fmt_gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / (1024.0 * 1024.0 * 1024.0))
}

/// A crude ASCII sparkline for printed "figures".
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_scale() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(0.0021), "2.10 ms");
        assert_eq!(fmt_time(15e-6), "15.0 us");
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn fmt_gib_formats() {
        assert_eq!(fmt_gib(1024 * 1024 * 1024), "1.00 GiB");
    }
}
