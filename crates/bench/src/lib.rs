//! Experiment harness support: table formatting and paper-vs-measured
//! shape checks shared by the per-figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); `reproduce_all` runs the
//! full set. Binaries print the same rows/series the paper reports plus a
//! `[shape]` line per headline claim: the reproduction targets *shape*
//! (who wins, by roughly what factor, where crossovers fall), not absolute
//! hardware numbers.

/// Shared scaffolding for the self-validated `BENCH_*.json` reports the
/// bench binaries and `xmoe-cli bench` emit: assert-don't-escape string
/// embedding, brace-depth record splitting, scalar extraction, and the
/// write-then-revalidate driver. Every report goes through
/// [`report::write_validated`], so a file that cannot pass its own schema
/// gate never lands on disk with a success exit code.
pub mod report {
    /// Assert-don't-escape: the JSON writers emit these verbatim inside
    /// quotes, so anything that would need escaping is a bug at the
    /// call site, not something to paper over.
    pub fn json_safe(s: &str) -> &str {
        assert!(
            s.is_ascii() && !s.contains('"') && !s.contains('\\'),
            "string needs JSON escaping: {s}"
        );
        s
    }

    /// Split a top-level JSON array into its record objects by brace
    /// depth. Valid because the writers assert (via [`json_safe`]) that no
    /// emitted string contains braces; nested objects (e.g. a `config`
    /// sub-object) stay inside their record. Errors on a non-array top
    /// level, unbalanced braces, or an empty array.
    pub fn split_records(text: &str) -> Result<Vec<&str>, String> {
        let t = text.trim();
        if !t.starts_with('[') || !t.ends_with(']') {
            return Err("top-level value must be a JSON array".into());
        }
        let mut objs: Vec<&str> = Vec::new();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, c) in t.char_indices() {
            match c {
                '{' => {
                    if depth == 0 {
                        start = i;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                    if depth == 0 {
                        objs.push(&t[start..=i]);
                    }
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err("unbalanced braces".into());
        }
        if objs.is_empty() {
            return Err("no records".into());
        }
        Ok(objs)
    }

    /// Extract the numeric value of `key` from one record object.
    pub fn scalar(obj: &str, key: &str) -> Result<f64, String> {
        let tag = format!("\"{key}\":");
        let at = obj.find(&tag).ok_or_else(|| format!("missing key {key}"))?;
        let rest = obj[at + tag.len()..].trim_start();
        let end = rest
            .find([',', '}', '\n'])
            .ok_or_else(|| format!("unterminated value for {key}"))?;
        rest[..end]
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("bad number for {key}: {e}"))
    }

    /// Like [`scalar`] but enforcing a finite, strictly positive value.
    pub fn positive_scalar(obj: &str, key: &str) -> Result<f64, String> {
        let v = scalar(obj, key)?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("{key} = {v} is not a positive finite scalar"));
        }
        Ok(v)
    }

    /// Write `json` to `path`, then re-read it from disk and run
    /// `validate` over the round-tripped text — the self-validation step
    /// every `BENCH_*.json` goes through before the binary may exit 0.
    /// Returns the validated record count.
    pub fn write_validated(
        path: &str,
        json: &str,
        validate: impl Fn(&str) -> Result<usize, String>,
    ) -> Result<usize, String> {
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("read back {path}: {e}"))?;
        validate(&text)
    }

    /// The worker-pool fields every `BENCH_*.json` config block stamps:
    /// `"worker_threads": N` (the resolved size of the persistent pool the
    /// numbers were measured under) plus `"xmoe_threads": M` when the
    /// `XMOE_THREADS` override is set and valid — so a report with an odd
    /// number can be traced to an odd thread count. The fragment carries no
    /// leading or trailing comma; embed it like any other config field.
    pub fn worker_fields() -> String {
        let n = xmoe_tensor::worker_threads();
        let base = format!("\"worker_threads\": {n}");
        match std::env::var("XMOE_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(m) if m >= 1 => format!("{base}, \"xmoe_threads\": {}", m.min(64)),
                _ => base,
            },
            Err(_) => base,
        }
    }

    /// Drive a `--validate <path>` invocation: read, validate, report.
    /// Returns the process exit code the binary should end with.
    pub fn validate_file_cli(
        path: &str,
        validate: impl Fn(&str) -> Result<usize, String>,
    ) -> std::process::ExitCode {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: INVALID — read failed: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        match validate(&text) {
            Ok(n) => {
                println!("{path}: OK ({n} records)");
                std::process::ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::ExitCode::FAILURE
            }
        }
    }
}

/// Render a text table with a header row.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        fmt_row(row);
    }
}

/// Report a shape check: a claim from the paper and whether the model
/// reproduces it.
pub fn shape_check(claim: &str, ok: bool, detail: &str) {
    let status = if ok { "PASS" } else { "DEVIATION" };
    println!("[shape] {status}: {claim} ({detail})");
}

/// Format seconds as engineering-readable.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Format bytes as GiB with two decimals.
pub fn fmt_gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / (1024.0 * 1024.0 * 1024.0))
}

/// A crude ASCII sparkline for printed "figures".
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_scale() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(0.0021), "2.10 ms");
        assert_eq!(fmt_time(15e-6), "15.0 us");
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn fmt_gib_formats() {
        assert_eq!(fmt_gib(1024 * 1024 * 1024), "1.00 GiB");
    }

    #[test]
    fn split_records_handles_nested_config_objects() {
        let text = "[\n  {\"config\": {\"a\": 1}, \"x\": 2.5},\n  {\"x\": 3}\n]\n";
        let objs = report::split_records(text).unwrap();
        assert_eq!(objs.len(), 2);
        assert!(objs[0].contains("\"config\""));
        assert_eq!(report::scalar(objs[0], "x").unwrap(), 2.5);
        assert_eq!(report::scalar(objs[1], "x").unwrap(), 3.0);
    }

    #[test]
    fn split_records_rejects_malformed_reports() {
        assert!(report::split_records("{\"x\": 1}").is_err());
        assert!(report::split_records("[{\"x\": 1]").is_err());
        assert!(report::split_records("[]").is_err());
    }

    #[test]
    fn scalar_extraction_is_picky() {
        let obj = "{\"good\": 1.5, \"bad\": \"nope\", \"last\": 3}";
        assert_eq!(report::scalar(obj, "good").unwrap(), 1.5);
        assert!(report::scalar(obj, "bad").is_err());
        assert!(report::scalar(obj, "missing").is_err());
        assert_eq!(report::scalar(obj, "last").unwrap(), 3.0);
        assert!(report::positive_scalar(obj, "good").is_ok());
        assert!(report::positive_scalar("{\"z\": -2}", "z").is_err());
    }

    #[test]
    #[should_panic(expected = "needs JSON escaping")]
    fn json_safe_rejects_quotes() {
        report::json_safe("he\"llo");
    }

    #[test]
    fn worker_fields_stamp_a_valid_pool_size() {
        let f = report::worker_fields();
        let rest = f
            .strip_prefix("\"worker_threads\": ")
            .expect("fragment must lead with worker_threads");
        let n: usize = rest
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .expect("worker_threads must be an integer");
        assert!((1..=64).contains(&n), "pool size {n} out of range");
        // The fragment embeds into a config object verbatim: no braces, no
        // stray commas at either end.
        assert!(!f.contains('{') && !f.contains('}'));
        assert!(!f.ends_with(','));
    }
}
